#!/usr/bin/env python
"""Docs gate: broken intra-repo markdown links + missing docstrings.

Two independent checks, both stdlib-only so they run anywhere:

1. **Markdown links** — every relative link target in the repo's
   tracked ``*.md`` files must exist on disk (external ``http(s)``,
   ``mailto:`` and pure-anchor links are skipped; ``#fragment``
   suffixes are stripped before the existence check).
2. **Docstring coverage** — every module, public class, and public
   function/method in the :data:`DOCSTRING_PACKAGES` public APIs
   (currently ``repro.sweeps``, ``repro.kernels``, ``repro.obs``,
   ``repro.core``, ``repro.serve`` and ``repro.net``) must carry a
   docstring (the pydocstyle D1xx family, implemented via ``ast`` so
   no third-party dependency is needed).

Exit status 0 when clean, 1 with one line per violation otherwise::

    python tools/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

#: Directories whose markdown is checked (repo-root relative).
MARKDOWN_ROOTS = (".", "docs")

#: Packages whose public API must be fully docstringed.
DOCSTRING_PACKAGES = (
    "src/repro/sweeps",
    "src/repro/kernels",
    "src/repro/obs",
    "src/repro/core",
    "src/repro/serve",
    "src/repro/net",
)

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:", re.IGNORECASE)


def iter_markdown_files(root: Path):
    """Yield the markdown files under :data:`MARKDOWN_ROOTS` (not recursive
    at the repo root, recursive under docs/)."""
    for rel in MARKDOWN_ROOTS:
        base = root / rel
        if not base.is_dir():
            continue
        pattern = "*.md" if rel == "." else "**/*.md"
        yield from sorted(base.glob(pattern))


def check_markdown_links(root: Path) -> list[str]:
    """Return one violation line per broken relative link."""
    problems = []
    for md in iter_markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if _EXTERNAL.match(target) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    rel_md = md.relative_to(root)
                    problems.append(
                        f"{rel_md}:{lineno}: broken link -> {target}"
                    )
    return problems


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module, rel: str) -> list[str]:
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: missing module docstring")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{rel}:{node.lineno}: missing docstring on class {node.name}"
                )
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_public(item.name)
                    and ast.get_docstring(item) is None
                ):
                    problems.append(
                        f"{rel}:{item.lineno}: missing docstring on "
                        f"method {node.name}.{item.name}"
                    )
    for node in tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _is_public(node.name)
            and ast.get_docstring(node) is None
        ):
            problems.append(
                f"{rel}:{node.lineno}: missing docstring on function {node.name}"
            )
    return problems


def check_docstrings(root: Path) -> list[str]:
    """Return one violation line per missing public docstring."""
    problems = []
    for package in DOCSTRING_PACKAGES:
        base = root / package
        if not base.is_dir():
            problems.append(f"{package}: package directory not found")
            continue
        for py in sorted(base.rglob("*.py")):
            rel = str(py.relative_to(root))
            tree = ast.parse(py.read_text(encoding="utf-8"), filename=rel)
            problems.extend(_missing_docstrings(tree, rel))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's grandparent)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    problems = check_markdown_links(root) + check_docstrings(root)
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    packages = ", ".join(p.rsplit("/", 1)[-1] for p in DOCSTRING_PACKAGES)
    print(f"check_docs: markdown links ok, docstrings ok ({packages})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
