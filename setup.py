"""Legacy shim: enables `pip install -e . --no-use-pep517` in offline
environments where the PEP-660 editable path (which needs the `wheel`
package) is unavailable.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
