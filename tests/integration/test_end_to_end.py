"""Integration tests spanning the whole stack."""

import numpy as np
import pytest

from repro import RingSpace, TorusSpace, place_balls
from repro.baselines.uniform import UniformSpace
from repro.baselines.virtual_servers import VirtualServerRing
from repro.dht.chord import ChordRing
from repro.dht.twochoice import TwoChoiceDHT
from repro.dht.workload import generate_keys, zipf_lookups
from repro.geo2d.atm import AtmAssignmentModel
from repro.geo2d.pointsets import uniform_points
from repro.theory.fluid import fluid_limit_tails
from repro.theory.recursion import practical_predicted_max_load


class TestTheorem1EndToEnd:
    """The headline claim, executed: geometric spaces enjoy the same
    double-logarithmic maximum as uniform bins."""

    N = 2**13
    TRIALS = 12

    def _maxima(self, make_space, d):
        out = []
        for s in range(self.TRIALS):
            space = make_space(s)
            out.append(place_balls(space, self.N, d, seed=10_000 + s).max_load)
        return np.array(out)

    def test_geometric_matches_uniform_at_d2(self):
        ring = self._maxima(lambda s: RingSpace.random(self.N, seed=s), 2)
        unif = self._maxima(lambda s: UniformSpace(self.N), 2)
        # Theorem 1: same log log scale; the O(1) gap observed in the
        # paper's own tables is ~1 (e.g. mode 4 vs 3 at 2^12)
        assert ring.mean() <= unif.mean() + 1.6
        assert ring.max() <= unif.max() + 3

    def test_torus_matches_ring_at_d2(self):
        ring = self._maxima(lambda s: RingSpace.random(self.N, seed=s), 2)
        torus = self._maxima(lambda s: TorusSpace.random(self.N, seed=s), 2)
        assert abs(ring.mean() - torus.mean()) <= 1.5

    def test_d1_gap_is_qualitative(self):
        """At d=1 the geometric setting is strictly worse than uniform;
        at d=2 the gap collapses -- the paper's whole point."""
        ring1 = self._maxima(lambda s: RingSpace.random(self.N, seed=s), 1)
        unif1 = self._maxima(lambda s: UniformSpace(self.N), 1)
        ring2 = self._maxima(lambda s: RingSpace.random(self.N, seed=s), 2)
        unif2 = self._maxima(lambda s: UniformSpace(self.N), 2)
        assert ring1.mean() > unif1.mean() + 2.0
        assert ring2.mean() <= unif2.mean() + 1.6

    def test_practical_predictor_upper_bounds_simulation(self):
        pred = practical_predicted_max_load(self.N, 2)
        sim = self._maxima(lambda s: RingSpace.random(self.N, seed=s), 2)
        assert sim.max() <= pred

    def test_fluid_limit_tracks_uniform_histogram(self):
        """Fraction of bins with load >= i vs the ODE prediction."""
        n = 2**14
        res = place_balls(UniformSpace(n), n, 2, seed=77)
        nu = res.nu_profile() / n
        s = fluid_limit_tails(2, 1.0)
        for i in (1, 2, 3):
            assert nu[i] == pytest.approx(s[i], abs=0.02)


class TestDhtScenario:
    """A realistic DHT session: build, load, serve, churn."""

    def test_full_lifecycle(self):
        ring = ChordRing.from_names([f"node-{i}" for i in range(100)])
        dht = TwoChoiceDHT(ring, d=2, seed=5)
        keys = generate_keys(1000, seed=6)
        for k in keys:
            dht.insert(k, hash(k))
        # serve a skewed lookup stream
        for k in zipf_lookups(keys, 500, seed=7):
            assert dht.lookup(k) == hash(k)
        # balance: max primary load far below the d=1 Theta(log n) level
        loads = dht.loads()
        assert loads.sum() == 1000
        assert loads.max() <= 3 * (1000 / 100)
        # routing stayed logarithmic
        assert dht.stats.mean_lookup_hops <= 2 * np.log2(100)

    def test_two_choice_vs_virtual_servers(self):
        """The paper's systems argument, end to end: similar balance,
        log-factor less routing state."""
        n, m = 128, 2560
        vs = VirtualServerRing(n, seed=1)
        vs_loads = vs.place_items(m, d=1, seed=2)
        dht = TwoChoiceDHT(ChordRing.random(n, seed=1), d=2, seed=2)
        for k in generate_keys(m, seed=3):
            dht.insert(k)
        tc_loads = dht.loads()
        assert tc_loads.max() <= vs_loads.max() + 2
        # state: virtual servers multiply ring entries by ~log2(n)
        assert vs.ring.n == n * vs.virtuals
        assert dht.ring.n == n


class TestAtmScenario:
    def test_bank_example(self):
        machines = uniform_points(100, seed=0)
        model = AtmAssignmentModel(machines)
        m = 2000
        home = uniform_points(m, seed=1)
        work = uniform_points(m, seed=2)
        one = model.assign(home, seed=3)
        two = model.assign(np.stack([home, work], axis=1), seed=3)
        assert one.loads.sum() == two.loads.sum() == m
        assert two.max_load < one.max_load
