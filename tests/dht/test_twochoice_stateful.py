"""Model-based stateful testing of the two-choice DHT.

Hypothesis drives random insert/lookup/remove sequences against
:class:`TwoChoiceDHT` and a plain dict oracle; any divergence (wrong
value, phantom key, lost key, broken redirect) fails with a minimal
reproducing program.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.dht.chord import ChordRing
from repro.dht.twochoice import TwoChoiceDHT

KEYS = st.text(
    alphabet="abcdefghij0123456789:-", min_size=1, max_size=16
)


class DhtModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dht = TwoChoiceDHT(ChordRing.random(24, seed=99), d=2, seed=7)
        self.oracle: dict[str, int] = {}
        self.counter = 0

    inserted = Bundle("inserted")

    @rule(target=inserted, key=KEYS)
    def insert(self, key):
        self.counter += 1
        self.dht.insert(key, self.counter)
        self.oracle[key] = self.counter
        return key

    @rule(key=inserted)
    def lookup_present(self, key):
        if key in self.oracle:
            assert self.dht.lookup(key) == self.oracle[key]
            assert self.dht.lookup(key, probe_all=True) == self.oracle[key]
        else:
            with pytest.raises(KeyError):
                self.dht.lookup(key)

    @rule(key=KEYS)
    def lookup_arbitrary(self, key):
        if key in self.oracle:
            assert self.dht.lookup(key) == self.oracle[key]
        else:
            with pytest.raises(KeyError):
                self.dht.lookup(key)

    @rule(key=inserted)
    def remove(self, key):
        if key in self.oracle:
            self.dht.remove(key)
            del self.oracle[key]
        else:
            with pytest.raises(KeyError):
                self.dht.remove(key)

    @invariant()
    def loads_match_oracle_size(self):
        assert int(self.dht.loads().sum()) == len(self.oracle)

    @invariant()
    def max_load_bounded(self):
        # with d = 2 on 24 nodes the primary max should never blow past
        # a generous multiple of the mean
        if len(self.oracle) >= 24:
            assert self.dht.max_load() <= 4 * (len(self.oracle) / 24) + 4


TestDhtModel = DhtModel.TestCase
TestDhtModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
