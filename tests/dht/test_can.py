"""Tests for the CAN substrate: zones, adjacency, routing, engine."""

import numpy as np
import pytest

from repro.core.placement import place_balls
from repro.dht.can import CanNetwork, CanSpace, Zone


class TestZone:
    def test_volume_and_center(self):
        z = Zone((0.0, 0.0), (0.5, 1.0))
        assert z.volume == 0.5
        assert z.center.tolist() == [0.25, 0.5]

    def test_contains_half_open(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        assert z.contains((0.0, 0.0))
        assert not z.contains((0.5, 0.25))

    def test_split_longest_side(self):
        z = Zone((0.0, 0.0), (1.0, 0.5))
        a, b = z.split()
        assert a.hi[0] == 0.5 and b.lo[0] == 0.5  # split along x (longer)
        assert a.volume == b.volume == z.volume / 2

    def test_box_distance_inside_zero(self):
        z = Zone((0.2, 0.2), (0.4, 0.4))
        assert z.box_distance(np.array([0.3, 0.3])) == 0.0

    def test_box_distance_wraps(self):
        z = Zone((0.9, 0.0), (1.0, 1.0))
        # point at x=0.05: closest approach across the seam is 0.05
        assert z.box_distance(np.array([0.05, 0.5])) == pytest.approx(0.05)


class TestCanNetwork:
    def test_partition_of_unity(self):
        can = CanNetwork.random(37, seed=0)
        assert sum(z.volume for z in can.zones) == pytest.approx(1.0)

    def test_every_point_owned_once(self):
        can = CanNetwork.random(25, seed=1)
        rng = np.random.default_rng(2)
        for p in rng.random((100, 2)):
            counts = sum(z.contains(p) for z in can.zones)
            assert counts == 1

    def test_single_zone(self):
        can = CanNetwork.random(1, seed=0)
        assert can.zones[0].volume == 1.0

    def test_dyadic_volumes(self):
        """CAN volumes are powers of 1/2 (repeated halving)."""
        can = CanNetwork.random(20, seed=3)
        for z in can.zones:
            log2v = np.log2(z.volume)
            assert log2v == pytest.approx(round(log2v), abs=1e-9)

    def test_rejects_non_partition(self):
        with pytest.raises(ValueError, match="partition"):
            CanNetwork([Zone((0.0, 0.0), (0.5, 0.5))])

    def test_neighbors_symmetric(self):
        can = CanNetwork.random(30, seed=4)
        for i in range(can.n):
            for j in can.neighbors(i):
                assert i in can.neighbors(j)
                assert i != j

    def test_neighbors_nonempty(self):
        can = CanNetwork.random(16, seed=5)
        assert all(can.neighbors(i) for i in range(can.n))

    def test_two_zones_adjacent_across_seam(self):
        full = Zone((0.0, 0.0), (1.0, 1.0))
        a, b = full.split()
        can = CanNetwork([a, b])
        # adjacent both at x=0.5 and across the x=0/1 seam
        assert can.neighbors(0) == [1]


class TestRouting:
    def test_reaches_owner(self):
        can = CanNetwork.random(64, seed=6)
        rng = np.random.default_rng(7)
        for _ in range(100):
            p = rng.random(2)
            start = int(rng.integers(can.n))
            route = can.route(p, start)
            assert route.owner_index == can.owner(p)
            assert route.path[0] == start

    def test_zero_hops_at_owner(self):
        can = CanNetwork.random(8, seed=8)
        p = np.array([0.3, 0.7])
        route = can.route(p, can.owner(p))
        assert route.hops == 0

    def test_hops_scale_like_sqrt_n(self):
        rng = np.random.default_rng(9)
        means = {}
        for n in (16, 256):
            can = CanNetwork.random(n, seed=10)
            hops = [
                can.route(rng.random(2), int(rng.integers(n))).hops
                for _ in range(60)
            ]
            means[n] = np.mean(hops)
        # CAN: ~ (k/2) n^{1/k}; ratio for 16 -> 256 should be ~4, far
        # below linear scaling (16x)
        assert means[256] / max(means[16], 0.5) < 8

    def test_rejects_bad_start(self):
        can = CanNetwork.random(4, seed=11)
        with pytest.raises(ValueError):
            can.route(np.array([0.5, 0.5]), 99)


class TestCanSpace:
    def test_engine_integration(self):
        space = CanSpace.random(64, seed=12)
        res = place_balls(space, 64, 2, seed=13)
        assert res.loads.sum() == 64

    def test_measures_are_volumes(self):
        space = CanSpace.random(32, seed=14)
        assert space.region_measures().sum() == pytest.approx(1.0)

    def test_assign_matches_owner(self):
        space = CanSpace.random(40, seed=15)
        rng = np.random.default_rng(16)
        pts = rng.random((50, 2))
        vec = space.assign(pts)
        scalar = [space.network.owner(p) for p in pts]
        assert vec.tolist() == scalar

    def test_two_choices_tame_can_skew(self):
        """The paper's thesis on a third bin geometry: d=2 collapses the
        dyadic-zone imbalance."""
        n = 512
        d1, d2 = [], []
        for s in range(6):
            space = CanSpace.random(n, seed=s)
            d1.append(place_balls(space, n, 1, seed=100 + s).max_load)
            d2.append(place_balls(space, n, 2, seed=100 + s).max_load)
        assert np.mean(d2) < 0.6 * np.mean(d1)
        assert max(d2) <= 7

    def test_smaller_strategy_works(self):
        space = CanSpace.random(128, seed=17)
        res = place_balls(space, 128, 2, strategy="smaller", seed=18)
        assert res.loads.sum() == 128

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            CanSpace("zones")
