"""Tests for deterministic DHT hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.hashing import RING_BITS, RING_SIZE, hash_to_unit, key_id, multi_hash


class TestKeyId:
    def test_deterministic(self):
        assert key_id("alice") == key_id("alice")

    def test_str_bytes_equivalent(self):
        assert key_id("alice") == key_id(b"alice")

    def test_salt_changes_value(self):
        assert key_id("alice", salt=0) != key_id("alice", salt=1)

    def test_fits_ring(self):
        assert 0 <= key_id("x") < RING_SIZE

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            key_id(42)

    def test_rejects_negative_salt(self):
        with pytest.raises(ValueError):
            key_id("x", salt=-1)

    @given(st.text(max_size=64))
    @settings(max_examples=50)
    def test_always_in_range(self, s):
        assert 0 <= key_id(s) < RING_SIZE


class TestHashToUnit:
    def test_range(self):
        for k in ("a", "b", "c"):
            assert 0.0 <= hash_to_unit(k) < 1.0

    def test_matches_key_id(self):
        assert hash_to_unit("k") == key_id("k") / RING_SIZE

    def test_approximately_uniform(self):
        vals = np.array([hash_to_unit(f"key{i}") for i in range(4000)])
        # crude uniformity: mean ~ 0.5, each decile ~ 10%
        assert abs(vals.mean() - 0.5) < 0.02
        hist, _ = np.histogram(vals, bins=10, range=(0, 1))
        assert hist.min() > 300


class TestMultiHash:
    def test_shape_and_dtype(self):
        ids = multi_hash("k", 3)
        assert ids.shape == (3,) and ids.dtype == np.uint64

    def test_choices_are_distinct_salts(self):
        ids = multi_hash("k", 4)
        assert len(set(ids.tolist())) == 4

    def test_first_matches_default_salt(self):
        assert int(multi_hash("k", 2)[0]) == key_id("k")

    def test_rejects_zero_d(self):
        with pytest.raises(ValueError):
            multi_hash("k", 0)

    def test_ring_bits_constant(self):
        """Changing RING_BITS invalidates stored topologies."""
        assert RING_BITS == 64
