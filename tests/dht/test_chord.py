"""Tests for the Chord overlay: ownership, routing, membership."""

import math

import numpy as np
import pytest

from repro.dht.chord import ChordRing, in_interval
from repro.dht.hashing import RING_BITS


class TestInInterval:
    def test_plain_interval(self):
        assert in_interval(5, 3, 7)
        assert not in_interval(3, 3, 7)
        assert not in_interval(7, 3, 7)
        assert in_interval(7, 3, 7, inclusive_right=True)

    def test_wrapping_interval(self):
        assert in_interval(1, 6, 3)
        assert in_interval(7, 6, 3)
        assert not in_interval(5, 6, 3)

    def test_full_circle(self):
        assert in_interval(1, 4, 4)
        assert not in_interval(4, 4, 4)
        assert in_interval(4, 4, 4, inclusive_right=True)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChordRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            ChordRing([5, 5])

    def test_rejects_oversized_ids(self):
        with pytest.raises(ValueError, match="bits"):
            ChordRing([1 << RING_BITS])

    def test_random_count_and_uniqueness(self):
        ring = ChordRing.random(100, seed=0)
        assert ring.n == 100
        assert len(set(ring.node_ids.tolist())) == 100

    def test_from_names_deterministic(self):
        a = ChordRing.from_names([f"srv{i}" for i in range(10)])
        b = ChordRing.from_names([f"srv{i}" for i in range(10)])
        assert np.array_equal(a.node_ids, b.node_ids)


class TestOwnership:
    def test_successor_semantics(self):
        ring = ChordRing([100, 200, 300])
        assert ring.successor_index(150) == 1
        assert ring.successor_index(200) == 1
        assert ring.successor_index(301) == 0  # wraps
        assert ring.successor_index(50) == 0

    def test_vectorized_matches_scalar(self):
        ring = ChordRing.random(50, seed=1)
        idents = np.random.default_rng(2).integers(0, 1 << 63, 100).astype(np.uint64)
        vec = ring.successor_index(idents)
        assert vec.tolist() == [ring.successor_index(int(i)) for i in idents]

    def test_arc_lengths_sum_to_one(self):
        ring = ChordRing.random(64, seed=3)
        assert ring.arc_lengths().sum() == pytest.approx(1.0)


class TestRouting:
    def test_lookup_owner_correct(self):
        ring = ChordRing.random(128, seed=4)
        rng = np.random.default_rng(5)
        for _ in range(200):
            ident = int(rng.integers(0, 1 << 63)) * 2 + 1
            start = int(rng.integers(128))
            res = ring.lookup(ident, start)
            assert res.owner_index == ring.successor_index(ident)
            assert res.owner_id == int(ring.node_ids[res.owner_index])

    def test_hops_logarithmic(self):
        n = 512
        ring = ChordRing.random(n, seed=6)
        rng = np.random.default_rng(7)
        hops = [
            ring.lookup(int(rng.integers(0, 1 << 63)) * 2, int(rng.integers(n))).hops
            for _ in range(300)
        ]
        assert max(hops) <= 2 * math.log2(n)
        assert np.mean(hops) <= math.log2(n)

    def test_lookup_own_id_zero_hops(self):
        ring = ChordRing([100, 200])
        res = ring.lookup(100, 0)
        assert res.owner_index == 0 and res.hops == 0

    def test_single_node_ring(self):
        ring = ChordRing([42])
        res = ring.lookup(7)
        assert res.owner_index == 0 and res.hops == 0

    def test_path_starts_at_start(self):
        ring = ChordRing.random(64, seed=8)
        res = ring.lookup(12345, 10)
        assert res.path[0] == 10
        assert res.path[-1] == res.owner_index

    def test_rejects_bad_start(self):
        ring = ChordRing([1, 2])
        with pytest.raises(ValueError, match="start_index"):
            ring.lookup(5, 9)

    def test_rejects_oversized_ident(self):
        ring = ChordRing([1, 2])
        with pytest.raises(ValueError, match="bits"):
            ring.lookup(1 << RING_BITS)

    def test_finger_table_shape_and_semantics(self):
        ring = ChordRing.random(32, seed=9)
        fingers = ring.finger_table()
        assert fingers.shape == (32, RING_BITS)
        # spot-check: finger k of node i owns id_i + 2^k
        ids = ring.node_ids
        for i in (0, 7, 31):
            for k in (0, 10, 40, 63):
                target = (int(ids[i]) + (1 << k)) % (1 << RING_BITS)
                assert fingers[i, k] == ring.successor_index(target)


class TestMembership:
    def test_join_inserts_sorted(self):
        ring = ChordRing([100, 300])
        idx = ring.join(200)
        assert idx == 1
        assert ring.node_ids.tolist() == [100, 200, 300]

    def test_join_rejects_duplicate(self):
        ring = ChordRing([100])
        with pytest.raises(ValueError, match="already present"):
            ring.join(100)

    def test_leave_returns_ident(self):
        ring = ChordRing([100, 200])
        assert ring.leave(0) == 100
        assert ring.n == 1

    def test_cannot_empty_ring(self):
        ring = ChordRing([100])
        with pytest.raises(ValueError, match="last node"):
            ring.leave(0)

    def test_routing_correct_after_churn(self):
        ring = ChordRing.random(64, seed=10)
        rng = np.random.default_rng(11)
        for _ in range(10):
            ring.join(int(rng.integers(0, 1 << 63)) * 2 + 1)
            ring.leave(int(rng.integers(ring.n)))
        for _ in range(50):
            ident = int(rng.integers(0, 1 << 63)) * 2
            res = ring.lookup(ident, int(rng.integers(ring.n)))
            assert res.owner_index == ring.successor_index(ident)
