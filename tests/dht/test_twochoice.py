"""Tests for the two-choice DHT refinement."""

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.twochoice import TwoChoiceDHT
from repro.dht.workload import generate_keys


@pytest.fixture
def dht():
    return TwoChoiceDHT(ChordRing.random(64, seed=0), d=2, seed=1)


class TestBasicOperations:
    def test_insert_then_lookup(self, dht):
        dht.insert("k1", "v1")
        assert dht.lookup("k1") == "v1"

    def test_lookup_probe_all(self, dht):
        dht.insert("k1", "v1")
        assert dht.lookup("k1", probe_all=True) == "v1"

    def test_missing_key_raises(self, dht):
        dht.insert("k1", "v1")
        with pytest.raises(KeyError):
            dht.lookup("nope")
        with pytest.raises(KeyError):
            dht.lookup("nope", probe_all=True)
        assert dht.stats.failed_lookups == 2

    def test_bytes_keys(self, dht):
        dht.insert(b"bk", 7)
        assert dht.lookup(b"bk") == 7

    def test_remove(self, dht):
        dht.insert("k1", "v1")
        dht.remove("k1")
        with pytest.raises(KeyError):
            dht.lookup("k1")

    def test_remove_missing_raises(self, dht):
        with pytest.raises(KeyError):
            dht.remove("ghost")

    def test_remove_clears_redirects(self, dht):
        dht.insert("k1", "v1")
        dht.remove("k1")
        assert dht.storage_overhead() == 0.0

    def test_rejects_non_ring(self):
        with pytest.raises(TypeError, match="ChordRing"):
            TwoChoiceDHT("not a ring")

    def test_all_keys_retrievable(self, dht):
        keys = generate_keys(300, seed=2)
        for k in keys:
            dht.insert(k, k[::-1])
        for k in keys:
            assert dht.lookup(k) == k[::-1]

    def test_loads_conserve_items(self, dht):
        keys = generate_keys(200, seed=3)
        for k in keys:
            dht.insert(k)
        assert dht.loads().sum() == 200


class TestBalancing:
    def test_d2_beats_d1(self):
        """The headline effect, at the DHT layer."""
        maxima = {1: [], 2: []}
        for d in (1, 2):
            for seed in range(5):
                dht = TwoChoiceDHT(ChordRing.random(64, seed=seed), d=d, seed=seed)
                for k in generate_keys(640, seed=100 + seed):
                    dht.insert(k)
                maxima[d].append(dht.max_load())
        assert np.mean(maxima[2]) < np.mean(maxima[1])

    def test_storage_overhead_bounded(self, dht):
        for k in generate_keys(200, seed=4):
            dht.insert(k)
        # d - 1 = 1 pointer per item, minus hash collisions into the
        # same owner
        assert 0.0 <= dht.storage_overhead() <= 1.0

    def test_d1_zero_overhead(self):
        dht = TwoChoiceDHT(ChordRing.random(32, seed=5), d=1, seed=6)
        for k in generate_keys(100, seed=7):
            dht.insert(k)
        assert dht.storage_overhead() == 0.0


class TestStats:
    def test_hop_accounting(self, dht):
        keys = generate_keys(50, seed=8)
        for k in keys:
            dht.insert(k)
        for k in keys:
            dht.lookup(k)
        assert dht.stats.inserts == 50
        assert dht.stats.lookups == 50
        assert dht.stats.mean_insert_hops > 0
        # lookups: one route + at most one redirect
        assert dht.stats.mean_lookup_hops <= dht.stats.mean_insert_hops

    def test_insert_costs_d_lookups(self):
        a = TwoChoiceDHT(ChordRing.random(64, seed=9), d=1, seed=10)
        b = TwoChoiceDHT(ChordRing.random(64, seed=9), d=3, seed=10)
        for k in generate_keys(80, seed=11):
            a.insert(k)
            b.insert(k)
        assert b.stats.mean_insert_hops > 1.5 * a.stats.mean_insert_hops


class TestUpsert:
    def test_reinsert_updates_in_place(self, dht):
        """Found by the stateful model: re-insert must not create a
        second primary copy."""
        a = dht.insert("k", 1)
        b = dht.insert("k", 2)
        assert a == b
        assert dht.lookup("k") == 2
        assert int(dht.loads().sum()) == 1

    def test_reinsert_keeps_redirects_valid(self, dht):
        dht.insert("k", 1)
        dht.insert("k", 2)
        assert dht.lookup("k", probe_all=True) == 2
        dht.remove("k")
        assert dht.storage_overhead() == 0.0
