"""Tests for DHT workload generators."""

import numpy as np
import pytest

from repro.dht.workload import generate_keys, zipf_lookups


class TestGenerateKeys:
    def test_count_and_uniqueness(self):
        keys = generate_keys(500, seed=0)
        assert len(keys) == 500
        assert len(set(keys)) == 500

    def test_deterministic(self):
        assert generate_keys(10, seed=1) == generate_keys(10, seed=1)

    def test_prefix(self):
        assert all(k.startswith("user:") for k in generate_keys(5, seed=0, prefix="user"))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            generate_keys(0)


class TestZipfLookups:
    def test_length(self):
        keys = generate_keys(50, seed=0)
        stream = zipf_lookups(keys, 300, seed=1)
        assert len(stream) == 300
        assert set(stream) <= set(keys)

    def test_rank_zero_most_popular(self):
        keys = generate_keys(100, seed=2)
        stream = zipf_lookups(keys, 5000, exponent=1.2, seed=3)
        counts = {k: 0 for k in keys}
        for k in stream:
            counts[k] += 1
        assert counts[keys[0]] > counts[keys[50]]

    def test_higher_exponent_more_skew(self):
        keys = generate_keys(100, seed=4)
        mild = zipf_lookups(keys, 3000, exponent=0.5, seed=5)
        harsh = zipf_lookups(keys, 3000, exponent=2.0, seed=5)
        top_mild = np.mean([k == keys[0] for k in mild])
        top_harsh = np.mean([k == keys[0] for k in harsh])
        assert top_harsh > top_mild

    def test_rejects_empty_keys(self):
        with pytest.raises(ValueError):
            zipf_lookups([], 10)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            zipf_lookups(["a"], 10, exponent=0.0)
