"""Tests for DHT workload generators."""

import numpy as np
import pytest

from repro.dht.workload import generate_keys, zipf_lookups, zipf_ranks
from repro.utils.rng import resolve_rng


def _generate_keys_reference(m, seed=None, *, prefix="key"):
    """The pre-vectorization scalar implementation (parity oracle)."""
    rng = resolve_rng(seed)
    keys = []
    seen = set()
    while len(keys) < m:
        suffixes = rng.integers(0, 1 << 62, size=2 * m, dtype=np.int64)
        for s in suffixes:
            s = int(s)
            if s in seen:
                continue
            seen.add(s)
            keys.append(f"{prefix}:{s:016x}")
            if len(keys) == m:
                break
    return keys


def _zipf_lookups_reference(keys, n_lookups, *, exponent=1.1, seed=None):
    """The pre-vectorization scalar implementation (parity oracle)."""
    rng = resolve_rng(seed)
    ranks = np.arange(1, len(keys) + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    picks = rng.choice(len(keys), size=n_lookups, p=weights)
    return [keys[i] for i in picks]


class TestGenerateKeys:
    def test_count_and_uniqueness(self):
        keys = generate_keys(500, seed=0)
        assert len(keys) == 500
        assert len(set(keys)) == 500

    def test_deterministic(self):
        assert generate_keys(10, seed=1) == generate_keys(10, seed=1)

    def test_prefix(self):
        assert all(k.startswith("user:") for k in generate_keys(5, seed=0, prefix="user"))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            generate_keys(0)


class TestZipfLookups:
    def test_length(self):
        keys = generate_keys(50, seed=0)
        stream = zipf_lookups(keys, 300, seed=1)
        assert len(stream) == 300
        assert set(stream) <= set(keys)

    def test_rank_zero_most_popular(self):
        keys = generate_keys(100, seed=2)
        stream = zipf_lookups(keys, 5000, exponent=1.2, seed=3)
        counts = {k: 0 for k in keys}
        for k in stream:
            counts[k] += 1
        assert counts[keys[0]] > counts[keys[50]]

    def test_higher_exponent_more_skew(self):
        keys = generate_keys(100, seed=4)
        mild = zipf_lookups(keys, 3000, exponent=0.5, seed=5)
        harsh = zipf_lookups(keys, 3000, exponent=2.0, seed=5)
        top_mild = np.mean([k == keys[0] for k in mild])
        top_harsh = np.mean([k == keys[0] for k in harsh])
        assert top_harsh > top_mild

    def test_rejects_empty_keys(self):
        with pytest.raises(ValueError):
            zipf_lookups([], 10)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            zipf_lookups(["a"], 10, exponent=0.0)


class TestVectorizationParity:
    """The numpy rewrites must match the original scalar loops exactly."""

    @pytest.mark.parametrize("m,seed", [(1, 0), (7, 1), (100, 42), (1000, 7)])
    def test_generate_keys_identical(self, m, seed):
        assert generate_keys(m, seed=seed) == _generate_keys_reference(m, seed=seed)

    @pytest.mark.parametrize("n,exponent,seed", [
        (1, 1.1, 0), (200, 1.1, 5), (1000, 0.7, 9),
    ])
    def test_zipf_lookups_identical(self, n, exponent, seed):
        keys = generate_keys(50, seed=3)
        assert zipf_lookups(keys, n, exponent=exponent, seed=seed) == \
            _zipf_lookups_reference(keys, n, exponent=exponent, seed=seed)

    def test_rng_consumption_identical(self):
        # a shared generator advances the same either way
        r_new, r_ref = resolve_rng(11), resolve_rng(11)
        generate_keys(64, seed=r_new)
        _generate_keys_reference(64, seed=r_ref)
        assert r_new.integers(0, 1 << 30) == r_ref.integers(0, 1 << 30)


class TestZipfRanks:
    def test_matches_lookups(self):
        keys = generate_keys(40, seed=0)
        ranks = zipf_ranks(40, 100, exponent=1.3, seed=8)
        assert zipf_lookups(keys, 100, exponent=1.3, seed=8) == \
            [keys[i] for i in ranks]

    def test_range_and_validation(self):
        ranks = zipf_ranks(10, 500, seed=1)
        assert ranks.min() >= 0 and ranks.max() < 10
        with pytest.raises(ValueError):
            zipf_ranks(0, 5)
        with pytest.raises(ValueError):
            zipf_ranks(5, 5, exponent=-1.0)
