"""Tests for successor lists, failures and churn."""

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.resilience import ResilientChord


@pytest.fixture
def rc():
    return ResilientChord(ChordRing.random(64, seed=0))


class TestConstruction:
    def test_default_successor_list_length(self, rc):
        assert rc.r == 12  # 2 * log2(64)

    def test_successor_list_wraps(self, rc):
        lst = rc.successor_list(62)
        assert lst[:3] == [63, 0, 1]
        assert len(lst) == rc.r

    def test_r_capped_below_n(self):
        rc = ResilientChord(ChordRing.random(4, seed=1), successors=10)
        assert rc.r == 3

    def test_rejects_non_ring(self):
        with pytest.raises(TypeError):
            ResilientChord("ring")


class TestFailures:
    def test_fail_and_recover(self, rc):
        rc.fail(5)
        assert not rc.alive[5]
        rc.recover(5)
        assert rc.alive[5]

    def test_cannot_fail_all(self):
        rc = ResilientChord(ChordRing.random(2, seed=2))
        rc.fail(0)
        with pytest.raises(ValueError, match="last live"):
            rc.fail(1)

    def test_fail_random_count(self, rc):
        failed = rc.fail_random(10, seed=3)
        assert len(failed) == 10
        assert (~rc.alive).sum() == 10

    def test_fail_random_rejects_overkill(self, rc):
        with pytest.raises(ValueError):
            rc.fail_random(64, seed=4)

    def test_live_owner_skips_failed(self, rc):
        ident = 12345
        healthy = rc.live_owner(ident)
        rc.fail(healthy)
        assert rc.live_owner(ident) != healthy
        # live owner is the next live node clockwise
        assert rc.live_owner(ident) == (healthy + 1) % 64 or rc.alive[
            rc.live_owner(ident)
        ]


class TestRoutingUnderFailures:
    def test_healthy_routing_matches_chord(self, rc):
        rng = np.random.default_rng(5)
        for _ in range(50):
            ident = int(rng.integers(0, 1 << 63)) * 2
            res = rc.lookup_live(ident, 0)
            assert res.owner_index == rc.ring.successor_index(ident)
            assert res.owner_alive

    def test_routing_survives_failures(self, rc):
        rc.fail_random(16, seed=6)  # 25% failure
        live = np.nonzero(rc.alive)[0]
        rng = np.random.default_rng(7)
        for _ in range(100):
            ident = int(rng.integers(0, 1 << 63)) * 2
            start = int(rng.choice(live))
            res = rc.lookup_live(ident, start)
            assert rc.alive[res.owner_index]
            assert res.owner_index == rc.live_owner(ident)

    def test_rejects_failed_start(self, rc):
        rc.fail(3)
        with pytest.raises(ValueError, match="failed"):
            rc.lookup_live(1, 3)

    def test_hops_stay_bounded(self, rc):
        rc.fail_random(8, seed=8)
        live = np.nonzero(rc.alive)[0]
        rng = np.random.default_rng(9)
        hops = []
        for _ in range(100):
            ident = int(rng.integers(0, 1 << 63)) * 2
            res = rc.lookup_live(ident, int(rng.choice(live)))
            hops.append(res.hops)
        # log n routing with detours; generous cap
        assert np.mean(hops) <= 4 * np.log2(64)


class TestChurn:
    def test_episode_availability(self):
        rc = ResilientChord(ChordRing.random(128, seed=10))
        report = rc.churn_episode(fail_count=16, lookups=100, seed=11)
        assert report.failed_nodes == 16
        assert report.availability == 1.0  # r = 14 >> expected run of failures
        assert report.mean_hops > 0

    def test_heavy_churn_still_mostly_available(self):
        rc = ResilientChord(ChordRing.random(128, seed=12))
        report = rc.churn_episode(fail_count=64, lookups=100, seed=13)
        assert report.availability >= 0.9


class TestReplayTrace:
    def _storm(self, n, **kwargs):
        from repro.dynamics.events import churn_storm_trace

        return churn_storm_trace(n, 2 * n, **kwargs)

    def test_one_report_per_epoch(self):
        rc = ResilientChord(ChordRing.random(64, seed=20))
        trace = self._storm(64, waves=2, leave_fraction=0.2, seed=21)
        reports = rc.replay_trace(trace, lookups_per_epoch=40, seed=22)
        assert len(reports) == int(trace.epoch_ends.size)
        assert all(0.0 <= r.availability <= 1.0 for r in reports)

    def test_failures_track_trace_and_recover(self):
        rc = ResilientChord(ChordRing.random(64, seed=23))
        trace = self._storm(64, waves=1, leave_fraction=0.25, seed=24)
        reports = rc.replay_trace(trace, lookups_per_epoch=30, seed=25)
        # degraded epoch sees the departed nodes as failed...
        assert max(r.failed_nodes for r in reports) == 16
        # ...and the rejoin wave restores everyone
        assert reports[-1].failed_nodes == 0
        assert rc.alive.all()

    def test_no_rejoin_leaves_nodes_failed(self):
        rc = ResilientChord(ChordRing.random(64, seed=26))
        trace = self._storm(64, waves=1, leave_fraction=0.2, rejoin=False, seed=27)
        rc.replay_trace(trace, lookups_per_epoch=20, seed=28)
        assert (~rc.alive).sum() == 12

    def test_slot_mismatch_rejected(self):
        rc = ResilientChord(ChordRing.random(32, seed=29))
        trace = self._storm(64, waves=1, seed=30)
        with pytest.raises(ValueError, match="slots"):
            rc.replay_trace(trace)

    def test_requires_all_alive_start(self):
        rc = ResilientChord(ChordRing.random(64, seed=31))
        rc.fail(3)
        trace = self._storm(64, waves=1, seed=32)
        with pytest.raises(ValueError, match="all-alive"):
            rc.replay_trace(trace)

    def test_churn_free_trace_measures_healthy_ring(self):
        from repro.dynamics.events import steady_state_trace

        rc = ResilientChord(ChordRing.random(64, seed=33))
        trace = steady_state_trace(32, pairs=16, epochs=2, seed=34)
        reports = rc.replay_trace(trace, lookups_per_epoch=25, seed=35)
        assert len(reports) == int(trace.epoch_ends.size)
        assert all(r.failed_nodes == 0 for r in reports)
        assert all(r.availability == 1.0 for r in reports)
