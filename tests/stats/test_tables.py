"""Tests for paper-style table rendering."""

from repro.stats.distributions import MaxLoadDistribution
from repro.stats.tables import exponent_label, render_table


class TestExponentLabel:
    def test_powers_of_two(self):
        assert exponent_label(256) == "2^8"
        assert exponent_label(2**24) == "2^24"

    def test_non_powers(self):
        assert exponent_label(100) == "100"
        assert exponent_label(3) == "3"

    def test_one(self):
        assert exponent_label(1) == "2^0"


class TestRenderTable:
    def _cells(self):
        return {
            (256, 1): MaxLoadDistribution.from_samples([7, 7, 8]),
            (256, 2): MaxLoadDistribution.from_samples([4, 4, 4]),
            (1024, 1): MaxLoadDistribution.from_samples([9]),
            (1024, 2): MaxLoadDistribution.from_samples([4, 5]),
        }

    def test_contains_all_cells(self):
        text = render_table(self._cells(), [256, 1024], [1, 2], title="T")
        assert "T" in text
        assert "2^8" in text and "2^10" in text
        assert "100.0%" in text

    def test_missing_cell_marked(self):
        text = render_table(self._cells(), [256, 1024], [1, 2, 3])
        assert "(not run)" in text

    def test_row_alignment(self):
        """Each row block's first line starts with the row label."""
        text = render_table(self._cells(), [256], [1, 2])
        lines = [l for l in text.split("\n") if l.startswith("2^8")]
        assert len(lines) == 1

    def test_custom_labels(self):
        text = render_table(
            self._cells(),
            [256],
            [1, 2],
            row_label=str,
            col_label=lambda d: f"d={d}",
        )
        assert "256" in text and "d=1" in text

    def test_min_pct_threshold(self):
        cells = {
            (1, 1): MaxLoadDistribution.from_samples([3] * 99 + [9]),
        }
        text = render_table(cells, [1], [1], min_pct=2.0)
        assert "9" not in text.split("---")[-1] or "9 ......" not in text
