"""Tests for Wilson intervals and frequency compatibility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.confidence import frequencies_compatible, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(70, 100)
        assert lo < 0.7 < hi

    def test_extreme_zero(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and 0 < hi < 0.15

    def test_extreme_all(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == 1.0 and 0.85 < lo < 1.0

    def test_narrows_with_trials(self):
        w1 = wilson_interval(50, 100)
        w2 = wilson_interval(500, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_rejects_successes_gt_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_rejects_bad_z(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=0)

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=100)
    def test_always_valid_interval(self, s, n):
        if s > n:
            return
        lo, hi = wilson_interval(s, n)
        assert 0.0 <= lo <= hi <= 1.0

    def test_coverage_simulation(self):
        """~95% of intervals should cover the true p."""
        import numpy as np

        rng = np.random.default_rng(0)
        p, n, reps = 0.3, 120, 400
        hits = 0
        for _ in range(reps):
            s = rng.binomial(n, p)
            lo, hi = wilson_interval(int(s), n)
            hits += lo <= p <= hi
        assert hits / reps > 0.9


class TestFrequenciesCompatible:
    def test_same_proportion_compatible(self):
        assert frequencies_compatible(70, 100, 700, 1000)

    def test_wildly_different_incompatible(self):
        assert not frequencies_compatible(5, 100, 900, 1000)

    def test_small_sample_generous(self):
        """Tiny trial counts should rarely reject."""
        assert frequencies_compatible(3, 10, 500, 1000)
