"""Tests for the deterministic trial runner."""

import numpy as np
import pytest

from repro.stats.distributions import MaxLoadDistribution
from repro.stats.trials import CellSpec, run_cell, simulate_max_load


class TestCellSpec:
    def test_valid(self):
        spec = CellSpec("ring", 64, 2)
        assert spec.balls == 64

    def test_explicit_m(self):
        assert CellSpec("ring", 64, 2, m=128).balls == 128

    def test_rejects_bad_space(self):
        with pytest.raises(ValueError, match="space"):
            CellSpec("cube", 64, 2)

    def test_rejects_bad_strategy(self):
        with pytest.raises(ValueError, match="tie-break"):
            CellSpec("ring", 64, 2, strategy="leftish")

    def test_with_update(self):
        spec = CellSpec("ring", 64, 2).with_(d=3)
        assert spec.d == 3 and spec.n == 64

    def test_label_contents(self):
        label = CellSpec(
            "torus", 64, 2, m=100, strategy="smaller", dim=3
        ).label()
        assert "torus" in label and "m=100" in label
        assert "smaller" in label and "dim=3" in label


class TestSimulateMaxLoad:
    def test_deterministic(self):
        spec = CellSpec("ring", 128, 2)
        ss = np.random.SeedSequence(1)
        assert simulate_max_load(spec, ss) == simulate_max_load(
            spec, np.random.SeedSequence(1)
        )

    def test_different_seeds_vary(self):
        spec = CellSpec("ring", 256, 1)
        vals = {simulate_max_load(spec, np.random.SeedSequence(s)) for s in range(8)}
        assert len(vals) > 1

    @pytest.mark.parametrize("space", ["ring", "torus", "uniform"])
    def test_all_spaces(self, space):
        spec = CellSpec(space, 64, 2)
        assert simulate_max_load(spec, np.random.SeedSequence(0)) >= 1

    def test_partitioned_strategy(self):
        spec = CellSpec("ring", 64, 2, strategy="first", partitioned=True)
        assert simulate_max_load(spec, np.random.SeedSequence(0)) >= 1


class TestRunCell:
    def test_distribution_totals(self):
        dist = run_cell(CellSpec("ring", 64, 2), trials=10, seed=0)
        assert isinstance(dist, MaxLoadDistribution)
        assert dist.trials == 10

    def test_deterministic_given_seed(self):
        a = run_cell(CellSpec("ring", 64, 2), trials=6, seed=3)
        b = run_cell(CellSpec("ring", 64, 2), trials=6, seed=3)
        assert a.counts == b.counts

    def test_parallel_matches_serial(self):
        """DESIGN decision 3: n_jobs must not affect results."""
        spec = CellSpec("ring", 128, 2)
        serial = run_cell(spec, trials=8, seed=5, n_jobs=1)
        parallel = run_cell(spec, trials=8, seed=5, n_jobs=2)
        assert serial.counts == parallel.counts

    def test_trial_prefix_stability(self):
        """First k trials identical regardless of total trial count."""
        spec = CellSpec("ring", 64, 2)
        few = run_cell(spec, trials=4, seed=7)
        many = run_cell(spec, trials=12, seed=7)
        # the 4-trial histogram must be dominated by the 12-trial one
        for k, v in few.counts.items():
            assert many.counts.get(k, 0) >= 0  # existence
        assert sum(many.counts.values()) == 12

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_cell(CellSpec("ring", 8, 2), trials=0)

    def test_spec_attached(self):
        spec = CellSpec("ring", 64, 2)
        dist = run_cell(spec, trials=3, seed=1)
        assert dist.spec == spec


class TestRunCellProfile:
    def test_profile_shape_and_monotone(self):
        from repro.stats.trials import run_cell_profile
        import numpy as np

        spec = CellSpec("ring", 256, 2)
        profile = run_cell_profile(spec, trials=5, seed=1)
        assert profile[0] == 256  # nu_0 = n in every trial
        assert np.all(np.diff(profile) <= 0)

    def test_profile_matches_fluid_on_uniform(self):
        """Empirical s_i tracks the ODE for uniform bins (d = 2)."""
        import numpy as np

        from repro.stats.trials import run_cell_profile
        from repro.theory.fluid import fluid_limit_tails

        n = 4096
        profile = run_cell_profile(CellSpec("uniform", n, 2), trials=6, seed=2)
        s = fluid_limit_tails(2, 1.0)
        for i in (1, 2, 3):
            assert profile[i] / n == pytest.approx(s[i], abs=0.02)

    def test_geometric_profile_heavier_than_uniform(self):
        """The ring's non-uniform arcs thicken every tail level."""
        from repro.stats.trials import run_cell_profile

        n = 4096
        ring = run_cell_profile(CellSpec("ring", n, 2), trials=6, seed=3)
        unif = run_cell_profile(CellSpec("uniform", n, 2), trials=6, seed=3)
        assert ring[3] > unif[3]

    def test_conserves_ball_count(self):
        """sum_i nu_i = m (each ball counted once per height level)."""
        from repro.stats.trials import run_cell_profile

        spec = CellSpec("ring", 128, 2, m=300)
        profile = run_cell_profile(spec, trials=4, seed=4)
        assert profile[1:].sum() == pytest.approx(300)


class TestEngineSelection:
    """The engine knob moves wall-clock time only, never results."""

    @pytest.mark.parametrize(
        "spec",
        [
            CellSpec("ring", 96, 2),
            CellSpec("torus", 64, 3, m=150),
            CellSpec("uniform", 64, 2),
            CellSpec("ring", 80, 2, strategy="smaller"),
            CellSpec("ring", 80, 2, strategy="first", partitioned=True),
        ],
        ids=lambda s: s.label(),
    )
    def test_all_engines_bit_identical(self, spec):
        reference = run_cell(spec, trials=11, seed=7, engine="sequential")
        for engine in ("auto", "fused", "batched"):
            dist = run_cell(spec, trials=11, seed=7, engine=engine)
            assert dist.counts == reference.counts, engine

    def test_profile_engines_bit_identical(self):
        from repro.stats.trials import run_cell_profile

        spec = CellSpec("ring", 96, 2)
        reference = run_cell_profile(spec, 9, seed=3, engine="sequential")
        for engine in ("auto", "fused", "batched"):
            assert np.array_equal(
                run_cell_profile(spec, 9, seed=3, engine=engine), reference
            ), engine

    def test_profile_parallel_matches_serial(self):
        from repro.stats.trials import run_cell_profile

        spec = CellSpec("ring", 64, 2)
        serial = run_cell_profile(spec, 6, seed=1)
        pooled = run_cell_profile(spec, 6, seed=1, n_jobs=2)
        assert np.array_equal(serial, pooled)

    def test_auto_resolution(self):
        from repro.stats.trials import auto_cell_engine

        assert auto_cell_engine(1 << 16, 100, 1) == "fused"
        assert auto_cell_engine(1 << 16, 100, 4) == "process"
        assert auto_cell_engine(1 << 16, 100, None) == "process"
        assert auto_cell_engine(64, 1, 1) == "sequential"
        assert auto_cell_engine(1 << 16, 1, 1) == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_cell(CellSpec("ring", 64, 2), trials=2, engine="warp")

    def test_single_trial_fused_matches(self):
        spec = CellSpec("ring", 64, 2)
        a = run_cell(spec, trials=1, seed=9, engine="fused")
        b = run_cell(spec, trials=1, seed=9, engine="sequential")
        assert a.counts == b.counts
