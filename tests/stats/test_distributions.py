"""Tests for MaxLoadDistribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import MaxLoadDistribution


@pytest.fixture
def dist():
    return MaxLoadDistribution.from_samples([3, 4, 4, 4, 5, 5])


class TestConstruction:
    def test_from_samples_counts(self, dist):
        assert dist.counts == {3: 1, 4: 3, 5: 2}
        assert dist.trials == 6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MaxLoadDistribution(counts={})

    def test_rejects_invalid_entries(self):
        with pytest.raises(ValueError):
            MaxLoadDistribution(counts={-1: 2})
        with pytest.raises(ValueError):
            MaxLoadDistribution(counts={3: 0})


class TestStatistics:
    def test_mode(self, dist):
        assert dist.mode == 4

    def test_mode_tie_takes_lowest(self):
        d = MaxLoadDistribution.from_samples([2, 2, 7, 7])
        assert d.mode == 2

    def test_mean(self, dist):
        assert dist.mean == pytest.approx((3 + 12 + 10) / 6)

    def test_min_max_support(self, dist):
        assert dist.min == 3 and dist.max == 5
        assert dist.support == [3, 4, 5]

    def test_frequency(self, dist):
        assert dist.frequency(4) == pytest.approx(0.5)
        assert dist.frequency(99) == 0.0

    def test_cdf(self, dist):
        assert dist.cdf(2) == 0.0
        assert dist.cdf(4) == pytest.approx(4 / 6)
        assert dist.cdf(5) == 1.0

    def test_quantile(self, dist):
        assert dist.quantile(0.01) == 3
        assert dist.quantile(0.5) == 4
        assert dist.quantile(1.0) == 5

    def test_quantile_domain(self, dist):
        with pytest.raises(ValueError):
            dist.quantile(0.0)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_invariants(self, samples):
        d = MaxLoadDistribution.from_samples(samples)
        assert d.trials == len(samples)
        assert d.min <= d.mode <= d.max
        assert d.min <= d.mean <= d.max
        assert sum(d.frequency(k) for k in d.support) == pytest.approx(1.0)


class TestMergeAndDistance:
    def test_merge_pools_counts(self, dist):
        merged = dist.merge(MaxLoadDistribution.from_samples([4, 6]))
        assert merged.trials == 8
        assert merged.counts[4] == 4 and merged.counts[6] == 1

    def test_total_variation_self_zero(self, dist):
        assert dist.total_variation(dist) == 0.0

    def test_total_variation_disjoint_one(self):
        a = MaxLoadDistribution.from_samples([1])
        b = MaxLoadDistribution.from_samples([2])
        assert a.total_variation(b) == pytest.approx(1.0)

    def test_total_variation_symmetric(self, dist):
        other = MaxLoadDistribution.from_samples([4, 5, 6])
        assert dist.total_variation(other) == pytest.approx(
            other.total_variation(dist)
        )


class TestFormatting:
    def test_paper_style_lines(self, dist):
        lines = dist.lines()
        assert lines[0] == "3 ......  16.7%"
        assert lines[1] == "4 ......  50.0%"

    def test_min_pct_filter(self):
        d = MaxLoadDistribution.from_samples([3] * 999 + [9])
        assert len(d.lines(min_pct=1.0)) == 1

    def test_format_joins(self, dist):
        assert dist.format().count("\n") == 2
