"""The docs gate (tools/check_docs.py) runs clean — and actually bites.

CI runs the same script in its docs job; keeping it in tier 1 means a
broken README link or an undocumented ``repro.sweeps`` public function
fails locally before it fails there.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


class TestRepoIsClean:
    def test_no_broken_markdown_links(self):
        assert check_docs.check_markdown_links(REPO_ROOT) == []

    def test_sweeps_public_api_fully_docstringed(self):
        assert check_docs.check_docstrings(REPO_ROOT) == []

    def test_main_exits_zero(self, capsys):
        assert check_docs.main(["--root", str(REPO_ROOT)]) == 0
        assert "ok" in capsys.readouterr().out


class TestCheckerBites:
    """The gate must detect violations, not just pass on a clean tree."""

    def test_detects_broken_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("see [missing](docs/nope.md)\n")
        problems = check_docs.check_markdown_links(tmp_path)
        assert len(problems) == 1 and "nope.md" in problems[0]

    def test_accepts_existing_link_with_fragment(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text("# A\n")
        (tmp_path / "README.md").write_text("see [a](docs/a.md#section)\n")
        assert check_docs.check_markdown_links(tmp_path) == []

    def test_skips_external_and_anchor_links(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[x](https://example.com) [y](#local) [z](mailto:a@b.c)\n"
        )
        assert check_docs.check_markdown_links(tmp_path) == []

    def test_detects_missing_docstrings(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "sweeps"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "def public():\n    pass\n\n\ndef _private():\n    pass\n"
        )
        problems = check_docs.check_docstrings(tmp_path)
        assert any("missing module docstring" in p for p in problems)
        assert any("function public" in p for p in problems)
        assert not any("_private" in p for p in problems)

    def test_detects_undocumented_public_method(self, tmp_path):
        for package in check_docs.DOCSTRING_PACKAGES:
            (tmp_path / package).mkdir(parents=True)
        pkg = tmp_path / "src" / "repro" / "sweeps"
        (pkg / "mod.py").write_text(
            '"""Mod."""\n\n\nclass Thing:\n    """Doc."""\n\n'
            "    def act(self):\n        pass\n"
        )
        problems = check_docs.check_docstrings(tmp_path)
        assert problems == [
            "src/repro/sweeps/mod.py:7: missing docstring on method Thing.act"
        ]

    def test_main_exits_nonzero_on_problems(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("[bad](gone.md)\n")
        (tmp_path / "src" / "repro" / "sweeps").mkdir(parents=True)
        assert check_docs.main(["--root", str(tmp_path)]) == 1
        assert "problem(s)" in capsys.readouterr().err
