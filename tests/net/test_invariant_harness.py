"""Property harness: randomized churn schedules end in a perfect ring.

Two regimes, two strengths of guarantee:

* **Bounded schedules** (each wave within the ``replication - 1``
  durability envelope, quiescence between waves): successor-ring
  consistency, exact finger reachability, AND zero unresolvable keys
  are all hard assertions, across 20+ seeded random schedules.
* **Storm traces** (mass simultaneous failure via
  :func:`repro.net.run_trace`): a wave may legitimately wipe every
  replica of a key, so only ring/finger exactness is asserted; key
  losses are reported in the payload instead.
"""

import numpy as np
import pytest
from helpers import build_trace
from netutil import run_bounded_schedule, small_config

from repro.net import fast_config, run_trace

HARNESS_SEEDS = list(range(20))


class TestBoundedSchedules:
    @pytest.mark.parametrize("seed", HARNESS_SEEDS)
    def test_quiesced_ring_is_exact_and_lossless(self, seed):
        sim, keys, report = run_bounded_schedule(seed)
        report.raise_if_failed()
        assert report.stats["succ_mismatch"] == 0
        assert report.stats["pred_mismatch"] == 0
        assert report.stats["finger_mismatch"] == 0
        assert report.stats["keys_checked"] == len(keys)
        assert report.stats["keys_lost"] == 0
        assert report.stats["min_replication"] >= 1

    def test_single_kill_restores_full_replication(self):
        sim, keys, report = run_bounded_schedule(101, waves=1)
        report.raise_if_failed()
        av = int(np.count_nonzero(sim.alive))
        assert report.stats["min_replication"] == min(
            sim.cfg.replication, av
        )

    def test_schedule_is_deterministic(self):
        _, _, a = run_bounded_schedule(7)
        _, _, b = run_bounded_schedule(7)
        assert a.stats == b.stats


class TestStormSchedules:
    @pytest.mark.parametrize("seed", range(4))
    def test_storm_trace_quiesces_to_exact_ring(self, seed):
        trace = build_trace("storm", 32, 64, "random", seed)
        result = run_trace(trace, cfg=small_config(), seed=seed,
                           lookups_per_epoch=8, check="ring")
        rep = result.invariants
        assert rep is not None
        assert rep.stats["succ_mismatch"] == 0
        assert rep.stats["pred_mismatch"] == 0
        assert rep.stats["finger_mismatch"] == 0
        assert result.metrics["lookups_issued"] > 0
        # every lookup either resolved or failed fast; none leaked
        assert (result.metrics["lookups_resolved"]
                + result.metrics["failed_lookups"]
                == result.metrics["lookups_issued"])

    def test_fast_mode_storm_smoke(self):
        # the 10^5-peer CI smoke in miniature: no key state, analytic
        # finger refresh, mass simultaneous failure waves
        trace = build_trace("storm", 256, 0, "random", 3)
        result = run_trace(trace, cfg=fast_config(), seed=3,
                           lookups_per_epoch=16, check="ring")
        assert result.invariants.stats["succ_mismatch"] == 0
        assert result.invariants.stats["pred_mismatch"] == 0
        assert result.alive >= 2
        assert result.meta["messages"] > 0


class TestSelfCheckHealing:
    """Concurrent rejoins can lace the ring: crossed successor arcs
    whose predecessor links mutually confirm, which plain
    stabilization provably cannot untangle.  Storm seed 10 reproduces
    one; the periodic self-check is the rule that heals it."""

    def _storm(self, **cfg_overrides):
        trace = build_trace("storm", 32, 64, "random", 10)
        return run_trace(trace, cfg=small_config(**cfg_overrides), seed=10,
                         lookups_per_epoch=8, check="ring", max_ticks=8_000)

    def test_self_check_untangles_laced_ring(self):
        stats = self._storm().invariants.stats
        assert stats["succ_mismatch"] == 0
        assert stats["pred_mismatch"] == 0

    def test_without_self_check_the_lace_persists(self):
        try:
            result = self._storm(self_check_every=0)
        except RuntimeError:
            return  # never quiesced: stuck, which is the point
        stats = result.invariants.stats
        assert stats["succ_mismatch"] + stats["pred_mismatch"] > 0
