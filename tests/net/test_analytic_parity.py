"""Parity: the message-level overlay vs the analytic Chord model.

On a stable ring the simulator must be an *executable restatement* of
:class:`repro.dht.chord.ChordRing`: both are built from the same
identifier set (slot ``i`` = ``i``-th smallest id in both), every
routed lookup must land on the same owner with the same hop count,
the hop mean must sit near the ``~½·log₂ n`` analytic expectation,
and the closest-preceding-finger hop bound must hold exactly.
"""

import math

import numpy as np
import pytest
from netutil import quiesce

from repro.dht.chord import ChordRing
from repro.net import NetConfig, NetSim
from repro.utils.rng import resolve_rng

N_NODES = 64
N_LOOKUPS = 256


@pytest.fixture(scope="module")
def stable_pair():
    # full-width fingers so the routing tables are column-for-column
    # the same structures the analytic model scans
    sim = NetSim.stable(N_NODES, cfg=NetConfig(), seed=42)
    ring = ChordRing(sim.ids)
    return sim, ring


@pytest.fixture(scope="module")
def resolved(stable_pair):
    sim, ring = stable_pair
    rng = resolve_rng(99)
    starts = rng.integers(0, N_NODES, size=N_LOOKUPS)
    keys = rng.integers(0, 1 << 62, size=N_LOOKUPS,
                        dtype=np.int64).astype(np.uint64) * np.uint64(2) \
        + np.uint64(1)
    sim.lookup_batch(starts, keys, tags=np.arange(N_LOOKUPS))
    quiesce(sim)
    return sim, ring, starts, keys


class TestStableRingParity:
    def test_every_lookup_matches_owner_and_hops(self, resolved):
        sim, ring, starts, keys = resolved
        assert len(sim.metrics.by_tag) == N_LOOKUPS
        for tag in range(N_LOOKUPS):
            ref = ring.lookup(int(keys[tag]), start_index=int(starts[tag]))
            owner, hops = sim.metrics.by_tag[tag]
            assert owner == ref.owner_index, f"lookup {tag}: wrong owner"
            assert hops == ref.hops, f"lookup {tag}: hop count diverged"

    def test_mean_hops_near_analytic(self, resolved):
        sim, *_ = resolved
        mean = sim.metrics.hop_stats()["mean"]
        expected = 0.5 * math.log2(N_NODES)
        assert abs(mean - expected) < 1.5

    def test_max_hops_bound_exact(self, resolved):
        # each closest-preceding-finger forwarding at least halves the
        # clockwise distance on a converged table: <= log2 n + O(1)
        sim, ring, starts, keys = resolved
        observed = sim.metrics.hop_stats()["max"]
        analytic = max(
            ring.lookup(int(k), start_index=int(s)).hops
            for s, k in zip(starts, keys)
        )
        assert observed == analytic
        assert observed <= math.ceil(math.log2(N_NODES)) + 2

    def test_no_failures_on_stable_ring(self, resolved):
        sim, *_ = resolved
        assert sim.metrics.lookups_resolved == N_LOOKUPS
        assert sim.metrics.failed_lookups == 0
        assert sim.metrics.nacks == 0

    def test_one_hop_for_successor_owned_key(self):
        sim = NetSim.stable(16, cfg=NetConfig(), seed=7)
        succ = int(sim.succ[3, 0])
        # a key in (id_3, id_succ] resolves at the successor in 1 hop
        key = int(sim.ids[succ]) - 1
        sim.lookup(3, key, tag=0)
        quiesce(sim)
        owner, hops = sim.metrics.by_tag[0]
        assert owner == succ
        assert hops == 1


class TestFromIdsIndexing:
    def test_slot_order_matches_chordring(self):
        ids = [10, 200, 3000, 40_000, 500_000, 6_000_000]
        sim = NetSim.from_ids(ids, cfg=NetConfig())
        ring = ChordRing(np.array(ids, dtype=np.uint64))
        assert np.array_equal(sim.ids, ring.node_ids)
        sim.lookup(0, 201, tag=0)
        quiesce(sim)
        owner, _ = sim.metrics.by_tag[0]
        assert owner == ring.lookup(201, start_index=0).owner_index == 2
