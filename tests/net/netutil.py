"""Local helpers for the net-tier tests.

The suites here drive :class:`repro.net.NetSim` directly (bounded
schedules, parity rings) or through :func:`repro.net.run_trace`
(storms); this module holds the shared knobs: a narrow-finger test
config that keeps quiescence windows small, the settle window that
guarantees a full fix-finger cycle, and the randomized *bounded*
schedule runner behind the invariant harness.
"""

from __future__ import annotations

import numpy as np

from repro.net import NetConfig, NetSim, check_invariants
from repro.utils.rng import resolve_rng, stable_hash_seed


def small_config(**overrides) -> NetConfig:
    """A :class:`NetConfig` sized for sub-second test rings.

    16 finger columns are plenty for two-digit peer counts (lower
    columns would all equal the successor) and shrink the fix-finger
    cycle the quiescence settle window has to cover.
    """
    base = dict(n_fingers=16)
    base.update(overrides)
    return NetConfig(**base)


def settle_ticks(cfg: NetConfig) -> int:
    """Quiet window covering a full fix-finger cycle of every node."""
    if cfg.fix_fingers_per_round > 0:
        cycle = -(-cfg.n_fingers // cfg.fix_fingers_per_round)
        return cfg.period * (cycle + 2)
    return 3 * cfg.period


def quiesce(sim: NetSim, max_ticks: int = 60_000) -> int:
    """Run ``sim`` to quiescence with the finger-aware settle window."""
    return sim.run_until_quiescent(max_ticks=max_ticks,
                                   settle=settle_ticks(sim.cfg))


def random_keys(rng, count: int) -> list[int]:
    """``count`` random odd ring keys (node ids are even, so no clash)."""
    draws = rng.integers(0, 1 << 62, size=count, dtype=np.int64)
    return sorted({int(d) * 2 + 1 for d in draws.tolist()})


def run_bounded_schedule(seed: int, *, n: int = 24, waves: int = 2,
                         n_keys: int = 48):
    """One randomized *bounded* churn schedule; returns (sim, keys, report).

    Bounded means every wave stays inside the protocol's durability
    envelope — at most ``replication - 1`` departures at once, with
    stabilization quiescence between waves — so ring exactness AND
    zero lost keys are hard guarantees, not best-effort outcomes.
    Departures mix graceful leaves and abrupt kills by a seeded coin;
    some corpses rejoin through a random alive bootstrap.
    """
    cfg = small_config()
    sim = NetSim.stable(n, cfg=cfg, seed=stable_hash_seed(seed, "net-harness-ids"))
    rng = resolve_rng(stable_hash_seed(seed, "net-harness"))
    keys = random_keys(rng, n_keys)
    sim.bootstrap_keys(keys)
    dead: list[int] = []
    for _ in range(waves):
        departures = int(rng.integers(1, sim.cfg.replication))
        av = np.flatnonzero(sim.alive)
        victims = rng.choice(av, size=departures, replace=False)
        kills = []
        for v in victims.tolist():
            if rng.random() < 0.5:
                sim.leave(int(v))
            else:
                kills.append(int(v))
        if kills:
            sim.kill_many(kills)
        dead.extend(int(v) for v in victims.tolist())
        quiesce(sim)
        rejoin = [s for s in dead if rng.random() < 0.5]
        for slot in rejoin:
            av = np.flatnonzero(sim.alive)
            sim.join(slot, int(av[rng.integers(0, av.size)]))
            dead.remove(slot)
        if rejoin:
            quiesce(sim)
    quiesce(sim)
    report = check_invariants(sim, keys=keys, fingers="exact")
    return sim, keys, report
