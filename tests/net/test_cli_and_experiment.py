"""The operator surface: ``net smoke`` CLI and the net_churn experiment.

The CI ``net`` job keys off the smoke's exit code, so both the happy
path (0) and the parser/verb plumbing are pinned here, along with the
sweeps-layer experiment driver (cached cells, TextReport rendering)
and its registration in the experiment registry.
"""

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.net_churn import run as net_churn_run
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.run_all import DEFAULT_PLAN
from repro.net.cli import build_parser, main as net_main


class TestSmokeCli:
    def test_small_smoke_exits_clean(self, capsys):
        rc = net_main(["smoke", "--peers", "48", "--keys", "32",
                       "--waves", "1", "--pairs", "4", "--lookups", "8",
                       "--fingers", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "net smoke: 48 peers" in out
        assert "invariants: ok" in out
        assert "digest" in out

    def test_fast_mode_smoke(self, capsys):
        rc = net_main(["smoke", "--peers", "128", "--waves", "1",
                       "--lookups", "8", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "invariants: ok" in out

    def test_check_off_skips_invariants(self, capsys):
        rc = net_main(["smoke", "--peers", "32", "--keys", "8",
                       "--waves", "1", "--pairs", "2", "--lookups", "4",
                       "--fingers", "16", "--check", "off"])
        assert rc == 0
        assert "invariants: skipped" in capsys.readouterr().out

    def test_parser_requires_a_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_dispatch_token(self, capsys):
        rc = experiments_main(["net", "smoke", "--peers", "32", "--keys", "8",
                               "--waves", "1", "--pairs", "2",
                               "--lookups", "4", "--fingers", "16"])
        assert rc == 0
        assert "net smoke: 32 peers" in capsys.readouterr().out


class TestNetChurnExperiment:
    def test_registered(self):
        assert "net_churn" in list_experiments()
        assert get_experiment("net_churn") is net_churn_run
        assert "net_churn" in DEFAULT_PLAN

    def test_report_renders_and_caches(self):
        report = net_churn_run(peers_values=(48,), seed=3)
        text = report.render()
        assert "hops mean" in text
        assert "ring exact" in text
        assert 48 in report.data
        payload = report.data[48]
        assert payload["digest"]
        assert payload["metrics"]["hops"]["count"] > 0
        # second call hits the isolated sweep cache: same payload
        again = net_churn_run(peers_values=(48,), seed=3)
        assert again.data[48] == payload

    def test_rejects_bad_peer_count(self):
        with pytest.raises(ValueError):
            net_churn_run(peers_values=(0,), seed=1)
