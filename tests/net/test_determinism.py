"""Determinism pin: one seed + one trace ⇒ one byte-exact outcome.

The event log is a chained digest over every delivered message batch,
so two runs agree on the digest only if they agreed on *every message
of every tick*.  The pin has three layers: identical repeated runs in
process, identical runs across worker processes regardless of the
``REPRO_NUM_THREADS`` environment, and a golden digest literal that
catches any unintentional protocol change (if a change is intentional,
re-pin the literal and say so in the commit).
"""

import json
import os
import subprocess
import sys

import pytest
from netutil import small_config

from repro.dynamics.events import churn_storm_trace
from repro.net import run_trace

GOLDEN_DIGEST = "a769888b94be7c71119b258ea3cba588"

_REFERENCE_SNIPPET = """
from repro.dynamics.events import churn_storm_trace
from repro.net import NetConfig, run_trace
trace = churn_storm_trace(24, 40, waves=2, leave_fraction=0.25,
                          pairs_per_wave=6, policy="random", seed=11)
result = run_trace(trace, cfg=NetConfig(n_fingers=16), seed=5,
                   lookups_per_epoch=8, check="ring")
print(result.digest)
"""


def _reference_trace():
    return churn_storm_trace(24, 40, waves=2, leave_fraction=0.25,
                             pairs_per_wave=6, policy="random", seed=11)


def _reference_run():
    return run_trace(_reference_trace(), cfg=small_config(), seed=5,
                     lookups_per_epoch=8, check="ring")


class TestDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        a = _reference_run()
        b = _reference_run()
        assert a.digest == b.digest
        assert json.dumps(a.to_payload(), sort_keys=True) \
            == json.dumps(b.to_payload(), sort_keys=True)

    def test_seed_changes_the_event_stream(self):
        a = _reference_run()
        b = run_trace(_reference_trace(), cfg=small_config(), seed=6,
                      lookups_per_epoch=8, check="ring")
        assert a.digest != b.digest

    def test_golden_digest(self):
        assert _reference_run().digest == GOLDEN_DIGEST

    @pytest.mark.parametrize("threads", ["1", "4"])
    def test_digest_independent_of_worker_env(self, threads, tmp_path):
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env = dict(os.environ, REPRO_NUM_THREADS=threads)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", _REFERENCE_SNIPPET],
            capture_output=True, text=True, env=env, cwd=tmp_path, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == GOLDEN_DIGEST
