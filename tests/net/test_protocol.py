"""Unit tests of the protocol surface: handshakes, keys, config, log.

The harness and parity suites check converged outcomes; these pin the
individual moves — join/leave/kill semantics and their error paths,
routed puts/erases with replication, timeout/NACK failure detection,
and the chained event-log digest the determinism pin builds on.
"""

import numpy as np
import pytest
from netutil import quiesce, random_keys, small_config

from repro.net import (
    EventLog,
    MsgBatch,
    MsgKind,
    NetConfig,
    NetSim,
    check_invariants,
    load_skew,
)
from repro.utils.rng import resolve_rng


class TestConfigValidation:
    def test_replication_must_fit_successor_list(self):
        with pytest.raises(ValueError, match="replication"):
            NetConfig(succ_list_len=2, replication=4)

    def test_finger_width_bounds(self):
        with pytest.raises(ValueError, match="n_fingers"):
            NetConfig(n_fingers=0)
        with pytest.raises(ValueError, match="n_fingers"):
            NetConfig(n_fingers=65)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            NetConfig(fix_fingers_per_round=-1)
        with pytest.raises(ValueError):
            NetConfig(self_check_every=-1)

    def test_slot_ids_must_be_sorted_and_distinct(self):
        with pytest.raises(ValueError, match="ascending"):
            NetSim([4, 2, 6])
        with pytest.raises(ValueError, match="distinct"):
            NetSim([2, 2, 6])
        with pytest.raises(ValueError, match="2 slots"):
            NetSim([2])


class TestMembership:
    def test_kill_then_quiesce_splices_the_ring(self):
        sim = NetSim.stable(16, cfg=small_config(), seed=1)
        sim.kill(5)
        quiesce(sim)
        check_invariants(sim, fingers="exact").raise_if_failed()
        assert sim.metrics.deaths == 1
        assert len(sim.metrics.repair_latencies) == 1
        assert sim.metrics.repair_latencies[0] > 0

    def test_graceful_leave_hands_keys_to_successor(self):
        sim = NetSim.stable(16, cfg=small_config(), seed=2)
        keys = random_keys(resolve_rng(3), 32)
        sim.bootstrap_keys(keys)
        victim = 8
        owned = sim._owned_keys(victim)
        succ = int(sim.succ[victim, 0])
        sim.leave(victim)
        quiesce(sim)
        check_invariants(sim, keys=keys, fingers="exact").raise_if_failed()
        assert all(k in sim.store[succ] for k in owned)
        assert sim.metrics.leaves == 1
        # graceful departures never count as repairs
        assert sim.metrics.repair_latencies == []

    def test_rejoin_after_death_restores_membership_and_keys(self):
        sim = NetSim.stable(16, cfg=small_config(), seed=4)
        keys = random_keys(resolve_rng(5), 32)
        sim.bootstrap_keys(keys)
        sim.kill(3)
        quiesce(sim)
        sim.join(3, bootstrap=11)
        quiesce(sim)
        report = check_invariants(sim, keys=keys, fingers="exact")
        report.raise_if_failed()
        assert report.stats["keys_lost"] == 0
        assert sim.metrics.joins == 1

    def test_membership_error_paths(self):
        sim = NetSim.stable(4, cfg=small_config(), seed=6)
        with pytest.raises(ValueError, match="alive"):
            sim.join(0, bootstrap=1)
        sim.kill(0)
        with pytest.raises(ValueError, match="dead"):
            sim.kill(0)
        with pytest.raises(ValueError, match="dead"):
            sim.join(0, bootstrap=0)
        sim.kill(1)
        with pytest.raises(ValueError, match="below 2"):
            sim.kill(2)
        with pytest.raises(ValueError, match="below 2"):
            sim.kill_many([2])
        with pytest.raises(ValueError, match="already dead"):
            sim.kill_many([1, 2])

    def test_wave_kill_within_replication_bound_loses_nothing(self):
        sim = NetSim.stable(24, cfg=small_config(), seed=7)
        keys = random_keys(resolve_rng(8), 48)
        sim.bootstrap_keys(keys)
        sim.kill_many([4, 5])  # replication 3 tolerates 2 at once
        quiesce(sim)
        report = check_invariants(sim, keys=keys, fingers="exact")
        report.raise_if_failed()
        assert report.stats["keys_lost"] == 0
        assert len(sim.metrics.repair_latencies) == 2


class TestKeyTraffic:
    def test_routed_put_replicates_and_erase_removes(self):
        sim = NetSim.stable(16, cfg=small_config(), seed=9)
        key = 12345
        sim.put_key(2, key)
        quiesce(sim)
        holders = [s for s in range(sim.S) if key in sim.store[s]]
        assert len(holders) == sim.cfg.replication
        sim.erase_key(9, key)
        quiesce(sim)
        assert all(key not in sim.store[s] for s in range(sim.S))

    def test_key_apis_require_with_keys(self):
        sim = NetSim.stable(8, cfg=small_config(with_keys=False), seed=10)
        with pytest.raises(ValueError, match="with_keys"):
            sim.put_key(0, 1)
        with pytest.raises(ValueError, match="with_keys"):
            sim.erase_key(0, 1)
        with pytest.raises(ValueError, match="with_keys"):
            sim.bootstrap_keys([1])
        with pytest.raises(ValueError, match="with_keys"):
            check_invariants(sim, keys=[1])
        assert load_skew(sim) == {"total": 0, "mean": 0.0, "max": 0,
                                  "skew": 0.0}

    def test_lookup_requires_alive_start(self):
        sim = NetSim.stable(8, cfg=small_config(), seed=11)
        sim.kill(2)
        with pytest.raises(ValueError, match="alive"):
            sim.lookup(2, 7)

    def test_load_skew_counts_replicas(self):
        sim = NetSim.stable(8, cfg=small_config(), seed=12)
        keys = random_keys(resolve_rng(13), 16)
        sim.bootstrap_keys(keys)
        skew = load_skew(sim)
        assert skew["total"] == len(keys) * sim.cfg.replication
        assert skew["skew"] >= 1.0


class TestFailureDetection:
    def test_lookup_through_corpse_times_out_and_reroutes(self):
        sim = NetSim.stable(32, cfg=small_config(), seed=14)
        # kill without letting anyone stabilize, then immediately route
        # traffic: forwarding must hit the corpse, NACK, and reroute
        sim.kill_many([10, 11])
        rng = resolve_rng(15)
        keys = np.asarray(random_keys(rng, 16), dtype=np.uint64)
        starts = np.array(
            [s for s in range(32) if sim.alive[s]][: keys.size]
        )
        sim.lookup_batch(starts, keys[: starts.size])
        quiesce(sim)
        assert sim.metrics.lookups_resolved + sim.metrics.failed_lookups \
            == sim.metrics.lookups_issued
        # the corpses were discovered by timeout, not by announcement
        assert sim.metrics.timeouts > 0
        check_invariants(sim, fingers="exact").raise_if_failed()


class TestEventLog:
    def test_digest_chains_over_every_batch(self):
        log = EventLog()
        empty = log.digest()
        batch = MsgBatch(kind=MsgKind.PING,
                         src=np.array([0]), dst=np.array([1]))
        log.record(0, batch)
        one = log.digest()
        log.record(1, batch)
        assert len({empty, one, log.digest()}) == 3
        assert log.total == 2
        assert log.counts[MsgKind.PING.name] == 2

    def test_identical_histories_share_a_digest(self):
        a, b = EventLog(), EventLog()
        batch = MsgBatch(kind=MsgKind.PING,
                         src=np.array([3]), dst=np.array([4]))
        a.record(5, batch)
        b.record(5, batch)
        assert a.digest() == b.digest()
        b2 = MsgBatch(kind=MsgKind.PING, src=np.array([3]),
                      dst=np.array([5]))
        b.record(6, b2)
        a.record(6, batch)
        assert a.digest() != b.digest()
