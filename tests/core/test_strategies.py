"""Tests for tie-breaking kernels: scalar/vector agreement, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import (
    TieBreak,
    decide_row_scalar,
    decide_rows,
    strategy_needs_measures,
)


class TestTieBreakEnum:
    def test_coerce_string(self):
        assert TieBreak.coerce("random") is TieBreak.RANDOM
        assert TieBreak.coerce("SMALLER") is TieBreak.SMALLER

    def test_coerce_member(self):
        assert TieBreak.coerce(TieBreak.FIRST) is TieBreak.FIRST

    def test_coerce_invalid(self):
        with pytest.raises(ValueError, match="unknown tie-break"):
            TieBreak.coerce("leftish")

    def test_needs_measures(self):
        assert strategy_needs_measures(TieBreak.SMALLER)
        assert strategy_needs_measures(TieBreak.LARGER)
        assert not strategy_needs_measures(TieBreak.RANDOM)
        assert not strategy_needs_measures(TieBreak.FIRST)


class TestDecideRows:
    def test_picks_min_load(self):
        loads = np.array([[3, 1, 2]])
        j = decide_rows(loads, None, np.array([0.5]), TieBreak.RANDOM)
        assert j.tolist() == [1]

    def test_first_takes_lowest_index(self):
        loads = np.array([[2, 1, 1]])
        j = decide_rows(loads, None, np.array([0.99]), TieBreak.FIRST)
        assert j.tolist() == [1]

    def test_random_uses_uniform(self):
        loads = np.array([[1, 1], [1, 1]])
        j = decide_rows(loads, None, np.array([0.1, 0.9]), TieBreak.RANDOM)
        assert j.tolist() == [0, 1]

    def test_smaller_picks_smaller_measure(self):
        loads = np.array([[1, 1]])
        meas = np.array([[0.9, 0.1]])
        j = decide_rows(loads, meas, np.array([0.0]), TieBreak.SMALLER)
        assert j.tolist() == [1]

    def test_larger_picks_larger_measure(self):
        loads = np.array([[1, 1]])
        meas = np.array([[0.9, 0.1]])
        j = decide_rows(loads, meas, np.array([0.0]), TieBreak.LARGER)
        assert j.tolist() == [0]

    def test_measure_only_matters_among_tied(self):
        """A huge arc with higher load must not be chosen."""
        loads = np.array([[0, 1]])
        meas = np.array([[0.01, 0.99]])
        j = decide_rows(loads, meas, np.array([0.0]), TieBreak.LARGER)
        assert j.tolist() == [0]

    def test_measure_ties_go_left(self):
        loads = np.array([[1, 1]])
        meas = np.array([[0.5, 0.5]])
        assert decide_rows(loads, meas, np.array([0.0]), TieBreak.SMALLER) == [0]
        assert decide_rows(loads, meas, np.array([0.0]), TieBreak.LARGER) == [0]

    def test_missing_measures_raise(self):
        with pytest.raises(ValueError, match="requires candidate measures"):
            decide_rows(np.array([[1, 1]]), None, np.array([0.0]), TieBreak.SMALLER)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            decide_rows(
                np.array([[1, 1]]),
                np.array([[0.5]]),
                np.array([0.0]),
                TieBreak.SMALLER,
            )

    def test_rejects_1d_loads(self):
        with pytest.raises(ValueError, match="2-D"):
            decide_rows(np.array([1, 2]), None, np.array([0.0]), TieBreak.RANDOM)


@st.composite
def _row_case(draw):
    d = draw(st.integers(2, 5))
    loads = draw(st.lists(st.integers(0, 4), min_size=d, max_size=d))
    measures = draw(
        st.lists(
            st.floats(0.001, 1.0, allow_nan=False), min_size=d, max_size=d
        )
    )
    u = draw(st.floats(0.0, 0.999999))
    strategy = draw(st.sampled_from(list(TieBreak)))
    return loads, measures, u, strategy


class TestScalarVectorAgreement:
    @given(_row_case())
    @settings(max_examples=300, deadline=None)
    def test_kernels_agree(self, case):
        """The scalar and vectorized kernels must be the same function."""
        loads, measures, u, strategy = case
        vec = decide_rows(
            np.array([loads]),
            np.array([measures]),
            np.array([u]),
            strategy,
        )
        scalar = decide_row_scalar(loads, measures, u, strategy)
        assert int(vec[0]) == scalar

    @given(_row_case())
    @settings(max_examples=200, deadline=None)
    def test_choice_is_always_minimum_load(self, case):
        """Whatever the strategy, the chosen bin has minimal load."""
        loads, measures, u, strategy = case
        j = decide_row_scalar(loads, measures, u, strategy)
        assert loads[j] == min(loads)
