"""Tests for the placement engines: prefixes, blocks, accounting."""

import numpy as np
import pytest

from repro.core.engine import (
    DEFAULT_RNG_BLOCK,
    auto_batch_size,
    auto_engine,
    choice_blocks,
    conflict_free_prefix,
    run_batched,
    run_sequential,
)
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.utils.rng import resolve_rng


class TestConflictFreePrefix:
    def test_empty(self):
        assert conflict_free_prefix(np.empty((0, 2), dtype=np.int64)) == 0

    def test_all_disjoint(self):
        c = np.array([[0, 1], [2, 3], [4, 5]])
        assert conflict_free_prefix(c) == 3

    def test_conflict_at_second_row(self):
        c = np.array([[0, 1], [1, 2], [3, 4]])
        assert conflict_free_prefix(c) == 1

    def test_conflict_later(self):
        c = np.array([[0, 1], [2, 3], [0, 4]])
        assert conflict_free_prefix(c) == 2

    def test_within_row_duplicate_is_not_conflict(self):
        c = np.array([[5, 5], [1, 2]])
        assert conflict_free_prefix(c) == 2

    def test_first_row_never_conflicts(self):
        c = np.array([[7, 7]])
        assert conflict_free_prefix(c) == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            conflict_free_prefix(np.array([1, 2, 3]))

    def test_brute_force_agreement(self, rng):
        """Compare against a direct O(B^2) computation."""
        for _ in range(50):
            b, d = int(rng.integers(1, 12)), int(rng.integers(1, 4))
            c = rng.integers(0, 8, size=(b, d))
            seen: set[int] = set()
            expected = b
            for row in range(b):
                if any(int(x) in seen for x in c[row]):
                    expected = row
                    break
                seen.update(int(x) for x in c[row])
            assert conflict_free_prefix(c) == expected, c


class TestChoiceBlocks:
    def test_total_rows(self, small_ring, rng):
        blocks = list(choice_blocks(small_ring, rng, 10, 2, rng_block=4))
        assert [b[0].shape[0] for b in blocks] == [4, 4, 2]
        assert all(b[1].shape == (b[0].shape[0],) for b in blocks)

    def test_zero_balls(self, small_ring, rng):
        assert list(choice_blocks(small_ring, rng, 0, 2)) == []

    def test_block_size_does_not_change_content_order(self, small_ring):
        """Concatenated blocks must be identical for any rng_block -- the
        invariant that makes engine results independent of batching."""
        a = np.concatenate(
            [
                b
                for b, _ in choice_blocks(
                    small_ring, resolve_rng(3), 100, 2, rng_block=100
                )
            ]
        )
        # NOTE: different rng_block *does* change the draw interleaving
        # (candidates vs tiebreaks), so we only require same-block-size
        # determinism here; cross-engine equality is tested at fixed
        # rng_block in test_engine_equivalence.
        b = np.concatenate(
            [
                blk
                for blk, _ in choice_blocks(
                    small_ring, resolve_rng(3), 100, 2, rng_block=100
                )
            ]
        )
        assert np.array_equal(a, b)

    def test_invalid_rng_block(self, small_ring, rng):
        with pytest.raises(ValueError):
            list(choice_blocks(small_ring, rng, 10, 2, rng_block=0))


class TestAutoTuning:
    def test_auto_engine_thresholds(self):
        assert auto_engine(128) == "sequential"
        assert auto_engine(1 << 16) == "batched"

    def test_auto_batch_size_bounds(self):
        assert 32 <= auto_batch_size(1, 1) <= 8192
        assert 32 <= auto_batch_size(1 << 24, 4) <= 8192

    def test_auto_batch_size_shrinks_with_d(self):
        assert auto_batch_size(1 << 16, 4) <= auto_batch_size(1 << 16, 1)


class TestEngineAccounting:
    @pytest.mark.parametrize("runner", [run_sequential, run_batched])
    def test_loads_sum_to_m(self, small_ring, runner):
        loads, _ = runner(small_ring, 37, 2, TieBreak.RANDOM, resolve_rng(1))
        assert loads.sum() == 37
        assert loads.shape == (small_ring.n,)

    @pytest.mark.parametrize("runner", [run_sequential, run_batched])
    def test_zero_balls(self, small_ring, runner):
        loads, heights = runner(
            small_ring, 0, 2, TieBreak.RANDOM, resolve_rng(1), record_heights=True
        )
        assert loads.sum() == 0
        assert heights.size == 0

    @pytest.mark.parametrize("runner", [run_sequential, run_batched])
    def test_heights_consistent_with_loads(self, small_ring, runner):
        loads, heights = runner(
            small_ring, 200, 2, TieBreak.RANDOM, resolve_rng(5), record_heights=True
        )
        assert heights.shape == (200,)
        assert heights.min() >= 1
        assert heights.max() == loads.max()
        # number of balls at height exactly h == number of bins with load >= h
        for h in range(1, heights.max() + 1):
            assert (heights == h).sum() == (loads >= h).sum()

    def test_single_bin_everything_lands_there(self):
        ring = RingSpace([0.5])
        loads, _ = run_batched(ring, 25, 3, TieBreak.RANDOM, resolve_rng(0))
        assert loads.tolist() == [25]

    def test_d_one_is_pure_hashing(self, small_ring):
        """With d=1 the 'least loaded' choice is the only choice."""
        loads, _ = run_sequential(small_ring, 500, 1, TieBreak.RANDOM, resolve_rng(2))
        rng2 = resolve_rng(2)
        bins = small_ring.sample_choice_bins(rng2, 500, 1)
        expected = np.bincount(bins[:, 0], minlength=small_ring.n)
        assert np.array_equal(loads, expected)

    def test_invalid_args(self, small_ring):
        with pytest.raises(ValueError):
            run_sequential(small_ring, -1, 2, TieBreak.RANDOM, resolve_rng(0))
        with pytest.raises(ValueError):
            run_batched(small_ring, 5, 0, TieBreak.RANDOM, resolve_rng(0))
        with pytest.raises(ValueError):
            run_batched(
                small_ring, 5, 2, TieBreak.RANDOM, resolve_rng(0), batch_size=0
            )

    def test_default_rng_block_constant(self):
        """Changing this constant silently breaks stored-seed results."""
        assert DEFAULT_RNG_BLOCK == 1 << 16
