"""Tests for RingSpace: arc ownership and arc-length structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import RingSpace


class TestConstruction:
    def test_sorts_positions(self):
        ring = RingSpace([0.9, 0.1, 0.5])
        assert np.all(np.diff(ring.positions) > 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            RingSpace([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            RingSpace([0.5, 1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            RingSpace([0.3, 0.3])

    def test_random_is_deterministic(self):
        a = RingSpace.random(32, seed=1)
        b = RingSpace.random(32, seed=1)
        assert np.array_equal(a.positions, b.positions)

    def test_positions_read_only(self):
        ring = RingSpace.random(8, seed=0)
        with pytest.raises(ValueError):
            ring.positions[0] = 0.5


class TestAssign:
    def test_clockwise_successor(self):
        ring = RingSpace([0.2, 0.6])
        # x in (0.6, 1) u [0, 0.2] -> server at 0.2 (index 0)
        assert ring.assign(np.array([0.7, 0.1])).tolist() == [0, 0]
        # x in (0.2, 0.6] -> server at 0.6 (index 1)
        assert ring.assign(np.array([0.3, 0.6])).tolist() == [1, 1]

    def test_exact_server_position_owned_by_server(self):
        ring = RingSpace([0.2, 0.6])
        assert ring.assign(np.array([0.2])).tolist() == [0]

    def test_wraparound(self):
        ring = RingSpace([0.5])
        assert ring.assign(np.array([0.9, 0.0])).tolist() == [0, 0]

    def test_rejects_out_of_range_points(self):
        ring = RingSpace([0.5])
        with pytest.raises(ValueError):
            ring.assign(np.array([1.0]))

    def test_vectorized_matches_scalar(self, small_ring):
        pts = np.linspace(0, 0.999, 57)
        batch = small_ring.assign(pts)
        singles = [int(small_ring.assign(np.array([p]))[0]) for p in pts]
        assert batch.tolist() == singles


class TestRegionMeasures:
    def test_sum_to_one(self, small_ring):
        assert small_ring.region_measures().sum() == pytest.approx(1.0)

    def test_single_server_owns_everything(self):
        assert RingSpace([0.3]).region_measures().tolist() == [1.0]

    def test_two_servers(self):
        ring = RingSpace([0.2, 0.6])
        # bin 0 owns (0.6, 1)+(0, 0.2] = 0.6; bin 1 owns (0.2, 0.6] = 0.4
        assert ring.region_measures().tolist() == pytest.approx([0.6, 0.4])

    def test_measures_match_assignment_frequencies(self, small_ring, rng):
        """The measure of a bin IS its probability of being probed."""
        samples = rng.random(200_000)
        owners = small_ring.assign(samples)
        freq = np.bincount(owners, minlength=small_ring.n) / samples.size
        assert np.abs(freq - small_ring.region_measures()).max() < 5e-3

    @given(st.integers(2, 50), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_measures_always_valid(self, n, seed):
        lengths = RingSpace.random(n, seed=seed).region_measures()
        assert lengths.shape == (n,)
        assert np.all(lengths > 0)
        assert lengths.sum() == pytest.approx(1.0)


class TestArcQueries:
    def test_arcs_at_least_zero_threshold(self, small_ring):
        assert small_ring.arcs_at_least(0.0) == small_ring.n

    def test_arcs_at_least_monotone(self, small_ring):
        counts = [small_ring.arcs_at_least(c) for c in (0.5, 1, 2, 4, 8)]
        assert counts == sorted(counts, reverse=True)

    def test_arcs_at_least_rejects_negative(self, small_ring):
        with pytest.raises(ValueError):
            small_ring.arcs_at_least(-1)

    def test_longest_arcs_total_full(self, small_ring):
        assert small_ring.longest_arcs_total(small_ring.n) == pytest.approx(1.0)

    def test_longest_arcs_total_monotone(self, small_ring):
        totals = [small_ring.longest_arcs_total(a) for a in (1, 2, 4, 8, 16)]
        assert totals == sorted(totals)

    def test_longest_arcs_total_matches_sort(self, small_ring):
        lengths = np.sort(small_ring.region_measures())[::-1]
        for a in (1, 3, 10):
            assert small_ring.longest_arcs_total(a) == pytest.approx(
                lengths[:a].sum()
            )

    def test_longest_arcs_rejects_excess(self, small_ring):
        with pytest.raises(ValueError, match="exceeds"):
            small_ring.longest_arcs_total(small_ring.n + 1)


class TestBucketedAssign:
    """The bucket-table fast path must be indistinguishable from binary
    search — the engines' bit-identity doctrine extends to geometry."""

    @given(st.integers(1024, 5000), st.integers(0, 2**16), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_matches_searchsorted(self, n, space_seed, query_seed):
        ring = RingSpace.random(n, seed=space_seed)
        pts = np.random.default_rng(query_seed).random(RingSpace._LUT_MIN_QUERIES)
        expected = np.searchsorted(ring.positions, pts, side="left") % n
        assert np.array_equal(ring.assign(pts), expected)

    def test_adversarial_boundary_points(self):
        """Exact server positions and their float neighbors."""
        ring = RingSpace.random(4096, seed=7)
        pos = ring.positions
        pts = np.concatenate([
            pos, np.nextafter(pos, 0), np.nextafter(pos, 1),
            np.array([0.0, np.nextafter(1.0, 0)]),
        ])
        expected = np.searchsorted(pos, pts, side="left") % ring.n
        assert np.array_equal(ring.assign(pts), expected)

    def test_small_queries_use_searchsorted_and_agree(self):
        """Below the gate both paths run; they must agree anyway."""
        ring = RingSpace.random(2048, seed=3)
        pts = np.random.default_rng(0).random(64)
        small = ring.assign(pts)
        assert np.array_equal(small, ring._assign_bucketed(pts) % ring.n)

    def test_table_is_lazy_and_cached(self):
        ring = RingSpace.random(2048, seed=1)
        assert ring._lut is None
        ring.assign(np.random.default_rng(0).random(RingSpace._LUT_MIN_QUERIES))
        assert ring._lut is not None
        nbuckets, table, pos_ext = ring._lut
        assert nbuckets == 2048 and table[0] == 0 and table[-1] == ring.n
        assert pos_ext[-1] == np.inf
