"""Property tests: the two engines are bit-for-bit the same process.

This is the load-bearing guarantee of the whole simulation layer
(DESIGN.md decision 1): the vectorized engine may only reorganize
arithmetic, never change results.  We drive both engines over random
shapes, strategies, spaces and batch sizes and require exact equality
of load vectors *and* per-ball heights.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import run_batched, run_sequential
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.baselines.uniform import UniformSpace
from repro.utils.rng import resolve_rng


def _space(kind: str, n: int, seed: int):
    if kind == "ring":
        return RingSpace.random(n, seed=seed)
    if kind == "torus":
        return TorusSpace.random(n, dim=2, seed=seed)
    return UniformSpace(n)


@st.composite
def _scenario(draw):
    kind = draw(st.sampled_from(["ring", "torus", "uniform"]))
    n = draw(st.integers(1, 400))
    m = draw(st.integers(0, 500))
    d = draw(st.integers(1, 4))
    strategy = draw(st.sampled_from(list(TieBreak)))
    partitioned = draw(st.booleans())
    batch_size = draw(st.sampled_from([1, 2, 7, 64, 1024]))
    space_seed = draw(st.integers(0, 2**16))
    ball_seed = draw(st.integers(0, 2**16))
    return kind, n, m, d, strategy, partitioned, batch_size, space_seed, ball_seed


class TestEngineEquivalence:
    @given(_scenario())
    @settings(max_examples=60, deadline=None)
    def test_bitwise_identical(self, scenario):
        (kind, n, m, d, strategy, partitioned, batch_size,
         space_seed, ball_seed) = scenario
        space = _space(kind, n, space_seed)
        seq_loads, seq_heights = run_sequential(
            space, m, d, strategy, resolve_rng(ball_seed),
            partitioned=partitioned, record_heights=True,
        )
        bat_loads, bat_heights = run_batched(
            space, m, d, strategy, resolve_rng(ball_seed),
            partitioned=partitioned, batch_size=batch_size,
            record_heights=True,
        )
        assert np.array_equal(seq_loads, bat_loads)
        assert np.array_equal(seq_heights, bat_heights)

    def test_batch_size_one_matches(self, small_ring):
        """batch_size=1 degenerates to per-ball stepping."""
        a, _ = run_batched(
            small_ring, 300, 2, TieBreak.RANDOM, resolve_rng(1), batch_size=1
        )
        b, _ = run_sequential(small_ring, 300, 2, TieBreak.RANDOM, resolve_rng(1))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("strategy", list(TieBreak))
    def test_medium_scale_all_strategies(self, medium_ring, strategy):
        m = medium_ring.n
        a, _ = run_sequential(medium_ring, m, 2, strategy, resolve_rng(9))
        b, _ = run_batched(medium_ring, m, 2, strategy, resolve_rng(9))
        assert np.array_equal(a, b)

    def test_rng_block_boundary_crossing(self, small_ring):
        """Placements spanning several RNG blocks stay identical."""
        m = 5 * 1000 + 37
        a, _ = run_sequential(
            small_ring, m, 2, TieBreak.RANDOM, resolve_rng(4), rng_block=1000
        )
        b, _ = run_batched(
            small_ring, m, 2, TieBreak.RANDOM, resolve_rng(4), rng_block=1000
        )
        assert np.array_equal(a, b)

    def test_same_seed_same_result_repeated(self, medium_ring):
        runs = [
            run_batched(medium_ring, 2000, 3, TieBreak.RANDOM, resolve_rng(7))[0]
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self, medium_ring):
        a, _ = run_batched(medium_ring, 4096, 2, TieBreak.RANDOM, resolve_rng(1))
        b, _ = run_batched(medium_ring, 4096, 2, TieBreak.RANDOM, resolve_rng(2))
        assert not np.array_equal(a, b)
