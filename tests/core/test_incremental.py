"""IncrementalState: O(d) single-op updates, growth, snapshots."""

import numpy as np
import pytest

from repro.core.incremental import KIND_DELETE, KIND_INSERT, IncrementalState
from repro.core.ring import RingSpace


def _state(n=16, d=2, seed=0, **kwargs):
    space = RingSpace.random(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return space, rng, IncrementalState(
        space, d, "random", aux_rng=rng.spawn(1)[0], **kwargs
    )


def _draw(space, rng, count, d=2):
    cands = space.sample_choice_bins(rng, count, d)
    us = rng.random(count)
    return cands, us


class TestSingleOps:
    def test_insert_tracks_loads(self):
        space, rng, st = _state()
        cands, us = _draw(space, rng, 10)
        bins = [st.insert(i, cands[i], float(us[i])) for i in range(10)]
        assert st.occupancy == 10
        assert st.loads.sum() == 10
        for i, b in enumerate(bins):
            assert st.lookup(i) == b
            assert b in cands[i]

    def test_delete_vacates(self):
        space, rng, st = _state()
        cands, us = _draw(space, rng, 3)
        placed = st.insert(0, cands[0], float(us[0]))
        assert st.delete(0) == placed
        assert st.occupancy == 0
        assert st.lookup(0) == -1

    def test_delete_unplaced_raises(self):
        _, _, st = _state()
        with pytest.raises(RuntimeError):
            st.delete(5)

    def test_lookup_out_of_range(self):
        _, _, st = _state()
        assert st.lookup(999) == -1

    def test_ball_index_grows(self):
        space, rng, st = _state()  # expect_balls defaults to 0
        cands, us = _draw(space, rng, 100)
        for i in range(100):
            st.insert(i, cands[i], float(us[i]))
        assert st.occupancy == 100

    def test_churn_needs_aux_rng(self):
        space = RingSpace.random(16, seed=0)
        st = IncrementalState(space, 2, "random")
        rng = np.random.default_rng(1)
        cands, us = _draw(space, rng, 5)
        for i in range(5):
            st.insert(i, cands[i], float(us[i]))
        victim = int(np.flatnonzero(st.loads > 0)[0])
        with pytest.raises(RuntimeError, match="aux_rng"):
            st.bin_leave(victim)


class TestApplyWindow:
    @pytest.mark.parametrize("rows", [1, 8, 16, 17, 200])
    def test_window_matches_scalar(self, rows):
        # below/above SMALL_WINDOW_CUTOFF both equal the scalar loop
        space, rng, st1 = _state(seed=3)
        cands, us = _draw(space, rng, rows)
        kinds = np.full(rows, KIND_INSERT, dtype=np.int8)
        kinds[1::4] = KIND_DELETE
        kinds[0] = KIND_INSERT
        args = np.empty(rows, dtype=np.int64)
        nxt = 0
        live = []
        for i in range(rows):
            if kinds[i] == KIND_INSERT or not live:
                kinds[i] = KIND_INSERT
                args[i] = nxt
                live.append(nxt)
                nxt += 1
            else:
                args[i] = live.pop(0)
        # scalar reference
        for i in range(rows):
            if kinds[i] == KIND_INSERT:
                st1.insert(args[i], cands[args[i]], float(us[args[i]]))
            else:
                st1.delete(args[i])
        space2, rng2, st2 = _state(seed=3)
        st2.apply_window(kinds, args, 0, rows, cands, us, batch_size=64)
        assert np.array_equal(st1.loads, st2.loads)
        assert np.array_equal(st1.live_loads(), st2.live_loads())

    def test_partition_invariance(self):
        space, rng, ref = _state(seed=4)
        cands, us = _draw(space, rng, 50)
        kinds = np.full(50, KIND_INSERT, dtype=np.int8)
        args = np.arange(50, dtype=np.int64)
        ref.apply_window(kinds, args, 0, 50, cands, us, batch_size=64)
        for cut in (1, 13, 49):
            _, _, st = _state(seed=4)
            st.apply_window(kinds, args, 0, cut, cands, us, batch_size=64)
            st.apply_window(kinds, args, cut, 50, cands, us, batch_size=64)
            assert np.array_equal(ref.loads, st.loads)


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        space, rng, st = _state(seed=5)
        cands, us = _draw(space, rng, 20)
        for i in range(20):
            st.insert(i, cands[i], float(us[i]))
        st.delete(3)
        path = tmp_path / "core.npz"
        st.save(path)
        restored, extra = IncrementalState.load(path)
        assert np.array_equal(restored.loads, st.loads)
        assert np.array_equal(restored.ball_bin[:20], st.ball_bin[:20])
        assert restored.inserts_done == 20 and restored.deletes_done == 1
        assert restored.strategy == st.strategy
        assert extra["meta"] == {}

    def test_restored_churn_rng_continues_identically(self, tmp_path):
        space, rng, st = _state(seed=6)
        cands, us = _draw(space, rng, 30)
        for i in range(30):
            st.insert(i, cands[i], float(us[i]))
        path = tmp_path / "core.npz"
        st.save(path)
        restored, _ = IncrementalState.load(path)
        victim = int(np.flatnonzero(st.loads > 0)[0])
        st.bin_leave(victim)
        restored.bin_leave(victim)
        assert np.array_equal(st.loads, restored.loads)
        assert np.array_equal(st.ball_bin[:30], restored.ball_bin[:30])

    def test_core_prefix_reserved(self, tmp_path):
        _, _, st = _state()
        with pytest.raises(ValueError, match="core_"):
            st.save(tmp_path / "x.npz",
                    extra_arrays={"core_evil": np.zeros(1)})

    def test_space_mismatch_rejected(self, tmp_path):
        space, rng, st = _state(n=16)
        st.save(tmp_path / "x.npz")
        with pytest.raises(ValueError):
            IncrementalState.load(tmp_path / "x.npz",
                                  space=RingSpace.random(8, seed=0))
