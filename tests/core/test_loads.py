"""Tests for load statistics: histograms, nu profiles, heights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loads import (
    height_counts_from_loads,
    load_histogram,
    load_imbalance,
    max_load,
    nu_profile,
)


class TestLoadHistogram:
    def test_basic(self):
        assert load_histogram([0, 2, 2, 1]).tolist() == [1, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            load_histogram([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            load_histogram([1, -1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            load_histogram(np.zeros((2, 2)))


class TestNuProfile:
    def test_basic(self):
        assert nu_profile([0, 2, 2, 1]).tolist() == [4, 3, 2]

    def test_nu0_is_n(self):
        assert nu_profile([5, 0, 1])[0] == 3

    def test_monotone_nonincreasing(self):
        nu = nu_profile([3, 1, 4, 1, 5])
        assert all(nu[i] >= nu[i + 1] for i in range(len(nu) - 1))

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_matches_direct_count(self, loads):
        nu = nu_profile(loads)
        arr = np.array(loads)
        for i in range(len(nu)):
            assert nu[i] == (arr >= i).sum()


class TestHeightCounts:
    def test_basic(self):
        assert height_counts_from_loads([0, 2, 2, 1]).tolist() == [0, 3, 2]

    def test_index_zero_always_zero(self):
        assert height_counts_from_loads([4])[0] == 0

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_heights_sum_to_balls(self, loads):
        """Every ball has exactly one height."""
        counts = height_counts_from_loads(loads)
        assert counts.sum() == sum(loads)


class TestMaxLoadAndImbalance:
    def test_max_load(self):
        assert max_load([1, 5, 2]) == 5

    def test_imbalance_balanced(self):
        assert load_imbalance([2, 2, 2]) == pytest.approx(1.0)

    def test_imbalance_zero_loads(self):
        assert load_imbalance([0, 0]) == 0.0

    def test_imbalance_value(self):
        assert load_imbalance([0, 4]) == pytest.approx(2.0)
