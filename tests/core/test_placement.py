"""Tests for the place_balls facade and PlacementResult."""

import numpy as np
import pytest

from repro.core import RingSpace, TieBreak, place_balls
from repro.core.placement import PlacementResult


class TestPlaceBalls:
    def test_result_fields(self, small_ring):
        res = place_balls(small_ring, 100, 2, seed=1)
        assert res.m == 100 and res.d == 2
        assert res.n == small_ring.n
        assert res.loads.sum() == 100
        assert res.strategy is TieBreak.RANDOM

    def test_engine_auto_picks_by_size(self, small_ring, medium_ring):
        assert place_balls(small_ring, 10, 2, seed=0).engine == "sequential"
        assert place_balls(medium_ring, 10, 2, seed=0).engine == "batched"

    def test_explicit_engines_agree(self, medium_ring):
        a = place_balls(medium_ring, 1000, 2, seed=3, engine="sequential")
        b = place_balls(medium_ring, 1000, 2, seed=3, engine="batched")
        assert np.array_equal(a.loads, b.loads)

    def test_invalid_engine(self, small_ring):
        with pytest.raises(ValueError, match="engine must be"):
            place_balls(small_ring, 10, 2, engine="warp")

    def test_strategy_string_coerced(self, small_ring):
        res = place_balls(small_ring, 10, 2, strategy="smaller", seed=0)
        assert res.strategy is TieBreak.SMALLER

    def test_record_heights(self, small_ring):
        res = place_balls(small_ring, 50, 2, seed=1, record_heights=True)
        assert res.heights is not None and res.heights.shape == (50,)

    def test_heights_none_by_default(self, small_ring):
        assert place_balls(small_ring, 50, 2, seed=1).heights is None

    def test_more_choices_never_hurt_much(self, medium_ring):
        """Statistical sanity: d=2 beats d=1 by a wide margin at n=4096."""
        d1 = place_balls(medium_ring, medium_ring.n, 1, seed=5).max_load
        d2 = place_balls(medium_ring, medium_ring.n, 2, seed=5).max_load
        assert d2 < d1

    def test_seed_reproducibility(self, small_ring):
        a = place_balls(small_ring, 64, 2, seed=42)
        b = place_balls(small_ring, 64, 2, seed=42)
        assert np.array_equal(a.loads, b.loads)


class TestPlacementResult:
    def test_accounting_check(self):
        with pytest.raises(ValueError, match="accounting"):
            PlacementResult(
                loads=np.array([1, 1]), m=3, d=2, strategy=TieBreak.RANDOM
            )

    def test_statistics(self, small_ring):
        res = place_balls(small_ring, 128, 2, seed=2)
        hist = res.load_histogram()
        nu = res.nu_profile()
        assert hist.sum() == small_ring.n
        assert nu[0] == small_ring.n
        assert res.max_load == len(hist) - 1
        assert res.imbalance == pytest.approx(res.max_load / (128 / small_ring.n))

    def test_height_counts_match_nu(self, small_ring):
        res = place_balls(small_ring, 128, 2, seed=2)
        nu = res.nu_profile()
        hc = res.height_counts()
        assert hc[0] == 0
        assert np.array_equal(hc[1:], nu[1:])
