"""Property tests: the trial-fused engine is bit-for-bit sequential.

Same doctrine as ``test_engine_equivalence``: the fused engine may
reorganize arithmetic across trials, never change results.  Each fused
trial must equal a standalone :func:`run_sequential` run with the same
space and generator state — loads *and* per-ball heights — across
spaces, strategies, d, partitioned sampling, chunk sizes, and the
T=1 / m=0 / m≠n edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.uniform import UniformSpace
from repro.core.engine import run_sequential
from repro.core.multitrial import auto_fused_batch_size, fused_trial_chunk, run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.utils.rng import resolve_rng


def _space(kind: str, n: int, seed: int):
    if kind == "ring":
        return RingSpace.random(n, seed=seed)
    if kind == "torus":
        return TorusSpace.random(n, dim=2, seed=seed)
    return UniformSpace(n)


def _spaces(kind: str, n: int, n_trials: int, seed: int):
    return [_space(kind, n, seed + k) for k in range(n_trials)]


def _assert_fused_matches_sequential(
    spaces, m, d, strategy, ball_seed, *, partitioned=False, batch_size=None
):
    rngs = [resolve_rng(ball_seed + k) for k in range(len(spaces))]
    fused_loads, fused_heights = run_fused(
        spaces, m, d, strategy, rngs,
        partitioned=partitioned, batch_size=batch_size, record_heights=True,
    )
    for k, space in enumerate(spaces):
        seq_loads, seq_heights = run_sequential(
            space, m, d, strategy, resolve_rng(ball_seed + k),
            partitioned=partitioned, record_heights=True,
        )
        assert np.array_equal(fused_loads[k], seq_loads), f"trial {k} loads"
        assert np.array_equal(fused_heights[k], seq_heights), f"trial {k} heights"


@st.composite
def _scenario(draw):
    kind = draw(st.sampled_from(["ring", "torus", "uniform"]))
    n = draw(st.integers(1, 300))
    m = draw(st.integers(0, 400))
    d = draw(st.integers(1, 4))
    n_trials = draw(st.integers(1, 9))
    strategy = draw(st.sampled_from(list(TieBreak)))
    partitioned = draw(st.booleans())
    batch_size = draw(st.sampled_from([1, 2, 7, 64, 1024, None]))
    space_seed = draw(st.integers(0, 2**16))
    ball_seed = draw(st.integers(0, 2**16))
    return (kind, n, m, d, n_trials, strategy, partitioned, batch_size,
            space_seed, ball_seed)


class TestFusedEquivalence:
    @given(_scenario())
    @settings(max_examples=50, deadline=None)
    def test_bitwise_identical_per_trial(self, scenario):
        (kind, n, m, d, n_trials, strategy, partitioned, batch_size,
         space_seed, ball_seed) = scenario
        spaces = _spaces(kind, n, n_trials, space_seed)
        _assert_fused_matches_sequential(
            spaces, m, d, strategy, ball_seed,
            partitioned=partitioned, batch_size=batch_size,
        )

    @pytest.mark.parametrize("strategy", list(TieBreak))
    def test_medium_scale_all_strategies(self, strategy):
        spaces = _spaces("ring", 1024, 12, seed=5)
        _assert_fused_matches_sequential(spaces, 1024, 2, strategy, 17)

    @pytest.mark.parametrize("kind", ["ring", "torus", "uniform"])
    def test_single_trial_matches(self, kind):
        """T=1 degenerates to an ordinary (if oddly batched) run."""
        spaces = _spaces(kind, 200, 1, seed=3)
        _assert_fused_matches_sequential(spaces, 350, 2, TieBreak.RANDOM, 11)

    def test_m_not_equal_n(self):
        spaces = _spaces("ring", 128, 5, seed=1)
        _assert_fused_matches_sequential(spaces, 1000, 3, TieBreak.RANDOM, 2)

    def test_partitioned_arc_left(self):
        """The paper's arc-left scheme: partitioned + FIRST."""
        spaces = _spaces("ring", 256, 6, seed=9)
        _assert_fused_matches_sequential(
            spaces, 256, 2, TieBreak.FIRST, 4, partitioned=True
        )

    def test_chunk_size_one_matches(self):
        """batch_size=1 degenerates to per-ball stepping."""
        spaces = _spaces("ring", 64, 4, seed=2)
        _assert_fused_matches_sequential(
            spaces, 200, 2, TieBreak.RANDOM, 8, batch_size=1
        )

    def test_heavy_conflicts(self):
        """Tiny n forces constant intra-chunk repairs."""
        spaces = _spaces("ring", 4, 6, seed=7)
        _assert_fused_matches_sequential(spaces, 300, 2, TieBreak.RANDOM, 3)

    def test_rng_block_boundary_crossing(self):
        spaces = _spaces("ring", 100, 3, seed=4)
        rngs = [resolve_rng(50 + k) for k in range(3)]
        fused_loads, _ = run_fused(
            spaces, 5 * 1000 + 37, 2, TieBreak.RANDOM, rngs, rng_block=1000
        )
        for k, space in enumerate(spaces):
            seq_loads, _ = run_sequential(
                space, 5 * 1000 + 37, 2, TieBreak.RANDOM, resolve_rng(50 + k),
                rng_block=1000,
            )
            assert np.array_equal(fused_loads[k], seq_loads)

    def test_mismatched_bin_counts_rejected(self):
        spaces = [_space("ring", 64, 1), _space("ring", 65, 2)]
        with pytest.raises(ValueError, match="share a bin count"):
            run_fused(spaces, 10, 2, TieBreak.RANDOM,
                      [resolve_rng(0), resolve_rng(1)])

    def test_mismatched_rngs_rejected(self):
        spaces = _spaces("ring", 64, 2, seed=1)
        with pytest.raises(ValueError, match="generators"):
            run_fused(spaces, 10, 2, TieBreak.RANDOM, [resolve_rng(0)])

    def test_no_trials_rejected(self):
        with pytest.raises(ValueError, match="at least one trial"):
            run_fused([], 10, 2, TieBreak.RANDOM, [])


class TestFusedTuning:
    def test_auto_batch_grows_with_trials(self):
        assert (auto_fused_batch_size(1 << 16, 2, 100)
                > auto_fused_batch_size(1 << 16, 2, 1))

    def test_auto_batch_bounded(self):
        assert 256 <= auto_fused_batch_size(1, 4, 1) <= 1 << 14
        assert 256 <= auto_fused_batch_size(1 << 24, 1, 10**6) <= 1 << 14

    def test_trial_chunk_bounded_memory(self):
        # candidate cap: rows × d × chunk stays bounded
        chunk = fused_trial_chunk(1 << 16, 1 << 16, 2)
        assert chunk >= 1
        assert min(1 << 16, 1 << 16) * 2 * chunk <= 1 << 23
        # bin cap: T·n stays bounded
        assert fused_trial_chunk(1 << 24, 1 << 24, 2) * (1 << 24) <= 1 << 24

    def test_chunking_never_changes_results(self):
        from repro.stats.trials import CellSpec, run_cell

        spec = CellSpec("ring", 64, 2)
        baseline = run_cell(spec, trials=9, seed=0, engine="sequential")
        fused = run_cell(spec, trials=9, seed=0, engine="fused")
        assert fused.counts == baseline.counts
