"""Tests for round-based (stale-load) placement."""

import numpy as np
import pytest

from repro.core.ring import RingSpace
from repro.core.rounds import place_balls_in_rounds, staleness_penalty
from repro.core.placement import place_balls


class TestRounds:
    def test_conserves_balls(self, small_ring):
        loads = place_balls_in_rounds(small_ring, 200, 2, round_size=32, seed=1)
        assert loads.sum() == 200

    def test_round_size_one_matches_sequential(self, small_ring):
        """b = 1: every ball sees fresh loads = the exact process.

        Bitwise equality requires the same RNG consumption layout;
        rng_block=1 makes the sequential engine draw per ball exactly
        as the rounds process does.
        """
        a = place_balls_in_rounds(small_ring, 300, 2, round_size=1, seed=5)
        b = place_balls(
            small_ring, 300, 2, seed=5, engine="sequential", rng_block=1
        ).loads
        assert np.array_equal(a, b)

    def test_full_parallel_round(self, small_ring):
        """round_size = m: decisions all from the empty snapshot.

        Every candidate load is then 0, all d candidates tie, and the
        process degenerates to a weighted random throw."""
        loads = place_balls_in_rounds(small_ring, 500, 3, round_size=500, seed=2)
        assert loads.sum() == 500

    def test_zero_balls(self, small_ring):
        loads = place_balls_in_rounds(small_ring, 0, 2, round_size=8, seed=3)
        assert loads.sum() == 0

    def test_rejects_bad_round_size(self, small_ring):
        with pytest.raises(ValueError):
            place_balls_in_rounds(small_ring, 10, 2, round_size=0)

    def test_strategies_accepted(self, small_ring):
        for strategy in ("random", "first", "smaller", "larger"):
            loads = place_balls_in_rounds(
                small_ring, 100, 2, round_size=16, strategy=strategy, seed=4
            )
            assert loads.sum() == 100

    def test_deterministic(self, small_ring):
        a = place_balls_in_rounds(small_ring, 128, 2, round_size=16, seed=9)
        b = place_balls_in_rounds(small_ring, 128, 2, round_size=16, seed=9)
        assert np.array_equal(a, b)


class TestStalenessEffect:
    def test_staleness_costs_little(self):
        """The parallel-arrival claim: round sizes up to ~n add O(1)."""
        n = 2048
        penalties = staleness_penalty(
            lambda s: RingSpace.random(n, seed=s),
            n,
            2,
            round_sizes=(1, 64, n),
            trials=6,
            seed=11,
        )
        assert penalties[64] <= penalties[1] + 1.0
        # the fully parallel extreme degrades toward d=1 behaviour but
        # stays far below Theta(log n)
        assert penalties[n] <= 3.5 * penalties[1]

    def test_monotone_in_round_size(self):
        """Staler information can only hurt (statistically)."""
        n = 1024
        penalties = staleness_penalty(
            lambda s: RingSpace.random(n, seed=s),
            n,
            2,
            round_sizes=(1, n),
            trials=8,
            seed=13,
        )
        assert penalties[1] <= penalties[n] + 0.25
