"""Space-protocol conformance: one parametrized suite over every space.

Any class implementing :class:`GeometricSpace` must satisfy these
contracts for the engines and the theory to be valid on it; adding a
new space means adding one fixture line here.
"""

import numpy as np
import pytest

from repro.baselines.uniform import UniformSpace
from repro.core.ring import RingSpace
from repro.core.spaces import GeometricSpace
from repro.core.torus import TorusSpace
from repro.dht.can import CanSpace

SPACE_FACTORIES = {
    "ring": lambda n: RingSpace.random(n, seed=123),
    "torus2": lambda n: TorusSpace.random(n, dim=2, seed=123),
    "torus3": lambda n: TorusSpace.random(n, dim=3, seed=123),
    "uniform": lambda n: UniformSpace(n),
    "can": lambda n: CanSpace.random(n, dim=2, seed=123),
}


@pytest.fixture(params=list(SPACE_FACTORIES), ids=list(SPACE_FACTORIES))
def space(request):
    return SPACE_FACTORIES[request.param](48)


class TestSpaceProtocol:
    def test_is_geometric_space(self, space):
        assert isinstance(space, GeometricSpace)
        assert space.n == space.n_bins == 48

    def test_choice_bins_shape_and_range(self, space, rng):
        bins = space.sample_choice_bins(rng, 33, 3)
        assert bins.shape == (33, 3)
        assert bins.dtype == np.int64
        assert bins.min() >= 0 and bins.max() < space.n

    def test_choice_bins_zero_m(self, space, rng):
        assert space.sample_choice_bins(rng, 0, 2).shape == (0, 2)

    def test_measures_are_probabilities(self, space):
        m = space.region_measures()
        if space.n > 1 and hasattr(space, "dim") and space.dim == 3:
            # Monte-Carlo measures: looser tolerance
            assert m.sum() == pytest.approx(1.0, abs=1e-6)
        else:
            assert m.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(m >= 0)
        assert m.shape == (space.n,)

    def test_choice_probabilities_alias(self, space):
        assert np.array_equal(space.choice_probabilities(), space.region_measures())

    def test_choices_follow_measures(self, space, rng):
        """Empirical probe frequencies must match region measures --
        the identity on which the whole analysis rests."""
        bins = space.sample_choice_bins(rng, 60_000, 1)[:, 0]
        freq = np.bincount(bins, minlength=space.n) / 60_000
        # 5 sigma on a multinomial cell with p ~ 1/48
        tol = 5 * np.sqrt((1 / 48) / 60_000) + 0.01
        assert np.abs(freq - space.region_measures()).max() < tol

    def test_partitioned_sampling_accepted(self, space, rng):
        bins = space.sample_choice_bins(rng, 10, 2, partitioned=True)
        assert bins.shape == (10, 2)

    def test_repr_mentions_n(self, space):
        assert "48" in repr(space)
