"""Tests for TorusSpace: periodic nearest-neighbor bins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.torus import TorusSpace


class TestConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TorusSpace(np.zeros((0, 2)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            TorusSpace([[0.5, 1.0]])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            TorusSpace([[0.5, 0.5], [0.5, 0.5]])

    def test_rejects_big_dimension(self):
        with pytest.raises(ValueError, match="unsupported"):
            TorusSpace.random(4, dim=9)

    def test_random_shapes(self):
        t = TorusSpace.random(10, dim=3, seed=0)
        assert t.points.shape == (10, 3) and t.dim == 3


class TestAssign:
    def test_nearest_in_plain_metric(self):
        t = TorusSpace([[0.25, 0.25], [0.75, 0.75]])
        assert t.assign(np.array([[0.3, 0.3]])).tolist() == [0]

    def test_wraparound_metric(self):
        """Point at 0.05 is closer to a server at 0.95 across the seam."""
        t = TorusSpace([[0.95, 0.5], [0.5, 0.5]])
        assert t.assign(np.array([[0.02, 0.5]])).tolist() == [0]

    def test_one_dim_wraparound(self):
        t = TorusSpace([[0.1], [0.6]])
        assert t.assign(np.array([[0.9]])).tolist() == [0]

    def test_dimension_mismatch_raises(self, small_torus):
        with pytest.raises(ValueError, match="last dimension"):
            small_torus.assign(np.zeros((3, 3)))

    def test_rejects_out_of_range_points(self, small_torus):
        with pytest.raises(ValueError):
            small_torus.assign(np.array([[1.0, 0.5]]))

    def test_assignment_matches_brute_force(self, small_torus, rng):
        queries = rng.random((200, 2))
        owners = small_torus.assign(queries)
        pts = small_torus.points
        for q, got in zip(queries, owners):
            d = np.abs(pts - q)
            d = np.minimum(d, 1 - d)
            expected = int(np.argmin((d**2).sum(axis=1)))
            assert got == expected


class TestRegionMeasures:
    def test_single_point(self):
        assert TorusSpace([[0.5, 0.5]]).region_measures().tolist() == [1.0]

    def test_2d_sums_to_one(self, small_torus):
        m = small_torus.region_measures()
        assert m.sum() == pytest.approx(1.0)
        assert np.all(m > 0)

    def test_1d_exact_measures(self):
        t = TorusSpace([[0.0], [0.5]])
        assert t.region_measures().tolist() == pytest.approx([0.5, 0.5])

    def test_1d_asymmetric(self):
        t = TorusSpace([[0.0], [0.25]])
        # bisectors at 0.125 and 0.625: bin0 owns 0.5+0.125=0.625... no:
        # bin0 owns (0.625, 1] u [0, 0.125] = 0.5; bin1 owns the rest 0.5?
        # gaps: 0.25 and 0.75; each owns half of each adjacent gap:
        # bin0: 0.75/2 + 0.25/2 = 0.5, bin1: same.
        assert t.region_measures().tolist() == pytest.approx([0.5, 0.5])

    def test_1d_three_points(self):
        t = TorusSpace([[0.0], [0.2], [0.6]])
        expected = [0.5 * (0.4 + 0.2), 0.5 * (0.2 + 0.4), 0.5 * (0.4 + 0.4)]
        assert t.region_measures().tolist() == pytest.approx(expected)

    def test_measures_match_assignment_frequencies(self, small_torus, rng):
        samples = rng.random((100_000, 2))
        owners = small_torus.assign(samples)
        freq = np.bincount(owners, minlength=small_torus.n) / samples.shape[0]
        assert np.abs(freq - small_torus.region_measures()).max() < 6e-3

    def test_3d_monte_carlo_measures(self):
        t = TorusSpace.random(16, dim=3, seed=5)
        t._measure_samples = 50_000  # keep the test fast
        m = t.region_measures()
        assert m.sum() == pytest.approx(1.0)
        assert np.all(m >= 0)

    def test_measures_cached(self, small_torus):
        assert small_torus.region_measures() is small_torus.region_measures()

    @given(st.integers(2, 24), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_2d_measures_always_partition(self, n, seed):
        t = TorusSpace.random(n, dim=2, seed=seed)
        m = t.region_measures()
        assert m.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(m > 0)


class TestQueries:
    def test_regions_at_least_monotone(self, small_torus):
        counts = [small_torus.regions_at_least(c) for c in (0.5, 1, 2, 4)]
        assert counts == sorted(counts, reverse=True)

    def test_regions_at_least_rejects_negative(self, small_torus):
        with pytest.raises(ValueError):
            small_torus.regions_at_least(-0.5)

    def test_toroidal_distance_symmetry(self, small_torus, rng):
        a, b = rng.random((2, 10, 2))
        d1 = small_torus.toroidal_distance(a, b)
        d2 = small_torus.toroidal_distance(b, a)
        assert np.allclose(d1, d2)

    def test_toroidal_distance_max(self, small_torus):
        d = small_torus.toroidal_distance(
            np.array([0.0, 0.0]), np.array([0.5, 0.5])
        )
        assert d == pytest.approx(np.sqrt(0.5))


class TestChoiceSampling:
    def test_shape(self, small_torus, rng):
        bins = small_torus.sample_choice_bins(rng, 20, 3)
        assert bins.shape == (20, 3)
        assert bins.dtype == np.int64
        assert np.all((bins >= 0) & (bins < small_torus.n))

    def test_partitioned_slabs(self, rng):
        """With partitioned sampling, choice j comes from slab j."""
        # servers at x = 0.25 / 0.75: the x < 0.5 slab IS cell 0, the
        # x >= 0.5 slab IS cell 1 (bisectors at x = 0.0 and x = 0.5)
        t = TorusSpace([[0.25, 0.5], [0.75, 0.5]])
        bins = t.sample_choice_bins(rng, 500, 2, partitioned=True)
        assert (bins[:, 0] == 0).all()
        assert (bins[:, 1] == 1).all()
