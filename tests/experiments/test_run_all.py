"""Tests for the run-everything harness."""

import os

import pytest

from repro.experiments.run_all import DEFAULT_PLAN, run_all


class TestRunAll:
    def test_plan_covers_all_tables(self):
        driver_ids = {d for d, _ in DEFAULT_PLAN.values()}
        assert {"table1", "table2", "table3", "fig1_lemma8"} <= driver_ids

    def test_writes_files(self, tmp_path):
        plan = {
            "mini1": ("table1", dict(trials=2, n_values=(64,))),
            "mini_lemmas": (
                "fig1_lemma8",
                dict(n=128, trials=2, ring_trials=20),
            ),
        }
        messages = []
        written = run_all(
            str(tmp_path), plan=plan, progress=messages.append
        )
        assert set(written) == {"mini1", "mini_lemmas"}
        for path in written.values():
            assert os.path.exists(path)
            text = open(path).read()
            assert "wall-clock" in text
        assert len(messages) == 2

    def test_trials_override(self, tmp_path):
        plan = {"mini": ("table1", dict(trials=99, n_values=(64,)))}
        run_all(str(tmp_path), plan=plan, trials=3, progress=lambda _: None)
        text = open(tmp_path / "mini.txt").read()
        assert "trials=3" in text

    def test_cli_all(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        import repro.experiments.run_all as ra

        mini_plan = {"mini": ("table1", dict(trials=2, n_values=(64,)))}
        original = ra.DEFAULT_PLAN
        ra.DEFAULT_PLAN = mini_plan
        try:
            assert main(["all", "--out", str(tmp_path / "o")]) == 0
        finally:
            ra.DEFAULT_PLAN = original
        assert (tmp_path / "o" / "mini.txt").exists()
