"""Tests for the command-line entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig1_lemma8" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys, monkeypatch):
        # shrink the default sweep so the CLI test is fast
        import repro.experiments.table1 as t1

        monkeypatch.setattr(t1, "DEFAULT_N_VALUES", (2**7,))
        assert main(["table1", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "d = 4" in out

    def test_seed_flag(self, capsys, monkeypatch):
        import re

        import repro.experiments.table1 as t1

        def strip_timing(text: str) -> str:
            # the report header embeds wall-clock seconds; ignore it
            return re.sub(r"seconds=[0-9.]+", "seconds=X", text)

        monkeypatch.setattr(t1, "DEFAULT_N_VALUES", (2**7,))
        assert main(["table1", "--trials", "2", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["table1", "--trials", "2", "--seed", "9"]) == 0
        assert strip_timing(capsys.readouterr().out) == strip_timing(first)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.trials is None and args.jobs == 1 and not args.full
