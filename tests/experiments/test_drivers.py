"""Tests for experiment drivers at miniature scale."""

import pytest

from repro.experiments import get_experiment, list_experiments
from repro.experiments.ablations import dimension_sweep, mn_sweep, tiebreak_sweep
from repro.experiments.lemma_validation import run as run_lemmas
from repro.experiments.report import ExperimentReport, TextReport
from repro.experiments.table1 import run as run_table1
from repro.experiments.table2 import run as run_table2
from repro.experiments.table3 import run as run_table3
from repro.experiments.theory_check import run as run_theory


SMALL = dict(trials=5, n_values=(2**7,))


class TestRegistry:
    def test_lists_all(self):
        names = list_experiments()
        for expected in (
            "table1", "table2", "table3", "fig1_lemma8", "theory_vs_sim",
            "ablation_tiebreak", "ablation_mn", "ablation_dim",
        ):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_get_returns_callable(self):
        assert callable(get_experiment("table1"))


class TestTableDrivers:
    def test_table1_structure(self):
        rep = run_table1(**SMALL)
        assert isinstance(rep, ExperimentReport)
        assert set(rep.cells) == {(2**7, d) for d in (1, 2, 3, 4)}
        for dist in rep.cells.values():
            assert dist.trials == 5
        assert "Table 1" in rep.render()

    def test_table1_d_ordering(self):
        """More choices -> no worse max load (statistically certain
        even at 5 trials for the d=1 vs d=4 gap)."""
        rep = run_table1(trials=5, n_values=(2**9,))
        modes = rep.modes()
        assert modes[(2**9, 4)] < modes[(2**9, 1)]

    def test_table2_structure(self):
        rep = run_table2(**SMALL)
        assert set(rep.cells) == {(2**7, d) for d in (1, 2, 3, 4)}
        assert "torus" in rep.render()

    def test_table3_structure(self):
        rep = run_table3(**SMALL)
        assert {c for (_, c) in rep.cells} == {
            "arc-larger", "arc-random", "arc-left", "arc-smaller",
        }

    def test_table3_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            run_table3(trials=2, n_values=(64,), strategies=["arc-up"])

    def test_determinism(self):
        a = run_table1(**SMALL)
        b = run_table1(**SMALL)
        assert {k: v.counts for k, v in a.cells.items()} == {
            k: v.counts for k, v in b.cells.items()
        }

    def test_summary_lines(self):
        rep = run_table1(**SMALL)
        lines = rep.summary_lines()
        assert len(lines) == 4
        assert all("mode=" in line for line in lines)


class TestOtherDrivers:
    def test_lemma_validation(self):
        rep = run_lemmas(n=256, trials=3, ring_trials=50)
        assert isinstance(rep, TextReport)
        assert rep.data["sector"]["sector_test_failures"] == 0
        assert "Lemma 8" in rep.render()

    def test_theory_check(self):
        rep = run_theory(n_values=(2**8,), d_values=(2,), trials=4)
        assert (2**8, 2) in rep.data
        entry = rep.data[(2**8, 2)]
        assert entry["ring_mode"] >= entry["fluid"] - 2

    def test_tiebreak_sweep(self):
        rep = tiebreak_sweep(n=2**7, d_values=(2,), trials=4)
        assert len(rep.cells) == 4

    def test_mn_sweep_monotone(self):
        rep = mn_sweep(n=2**7, ratios=(1, 4), d_values=(2,), trials=4)
        assert rep.cells[(4, 2)].mean > rep.cells[(1, 2)].mean

    def test_dimension_sweep(self):
        rep = dimension_sweep(n=2**7, dims=(1, 2), d_values=(2,), trials=4)
        assert len(rep.cells) == 2
        # both dimensions should show the tiny two-choice maxima
        assert rep.cells[(1, 2)].max <= 6
        assert rep.cells[(2, 2)].max <= 6


class TestDynamicChurn:
    def test_structure(self):
        from repro.experiments.dynamic_churn import run as run_dynamic

        rep = run_dynamic(trials=3, n_values=(64,), scenarios=("steady", "bursts"))
        assert isinstance(rep, ExperimentReport)
        assert set(rep.cells) == {(64, "steady"), (64, "bursts")}
        for dist in rep.cells.values():
            assert dist.trials == 3
        assert "Dynamic churn" in rep.render()

    def test_registered(self):
        assert "dynamic_churn" in list_experiments()
        assert callable(get_experiment("dynamic_churn"))

    def test_determinism(self):
        from repro.experiments.dynamic_churn import run as run_dynamic

        kwargs = dict(trials=3, n_values=(64,), scenarios=("poisson",))
        a = run_dynamic(**kwargs)
        b = run_dynamic(**kwargs)
        assert {k: v.counts for k, v in a.cells.items()} == {
            k: v.counts for k, v in b.cells.items()
        }

    def test_rejects_unknown_scenario(self):
        from repro.experiments.dynamic_churn import run as run_dynamic

        with pytest.raises(ValueError, match="unknown scenarios"):
            run_dynamic(trials=2, n_values=(64,), scenarios=("flood",))

    def test_storm_scenario_runs(self):
        from repro.experiments.dynamic_churn import run as run_dynamic

        rep = run_dynamic(trials=2, n_values=(64,), scenarios=("storm",))
        dist = rep.cells[(64, "storm")]
        assert dist.trials == 2 and dist.min >= 1


class TestGeometrySweep:
    def test_structure_and_flattening(self):
        from repro.experiments.ablations import geometry_sweep

        rep = geometry_sweep(n=2**8, d_values=(1, 2), trials=10)
        assert len(rep.cells) == 8
        # d = 2 flattens every geometry into a narrow band
        d2_modes = [rep.cells[(k, 2)].mode for k in ("uniform", "ring", "torus", "can")]
        assert max(d2_modes) - min(d2_modes) <= 1
        # d = 1 separates them: CAN (dyadic) is the most imbalanced
        assert rep.cells[("can", 1)].mean >= rep.cells[("uniform", 1)].mean
