"""Tests for the report containers."""

import pytest

from repro.experiments.report import ExperimentReport, TextReport
from repro.stats.distributions import MaxLoadDistribution


def _report(**overrides):
    cells = {
        (256, 1): MaxLoadDistribution.from_samples([7, 8, 8]),
        (256, 2): MaxLoadDistribution.from_samples([4]),
    }
    kwargs = dict(
        name="t",
        title="Title",
        cells=cells,
        row_keys=[256],
        col_keys=[1, 2],
        col_label=lambda d: f"d = {d}",
        meta={"trials": 3},
    )
    kwargs.update(overrides)
    return ExperimentReport(**kwargs)


class TestExperimentReport:
    def test_render_contains_meta(self):
        text = _report().render()
        assert "Title" in text and "trials=3" in text

    def test_modes(self):
        assert _report().modes() == {(256, 1): 8, (256, 2): 4}

    def test_missing_cells_skipped_in_summary(self):
        rep = _report(col_keys=[1, 2, 3])
        lines = rep.summary_lines()
        assert len(lines) == 2  # only existing cells

    def test_custom_row_label(self):
        rep = _report(row_label=lambda r: f"N{r}")
        assert "N256" in rep.render()
        assert any("N256" in line for line in rep.summary_lines())

    def test_min_pct_passthrough(self):
        cells = {(1, 1): MaxLoadDistribution.from_samples([3] * 99 + [9])}
        rep = _report(cells=cells, row_keys=[1], col_keys=[1])
        full = rep.render()
        trimmed = rep.render(min_pct=5.0)
        assert len(trimmed) < len(full)


class TestTextReport:
    def test_render(self):
        rep = TextReport(
            name="x",
            title="T",
            lines=["a", "b"],
            data={"k": 1},
            meta={"n": 5},
        )
        text = rep.render()
        assert text == "T\n(n=5)\na\nb\n"

    def test_render_without_meta(self):
        rep = TextReport(name="x", title="T", lines=["a"])
        assert rep.render() == "T\na\n"

    def test_summary_lines_prefixed(self):
        rep = TextReport(name="x", title="T", lines=["a", "b"])
        assert rep.summary_lines() == ["x: a", "x: b"]
