"""Shape tests: our simulation must reproduce the paper's findings.

These are the DESIGN.md "paper-shape criteria" run at the paper's
smallest table size (n = 2^8, where 100+ trials take well under a
second) plus cross-checks of the transcribed reference data itself.
Comparisons use Wilson-interval compatibility because our trial counts
differ from the paper's 1000.
"""

import pytest

from repro.experiments.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TRIALS,
    paper_distribution,
)
from repro.stats.confidence import frequencies_compatible
from repro.stats.trials import CellSpec, run_cell

TRIALS = 120
SEED = 987


@pytest.fixture(scope="module")
def table1_n256():
    return {
        d: run_cell(CellSpec("ring", 2**8, d), TRIALS, seed=SEED + d)
        for d in (1, 2, 3, 4)
    }


@pytest.fixture(scope="module")
def table2_n256():
    return {
        d: run_cell(CellSpec("torus", 2**8, d), TRIALS, seed=SEED + 10 + d)
        for d in (1, 2, 3, 4)
    }


class TestPaperDataIntegrity:
    def test_percentages_sum_to_100(self):
        for table in (PAPER_TABLE1, PAPER_TABLE2):
            for n, row in table.items():
                for d, cell in row.items():
                    assert sum(cell.values()) == pytest.approx(100.0, abs=0.5), (n, d)
        for n, row in PAPER_TABLE3.items():
            for strat, cell in row.items():
                assert sum(cell.values()) == pytest.approx(100.0, abs=0.5)

    def test_paper_distribution_roundtrip(self):
        dist = paper_distribution(PAPER_TABLE1[2**8][2])
        assert dist.trials == pytest.approx(PAPER_TRIALS, abs=5)
        assert dist.mode == 4

    def test_paper_d1_grows_with_n(self):
        """Criterion 1: d=1 modes grow ~linearly in log n."""
        modes = [
            paper_distribution(PAPER_TABLE1[n][1]).mode
            for n in (2**8, 2**12, 2**16, 2**20, 2**24)
        ]
        assert modes == sorted(modes)
        diffs = [b - a for a, b in zip(modes, modes[1:])]
        assert all(3 <= d <= 5 for d in diffs)  # ~1 per factor 2^4

    def test_paper_d2_flat(self):
        """Criterion 2: d>=2 modes are tiny and nearly flat."""
        for d in (2, 3, 4):
            modes = [
                paper_distribution(PAPER_TABLE1[n][d]).mode
                for n in PAPER_TABLE1
            ]
            assert max(modes) - min(modes) <= 2
            assert max(modes) <= 5

    def test_paper_strategy_ordering(self):
        """Criterion 4: smaller <= left <= random <= larger (means)."""
        for n in PAPER_TABLE3:
            means = {
                s: paper_distribution(PAPER_TABLE3[n][s]).mean
                for s in PAPER_TABLE3[n]
            }
            assert means["arc-smaller"] <= means["arc-random"] + 0.05
            assert means["arc-left"] <= means["arc-larger"] + 0.05
            assert means["arc-random"] <= means["arc-larger"] + 0.05


class TestSimulationMatchesPaperN256:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_table1_mode_matches(self, table1_n256, d):
        ours = table1_n256[d]
        paper_mode = paper_distribution(PAPER_TABLE1[2**8][d]).mode
        assert abs(ours.mode - paper_mode) <= 1

    def test_table1_d1_range_matches(self, table1_n256):
        ours = table1_n256[1]
        paper = paper_distribution(PAPER_TABLE1[2**8][1])
        assert abs(ours.mode - paper.mode) <= 2
        assert abs(ours.mean - paper.mean) <= 1.5

    @pytest.mark.parametrize("d", [2, 3])
    def test_table1_frequencies_compatible(self, table1_n256, d):
        """Per-value frequencies overlap at 99% confidence."""
        ours = table1_n256[d]
        paper_cell = PAPER_TABLE1[2**8][d]
        for load, pct in paper_cell.items():
            if pct < 5.0:
                continue  # sub-5% cells are noise at 120 trials
            assert frequencies_compatible(
                ours.counts.get(load, 0),
                ours.trials,
                round(pct * 10),
                PAPER_TRIALS,
            ), (load, pct, ours.counts)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_table2_mode_matches(self, table2_n256, d):
        ours = table2_n256[d]
        paper_mode = paper_distribution(PAPER_TABLE2[2**8][d]).mode
        assert abs(ours.mode - paper_mode) <= 1

    def test_table2_d1_milder_than_table1(self, table1_n256, table2_n256):
        """Criterion 3: torus d=1 tail is milder than the ring's."""
        assert table2_n256[1].mean < table1_n256[1].mean


class TestSimulationStrategyOrdering:
    def test_smaller_beats_larger(self):
        """Criterion 4 in our own simulation at n = 2^10."""
        n, trials = 2**10, 100
        means = {}
        for name, (strategy, part) in {
            "smaller": ("smaller", False),
            "larger": ("larger", False),
            "left": ("first", True),
        }.items():
            dist = run_cell(
                CellSpec("ring", n, 2, strategy=strategy, partitioned=part),
                trials,
                seed=55,
            )
            means[name] = dist.mean
        assert means["smaller"] < means["larger"]
        assert means["left"] < means["larger"]
