"""Property tests: the two dynamic engines are bit-for-bit the same.

Extends the static engine-equivalence guarantee to the dynamic process:
the batched engine may only reorganize arithmetic, never change the
*trajectory*.  We drive both engines over random spaces, strategies,
delete policies, batch sizes and churn patterns and require exact
equality of the final loads, the active mask, and every per-epoch
series (max load, total load, live bins, ν-profiles, full snapshots).
"""

import numpy as np
import pytest
from helpers import assert_dynamics_equal as _assert_results_identical
from helpers import build_space as _space
from helpers import build_trace as _trace
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import run_sequential
from repro.core.strategies import TieBreak
from repro.dynamics.engine import (
    mixed_conflict_prefix,
    run_batched_dynamic,
    run_sequential_dynamic,
    simulate_dynamics,
)
from repro.dynamics.events import churn_storm_trace, poisson_trace, steady_state_trace
from repro.utils.rng import resolve_rng


@st.composite
def _scenario(draw):
    kind = draw(st.sampled_from(["ring", "torus", "uniform"]))
    gen = draw(st.sampled_from(["steady", "poisson", "bursts", "storm"]))
    n = draw(st.integers(2, 150))
    m = draw(st.integers(1, 200))
    d = draw(st.integers(1, 3))
    strategy = draw(st.sampled_from(list(TieBreak)))
    policy = draw(st.sampled_from(["random", "fifo", "lifo"]))
    partitioned = draw(st.booleans())
    batch_size = draw(st.sampled_from([1, 2, 7, 64, 1024]))
    space_seed = draw(st.integers(0, 2**16))
    trace_seed = draw(st.integers(0, 2**16))
    ball_seed = draw(st.integers(0, 2**16))
    return (kind, gen, n, m, d, strategy, policy, partitioned, batch_size,
            space_seed, trace_seed, ball_seed)


class TestDynamicEngineEquivalence:
    @given(_scenario())
    @settings(max_examples=50, deadline=None)
    def test_bitwise_identical_trajectories(self, scenario):
        (kind, gen, n, m, d, strategy, policy, partitioned, batch_size,
         space_seed, trace_seed, ball_seed) = scenario
        space = _space(kind, n, space_seed)
        trace = _trace(gen, n, m, policy, trace_seed)
        seq = run_sequential_dynamic(
            space, trace, d, strategy, resolve_rng(ball_seed),
            partitioned=partitioned, record_loads=True,
        )
        bat = run_batched_dynamic(
            space, trace, d, strategy, resolve_rng(ball_seed),
            partitioned=partitioned, batch_size=batch_size, record_loads=True,
        )
        _assert_results_identical(seq, bat)

    @given(_scenario())
    @settings(max_examples=50, deadline=None)
    def test_trajectory_invariants(self, scenario):
        """Loads never go negative; totals track inserts - deletes."""
        (kind, gen, n, m, d, strategy, policy, partitioned, batch_size,
         space_seed, trace_seed, ball_seed) = scenario
        space = _space(kind, n, space_seed)
        trace = _trace(gen, n, m, policy, trace_seed)
        res = run_batched_dynamic(
            space, trace, d, strategy, resolve_rng(ball_seed),
            partitioned=partitioned, batch_size=batch_size, record_loads=True,
        )
        assert res.inserts == trace.num_inserts
        assert res.deletes == trace.num_deletes
        for snap, total in zip(res.load_snapshots, res.total_load_over_time):
            assert (snap >= 0).all()
            assert int(snap.sum()) == int(total)
        assert (res.total_load_over_time >= 0).all()
        assert int(res.loads.sum()) == trace.final_occupancy

    def test_insert_only_matches_static_engine(self, medium_ring):
        """A pure-arrival trace IS the static process, bit for bit."""
        m = 3000
        trace = steady_state_trace(m, pairs=0, seed=1)
        dyn = run_sequential_dynamic(
            medium_ring, trace, 2, TieBreak.RANDOM, resolve_rng(5)
        )
        static_loads, _ = run_sequential(
            medium_ring, m, 2, TieBreak.RANDOM, resolve_rng(5)
        )
        assert np.array_equal(dyn.loads, static_loads)

    def test_insert_only_batched_matches_static_engine(self, medium_ring):
        m = 3000
        trace = steady_state_trace(m, pairs=0, seed=1)
        dyn = run_batched_dynamic(
            medium_ring, trace, 2, TieBreak.RANDOM, resolve_rng(5)
        )
        static_loads, _ = run_sequential(
            medium_ring, m, 2, TieBreak.RANDOM, resolve_rng(5)
        )
        assert np.array_equal(dyn.loads, static_loads)

    def test_batch_size_one_matches(self, small_ring):
        trace = poisson_trace(600, 100, seed=3)
        a = run_batched_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(1), batch_size=1
        )
        b = run_sequential_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(1)
        )
        assert np.array_equal(a.loads, b.loads)
        assert np.array_equal(a.max_load_over_time, b.max_load_over_time)

    def test_rng_block_boundary_crossing(self, small_ring):
        trace = steady_state_trace(2000, pairs=1500, seed=4)
        a = run_sequential_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(4), rng_block=1000
        )
        b = run_batched_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(4), rng_block=1000
        )
        assert np.array_equal(a.loads, b.loads)


class TestChurnSemantics:
    def test_departed_bin_is_empty_and_inactive(self, small_ring):
        trace = churn_storm_trace(
            small_ring.n, 200, waves=1, leave_fraction=0.25, rejoin=False, seed=7
        )
        res = run_sequential_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(2)
        )
        assert not res.active.all()
        assert (res.loads[~res.active] == 0).all()
        # displaced balls survive the departure
        assert int(res.loads.sum()) == trace.final_occupancy

    def test_rejoined_bins_active_but_empty_until_new_inserts(self, small_ring):
        trace = churn_storm_trace(
            small_ring.n, 100, waves=1, leave_fraction=0.25, rejoin=True, seed=8
        )
        res = run_sequential_dynamic(
            small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(3)
        )
        assert res.active.all()
        assert res.live_bins_over_time.tolist()[-1] == small_ring.n
        # the degraded epoch shows fewer live bins
        assert res.live_bins_over_time.min() < small_ring.n

    def test_churn_preserves_occupancy(self, small_torus):
        trace = churn_storm_trace(
            small_torus.n, 150, waves=3, leave_fraction=0.3, seed=9
        )
        res = run_batched_dynamic(
            small_torus, trace, 2, TieBreak.RANDOM, resolve_rng(4)
        )
        assert (res.total_load_over_time == 150).all()

    def test_measure_aware_strategy_under_churn(self, small_ring):
        """smaller/larger strategies stay well-defined as arcs merge."""
        trace = churn_storm_trace(
            small_ring.n, 120, waves=2, leave_fraction=0.3, seed=10
        )
        a = run_sequential_dynamic(
            small_ring, trace, 2, TieBreak.SMALLER, resolve_rng(6)
        )
        b = run_batched_dynamic(
            small_ring, trace, 2, TieBreak.SMALLER, resolve_rng(6), batch_size=16
        )
        assert np.array_equal(a.loads, b.loads)

    def test_slot_universe_mismatch_rejected(self, small_ring):
        trace = churn_storm_trace(small_ring.n + 1, 10, waves=1, seed=0)
        with pytest.raises(ValueError, match="slots"):
            run_sequential_dynamic(
                small_ring, trace, 2, TieBreak.RANDOM, resolve_rng(0)
            )


class TestMixedConflictPrefix:
    def test_disjoint_inserts_full_prefix(self):
        touched = np.array([[0, 1], [2, 3], [4, 5]])
        assert mixed_conflict_prefix(touched, np.array([True] * 3)) == 3

    def test_insert_conflicts_with_earlier_insert(self):
        touched = np.array([[0, 1], [1, 2]])
        assert mixed_conflict_prefix(touched, np.array([True, True])) == 1

    def test_insert_conflicts_with_earlier_delete(self):
        touched = np.array([[5, 5], [5, 2]])
        assert mixed_conflict_prefix(touched, np.array([False, True])) == 1

    def test_delete_never_conflicts(self):
        touched = np.array([[0, 1], [0, 0], [1, 1]])
        assert mixed_conflict_prefix(touched, np.array([True, False, False])) == 3

    def test_sentinel_deletes_do_not_conflict(self):
        touched = np.array([[-1, -1], [-1, -1], [3, 4]])
        is_insert = np.array([False, False, True])
        assert mixed_conflict_prefix(touched, is_insert) == 3

    def test_intra_row_repeat_is_not_a_conflict(self):
        touched = np.array([[2, 2], [3, 4]])
        assert mixed_conflict_prefix(touched, np.array([True, True])) == 2

    def test_empty(self):
        assert mixed_conflict_prefix(np.empty((0, 2), dtype=np.int64),
                                     np.array([], dtype=bool)) == 0


class TestFacade:
    def test_engine_choice_is_invisible(self, small_ring):
        trace = steady_state_trace(200, pairs=100, seed=11)
        a = simulate_dynamics(small_ring, trace, 2, seed=12, engine="sequential")
        b = simulate_dynamics(small_ring, trace, 2, seed=12, engine="batched")
        assert np.array_equal(a.loads, b.loads)
        assert a.engine == "sequential" and b.engine == "batched"

    def test_rejects_unknown_engine(self, small_ring):
        trace = steady_state_trace(10, pairs=0, seed=0)
        with pytest.raises(ValueError, match="engine"):
            simulate_dynamics(small_ring, trace, 2, engine="quantum")

    def test_strategy_coercion(self, small_ring):
        trace = steady_state_trace(50, pairs=20, seed=1)
        res = simulate_dynamics(small_ring, trace, 2, strategy="smaller", seed=2)
        assert res.strategy is TieBreak.SMALLER

    def test_rejects_non_trace(self, small_ring):
        with pytest.raises(TypeError, match="EventTrace"):
            simulate_dynamics(small_ring, [1, 2, 3], 2)
