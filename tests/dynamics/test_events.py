"""Tests for event traces, delete policies and generators."""

import numpy as np
import pytest

from repro.dynamics.events import (
    DeletePolicy,
    EventKind,
    EventTrace,
    TraceBuilder,
    adversarial_burst_trace,
    churn_storm_trace,
    poisson_trace,
    steady_state_trace,
)
from repro.utils.rng import resolve_rng


class TestTraceBuilder:
    def test_insert_ids_sequential(self):
        b = TraceBuilder()
        assert [b.insert() for _ in range(4)] == [0, 1, 2, 3]

    def test_fifo_deletes_oldest(self):
        b = TraceBuilder()
        for _ in range(3):
            b.insert()
        assert b.delete("fifo", resolve_rng(0)) == 0
        assert b.delete("fifo", resolve_rng(0)) == 1

    def test_lifo_deletes_newest(self):
        b = TraceBuilder()
        for _ in range(3):
            b.insert()
        assert b.delete("lifo", resolve_rng(0)) == 2
        b.insert()  # ball 3
        assert b.delete("lifo", resolve_rng(0)) == 3

    def test_random_delete_is_live_and_deterministic(self):
        def run():
            rng = resolve_rng(42)
            b = TraceBuilder()
            for _ in range(10):
                b.insert()
            return [b.delete("random", rng) for _ in range(5)]

        a, c = run(), run()
        assert a == c
        assert len(set(a)) == 5

    def test_delete_empty_raises(self):
        with pytest.raises(ValueError, match="no live balls"):
            TraceBuilder().delete("random", resolve_rng(0))

    def test_unknown_policy_raises(self):
        b = TraceBuilder()
        b.insert()
        with pytest.raises(ValueError, match="unknown delete policy"):
            b.delete("newest", resolve_rng(0))

    def test_churn_requires_slots(self):
        with pytest.raises(ValueError, match="n_slots"):
            TraceBuilder().bin_leave(0)

    def test_cannot_drop_last_bin(self):
        b = TraceBuilder(n_slots=2)
        b.insert()
        b.bin_leave(0)
        with pytest.raises(ValueError, match="last active"):
            b.bin_leave(1)

    def test_double_leave_and_join_rejected(self):
        b = TraceBuilder(n_slots=3)
        b.bin_leave(1)
        with pytest.raises(ValueError, match="already inactive"):
            b.bin_leave(1)
        b.bin_join(1)
        with pytest.raises(ValueError, match="already active"):
            b.bin_join(1)

    def test_mark_epoch_idempotent(self):
        b = TraceBuilder()
        b.mark_epoch()  # before any event: ignored
        b.insert()
        b.mark_epoch()
        b.mark_epoch()
        t = b.build()
        assert t.epoch_ends.tolist() == [1]


class TestEventTraceValidation:
    def test_rejects_dangling_delete(self):
        with pytest.raises(ValueError, match="not live"):
            EventTrace(
                kinds=np.array([EventKind.INSERT, EventKind.DELETE], dtype=np.int8),
                args=np.array([0, 5]),
                epoch_ends=np.array([2]),
            )

    def test_rejects_double_delete(self):
        kinds = np.array(
            [EventKind.INSERT, EventKind.DELETE, EventKind.DELETE], dtype=np.int8
        )
        with pytest.raises(ValueError, match="not live"):
            EventTrace(kinds=kinds, args=np.array([0, 0, 0]), epoch_ends=np.array([3]))

    def test_rejects_non_sequential_insert_ids(self):
        with pytest.raises(ValueError, match="consecutive"):
            EventTrace(
                kinds=np.array([EventKind.INSERT], dtype=np.int8),
                args=np.array([7]),
                epoch_ends=np.array([1]),
            )

    def test_rejects_unclosed_epochs(self):
        with pytest.raises(ValueError, match="epoch_ends"):
            EventTrace(
                kinds=np.array([EventKind.INSERT], dtype=np.int8),
                args=np.array([0]),
                epoch_ends=np.array([], dtype=np.int64),
            )

    def test_rejects_churn_without_slots(self):
        with pytest.raises(ValueError, match="n_slots"):
            EventTrace(
                kinds=np.array([EventKind.BIN_LEAVE], dtype=np.int8),
                args=np.array([0]),
                epoch_ends=np.array([1]),
            )

    def test_arrays_read_only(self):
        t = steady_state_trace(4, pairs=0, seed=0)
        with pytest.raises(ValueError):
            t.kinds[0] = 3

    def test_caller_arrays_not_frozen_in_place(self):
        kinds = np.array([EventKind.INSERT, EventKind.INSERT], dtype=np.int8)
        args = np.array([0, 1], dtype=np.int64)
        ends = np.array([2], dtype=np.int64)
        t = EventTrace(kinds=kinds, args=args, epoch_ends=ends)
        kinds[0] = EventKind.DELETE  # caller keeps ownership...
        assert t.kinds[0] == EventKind.INSERT  # ...trace is unaffected

    def test_empty_trace_allowed(self):
        t = EventTrace(
            kinds=np.array([], dtype=np.int8),
            args=np.array([], dtype=np.int64),
            epoch_ends=np.array([], dtype=np.int64),
        )
        assert t.num_events == 0 and t.final_occupancy == 0


class TestGenerators:
    def test_steady_state_shape(self):
        t = steady_state_trace(100, pairs=50, epochs=5, seed=1)
        assert t.num_events == 100 + 2 * 50
        assert t.num_inserts == 150 and t.num_deletes == 50
        assert t.final_occupancy == 100
        assert not t.has_churn
        # warm-up epoch plus the churn-phase epochs
        assert t.epoch_ends[0] == 100 and int(t.epoch_ends[-1]) == t.num_events

    def test_steady_state_policies_differ(self):
        fifo = steady_state_trace(20, pairs=10, policy="fifo", seed=3)
        lifo = steady_state_trace(20, pairs=10, policy="lifo", seed=3)
        assert not np.array_equal(fifo.args, lifo.args)
        first_delete = np.nonzero(fifo.kinds == EventKind.DELETE)[0][0]
        assert fifo.args[first_delete] == 0  # oldest
        assert lifo.args[first_delete] == 19  # newest

    def test_poisson_counts_and_determinism(self):
        a = poisson_trace(500, 100, seed=9)
        b = poisson_trace(500, 100, seed=9)
        assert np.array_equal(a.kinds, b.kinds) and np.array_equal(a.args, b.args)
        assert a.num_events == 500
        assert a.num_inserts + a.num_deletes == 500
        # occupancy hovers near the target: grossly more inserts early on
        assert 0 < a.final_occupancy <= 250

    def test_adversarial_burst_structure(self):
        t = adversarial_burst_trace(40, 10, rounds=3, policy="lifo", seed=0)
        assert t.num_events == 40 + 2 * 10 * 3
        assert t.final_occupancy == 40
        # LIFO drains exactly the burst it just inserted
        deletes = t.args[t.kinds == EventKind.DELETE]
        assert deletes.max() == t.num_inserts - 1

    def test_churn_storm_balanced_leave_join(self):
        t = churn_storm_trace(32, 64, waves=2, leave_fraction=0.25, seed=5)
        assert t.has_churn and t.n_slots == 32
        leaves = int(np.count_nonzero(t.kinds == EventKind.BIN_LEAVE))
        joins = int(np.count_nonzero(t.kinds == EventKind.BIN_JOIN))
        assert leaves == joins == 2 * 8

    def test_churn_storm_no_rejoin(self):
        t = churn_storm_trace(16, 16, waves=2, leave_fraction=0.25, rejoin=False, seed=5)
        leaves = int(np.count_nonzero(t.kinds == EventKind.BIN_LEAVE))
        # wave 1 removes 4 of 16; wave 2 removes int(0.25 * 12) = 3
        assert leaves == 7
        assert int(np.count_nonzero(t.kinds == EventKind.BIN_JOIN)) == 0

    def test_churn_storm_with_pairs(self):
        t = churn_storm_trace(16, 32, waves=1, pairs_per_wave=5, seed=2)
        assert t.num_deletes == 5
        assert t.final_occupancy == 32

    def test_leave_fraction_bounds(self):
        with pytest.raises(ValueError, match="leave_fraction"):
            churn_storm_trace(16, 8, leave_fraction=1.5, seed=0)

    def test_policy_coerce_accepts_enum(self):
        t = steady_state_trace(8, pairs=2, policy=DeletePolicy.FIFO, seed=0)
        assert t.num_deletes == 2
