"""Tests for DynamicResult statistics and the static-placement bridge."""

import numpy as np
import pytest

from repro.core import RingSpace, TieBreak
from repro.core.loads import imbalance_series, max_load_series, nu_profile_series
from repro.core.placement import PlacementResult
from repro.dynamics import simulate_dynamics
from repro.dynamics.events import adversarial_burst_trace, steady_state_trace


@pytest.fixture
def result(small_ring):
    trace = adversarial_burst_trace(100, 50, rounds=3, policy="lifo", seed=1)
    return simulate_dynamics(small_ring, trace, 2, seed=2, record_loads=True)


class TestTrajectoryStats:
    def test_epoch_count(self, result):
        # base epoch + (spike, drain) per round
        assert result.epochs == 1 + 2 * 3

    def test_peak_at_spike(self, result):
        """The peak happens at a spike epoch, above the final max."""
        assert result.peak_max_load == result.max_load_over_time.max()
        spikes = result.total_load_over_time.max()
        assert spikes == 150  # base + burst
        assert result.occupancy == 100

    def test_series_agree_with_snapshots(self, result):
        assert np.array_equal(
            max_load_series(result.load_snapshots), result.max_load_over_time
        )
        profiles = nu_profile_series(result.load_snapshots)
        for mine, theirs in zip(profiles, result.nu_profiles):
            # all bins active here, so the series coincide
            assert np.array_equal(mine, theirs)

    def test_imbalance_over_time(self, result):
        series = result.imbalance_over_time()
        assert series.shape == (result.epochs,)
        assert (series >= 1.0).all()
        direct = imbalance_series(result.load_snapshots)
        assert np.allclose(series, direct)

    def test_summary_lines(self, result):
        lines = result.summary_lines()
        assert len(lines) == result.epochs
        assert all("max=" in line for line in lines)

    def test_final_nu_profile(self, result):
        nu = result.final_nu_profile()
        assert nu[0] == result.live_bins
        assert nu[-1] >= 1


class TestPlacementBridge:
    def test_from_dynamic_roundtrip(self, result):
        static = PlacementResult.from_dynamic(result)
        assert isinstance(static, PlacementResult)
        assert static.m == result.occupancy
        assert static.max_load == result.max_load
        assert np.array_equal(static.nu_profile(), result.final_nu_profile())

    def test_from_dynamic_drops_inactive_bins(self):
        from repro.dynamics.events import churn_storm_trace

        ring = RingSpace.random(32, seed=0)
        trace = churn_storm_trace(32, 60, waves=1, leave_fraction=0.25,
                                  rejoin=False, seed=1)
        res = simulate_dynamics(ring, trace, 2, seed=2)
        static = PlacementResult.from_dynamic(res)
        assert static.n == res.live_bins < 32
        assert static.m == 60


class TestValidation:
    def test_accounting_mismatch_rejected(self, result):
        from dataclasses import replace

        with pytest.raises(ValueError, match="accounting"):
            replace(result, inserts=result.inserts + 1)

    def test_series_length_mismatch_rejected(self, result):
        from dataclasses import replace

        with pytest.raises(ValueError, match="per epoch"):
            replace(result, max_load_over_time=np.array([1], dtype=np.int64))

    def test_strategy_recorded(self, result):
        assert result.strategy is TieBreak.RANDOM
        assert result.d == 2


class TestSteadyStateBehaviour:
    def test_two_choices_beat_one_along_the_path(self, medium_ring):
        """The power of two choices persists under turnover."""
        trace = steady_state_trace(medium_ring.n, pairs=2 * medium_ring.n, seed=5)
        one = simulate_dynamics(medium_ring, trace, 1, seed=6)
        two = simulate_dynamics(medium_ring, trace, 2, seed=6)
        assert two.peak_max_load < one.peak_max_load
