"""Shared builders and assertions for the repro test suites.

The dynamics, serve, and net suites all drive seeded
:class:`~repro.dynamics.events.EventTrace` churn through different
engines and compare full result objects.  The builders and equality
helpers here used to be copy-pasted per suite; they are collected once
so a new trace family or result field is added in one place.

Importable as a plain module (``import helpers``) because pytest puts
the ``tests/`` conftest directory on ``sys.path``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.uniform import UniformSpace
from repro.core.ring import RingSpace
from repro.core.torus import TorusSpace
from repro.dynamics.events import (
    adversarial_burst_trace,
    churn_storm_trace,
    poisson_trace,
    steady_state_trace,
)

__all__ = [
    "build_space",
    "build_trace",
    "named_scenarios",
    "assert_dynamics_equal",
]


def build_space(kind: str, n: int, seed: int, *, dim: int = 2):
    """A placement space by family name (``ring`` / ``torus`` / ``uniform``)."""
    if kind == "ring":
        return RingSpace.random(n, seed=seed)
    if kind == "torus":
        return TorusSpace.random(n, dim=dim, seed=seed)
    return UniformSpace(n)


def build_trace(gen: str, n: int, m: int, policy: str, trace_seed):
    """A churn trace by family name, sized relative to ``n`` / ``m``.

    ``steady``: fixed occupancy with delete/insert turnover;
    ``poisson``: thinned M/M/∞ arrivals; ``bursts``: adversarial LIFO
    storms; anything else: the bin churn storm (mass leave + rejoin).
    """
    if gen == "steady":
        return steady_state_trace(m, pairs=m, policy=policy, epochs=3,
                                  seed=trace_seed)
    if gen == "poisson":
        return poisson_trace(3 * m, m, policy=policy, epochs=4,
                             seed=trace_seed)
    if gen == "bursts":
        return adversarial_burst_trace(
            m, max(1, m // 3), rounds=3, policy=policy, seed=trace_seed
        )
    return churn_storm_trace(
        n,
        m,
        waves=2,
        leave_fraction=0.3,
        pairs_per_wave=max(1, m // 4),
        policy=policy,
        seed=trace_seed,
    )


def named_scenarios():
    """The three (name, space, trace) parity scenarios shared by suites.

    One representative of each trace family over a ring, with fixed
    seeds so every suite pins the same trajectories.
    """
    return [
        ("steady", RingSpace.random(64, seed=0),
         steady_state_trace(200, 150, policy="lifo", epochs=5, seed=1)),
        ("burst", RingSpace.random(32, seed=2),
         adversarial_burst_trace(100, 60, 4, seed=3)),
        ("storm", RingSpace.random(32, seed=4),
         churn_storm_trace(32, 120, waves=3, leave_fraction=0.25,
                           pairs_per_wave=30, policy="fifo", seed=5)),
    ]


def assert_dynamics_equal(a, b) -> None:
    """Exact equality of two dynamics/replay results, field by field.

    Compares final loads, the active mask, insert/delete counts, every
    per-epoch series, and ν-profiles.  Per-epoch load snapshots are
    compared when both results carry them (the serve replay result
    does not).
    """
    assert np.array_equal(a.loads, b.loads)
    assert np.array_equal(a.active, b.active)
    assert a.inserts == b.inserts and a.deletes == b.deletes
    assert np.array_equal(a.max_load_over_time, b.max_load_over_time)
    assert np.array_equal(a.total_load_over_time, b.total_load_over_time)
    assert np.array_equal(a.live_bins_over_time, b.live_bins_over_time)
    assert len(a.nu_profiles) == len(b.nu_profiles)
    for x, y in zip(a.nu_profiles, b.nu_profiles):
        assert np.array_equal(x, y)
    snaps_a = getattr(a, "load_snapshots", None)
    snaps_b = getattr(b, "load_snapshots", None)
    if snaps_a is not None and snaps_b is not None:
        for x, y in zip(snaps_a, snaps_b):
            assert np.array_equal(x, y)
