"""Fixtures for the observability suite.

The obs layer is process-global state (the enabled switch, the metric
registry, the span buffer, the trace directory), so every test here
starts from a clean slate and restores whatever it found — other
suites must never see metrics or spans leaked by these tests, and a
CI leg running with ``REPRO_OBS=1`` in the environment must not leak
the opposite way into tests that assume a disabled default.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics, tracing


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    """Disable obs, clear all recorded state, and restore on exit."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    previous_enabled = metrics.enabled()
    previous_dir = tracing.trace_dir()
    metrics.set_enabled(False)
    metrics.reset_metrics()
    tracing.set_trace_dir(None)
    tracing._reset()
    yield
    metrics.set_enabled(previous_enabled)
    metrics.reset_metrics()
    tracing.set_trace_dir(previous_dir)
    tracing._reset()


@pytest.fixture
def obs_on():
    """Observability enabled for the duration of the test."""
    metrics.set_enabled(True)
    yield
    metrics.set_enabled(False)
