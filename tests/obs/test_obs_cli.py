"""CLI surfaces: ``obs report``, ``sweep status``, and the routing."""

from __future__ import annotations

import json

import pytest

from repro.obs import drain_spans, write_trace
from repro.obs.cli import main as obs_main
from repro.obs.report import aggregate_spans
from repro.stats.trials import CellSpec, run_cell
from repro.sweeps.cli import main as sweep_main


@pytest.fixture
def real_trace(obs_on, tmp_path):
    """A trace file from an actual instrumented run_cell."""
    run_cell(CellSpec("ring", 64, 2), 6, seed=3)
    return write_trace(tmp_path / "trace-1.jsonl")


class TestObsReport:
    def test_report_on_explicit_file(self, real_trace, capsys):
        assert obs_main(["report", str(real_trace)]) == 0
        out = capsys.readouterr().out
        assert "run_cell" in out
        assert "(traced wall)" in out
        assert "counters:" in out
        assert "placement.balls" in out

    def test_report_globs_directory(self, real_trace, capsys):
        assert obs_main(["report", "--dir", str(real_trace.parent)]) == 0
        assert "run_cell" in capsys.readouterr().out

    def test_no_metrics_flag(self, real_trace, capsys):
        assert obs_main(["report", "--no-metrics", str(real_trace)]) == 0
        assert "counters:" not in capsys.readouterr().out

    def test_missing_traces_exit_2(self, tmp_path, capsys):
        assert obs_main(["report", "--dir", str(tmp_path / "empty")]) == 2
        assert "no trace files" in capsys.readouterr().err

    def test_corrupt_trace_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "trace-bad.jsonl"
        bad.write_text("not json\n")
        assert obs_main(["report", str(bad)]) == 2
        assert "bad trace line" in capsys.readouterr().err


def test_real_trace_breakdown_covers_90pct_of_wall(obs_on):
    """Acceptance: traced phases explain >= 90% of the measured wall."""
    run_cell(CellSpec("ring", 128, 2), 10, seed=7)
    agg = aggregate_spans(drain_spans())
    covered = sum(e["self_s"] for e in agg["phases"].values())
    assert agg["wall_s"] > 0
    assert covered >= 0.9 * agg["wall_s"]


class TestSweepStatus:
    AXES = ["n=64,128", "d=1"]

    def test_progress_before_and_after_run(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = self.AXES + ["--trials", "3", "--cache", cache]
        assert sweep_main(["status"] + args) == 0
        assert "0/2 cells done" in capsys.readouterr().out
        assert sweep_main(["run"] + args) == 0
        capsys.readouterr()
        assert sweep_main(["status"] + args) == 0
        out = capsys.readouterr().out
        assert "2/2 cells done (100.0%)" in out
        assert "done" in out

    def test_status_requires_cache(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert sweep_main(["status"] + self.AXES) == 2
        assert "needs a cache" in capsys.readouterr().err

    def test_status_never_bumps_cache_counters(self, tmp_path, capsys):
        """status probes the disk without polluting hit/miss stats."""
        from repro.sweeps.cache import ResultCache
        from repro.sweeps.grid import SweepGrid

        cache = ResultCache(tmp_path / "cache")
        from repro.sweeps.runner import run_sweep
        run_sweep(SweepGrid(n=(64,), d=(1,), trials=2, name="s"), cache=cache)
        before = cache.stats
        assert sweep_main(
            ["status", "n=64", "d=1", "--trials", "2", "--name", "s",
             "--cache", str(tmp_path / "cache")]
        ) == 0
        assert cache.stats == before


class TestSweepRunManifest:
    def test_out_artifact_gets_manifest_sibling(self, tmp_path, capsys):
        out = tmp_path / "shard.json"
        assert sweep_main(
            ["run", "n=64", "d=1", "--trials", "2", "--no-cache",
             "--out", str(out)]
        ) == 0
        manifest = tmp_path / "shard.manifest.json"
        assert out.is_file() and manifest.is_file()
        loaded = json.loads(manifest.read_text())
        assert loaded["package"] == "repro" and "kernel_backend" in loaded


class TestRouting:
    def test_experiments_main_routes_obs(self, real_trace, capsys):
        from repro.experiments.__main__ import main
        assert main(["obs", "report", str(real_trace)]) == 0
        assert "(traced wall)" in capsys.readouterr().out

    def test_experiments_list_mentions_obs(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "obs" in out and "sweep" in out
