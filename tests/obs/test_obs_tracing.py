"""Span tracer: nesting, the disabled no-op, and JSONL round-trips."""

from __future__ import annotations

import json
import os

from repro.obs import tracing
from repro.obs.report import read_trace
from repro.obs.tracing import (
    add_span,
    drain_spans,
    set_trace_dir,
    trace_span,
    write_trace,
)


class TestDisabled:
    def test_trace_span_returns_shared_null(self):
        a = trace_span("x")
        b = trace_span("y", n=3)
        assert a is b  # one shared no-op object, no allocation per call

    def test_nothing_buffered(self):
        with trace_span("x"):
            add_span("inner", 0.5)
        assert drain_spans() == []


class TestNesting:
    def test_depth_parent_and_ids(self, obs_on):
        with trace_span("outer", n=64):
            with trace_span("inner"):
                pass
            with trace_span("inner"):
                pass
        spans = drain_spans()
        assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
        outer = spans[2]
        assert outer["depth"] == 0 and outer["parent"] is None
        assert outer["attrs"] == {"n": 64}
        for inner in spans[:2]:
            assert inner["depth"] == 1
            assert inner["parent"] == outer["id"]
        assert len({s["id"] for s in spans}) == 3

    def test_add_span_attaches_to_open_span(self, obs_on):
        with trace_span("outer"):
            add_span("kernel", 0.25, chunks=3)
        kernel, outer = drain_spans()
        assert kernel["name"] == "kernel"
        assert kernel["parent"] == outer["id"]
        assert kernel["depth"] == 1
        assert kernel["dur_s"] == 0.25
        assert kernel["attrs"] == {"chunks": 3}

    def test_durations_are_nonnegative_and_nested(self, obs_on):
        with trace_span("outer"):
            with trace_span("inner"):
                pass
        inner, outer = drain_spans()
        assert 0 <= inner["dur_s"] <= outer["dur_s"]

    def test_exception_still_records_and_propagates(self, obs_on):
        try:
            with trace_span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        else:  # pragma: no cover - the raise must propagate
            raise AssertionError("exception swallowed")
        (span,) = drain_spans()
        assert span["name"] == "boom"


class TestRoundTrip:
    def test_write_trace_jsonl_schema(self, obs_on, tmp_path):
        from repro.obs.metrics import counter_add

        with trace_span("outer"):
            counter_add("c")
        path = write_trace(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["span", "metrics"]
        span = records[0]
        for key in ("id", "parent", "depth", "name", "t_wall", "dur_s",
                    "attrs", "pid"):
            assert key in span
        assert records[1]["counters"] == {"c": 1}

    def test_read_trace_recovers_spans_and_metrics(self, obs_on, tmp_path):
        from repro.obs.metrics import counter_add

        with trace_span("outer", k="v"):
            counter_add("c", 2)
        path = write_trace(tmp_path / "trace.jsonl")
        spans, metrics_records = read_trace([path])
        assert len(spans) == 1 and spans[0]["name"] == "outer"
        assert spans[0]["attrs"] == {"k": "v"}
        assert metrics_records[0]["counters"] == {"c": 2}

    def test_write_clears_buffer(self, obs_on, tmp_path):
        with trace_span("x"):
            pass
        write_trace(tmp_path / "t.jsonl")
        assert drain_spans() == []


class TestAutoFlush:
    def test_root_span_close_writes_trace_and_manifest(self, obs_on, tmp_path):
        set_trace_dir(tmp_path)
        with trace_span("root"):
            with trace_span("child"):
                pass
        pid = os.getpid()
        trace = tmp_path / f"trace-{pid}.jsonl"
        manifest = tmp_path / f"manifest-{pid}.json"
        assert trace.is_file() and manifest.is_file()
        spans, _ = read_trace([trace])
        assert {s["name"] for s in spans} == {"root", "child"}
        json.loads(manifest.read_text())  # valid JSON

    def test_manifest_written_once_trace_appends(self, obs_on, tmp_path):
        set_trace_dir(tmp_path)
        with trace_span("first"):
            pass
        manifest = tmp_path / f"manifest-{os.getpid()}.json"
        before = manifest.read_text()
        with trace_span("second"):
            pass
        assert manifest.read_text() == before
        spans, _ = read_trace([tmp_path / f"trace-{os.getpid()}.jsonl"])
        assert [s["name"] for s in spans] == ["first", "second"]

    def test_no_flush_without_trace_dir(self, obs_on, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with trace_span("root"):
            pass
        assert list(tmp_path.iterdir()) == []  # buffered, not flushed
        assert len(drain_spans()) == 1

    def test_reset_drops_buffer(self, obs_on):
        with trace_span("x"):
            pass
        tracing._reset()
        assert drain_spans() == []
