"""Overhead bounds: disabled instrumentation must be near-free.

The acceptance bar is that the disabled path adds under a few percent
to a small fused cell.  Wall-clock ratios on shared CI boxes are noisy
at the percent level, so the hard assertions are deliberately loose
(the disabled run must not be *grossly* slower than the enabled run's
inverse would suggest); the tight guarantee is structural and pinned
by ``test_metrics.TestDisabledNoOp`` — the disabled path is one module
bool check per call site.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.multitrial import run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.obs import drain_spans, obs_session


def _time_fused(obs: bool, repeats: int = 5) -> float:
    """Best-of-N wall time of a small fused cell under one obs state."""
    spaces = [RingSpace.random(256, seed=1)]
    best = float("inf")
    with obs_session(obs):
        for _ in range(repeats):
            rngs = [np.random.default_rng(2)]
            t0 = time.perf_counter()
            run_fused(spaces, 512, 2, TieBreak.RANDOM, rngs)
            best = min(best, time.perf_counter() - t0)
    drain_spans()
    return best


def test_disabled_fused_cell_not_slower_than_enabled():
    """Disabled obs must cost no more than enabled obs (with margin).

    Enabled tracing reads the clock around every phase, so a disabled
    run materially slower than an enabled one would mean the no-op
    path regressed.  The 1.5x margin absorbs shared-box noise.
    """
    # Warm both paths (bucket tables, allocator) before timing.
    _time_fused(False, repeats=1)
    _time_fused(True, repeats=1)
    disabled = _time_fused(False)
    enabled = _time_fused(True)
    assert disabled < enabled * 1.5


def test_enabled_overhead_is_bounded():
    """Tracing a small fused cell must stay within 2x of disabled."""
    _time_fused(True, repeats=1)
    disabled = _time_fused(False)
    enabled = _time_fused(True)
    assert enabled < max(disabled * 2, disabled + 0.01)
