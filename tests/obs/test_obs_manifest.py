"""Run manifests: determinism, field schema, and env capture."""

from __future__ import annotations

import json

from repro._version import __version__
from repro.kernels import BACKEND_NAMES
from repro.obs.manifest import run_manifest, write_manifest

REQUIRED_KEYS = {
    "schema", "package", "version", "git_rev", "python", "numpy",
    "platform", "machine", "executable", "kernel_backend", "env",
}


class TestRunManifest:
    def test_required_fields(self):
        manifest = run_manifest()
        assert REQUIRED_KEYS <= set(manifest)
        assert manifest["package"] == "repro"
        assert manifest["version"] == __version__
        assert manifest["kernel_backend"] in BACKEND_NAMES + ("unknown",)

    def test_deterministic(self):
        assert run_manifest() == run_manifest()

    def test_no_volatile_fields(self):
        """No timestamps/hostnames/pids — manifests must diff clean."""
        manifest = run_manifest()
        for key in manifest:
            assert "time" not in key and "host" not in key and "pid" not in key

    def test_env_captures_repro_vars_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        monkeypatch.setenv("NOT_OURS", "x")
        env = run_manifest()["env"]
        assert env["REPRO_KERNEL_BACKEND"] == "numpy"
        assert all(key.startswith("REPRO_") for key in env)

    def test_extra_merges_and_overrides(self):
        manifest = run_manifest({"seed": 7, "package": "other"})
        assert manifest["seed"] == 7
        assert manifest["package"] == "other"

    def test_json_serializable(self):
        json.dumps(run_manifest())


class TestWriteManifest:
    def test_round_trip(self, tmp_path):
        path = write_manifest(tmp_path / "sub" / "manifest.json", {"seed": 3})
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(run_manifest({"seed": 3})))

    def test_byte_identical_rewrites(self, tmp_path):
        """Same environment -> same bytes: the determinism acceptance."""
        a = write_manifest(tmp_path / "a.json").read_bytes()
        b = write_manifest(tmp_path / "b.json").read_bytes()
        assert a == b
