"""The obs invariant: instrumentation never changes results.

Every engine entry point that grew an ``obs=`` kwarg is run twice —
observability force-disabled and force-enabled — and the outputs must
be bit-identical.  A CI leg re-asserts the same property end-to-end
with ``REPRO_OBS=1`` in the environment.
"""

from __future__ import annotations

import numpy as np

from repro.core.multitrial import run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.dynamics import simulate_dynamics, steady_state_trace
from repro.obs import drain_spans, obs_session, snapshot
from repro.stats.trials import CellSpec, run_cell
from repro.sweeps import SweepGrid, run_sweep


def test_run_cell_bit_identical():
    spec = CellSpec("ring", 128, 2)
    off = run_cell(spec, 12, seed=5, obs=False)
    on = run_cell(spec, 12, seed=5, obs=True)
    assert off.counts == on.counts
    assert len(drain_spans()) > 0  # the enabled run actually traced


def test_run_fused_bit_identical():
    def one_run(obs):
        spaces = [RingSpace.random(96, seed=3)]
        rngs = [np.random.default_rng(11)]
        with obs_session(obs):
            loads, _ = run_fused(spaces, 192, 2, TieBreak.RANDOM, rngs)
        return loads
    off = one_run(False)
    on = one_run(True)
    assert np.array_equal(off, on)
    drain_spans()


def test_simulate_dynamics_bit_identical(small_ring):
    trace = steady_state_trace(80, pairs=40, seed=9)
    off = simulate_dynamics(small_ring, trace, 2, seed=4, obs=False)
    on = simulate_dynamics(small_ring, trace, 2, seed=4, obs=True)
    assert np.array_equal(off.loads, on.loads)
    assert np.array_equal(off.max_load_over_time, on.max_load_over_time)
    drain_spans()


def test_run_sweep_bit_identical():
    grid = SweepGrid(n=(64, 128), d=(1, 2), trials=4, name="idgrid")
    off = run_sweep(grid, cache="off", obs=False)
    on = run_sweep(grid, cache="off", obs=True)
    assert off.cells == on.cells
    spans = drain_spans()
    names = {s["name"] for s in spans}
    assert "run_sweep" in names and "sweep_cell" in names


def test_obs_session_restores_prior_state():
    from repro.obs import enabled
    assert not enabled()
    with obs_session(True):
        assert enabled()
        with obs_session(False):
            assert not enabled()
        assert enabled()
    assert not enabled()
    drain_spans()


def test_instrumented_run_emits_expected_metrics():
    spec = CellSpec("ring", 128, 2)
    run_cell(spec, 8, seed=5, obs=True)
    counters = snapshot()["counters"]
    assert counters["cell.runs"] == 1
    assert counters["placement.balls"] == 8 * 128
    assert any(key.startswith("kernels.backend_selected") for key in counters)
    drain_spans()
