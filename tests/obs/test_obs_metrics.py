"""Metric registry semantics: keys, recording, and the disabled no-op."""

from __future__ import annotations

import time

from repro.obs import metrics
from repro.obs.metrics import (
    counter_add,
    gauge_set,
    histogram_observe,
    metric_key,
    reset_metrics,
    snapshot,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("cache.hit") == "cache.hit"

    def test_labels_sorted(self):
        assert (
            metric_key("backend", {"b": 2, "a": 1})
            == metric_key("backend", {"a": 1, "b": 2})
            == "backend{a=1,b=2}"
        )

    def test_empty_labels_same_as_none(self):
        assert metric_key("x", {}) == "x"


class TestDisabledNoOp:
    def test_nothing_is_recorded(self):
        counter_add("c")
        gauge_set("g", 3.0)
        histogram_observe("h", 1.0)
        snap = snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_counter_is_cheap(self):
        """The no-op path is a bool check — bound it generously.

        2e5 disabled calls in well under a second even on a loaded CI
        box; the real cost is ~100ns/call.  This is the overhead bar
        that justifies leaving the instrumentation permanently wired
        through the hot engines.
        """
        n = 200_000
        t0 = time.perf_counter()
        for _ in range(n):
            counter_add("noop")
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0
        assert snapshot()["counters"] == {}


class TestRecording:
    def test_counter_accumulates(self, obs_on):
        counter_add("c")
        counter_add("c", 2)
        assert snapshot()["counters"]["c"] == 3

    def test_counter_labels_separate_series(self, obs_on):
        counter_add("sel", backend="numpy")
        counter_add("sel", backend="cext")
        counter_add("sel", backend="cext")
        counters = snapshot()["counters"]
        assert counters["sel{backend=numpy}"] == 1
        assert counters["sel{backend=cext}"] == 2

    def test_gauge_keeps_last_value(self, obs_on):
        gauge_set("g", 1.0)
        gauge_set("g", 42.0)
        assert snapshot()["gauges"]["g"] == 42.0

    def test_histogram_running_summary(self, obs_on):
        for value in (2.0, 5.0, 3.0):
            histogram_observe("h", value)
        h = snapshot()["histograms"]["h"]
        assert h == {
            "count": 3,
            "total": 10.0,
            "min": 2.0,
            "max": 5.0,
            "buckets": {"4": 1, "7": 1, "10": 1},
        }

    def test_bucket_index_edges(self):
        # bucket i covers (2**((i-1)/4), 2**(i/4)]
        assert metrics.bucket_index(1.0) == 0
        assert metrics.bucket_index(2.0) == 4
        assert metrics.bucket_index(2.0001) == 5
        assert metrics.bucket_index(0.5) == -4
        assert metrics.bucket_index(0.0) == metrics.NONPOSITIVE_BUCKET
        assert metrics.bucket_index(-3.0) == metrics.NONPOSITIVE_BUCKET

    def test_reset_clears_everything(self, obs_on):
        counter_add("c")
        gauge_set("g", 1.0)
        histogram_observe("h", 1.0)
        reset_metrics()
        assert snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert metrics.enabled()  # the switch survives a reset
