"""Trace aggregation math and sweep progress/ETA estimation."""

from __future__ import annotations

import pytest

from repro.obs.report import (
    aggregate_spans,
    format_breakdown,
    format_progress,
    histogram_quantiles,
    merge_metrics,
    progress_eta,
    read_trace,
)


def _span(id, parent, depth, name, dur, pid=1):
    return {"type": "span", "id": id, "parent": parent, "depth": depth,
            "name": name, "dur_s": dur, "pid": pid, "attrs": {}}


class TestAggregateSpans:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            _span(0, None, 0, "run", 2.0),
            _span(1, 0, 1, "kernel", 1.5),
            _span(2, 1, 2, "inner", 1.0),
        ]
        agg = aggregate_spans(spans)
        assert agg["wall_s"] == 2.0
        assert agg["phases"]["run"]["self_s"] == pytest.approx(0.5)
        assert agg["phases"]["kernel"]["self_s"] == pytest.approx(0.5)
        assert agg["phases"]["inner"]["self_s"] == pytest.approx(1.0)

    def test_self_times_partition_wall(self):
        spans = [
            _span(0, None, 0, "run", 3.0),
            _span(1, 0, 1, "a", 1.0),
            _span(2, 0, 1, "b", 1.5),
        ]
        agg = aggregate_spans(spans)
        covered = sum(e["self_s"] for e in agg["phases"].values())
        assert covered == pytest.approx(agg["wall_s"])

    def test_same_name_accumulates(self):
        spans = [_span(i, None, 0, "cell", 1.0) for i in range(3)]
        agg = aggregate_spans(spans)
        assert agg["phases"]["cell"] == {"count": 3, "total_s": 3.0, "self_s": 3.0}
        assert agg["wall_s"] == 3.0

    def test_pids_do_not_collide(self):
        """Same span ids from different processes must not cross-link."""
        spans = [
            _span(0, None, 0, "run", 2.0, pid=1),
            _span(1, 0, 1, "child", 1.0, pid=1),
            _span(1, None, 0, "other", 4.0, pid=2),  # id collides with pid 1
        ]
        agg = aggregate_spans(spans)
        assert agg["phases"]["other"]["self_s"] == pytest.approx(4.0)
        assert agg["phases"]["run"]["self_s"] == pytest.approx(1.0)

    def test_negative_self_clamped(self):
        spans = [
            _span(0, None, 0, "run", 1.0),
            _span(1, 0, 1, "child", 1.1),  # clock jitter: child > parent
        ]
        assert aggregate_spans(spans)["phases"]["run"]["self_s"] == 0.0


class TestMergeMetrics:
    def test_last_record_per_pid_then_sum_across_pids(self):
        records = [
            {"pid": 1, "counters": {"c": 5}, "gauges": {}, "histograms": {}},
            {"pid": 1, "counters": {"c": 9}, "gauges": {}, "histograms": {}},
            {"pid": 2, "counters": {"c": 1}, "gauges": {}, "histograms": {}},
        ]
        assert merge_metrics(records)["counters"]["c"] == 10

    def test_histograms_merge(self):
        h1 = {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0,
              "buckets": {"0": 1, "4": 1}}
        h2 = {"count": 1, "total": 9.0, "min": 9.0, "max": 9.0,
              "buckets": {"13": 1}}
        records = [
            {"pid": 1, "counters": {}, "gauges": {}, "histograms": {"h": h1}},
            {"pid": 2, "counters": {}, "gauges": {}, "histograms": {"h": h2}},
        ]
        merged = merge_metrics(records)["histograms"]["h"]
        assert merged == {
            "count": 3, "total": 12.0, "min": 1.0, "max": 9.0,
            "buckets": {"0": 1, "4": 1, "13": 1},
        }

    def test_histograms_merge_legacy_without_buckets(self):
        # records written before the bucketed format still merge
        h1 = {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0}
        h2 = {"count": 1, "total": 9.0, "min": 9.0, "max": 9.0,
              "buckets": {"13": 1}}
        records = [
            {"pid": 1, "counters": {}, "gauges": {}, "histograms": {"h": h1}},
            {"pid": 2, "counters": {}, "gauges": {}, "histograms": {"h": h2}},
        ]
        merged = merge_metrics(records)["histograms"]["h"]
        assert merged["count"] == 3
        assert merged["buckets"] == {"13": 1}


class TestHistogramQuantiles:
    def test_empty_or_legacy_yields_none(self):
        assert histogram_quantiles({"count": 0, "buckets": {}}, [0.5]) == [None]
        legacy = {"count": 3, "total": 10.0, "min": 2.0, "max": 5.0}
        assert histogram_quantiles(legacy, [0.5, 0.99]) == [None, None]

    def test_extremes_clamp_to_tracked_min_max(self):
        summ = {"count": 4, "min": 1.0, "max": 8.0,
                "buckets": {"0": 1, "4": 1, "8": 1, "12": 1}}
        lo, hi = histogram_quantiles(summ, [0.0, 1.0])
        assert lo == 1.0
        assert hi == 8.0

    def test_quarter_octave_accuracy(self):
        # estimates from bucket counts stay within one bucket's
        # relative width (2**0.25 ~ 19%) of the true quantiles
        import numpy as np

        from repro.obs import metrics

        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-8.0, sigma=1.5, size=5000)
        metrics.set_enabled(True)
        try:
            metrics.reset_metrics()
            for v in values:
                metrics.histogram_observe("lat", float(v))
            summ = metrics.snapshot()["histograms"]["lat"]
        finally:
            metrics.reset_metrics()
            metrics.set_enabled(False)
        for q, est in zip((0.5, 0.95, 0.99),
                          histogram_quantiles(summ, (0.5, 0.95, 0.99))):
            true = float(np.quantile(values, q))
            assert true / 2**0.25 <= est <= true * 2**0.25, (q, est, true)

    def test_nonpositive_bucket_maps_to_min(self):
        summ = {"count": 2, "min": -1.0, "max": 4.0,
                "buckets": {str(-(1 << 30)): 1, "8": 1}}
        assert histogram_quantiles(summ, [0.25])[0] == -1.0


class TestReadTrace:
    def test_bad_line_is_loud(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="trace.jsonl:2"):
            read_trace([path])

    def test_unknown_types_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "future-thing"}\n\n')
        assert read_trace([path]) == ([], [])


class TestFormatBreakdown:
    def test_table_and_coverage_row(self):
        agg = aggregate_spans([
            _span(0, None, 0, "run", 2.0),
            _span(1, 0, 1, "kernel", 1.5),
        ])
        text = format_breakdown(agg)
        assert "kernel" in text and "run" in text
        assert "(traced wall)" in text
        assert "100.0%" in text  # self times partition the wall exactly

    def test_empty(self):
        assert format_breakdown(aggregate_spans([])) == "(no spans)"


class TestProgressEta:
    def test_rate_and_eta_from_mtimes(self):
        out = progress_eta(3, 5, [100.0, 110.0, 120.0])
        assert out["remaining"] == 2
        assert out["rate_per_s"] == pytest.approx(0.1)
        assert out["eta_s"] == pytest.approx(20.0)

    def test_done(self):
        out = progress_eta(2, 2, [100.0, 101.0])
        assert out["remaining"] == 0 and out["eta_s"] == 0.0

    def test_insufficient_samples(self):
        out = progress_eta(1, 5, [100.0])
        assert out["rate_per_s"] is None and out["eta_s"] is None

    def test_identical_mtimes(self):
        out = progress_eta(3, 5, [100.0, 100.0, 100.0])
        assert out["rate_per_s"] is None


class TestFormatProgress:
    def test_fraction_and_eta(self):
        line = format_progress(progress_eta(3, 5, [100.0, 110.0, 120.0]))
        assert "3/5 cells done (60.0%)" in line
        assert "ETA 20s" in line

    def test_hits_split(self):
        line = format_progress(progress_eta(4, 4, [1.0, 2.0]), hits=3)
        assert "3 warm / 1 computed" in line

    def test_unknown_eta(self):
        line = format_progress(progress_eta(1, 5, [100.0]))
        assert "ETA unknown" in line
