"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.ring import RingSpace
from repro.core.torus import TorusSpace

# Deterministic property testing: same examples every run, and no
# wall-clock health checks (CI boxes and laptops under load would flake
# otherwise -- the suites' statistical assertions are all seeded).
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the sweep result cache at a per-test temp dir.

    Experiment drivers cache through ``REPRO_SWEEP_CACHE`` by default;
    tests must never read a developer's warm user cache (stale hits
    would mask regressions) nor write into it.
    """
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweep-cache"))


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_ring():
    """A 64-server ring, fixed placement."""
    return RingSpace.random(64, seed=7)


@pytest.fixture
def small_torus():
    """A 64-server 2-torus, fixed placement."""
    return TorusSpace.random(64, dim=2, seed=7)


@pytest.fixture
def medium_ring():
    """A 4096-server ring (batched-engine territory)."""
    return RingSpace.random(4096, seed=11)
