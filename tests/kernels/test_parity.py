"""Bit-identity of every accelerated backend against the numpy reference.

The backend contract (:mod:`repro.kernels`) is that results never
depend on the backend.  These tests enforce it at every level the
kernels plug in: fused placements (loads and per-ball heights), dynamic
trajectories (per-epoch snapshots included), the raw ring lookup, and
the ``backend=`` kwarg surface of :func:`repro.stats.trials.run_cell`.

Backends that cannot build on this machine (numba not installed, no C
compiler) are skipped, not failed — the numpy reference path is covered
by the rest of the suite either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multitrial import run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.dynamics import simulate_dynamics
from repro.dynamics.events import churn_storm_trace, steady_state_trace
from repro.kernels import available_backends, get_backend
from repro.stats.trials import CellSpec, run_cell

#: Accelerated backends usable on this machine (parametrization set).
ACCELERATED = [
    name for name, ok in available_backends().items()
    if ok and name != "numpy"
]

pytestmark = pytest.mark.skipif(
    not ACCELERATED, reason="no accelerated kernel backend on this machine"
)

STRATEGIES = list(TieBreak)


def _fused_pair(backend_name, space_cls, strategy, *, t=4, n=192, m=260,
                d=3, partitioned=False, seed0=50):
    spaces = [space_cls.random(n, seed=seed0 + i) for i in range(t)]

    def run(backend):
        rngs = [np.random.default_rng(1000 + i) for i in range(t)]
        return run_fused(
            spaces, m, d, strategy, rngs,
            partitioned=partitioned, record_heights=True, backend=backend,
        )

    return run("numpy"), run(get_backend(backend_name))


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("space_cls", [RingSpace, TorusSpace])
def test_fused_placement_parity(backend_name, strategy, space_cls):
    (loads_np, heights_np), (loads_k, heights_k) = _fused_pair(
        backend_name, space_cls, strategy
    )
    np.testing.assert_array_equal(loads_np, loads_k)
    np.testing.assert_array_equal(heights_np, heights_k)


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("d", [1, 2, 4])
def test_fused_placement_parity_over_d(backend_name, d):
    (loads_np, heights_np), (loads_k, heights_k) = _fused_pair(
        backend_name, RingSpace, TieBreak.RANDOM, d=d
    )
    np.testing.assert_array_equal(loads_np, loads_k)
    np.testing.assert_array_equal(heights_np, heights_k)


@pytest.mark.parametrize("backend_name", ACCELERATED)
def test_fused_placement_parity_partitioned(backend_name):
    (loads_np, _), (loads_k, _) = _fused_pair(
        backend_name, RingSpace, TieBreak.FIRST, partitioned=True, d=2
    )
    np.testing.assert_array_equal(loads_np, loads_k)


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("seed", [0, 1, 2026])
def test_fused_placement_parity_over_seeds(backend_name, seed):
    (loads_np, _), (loads_k, _) = _fused_pair(
        backend_name, RingSpace, TieBreak.RANDOM, seed0=seed, t=3, n=640, m=900
    )
    np.testing.assert_array_equal(loads_np, loads_k)


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_dynamic_trajectory_parity(backend_name, strategy):
    """Sequential reference vs batched engine on an accelerated backend,
    compared epoch by epoch (churn storms create remaps mid-trace)."""
    trace = churn_storm_trace(
        280, 800, waves=3, leave_fraction=0.25, pairs_per_wave=4, seed=8
    )
    space = RingSpace.random(280, seed=2)

    ref = simulate_dynamics(
        space, trace, 2, strategy=strategy, seed=17,
        engine="sequential", record_loads=True,
    )
    got = simulate_dynamics(
        space, trace, 2, strategy=strategy, seed=17,
        engine="batched", record_loads=True, backend=backend_name,
    )
    np.testing.assert_array_equal(ref.loads, got.loads)
    assert ref.epochs == got.epochs
    assert len(ref.load_snapshots) == len(got.load_snapshots)
    for a, b in zip(ref.load_snapshots, got.load_snapshots):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("backend_name", ACCELERATED)
def test_dynamic_steady_state_parity(backend_name):
    trace = steady_state_trace(200, pairs=300, epochs=4, seed=3)
    space = TorusSpace.random(200, seed=4)
    ref = simulate_dynamics(
        space, trace, 3, seed=5, engine="sequential"
    )
    got = simulate_dynamics(
        space, trace, 3, seed=5, engine="batched", backend=backend_name
    )
    np.testing.assert_array_equal(ref.loads, got.loads)


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("n", [1 << 10, 1 << 12])
def test_ring_assign_parity(backend_name, n):
    """Raw bucket-table lookup vs searchsorted, including the wrap."""
    backend = get_backend(backend_name)
    if backend.ring_assign is None:
        pytest.skip(f"{backend_name} provides no ring_assign kernel")
    space = RingSpace.random(n, seed=21)
    nbuckets, table, pos_ext = space._bucket_table()
    rng = np.random.default_rng(31)
    pts = rng.random(5000)
    # force the wrap-around case: points beyond the last server position
    pts = np.concatenate([pts, [float(space.positions[-1]) + 1e-9, 0.0]])
    expected = np.searchsorted(space.positions, pts, side="left") % n
    got = backend.ring_assign(pts, table, pos_ext, nbuckets, n)
    np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("backend_name", ACCELERATED)
@pytest.mark.parametrize("q", [0, 1, 7, 16, 33])
def test_ring_assign_parity_small_batches(backend_name, q):
    """Sizes at and below the kernel's prefetch lookahead."""
    backend = get_backend(backend_name)
    if backend.ring_assign is None:
        pytest.skip(f"{backend_name} provides no ring_assign kernel")
    space = RingSpace.random(512, seed=6)
    nbuckets, table, pos_ext = space._bucket_table()
    pts = np.random.default_rng(q).random(q)
    expected = np.searchsorted(space.positions, pts, side="left") % space.n
    got = backend.ring_assign(pts, table, pos_ext, nbuckets, space.n)
    np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("backend_name", ACCELERATED)
def test_run_cell_backend_kwarg_parity(backend_name):
    spec = CellSpec("ring", 256, 2)
    ref = run_cell(spec, trials=6, seed=44, backend="numpy")
    got = run_cell(spec, trials=6, seed=44, backend=backend_name)
    assert ref.to_json_counts() == got.to_json_counts()


@pytest.mark.parametrize("backend_name", ACCELERATED)
def test_run_cell_env_var_parity(backend_name, monkeypatch):
    spec = CellSpec("torus", 128, 2, strategy="smaller")
    ref = run_cell(spec, trials=5, seed=13)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend_name)
    got = run_cell(spec, trials=5, seed=13)
    assert ref.to_json_counts() == got.to_json_counts()
