"""Auto-detection fallback must be loud (once) and counted, not silent."""

from __future__ import annotations

import logging

import pytest

from repro import kernels
from repro.kernels import KernelBackend, get_backend
from repro.obs import metrics


@pytest.fixture
def broken_accelerated(monkeypatch, reset_registry):
    """Make every accelerated backend fail to build (numpy still works)."""
    def build(name):
        if name == "numpy":
            return KernelBackend("numpy")
        raise RuntimeError(f"{name} unavailable (test)")
    monkeypatch.setattr(kernels, "_build", build)


def test_auto_fallback_warns_once(broken_accelerated, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        backend = get_backend("auto")
    assert backend.name == "numpy"
    warnings = [r for r in caplog.records if "fell back" in r.message]
    assert len(warnings) == 1
    # The warning names each failed candidate and the cure.
    message = warnings[0].getMessage()
    assert "numba" in message and "cext" in message
    assert "unavailable (test)" in message

    # Re-detection (cache dropped) must not warn again this process.
    caplog.clear()
    kernels._CACHE.pop("auto")
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        assert get_backend("auto").name == "numpy"
    assert not [r for r in caplog.records if "fell back" in r.message]


def test_auto_fallback_bumps_obs_counter(broken_accelerated):
    metrics.set_enabled(True)
    metrics.reset_metrics()
    try:
        get_backend("auto")
        counters = metrics.snapshot()["counters"]
        assert counters["kernels.auto_fallback"] == 1
    finally:
        metrics.set_enabled(False)
        metrics.reset_metrics()


def test_cached_auto_hit_does_not_warn(broken_accelerated, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        get_backend("auto")
        caplog.clear()
        get_backend("auto")  # served from cache
    assert not caplog.records


def test_backend_selected_counter():
    metrics.set_enabled(True)
    metrics.reset_metrics()
    try:
        resolved = kernels.resolve_backend("numpy")
        counters = metrics.snapshot()["counters"]
        assert counters[f"kernels.backend_selected{{backend={resolved.name}}}"] == 1
    finally:
        metrics.set_enabled(False)
        metrics.reset_metrics()
