"""Thread count never changes results — the multicore bit-identity contract.

The multicore tier (:mod:`repro.kernels.threads`) promises that
``threads`` only moves wall-clock time: parallel kernels partition work
statically by independent row, and the RNG pipeline only moves *when*
candidate blocks are generated.  These tests enforce bit-identity of
threaded against serial execution for every available backend × engine
× {static, dynamics} × thread count, exercise the knob's env → kwarg →
auto resolution order (including a subprocess test of the real
environment path), and pin the supporting topology/partition helpers.

Thread counts deliberately include values above this machine's core
count (7, 64) — oversubscription must degrade speed, never results.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.multitrial import run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.dynamics import simulate_dynamics
from repro.dynamics.events import churn_storm_trace, steady_state_trace
from repro.kernels import (
    available_backends,
    cpu_topology,
    logical_cores,
    physical_cores,
    resolve_threads,
    thread_chunks,
)
from repro.kernels.threads import _parse_proc_cpuinfo
from repro.stats.trials import CellSpec, run_cell

#: All backends usable here (the numpy reference always is; threading
#: must be a no-op on results for it too — it pipelines the RNG).
BACKENDS = [name for name, ok in available_backends().items() if ok]

THREAD_COUNTS = (1, 2, 7)

STRATEGIES = list(TieBreak)


def _fused_loads(backend, threads, *, space_cls=RingSpace,
                 strategy=TieBreak.RANDOM, t=5, n=192, m=400, d=3,
                 rng_block=128):
    spaces = [space_cls.random(n, seed=60 + i) for i in range(t)]
    rngs = [np.random.default_rng(2000 + i) for i in range(t)]
    return run_fused(
        spaces, m, d, strategy, rngs, record_heights=True,
        backend=backend, threads=threads, rng_block=rng_block,
    )


# ---------------------------------------------------------------------------
# static placement: threaded == serial for every backend × strategy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_fused_threaded_parity(backend, strategy):
    ref_loads, ref_heights = _fused_loads(backend, 1, strategy=strategy)
    for threads in THREAD_COUNTS[1:]:
        loads, heights = _fused_loads(backend, threads, strategy=strategy)
        np.testing.assert_array_equal(ref_loads, loads)
        np.testing.assert_array_equal(ref_heights, heights)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_threaded_parity_torus(backend):
    ref = _fused_loads(backend, 1, space_cls=TorusSpace)
    got = _fused_loads(backend, 7, space_cls=TorusSpace)
    np.testing.assert_array_equal(ref[0], got[0])
    np.testing.assert_array_equal(ref[1], got[1])


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_threaded_matches_other_backends(backend):
    """Threaded runs stay on the cross-backend bit-identity contract."""
    ref = _fused_loads("numpy", 1)
    got = _fused_loads(backend, 7)
    np.testing.assert_array_equal(ref[0], got[0])
    np.testing.assert_array_equal(ref[1], got[1])


@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_fused_single_trial_and_single_block(threads):
    """Degenerate shapes: one trial, and m smaller than one RNG block."""
    ref = _fused_loads("numpy", 1, t=1, m=50, rng_block=128)
    got = _fused_loads(BACKENDS[-1], threads, t=1, m=50, rng_block=128)
    np.testing.assert_array_equal(ref[0], got[0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_cell_threads_kwarg_parity(backend):
    spec = CellSpec("ring", 128, 2, m=256)
    ref = run_cell(spec, trials=6, seed=11, backend=backend, threads=1)
    got = run_cell(spec, trials=6, seed=11, backend=backend, threads=7)
    assert ref.to_json_counts() == got.to_json_counts()


# ---------------------------------------------------------------------------
# dynamics: pipelined predraw == synchronous predraw
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_dynamics_threaded_parity_steady_state(backend, threads):
    trace = steady_state_trace(160, pairs=400, epochs=3, seed=21)
    space = RingSpace.random(160, seed=22)
    ref = simulate_dynamics(
        space, trace, 2, seed=23, engine="batched", backend=backend, threads=1,
    )
    got = simulate_dynamics(
        space, trace, 2, seed=23, engine="batched", backend=backend,
        threads=threads,
    )
    np.testing.assert_array_equal(ref.loads, got.loads)
    np.testing.assert_array_equal(
        ref.max_load_over_time, got.max_load_over_time
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_dynamics_threaded_parity_churn(backend):
    """Churn storms interleave remaps with windows; the pipeline gate
    (cumulative insert count) must stay correct across the barriers."""
    trace = churn_storm_trace(
        220, 700, waves=3, leave_fraction=0.25, pairs_per_wave=4, seed=31
    )
    space = RingSpace.random(220, seed=32)
    ref = simulate_dynamics(
        space, trace, 2, seed=33, engine="sequential", record_loads=True,
    )
    got = simulate_dynamics(
        space, trace, 2, seed=33, engine="batched", backend=backend,
        threads=7, record_loads=True,
    )
    np.testing.assert_array_equal(ref.loads, got.loads)
    for a, b in zip(ref.load_snapshots, got.load_snapshots):
        np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# resolution order: env → kwarg → auto
# ---------------------------------------------------------------------------


def test_resolve_threads_kwarg():
    assert resolve_threads(3) == 3
    assert resolve_threads(1) == 1


def test_resolve_threads_auto_is_physical_cores():
    assert resolve_threads(None) == physical_cores()


def test_resolve_threads_env_overrides_kwarg(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "5")
    assert resolve_threads(2) == 5
    assert resolve_threads(None) == 5


@pytest.mark.parametrize("bogus", ["zero?", "-1", "0", "1.5"])
def test_resolve_threads_bogus_env_raises(monkeypatch, bogus):
    monkeypatch.setenv("REPRO_NUM_THREADS", bogus)
    with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
        resolve_threads(None)


def test_resolve_threads_bogus_kwarg_raises():
    with pytest.raises(ValueError, match="threads"):
        resolve_threads(0)


def test_env_selection_in_subprocess():
    """The real environment path: a child process pinned to 7 threads
    must produce the same loads the parent computes serially."""
    code = (
        "import numpy as np\n"
        "from repro.core.multitrial import run_fused\n"
        "from repro.core.ring import RingSpace\n"
        "from repro.core.strategies import TieBreak\n"
        "from repro.kernels import resolve_threads\n"
        "assert resolve_threads(None) == 7\n"
        "assert resolve_threads(1) == 7\n"
        "spaces = [RingSpace.random(192, seed=60 + i) for i in range(5)]\n"
        "rngs = [np.random.default_rng(2000 + i) for i in range(5)]\n"
        "loads, _ = run_fused(spaces, 400, 3, TieBreak.RANDOM, rngs,\n"
        "                     rng_block=128)\n"
        "print(int(loads.sum()), int((loads * loads).sum()))\n"
    )
    env = dict(os.environ, REPRO_NUM_THREADS="7")
    env.pop("REPRO_KERNEL_BACKEND", None)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True,
        timeout=180,
    )
    assert out.returncode == 0, out.stderr
    loads, _ = _fused_loads(None, 1)
    assert out.stdout.split() == [
        str(int(loads.sum())), str(int((loads * loads).sum()))
    ]


# ---------------------------------------------------------------------------
# topology and partition helpers
# ---------------------------------------------------------------------------


def test_cpu_topology_shape():
    topo = cpu_topology()
    assert set(topo) == {"logical", "physical", "model"}
    assert 1 <= topo["physical"] <= topo["logical"]
    assert isinstance(topo["model"], str) and topo["model"]
    assert logical_cores() == topo["logical"]
    assert physical_cores() == topo["physical"]
    assert cpu_topology() == topo  # cached, deterministic


def test_parse_proc_cpuinfo_smt_pairs():
    text = (
        "processor\t: 0\nphysical id\t: 0\ncore id\t: 0\n"
        "model name\t: Fake CPU\n\n"
        "processor\t: 1\nphysical id\t: 0\ncore id\t: 1\n\n"
        "processor\t: 2\nphysical id\t: 0\ncore id\t: 0\n\n"
        "processor\t: 3\nphysical id\t: 0\ncore id\t: 1\n"
    )
    physical, model = _parse_proc_cpuinfo(text)
    assert physical == 2  # 4 logical, SMT siblings collapsed
    assert model == "Fake CPU"


def test_parse_proc_cpuinfo_missing_topology():
    physical, model = _parse_proc_cpuinfo("processor\t: 0\nflags\t: fpu\n")
    assert physical is None and model is None


def test_thread_chunks_partition_properties():
    for count in (0, 1, 2, 7, 64, 1000):
        for threads in (1, 2, 3, 8, 200):
            chunks = thread_chunks(count, threads)
            assert len(chunks) == min(threads, count) if count else chunks == []
            covered = [i for s, e in chunks for i in range(s, e)]
            assert covered == list(range(count))
            if chunks:
                widths = [e - s for s, e in chunks]
                assert max(widths) - min(widths) <= 1
