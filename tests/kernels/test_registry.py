"""Registry semantics: selection order, errors, graceful fallback."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import kernels
from repro.kernels import (
    BACKEND_NAMES,
    KernelBackend,
    available_backends,
    default_backend,
    get_backend,
    resolve_backend,
)


def accelerated_backends() -> list[str]:
    """Names of the accelerated backends usable on this machine."""
    return [
        name for name, ok in available_backends().items()
        if ok and name != "numpy"
    ]


def test_numpy_backend_always_available():
    backend = get_backend("numpy")
    assert backend.name == "numpy"
    assert not backend.is_accelerated
    assert backend.place_block is None
    assert backend.dynamic_window is None
    assert backend.ring_assign is None


def test_unknown_name_raises_value_error():
    with pytest.raises(ValueError, match="unknown kernel backend 'bogus'"):
        get_backend("bogus")


def test_unknown_name_lists_valid_choices():
    with pytest.raises(ValueError) as excinfo:
        get_backend("fortran")
    message = str(excinfo.value)
    for name in BACKEND_NAMES + ("auto",):
        assert name in message
    assert "REPRO_KERNEL_BACKEND" in message


def test_bogus_env_var_raises_clear_error(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend(None)


def test_bogus_env_var_fails_at_engine_level(monkeypatch):
    """A typo'd env var must fail loudly, not silently fall back."""
    from repro.core.multitrial import run_fused
    from repro.core.ring import RingSpace
    from repro.core.strategies import TieBreak

    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
    spaces = [RingSpace.random(32, seed=0)]
    with pytest.raises(ValueError, match="unknown kernel backend"):
        run_fused(spaces, 8, 2, TieBreak.RANDOM, [np.random.default_rng(0)])


def test_env_var_overrides_kwarg(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    resolved = resolve_backend("cext")
    assert resolved.name == "numpy"


def test_kwarg_accepts_backend_instance():
    sentinel = KernelBackend("numpy")
    assert resolve_backend(sentinel) is sentinel


def test_kwarg_accepts_name():
    assert resolve_backend("numpy").name == "numpy"


def test_default_backend_matches_resolve_none():
    assert default_backend() is resolve_backend(None)


def test_available_backends_reports_numpy_true():
    avail = available_backends()
    assert avail["numpy"] is True
    assert set(avail) == set(BACKEND_NAMES)


def test_explicit_unavailable_backend_raises_runtime_error(
    reset_registry, monkeypatch
):
    """Asking for a backend that cannot build is an error, not a fallback."""

    def boom():
        raise RuntimeError("kernel backend 'numba' unavailable: not installed")

    import repro.kernels.numba_backend as numba_backend

    monkeypatch.setattr(numba_backend, "build_backend", boom)
    with pytest.raises(RuntimeError, match="unavailable"):
        get_backend("numba")


def test_auto_falls_back_silently_when_accelerators_missing(
    reset_registry, monkeypatch
):
    """No accelerated backend ⇒ auto resolves to numpy with no warnings."""

    def boom():
        raise RuntimeError("unavailable")

    import repro.kernels.cext_backend as cext_backend
    import repro.kernels.numba_backend as numba_backend

    monkeypatch.setattr(numba_backend, "build_backend", boom)
    monkeypatch.setattr(cext_backend, "build_backend", boom)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = get_backend("auto")
    assert backend.name == "numpy"


def test_auto_prefers_accelerated_backend(reset_registry):
    accelerated = accelerated_backends()
    backend = get_backend("auto")
    if accelerated:
        assert backend.is_accelerated
        assert backend.name == accelerated[0] or backend.name in accelerated
    else:
        assert backend.name == "numpy"


def test_failed_build_is_cached(reset_registry, monkeypatch):
    """The (possibly expensive) probe of a broken backend runs once."""
    calls = []

    def boom():
        calls.append(1)
        raise RuntimeError("unavailable")

    import repro.kernels.numba_backend as numba_backend

    monkeypatch.setattr(numba_backend, "build_backend", boom)
    for _ in range(3):
        with pytest.raises(RuntimeError):
            get_backend("numba")
    assert len(calls) == 1


def test_import_repro_does_not_import_numba_or_compile():
    """Cold ``import repro`` must not pay for any accelerator."""
    import subprocess
    import sys

    code = (
        "import sys; import repro; "
        "assert 'numba' not in sys.modules, 'numba imported eagerly'; "
        "assert 'repro.kernels.numba_backend' not in sys.modules; "
        "assert 'repro.kernels.cext_backend' not in sys.modules"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, capture_output=True
    )
