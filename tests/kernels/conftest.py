"""Fixtures for the kernel-backend suite.

The registry caches built backends and resolves the
``REPRO_KERNEL_BACKEND`` env var on every call, so these tests (a) run
with the variable unset — a CI leg that pins a backend globally must
not leak into tests exercising kwarg/auto selection — and (b) reset
the registry cache around tests that monkeypatch backend builders.
"""

from __future__ import annotations

import pytest

from repro import kernels


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    """Unpin the env vars: these tests control selection explicitly."""
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)


@pytest.fixture
def reset_registry():
    """Clear the backend build cache before and after the test."""
    kernels._reset()
    yield
    kernels._reset()
