"""Cache correctness: content addressing, invalidation, robustness."""

import json

import numpy as np
import pytest

from repro.sweeps.cache import (
    DEFAULT_SALT,
    ResultCache,
    canonical_json,
    default_cache_dir,
    spec_key,
)

SPEC = {"kind": "cell", "space": "ring", "n": 256, "d": 2, "trials": 10, "seed": 42}


class TestSpecKey:
    def test_key_is_order_insensitive(self):
        shuffled = dict(reversed(list(SPEC.items())))
        assert spec_key(SPEC) == spec_key(shuffled)

    def test_identical_specs_same_key(self):
        assert spec_key(dict(SPEC)) == spec_key(dict(SPEC))

    @pytest.mark.parametrize("field,value", [
        ("n", 512),
        ("d", 3),
        ("trials", 11),
        ("seed", 43),
        ("space", "torus"),
        ("kind", "cell_profile"),
    ])
    def test_any_perturbation_changes_key(self, field, value):
        perturbed = dict(SPEC, **{field: value})
        assert spec_key(perturbed) != spec_key(SPEC)

    def test_salt_changes_key(self):
        assert spec_key(SPEC, salt="other") != spec_key(SPEC, salt=DEFAULT_SALT)

    def test_canonical_json_is_byte_stable(self):
        a = canonical_json({"b": 1, "a": [1, 2]})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b == '{"a":[1,2],"b":1}'


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(SPEC) is None
        cache.put(SPEC, {"counts": {"3": 7}})
        entry = cache.get(SPEC)
        assert entry is not None and entry["payload"]["counts"] == {"3": 7}
        assert cache.stats == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_perturbed_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(SPEC, {"counts": {"3": 7}})
        assert cache.get(dict(SPEC, seed=SPEC["seed"] + 1)) is None
        assert cache.get(dict(SPEC, trials=SPEC["trials"] + 1)) is None

    def test_salt_change_invalidates(self, tmp_path):
        """Bumping the code-version salt orphans every existing entry."""
        old = ResultCache(tmp_path, salt="v1")
        old.put(SPEC, {"counts": {"3": 7}})
        new = ResultCache(tmp_path, salt="v2")
        assert SPEC not in new
        assert new.get(SPEC) is None
        # the old salt still resolves its own entries
        assert ResultCache(tmp_path, salt="v1").get(SPEC) is not None

    def test_contains_does_not_bump_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(SPEC, {"counts": {}})
        assert SPEC in cache
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 0

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, {"counts": {"3": 7}})
        path.write_text("{not json")
        assert cache.get(SPEC) is None

    def test_spec_mismatch_refused(self, tmp_path):
        """A tampered entry whose recorded spec differs is not served."""
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, {"counts": {"3": 7}})
        entry = json.loads(path.read_text())
        entry["spec"]["n"] = 999
        path.write_text(json.dumps(entry))
        assert cache.get(SPEC) is None

    def test_array_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        profile = np.linspace(0.0, 1.0, 17)
        cache.put(SPEC, {"trials": 10}, arrays={"profile": profile})
        entry = cache.get(SPEC)
        np.testing.assert_array_equal(entry["arrays"]["profile"], profile)

    def test_missing_npz_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(SPEC, {"trials": 10}, arrays={"profile": np.ones(3)})
        for npz in tmp_path.glob("*/*.npz"):
            npz.unlink()
        assert cache.get(SPEC) is None

    def test_reput_overwrites_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.put(SPEC, {"counts": {"3": 7}}).read_bytes()
        second = cache.put(SPEC, {"counts": {"3": 7}}).read_bytes()
        assert first == second

    def test_entry_count_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.entry_count() == 0
        cache.put(SPEC, {"counts": {}})
        cache.put(dict(SPEC, n=512), {"counts": {}}, arrays={"a": np.ones(2)})
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestDefaultCacheDir:
    def test_env_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF", " disabled "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", value)
        assert default_cache_dir() is None

    def test_unset_falls_back_to_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro" / "sweeps"
