"""Grid expansion: determinism, ordering, parsing, sharding."""

import pytest

from repro.sweeps.grid import SweepGrid, parse_axis_args, shard_cells


class TestSweepGrid:
    def test_scalars_normalize_to_tuples(self):
        grid = SweepGrid(n=256, d=2, space="ring")
        assert grid.n == (256,) and grid.d == (2,) and grid.space == ("ring",)

    def test_len_is_product_of_axes(self):
        grid = SweepGrid(n=(64, 128, 256), d=(1, 2), space=("ring", "torus"))
        assert len(grid) == 12 == len(grid.cells())

    def test_expansion_is_deterministic(self):
        grid = SweepGrid(n=(64, 128), d=(1, 2), trials=5, name="g")
        assert grid.cells() == grid.cells()
        assert grid.cells() == SweepGrid(n=(64, 128), d=(1, 2), trials=5, name="g").cells()

    def test_expansion_order_space_outermost(self):
        grid = SweepGrid(n=(64, 128), d=(1, 2))
        labels = [(c.spec.n, c.spec.d) for c in grid.cells()]
        assert labels == [(64, 1), (64, 2), (128, 1), (128, 2)]

    def test_cell_seeds_distinct_and_stable(self):
        cells = SweepGrid(n=(64, 128), d=(1, 2), seed=7).cells()
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [c.seed for c in SweepGrid(n=(64, 128), d=(1, 2), seed=7).cells()]

    def test_name_namespaces_seeds(self):
        a = SweepGrid(n=64, name="a").cells()[0].seed
        b = SweepGrid(n=64, name="b").cells()[0].seed
        assert a != b

    def test_spec_dict_carries_every_axis(self):
        cell = SweepGrid(n=64, d=3, m=128, strategy="smaller", trials=9).cells()[0]
        d = cell.spec_dict()
        assert d == {
            "kind": "cell", "space": "ring", "n": 64, "d": 3, "m": 128,
            "strategy": "smaller", "partitioned": False, "dim": 2,
            "trials": 9, "seed": cell.seed,
        }

    def test_axis_accessor(self):
        cell = SweepGrid(n=64).cells()[0]
        assert cell.axis("n") == 64
        with pytest.raises(KeyError):
            cell.axis("bogus")

    def test_invalid_axis_value_rejected_eagerly(self):
        with pytest.raises(ValueError):
            SweepGrid(n=64, strategy="bogus").cells()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepGrid(n=())

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown grid keys"):
            SweepGrid.from_mapping({"ns": (64,)})

    def test_describe_is_jsonable_and_complete(self):
        import json

        desc = SweepGrid(n=(64,), d=(1, 2), trials=3, name="g").describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["n"] == [64] and desc["d"] == [1, 2]
        assert desc["trials"] == 3 and desc["name"] == "g"


class TestParseAxisArgs:
    def test_basic(self):
        assert parse_axis_args(["n=256,1024", "d=2"]) == {"n": (256, 1024), "d": (2,)}

    def test_m_none(self):
        assert parse_axis_args(["m=none,512"]) == {"m": (None, 512)}

    def test_partitioned_bool(self):
        assert parse_axis_args(["partitioned=true,false"]) == {
            "partitioned": (True, False)
        }

    @pytest.mark.parametrize("token", ["n", "n=", "bogus=1", "n=abc", "partitioned=maybe"])
    def test_bad_tokens_raise(self, token):
        with pytest.raises(ValueError):
            parse_axis_args([token])

    def test_duplicate_axis_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_axis_args(["n=1", "n=2"])


class TestShardCells:
    def test_shards_partition_exactly(self):
        cells = SweepGrid(n=(64, 128, 256), d=(1, 2, 3)).cells()
        for count in (1, 2, 3, 4, 9, 20):
            shards = [shard_cells(cells, i, count) for i in range(count)]
            flat = [c for shard in shards for c in shard]
            assert sorted(flat, key=lambda c: c.seed) == sorted(
                cells, key=lambda c: c.seed
            )

    def test_round_robin_assignment(self):
        cells = SweepGrid(n=(64, 128, 256), d=(1, 2)).cells()
        shard0 = shard_cells(cells, 0, 2)
        assert shard0 == cells[::2]

    def test_bad_indices(self):
        cells = SweepGrid(n=64).cells()
        with pytest.raises(ValueError):
            shard_cells(cells, 2, 2)
        with pytest.raises(ValueError):
            shard_cells(cells, -1, 2)
