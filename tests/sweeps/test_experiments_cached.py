"""Experiment drivers through the sweep layer: incremental re-runs."""

import pytest

from repro.experiments.ablations import (
    dimension_sweep,
    geometry_sweep,
    mn_sweep,
    staleness_sweep,
    tiebreak_sweep,
)
from repro.experiments.dynamic_churn import run as run_dynamic
from repro.experiments.table1 import run as run_table1
from repro.experiments.table2 import run as run_table2
from repro.experiments.table3 import run as run_table3
from repro.sweeps import ResultCache


def strip_timing(report):
    return {k: v.counts for k, v in report.cells.items()}


class TestTable1Cached:
    def test_repeated_run_hits_every_cell(self, tmp_path):
        """Acceptance: a repeated table1 run hits the cache for every cell."""
        store = ResultCache(tmp_path)
        cold = run_table1(trials=3, n_values=(64, 128), cache=store)
        n_cells = len(cold.cells)
        assert store.stats == {"hits": 0, "misses": n_cells, "stores": n_cells, "corrupt": 0}
        warm = run_table1(trials=3, n_values=(64, 128), cache=store)
        assert store.hits == n_cells
        assert store.misses == n_cells  # unchanged by the warm run
        assert strip_timing(warm) == strip_timing(cold)

    def test_cached_equals_uncached(self, tmp_path):
        cached = run_table1(trials=3, n_values=(64,), cache=ResultCache(tmp_path))
        uncached = run_table1(trials=3, n_values=(64,), cache="off")
        assert strip_timing(cached) == strip_timing(uncached)

    def test_changed_trials_recomputes(self, tmp_path):
        store = ResultCache(tmp_path)
        run_table1(trials=3, n_values=(64,), cache=store)
        run_table1(trials=4, n_values=(64,), cache=store)
        assert store.hits == 0

    def test_incremental_extension_reuses_overlap(self, tmp_path):
        """Growing the n sweep only computes the new column."""
        store = ResultCache(tmp_path)
        run_table1(trials=3, n_values=(64,), cache=store)
        run_table1(trials=3, n_values=(64, 128), cache=store)
        assert store.hits == 4      # the n=64 cells, one per d
        assert store.misses == 8    # 4 cold + 4 for n=128


class TestOtherDriversCached:
    @pytest.mark.parametrize("driver,kwargs", [
        (run_table2, dict(trials=2, n_values=(64,))),
        (run_table3, dict(trials=2, n_values=(64,))),
        (tiebreak_sweep, dict(n=64, d_values=(2,), trials=2)),
        (mn_sweep, dict(n=64, ratios=(1, 2), d_values=(2,), trials=2)),
        (dimension_sweep, dict(n=64, dims=(1, 2), d_values=(2,), trials=2)),
        (geometry_sweep, dict(n=64, d_values=(2,), trials=2)),
        (staleness_sweep, dict(n=64, round_sizes=(1, None), d_values=(2,), trials=2)),
        (run_dynamic, dict(trials=2, n_values=(64,), scenarios=("steady",))),
    ])
    def test_warm_rerun_hits_every_cell(self, tmp_path, driver, kwargs):
        store = ResultCache(tmp_path)
        cold = driver(cache=store, **kwargs)
        assert store.hits == 0 and store.misses == len(cold.cells)
        warm = driver(cache=store, **kwargs)
        assert store.hits == len(cold.cells)
        assert strip_timing(warm) == strip_timing(cold)

    def test_theory_check_cached(self, tmp_path):
        from repro.experiments.theory_check import run as run_theory

        store = ResultCache(tmp_path)
        cold = run_theory(n_values=(64,), d_values=(2,), trials=4, cache=store)
        stores = store.stores
        assert stores > 0 and store.hits == 0
        warm = run_theory(n_values=(64,), d_values=(2,), trials=4, cache=store)
        assert store.hits == stores
        assert warm.data == cold.data


class TestRunAllCached:
    def test_plan_reruns_incrementally(self, tmp_path):
        from repro.experiments.run_all import run_all

        plan = {
            "mini1": ("table1", dict(trials=2, n_values=(64,))),
            "mini_dyn": (
                "dynamic_churn",
                dict(trials=2, n_values=(64,), scenarios=("steady",)),
            ),
            # a text-report driver without cache support must still run
            "mini_lemmas": ("fig1_lemma8", dict(n=128, trials=2, ring_trials=20)),
        }
        store = ResultCache(tmp_path / "cache")
        first = run_all(
            str(tmp_path / "a"), plan=plan, cache=store, progress=lambda _: None
        )
        assert store.hits == 0 and store.stores == 5  # 4 table1 + 1 dynamic
        second = run_all(
            str(tmp_path / "b"), plan=plan, cache=store, progress=lambda _: None
        )
        assert store.hits == 5
        assert set(first) == set(second) == {"mini1", "mini_dyn", "mini_lemmas"}


class TestCliCacheFlags:
    def test_no_cache_flag(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.table1 as t1
        from repro.experiments.__main__ import main

        monkeypatch.setattr(t1, "DEFAULT_N_VALUES", (64,))
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "unused"))
        assert main(["table1", "--trials", "2", "--no-cache"]) == 0
        assert not (tmp_path / "unused").exists()

    def test_cache_dir_flag(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.table1 as t1
        from repro.experiments.__main__ import main

        monkeypatch.setattr(t1, "DEFAULT_N_VALUES", (64,))
        cache_dir = tmp_path / "explicit"
        assert main(["table1", "--trials", "2", "--cache", str(cache_dir)]) == 0
        assert ResultCache(cache_dir).entry_count() == 4

    def test_env_cache_used_by_default(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.table1 as t1
        from repro.experiments.__main__ import main

        monkeypatch.setattr(t1, "DEFAULT_N_VALUES", (64,))
        env_dir = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(env_dir))
        assert main(["table1", "--trials", "2"]) == 0
        assert ResultCache(env_dir).entry_count() == 4
