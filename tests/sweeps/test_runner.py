"""Runner semantics: cached submission, sharded execution, merging."""

import numpy as np
import pytest

from repro.stats.trials import CellSpec, run_cell, run_cell_profile
from repro.sweeps import (
    ResultCache,
    SweepGrid,
    SweepResult,
    fetch_or_compute,
    resolve_cache,
    run_sweep,
    submit_cell,
    submit_profile,
)

SPEC = CellSpec("ring", 128, 2)


class TestResolveCache:
    def test_off_forms(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache("off") is None

    def test_path_form(self, tmp_path):
        store = resolve_cache(tmp_path / "c")
        assert isinstance(store, ResultCache)

    def test_instance_passthrough(self, tmp_path):
        store = ResultCache(tmp_path)
        assert resolve_cache(store) is store

    def test_auto_follows_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "envcache"))
        assert resolve_cache("auto").root == tmp_path / "envcache"
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert resolve_cache("auto") is None

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_cache(3.14)


class TestJsonCounts:
    def test_roundtrip(self):
        from repro.stats.distributions import MaxLoadDistribution

        dist = MaxLoadDistribution.from_samples([3, 4, 4, 11])
        wire = dist.to_json_counts()
        assert wire == {"3": 1, "4": 2, "11": 1}
        assert MaxLoadDistribution.from_json_counts(wire).counts == dist.counts


class TestSubmitCell:
    def test_matches_run_cell_bit_identically(self, tmp_path):
        store = ResultCache(tmp_path)
        cached = submit_cell(SPEC, 6, 42, cache=store)
        direct = run_cell(SPEC, 6, 42)
        assert cached.counts == direct.counts

    def test_second_call_hits_and_matches(self, tmp_path):
        store = ResultCache(tmp_path)
        first = submit_cell(SPEC, 6, 42, cache=store)
        assert store.stats == {"hits": 0, "misses": 1, "stores": 1, "corrupt": 0}
        second = submit_cell(SPEC, 6, 42, cache=store)
        assert store.hits == 1
        assert second.counts == first.counts

    def test_perturbed_spec_misses(self, tmp_path):
        store = ResultCache(tmp_path)
        submit_cell(SPEC, 6, 42, cache=store)
        submit_cell(SPEC.with_(d=3), 6, 42, cache=store)
        submit_cell(SPEC, 7, 42, cache=store)
        submit_cell(SPEC, 6, 43, cache=store)
        assert store.hits == 0 and store.misses == 4

    def test_seed_none_bypasses_cache(self, tmp_path):
        store = ResultCache(tmp_path)
        submit_cell(SPEC, 3, None, cache=store)
        assert store.stats == {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}

    def test_numpy_integer_seed_is_cacheable(self, tmp_path):
        store = ResultCache(tmp_path)
        a = submit_cell(SPEC, 3, np.int64(9), cache=store)
        b = submit_cell(SPEC, 3, 9, cache=store)
        assert store.hits == 1 and a.counts == b.counts


class TestSubmitProfile:
    def test_roundtrip_exact(self, tmp_path):
        store = ResultCache(tmp_path)
        cold = submit_profile(SPEC, 4, 42, cache=store)
        warm = submit_profile(SPEC, 4, 42, cache=store)
        direct = run_cell_profile(SPEC, 4, 42)
        np.testing.assert_array_equal(cold, direct)
        np.testing.assert_array_equal(warm, direct)
        assert store.hits == 1

    def test_profile_and_cell_keys_do_not_collide(self, tmp_path):
        store = ResultCache(tmp_path)
        submit_cell(SPEC, 4, 42, cache=store)
        submit_profile(SPEC, 4, 42, cache=store)
        assert store.hits == 0 and store.misses == 2


class TestFetchOrCompute:
    def test_hit_skips_compute(self, tmp_path):
        from repro.stats.distributions import MaxLoadDistribution

        store = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return MaxLoadDistribution.from_samples([3, 3, 4])

        spec = {"kind": "custom", "x": 1, "seed": 5}
        a = fetch_or_compute(spec, compute, cache=store)
        b = fetch_or_compute(spec, compute, cache=store)
        assert len(calls) == 1
        assert a.counts == b.counts == {3: 2, 4: 1}


class TestRunSweep:
    GRID = SweepGrid(n=(64, 128), d=(1, 2), trials=4, name="t")

    def test_cached_uncached_and_workers_agree(self, tmp_path):
        base = run_sweep(self.GRID, cache="off")
        cached = run_sweep(self.GRID, cache=ResultCache(tmp_path))
        workers = run_sweep(self.GRID, cache="off", workers=2)
        assert base.to_json() == cached.to_json() == workers.to_json()

    def test_warm_rerun_hits_every_cell(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep(self.GRID, cache=store)
        warm = run_sweep(self.GRID, cache=store)
        assert warm.meta["hits"] == len(self.GRID)
        assert warm.meta["misses"] == 0

    def test_sharded_merge_byte_identical(self, tmp_path):
        """Acceptance: sharded execution merges to the unsharded bytes."""
        unsharded = run_sweep(self.GRID, cache="off")
        for count in (2, 3):
            shards = [
                run_sweep(self.GRID, cache="off", shard_index=i, shard_count=count)
                for i in range(count)
            ]
            merged = SweepResult.merge(shards)
            assert merged.to_json() == unsharded.to_json()

    def test_sharded_merge_via_files(self, tmp_path):
        unsharded = run_sweep(self.GRID, cache="off")
        paths = []
        for i in range(2):
            part = run_sweep(self.GRID, cache="off", shard_index=i, shard_count=2)
            paths.append(part.save(tmp_path / f"s{i}.json"))
        merged = SweepResult.merge([SweepResult.load(p) for p in paths])
        merged_path = merged.save(tmp_path / "merged.json")
        full_path = unsharded.save(tmp_path / "full.json")
        assert merged_path.read_bytes() == full_path.read_bytes()

    def test_workers_and_njobs_mutually_exclusive(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(self.GRID, cache="off", workers=2, n_jobs=2)

    def test_progress_lines(self, tmp_path):
        lines = []
        run_sweep(self.GRID, cache=ResultCache(tmp_path), progress=lines.append)
        assert len(lines) == len(self.GRID)
        assert all(line.startswith("[computed]") for line in lines)
        lines.clear()
        run_sweep(self.GRID, cache=ResultCache(tmp_path), progress=lines.append)
        assert all(line.startswith("[cache hit]") for line in lines)

    def test_merge_rejects_different_grids(self):
        other = SweepGrid(n=(64,), d=(1,), trials=4, name="other")
        a = run_sweep(self.GRID, cache="off")
        b = run_sweep(other, cache="off")
        with pytest.raises(ValueError, match="different grids"):
            SweepResult.merge([a, b])

    def test_report_bridge(self):
        result = run_sweep(self.GRID, cache="off")
        report = result.to_report()
        text = report.render()
        assert "2^6" in text and "d = 2" in text
        assert set(report.cells) == {(n, d) for n in (64, 128) for d in (1, 2)}

    def test_by_axes_collision_detected(self):
        grid = SweepGrid(n=(64,), d=(1, 2), space=("ring", "torus"), trials=2)
        result = run_sweep(grid, cache="off")
        with pytest.raises(ValueError, match="do not separate"):
            result.by_axes("n", "d")


class TestSweepThreads:
    """``threads`` never enters the cache key, the artifact, or the
    results — and worker processes default to one kernel thread each."""

    GRID = SweepGrid(n=(64, 128), d=(1, 2), trials=4, name="t")

    @pytest.fixture(autouse=True)
    def _unpinned_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)

    def test_workers_default_to_one_inner_thread(self):
        import warnings as _warnings

        from repro.sweeps.runner import _worker_threads

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # any warning fails the test
            assert _worker_threads(8, None) == 1

    def test_explicit_threads_warn_on_oversubscription(self):
        from repro.kernels import logical_cores
        from repro.sweeps.runner import _worker_threads

        workers = logical_cores()  # workers x 2 always exceeds cores
        with pytest.warns(RuntimeWarning, match="oversubscription"):
            assert _worker_threads(workers, 2) == 2

    def test_env_pinned_threads_reach_workers(self, monkeypatch):
        import warnings as _warnings

        from repro.sweeps.runner import _worker_threads

        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            assert _worker_threads(2, None) == 3

    def test_cache_hit_shared_across_thread_counts(self, tmp_path):
        """``threads`` is not in the key: a cell stored at threads=1
        is served verbatim to a threads=7 submission."""
        store = ResultCache(tmp_path)
        ref = submit_cell(SPEC, trials=4, seed=9, cache=store, threads=1)
        hit = submit_cell(SPEC, trials=4, seed=9, cache=store, threads=7)
        assert store.hits == 1 and store.misses == 1
        assert ref.counts == hit.counts

    def test_threaded_sweep_artifact_byte_identical(self, tmp_path):
        """Acceptance: the CI leg ``cmp``s threaded vs serial sweep
        artifacts, so the saved bytes must match exactly."""
        import warnings as _warnings

        serial = run_sweep(self.GRID, cache="off")
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            threaded = run_sweep(self.GRID, cache="off", threads=2)
            workers = run_sweep(
                self.GRID, cache="off", workers=2, threads=2
            )
        a = serial.save(tmp_path / "serial.json")
        b = threaded.save(tmp_path / "threaded.json")
        assert a.read_bytes() == b.read_bytes()
        assert workers.to_json() == serial.to_json()
