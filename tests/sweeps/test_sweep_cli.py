"""The ``sweep`` CLI: run, shard, merge, show."""

import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.sweeps.cli import main as sweep_main

GRID_ARGS = ["n=64,128", "d=1,2", "--trials", "3"]


class TestSweepRun:
    def test_run_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = sweep_main(
            ["run", *GRID_ARGS, "--cache", str(tmp_path / "c"), "--out", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert len(data["cells"]) == 4
        assert "4 cells" in capsys.readouterr().out

    def test_warm_rerun_all_hits(self, tmp_path, capsys):
        cache = ["--cache", str(tmp_path / "c")]
        assert sweep_main(["run", *GRID_ARGS, *cache]) == 0
        capsys.readouterr()
        assert sweep_main(["run", *GRID_ARGS, *cache]) == 0
        assert "4 cache hits, 0 computed" in capsys.readouterr().out

    def test_no_cache_leaves_no_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env"))
        assert sweep_main(["run", *GRID_ARGS, "--no-cache"]) == 0
        assert not (tmp_path / "env").exists()

    def test_table_rendering(self, tmp_path, capsys):
        assert sweep_main(["run", *GRID_ARGS, "--no-cache", "--table"]) == 0
        out = capsys.readouterr().out
        assert "2^6" in out and "d = 2" in out

    def test_bad_axis_token(self, tmp_path, capsys):
        assert sweep_main(["run", "bogus=1", "--no-cache"]) == 2
        assert "bad grid" in capsys.readouterr().err

    def test_jobs_and_workers_conflict_is_clean(self, capsys):
        code = sweep_main(
            ["run", "n=64", "d=1", "--trials", "2", "--no-cache",
             "--jobs", "2", "--workers", "2"]
        )
        assert code == 2
        assert "sweep failed" in capsys.readouterr().err

    def test_bad_shard_index_is_clean(self, capsys):
        code = sweep_main(
            ["run", "n=64", "d=1", "--trials", "2", "--no-cache",
             "--shard-index", "3", "--shard-count", "2"]
        )
        assert code == 2
        assert "sweep failed" in capsys.readouterr().err

    def test_delegated_from_experiments_main(self, tmp_path, capsys):
        code = experiments_main(
            ["sweep", "run", *GRID_ARGS, "--cache", str(tmp_path / "c")]
        )
        assert code == 0
        assert "4 cells" in capsys.readouterr().out


class TestSweepMergeShow:
    def test_shard_merge_matches_unsharded_bytes(self, tmp_path, capsys):
        """Acceptance: shard artifacts merge to the unsharded bytes."""
        cache = ["--cache", str(tmp_path / "c")]
        for i in (0, 1):
            assert sweep_main([
                "run", *GRID_ARGS, *cache,
                "--shard-index", str(i), "--shard-count", "2",
                "--out", str(tmp_path / f"s{i}.json"),
            ]) == 0
        assert sweep_main([
            "merge", str(tmp_path / "s0.json"), str(tmp_path / "s1.json"),
            "--out", str(tmp_path / "merged.json"),
        ]) == 0
        assert sweep_main([
            "run", *GRID_ARGS, *cache, "--out", str(tmp_path / "full.json"),
        ]) == 0
        merged = (tmp_path / "merged.json").read_bytes()
        full = (tmp_path / "full.json").read_bytes()
        assert merged == full

    def test_merge_rejects_mismatched_grids(self, tmp_path, capsys):
        assert sweep_main([
            "run", "n=64", "d=1", "--trials", "2", "--no-cache",
            "--out", str(tmp_path / "a.json"),
        ]) == 0
        assert sweep_main([
            "run", "n=128", "d=1", "--trials", "2", "--no-cache",
            "--out", str(tmp_path / "b.json"),
        ]) == 0
        code = sweep_main(
            ["merge", str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        )
        assert code == 2
        assert "merge failed" in capsys.readouterr().err

    def test_merge_missing_file_is_clean(self, tmp_path, capsys):
        assert sweep_main(["merge", str(tmp_path / "nope.json")]) == 2
        assert "merge failed" in capsys.readouterr().err

    def test_show_missing_file_is_clean(self, tmp_path, capsys):
        assert sweep_main(["show", str(tmp_path / "nope.json")]) == 2
        assert "show failed" in capsys.readouterr().err

    def test_show(self, tmp_path, capsys):
        assert sweep_main([
            "run", *GRID_ARGS, "--no-cache", "--out", str(tmp_path / "a.json"),
        ]) == 0
        capsys.readouterr()
        assert sweep_main(["show", str(tmp_path / "a.json")]) == 0
        assert "max-load distributions" in capsys.readouterr().out

    def test_experiments_list_mentions_sweep(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "sweep" in capsys.readouterr().out
