"""Tests for repro.utils.validation: uniform argument checking."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_float_array,
    check_dimension,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_unit_interval,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="x must be an int"):
            check_positive_int(2.0, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="n_trials"):
            check_positive_int(-1, "n_trials")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "m") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "m")


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0, 0.5, 1, np.float64(0.25)])
    def test_accepts_valid(self, v):
        assert check_probability(v, "p") == float(v)

    @pytest.mark.parametrize("v", [-0.1, 1.01, 2])
    def test_rejects_out_of_range(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability("p", "p")


class TestCheckUnitInterval:
    def test_rejects_one(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            check_unit_interval(1.0, "x")

    def test_accepts_zero(self):
        assert check_unit_interval(0.0, "x") == 0.0


class TestCheckDimension:
    def test_accepts_small(self):
        assert check_dimension(3) == 3

    def test_rejects_huge(self):
        with pytest.raises(ValueError, match="unsupported"):
            check_dimension(9)


class TestAsFloatArray:
    def test_coerces_list(self):
        arr = as_float_array([1, 2], "a")
        assert arr.dtype == np.float64

    def test_rank_check(self):
        with pytest.raises(ValueError, match="ndim=2"):
            as_float_array([1.0, 2.0], "a", ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([np.nan], "a")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([np.inf, 0.0], "a")
