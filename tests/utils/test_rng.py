"""Tests for repro.utils.rng: deterministic seeding and spawning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    interleave_uniforms,
    resolve_rng,
    spawn_rngs,
    spawn_seed_sequences,
    stable_hash_seed,
)


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert resolve_rng(42).random() == resolve_rng(42).random()

    def test_distinct_ints_differ(self):
        assert resolve_rng(1).random() != resolve_rng(2).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert resolve_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        a = resolve_rng(ss).random()
        b = resolve_rng(np.random.SeedSequence(5)).random()
        assert a == b

    def test_numpy_integer_accepted(self):
        assert resolve_rng(np.int64(7)).random() == resolve_rng(7).random()

    @pytest.mark.parametrize("bad", ["seed", 1.5, [1, 2]])
    def test_invalid_types_raise(self, bad):
        with pytest.raises(TypeError, match="seed must be"):
            resolve_rng(bad)


class TestSpawning:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        assert len(spawn_seed_sequences(0, 0)) == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_seed_sequences(0, -1)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(123, 2)
        assert a.random() != b.random()

    def test_spawn_is_stable_across_calls(self):
        first = [g.random() for g in spawn_rngs(9, 3)]
        second = [g.random() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_prefix_property(self):
        """Trial i's stream must not depend on how many trials there are."""
        few = [g.random() for g in spawn_rngs(9, 2)]
        many = [g.random() for g in spawn_rngs(9, 8)]
        assert few == many[:2]

    def test_accepts_seed_sequence_master(self):
        ss = np.random.SeedSequence(77)
        vals = [g.random() for g in spawn_rngs(ss, 2)]
        vals2 = [g.random() for g in spawn_rngs(np.random.SeedSequence(77), 2)]
        assert vals == vals2


class TestInterleaveUniforms:
    def test_shapes(self, rng):
        pts, tb = interleave_uniforms(rng, 10, 3)
        assert pts.shape == (10, 3)
        assert tb.shape == (10,)

    def test_ranges(self, rng):
        pts, tb = interleave_uniforms(rng, 100, 2)
        assert np.all((pts >= 0) & (pts < 1))
        assert np.all((tb >= 0) & (tb < 1))


class TestStableHashSeed:
    def test_deterministic(self):
        assert stable_hash_seed("a", 1) == stable_hash_seed("a", 1)

    def test_order_sensitive(self):
        assert stable_hash_seed("a", "b") != stable_hash_seed("b", "a")

    def test_fits_in_63_bits(self):
        for parts in [("x",), ("table1", 2**24, 4)]:
            s = stable_hash_seed(*parts)
            assert 0 <= s < 2**63

    @given(st.text(max_size=30), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_always_valid_numpy_seed(self, text, num):
        np.random.default_rng(stable_hash_seed(text, num))
