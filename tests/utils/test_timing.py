"""Tests for repro.utils.timing."""

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_lap_records(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        assert "a" in sw.laps and sw.laps["a"] >= 0.0

    def test_laps_accumulate(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        first = sw.laps["a"]
        with sw.lap("a"):
            pass
        assert sw.laps["a"] >= first

    def test_total_sums(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert abs(sw.total - (sw.laps["a"] + sw.laps["b"])) < 1e-12

    def test_format_empty(self):
        assert Stopwatch().format() == "(no laps)"

    def test_format_contains_names(self):
        sw = Stopwatch()
        with sw.lap("setup"):
            pass
        text = sw.format()
        assert "setup" in text and "total" in text


class TestTimed:
    def test_sink_receives_message(self):
        messages = []
        with timed("label", sink=messages.append):
            pass
        assert len(messages) == 1 and "label" in messages[0]

    def test_prints_by_default(self, capsys):
        with timed("xyz"):
            pass
        assert "xyz" in capsys.readouterr().out
