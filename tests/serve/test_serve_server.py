"""PlacementServer semantics: batching, queueing, keys, snapshots."""

import numpy as np
import pytest

from repro.core.ring import RingSpace
from repro.serve import (
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    CandidateStream,
    PlacementServer,
)


def _server(seed=7, **kwargs):
    kwargs.setdefault("max_batch", 8)
    return PlacementServer(RingSpace.random(16, seed=9), d=2, seed=seed, **kwargs)


def _scalar_run(server):
    for i in range(40):
        server.insert(f"k{i}")
    outs = [server.lookup(f"k{i}") for i in range(40)]
    for i in range(0, 40, 3):
        server.delete(f"k{i}")
    return outs


class TestBatchingEquivalence:
    def test_scalar_vs_submit(self):
        s1 = _server()
        outs1 = _scalar_run(s1)
        s2 = _server()
        kinds = np.array([OP_INSERT] * 40 + [OP_LOOKUP] * 40
                         + [OP_DELETE] * 14, dtype=np.int8)
        keys = ([f"k{i}" for i in range(40)] * 2
                + [f"k{i}" for i in range(0, 40, 3)])
        res = s2.submit(kinds, keys)
        assert list(res[40:80]) == outs1
        assert np.array_equal(s1.loads, s2.loads)

    @pytest.mark.parametrize("max_batch", [1, 2, 7, 4096])
    def test_any_batch_size_identical(self, max_batch):
        ref = _server(max_batch=4096)
        _scalar_run(ref)
        s = _server(max_batch=max_batch)
        kinds = np.array([OP_INSERT] * 40 + [OP_LOOKUP] * 40
                         + [OP_DELETE] * 14, dtype=np.int8)
        keys = ([f"k{i}" for i in range(40)] * 2
                + [f"k{i}" for i in range(0, 40, 3)])
        s.submit(kinds, keys)
        assert np.array_equal(ref.loads, s.loads)

    def test_enqueue_flush_matches_submit(self):
        s1 = _server()
        outs1 = _scalar_run(s1)
        s2 = _server(max_pending=16)
        for i in range(40):
            s2.enqueue(OP_INSERT, f"k{i}")
        for i in range(40):
            s2.enqueue(OP_LOOKUP, f"k{i}")
        for i in range(0, 40, 3):
            s2.enqueue(OP_DELETE, f"k{i}")
        res = s2.flush()
        assert list(res[40:80]) == outs1
        assert np.array_equal(s1.loads, s2.loads)

    def test_backpressure_drains_at_capacity(self):
        s = _server(max_pending=8)
        for i in range(8):
            s.enqueue(OP_INSERT, f"k{i}")
        assert s.pending == 0  # the queue drained itself
        assert s.occupancy == 8
        assert s.flush().size == 8

    def test_scalar_ops_flush_queue_first(self):
        s = _server()
        s.enqueue(OP_INSERT, "a")
        assert s.pending == 1
        assert s.lookup("a") >= 0  # visible: the queue flushed
        assert s.flush().size == 1


class TestKeySemantics:
    def test_duplicate_insert_raises(self):
        s = _server()
        s.insert("a")
        with pytest.raises(KeyError):
            s.insert("a")

    def test_unknown_delete_and_lookup_raise(self):
        s = _server()
        with pytest.raises(KeyError):
            s.delete("ghost")
        with pytest.raises(KeyError):
            s.lookup("ghost")

    def test_delete_returns_freed_bin(self):
        s = _server()
        placed = s.insert("a")
        assert s.delete("a") == placed
        assert s.occupancy == 0
        s.insert("a")  # the key can come back
        assert s.occupancy == 1

    def test_batch_results_shape(self):
        s = _server()
        res = s.submit(
            np.array([OP_INSERT, OP_LOOKUP, OP_DELETE], dtype=np.int8),
            ["a", "a", "a"],
        )
        assert res[0] == res[1]  # insert and lookup agree on the bin
        assert res[2] == -1  # deletes report -1 in batch results

    def test_submit_ids_requires_consecutive_inserts(self):
        s = _server()
        with pytest.raises(ValueError, match="consecutive"):
            s.submit_ids(
                np.array([OP_INSERT], dtype=np.int8),
                np.array([5], dtype=np.int64),
            )


class TestChurn:
    def test_bin_leave_relocates(self):
        s = _server()
        for i in range(30):
            s.insert(f"k{i}")
        victim = int(np.flatnonzero(s.loads > 0)[0])
        before = s.occupancy
        s.bin_leave(victim)
        assert s.occupancy == before  # balls moved, none lost
        assert s.loads[victim] == 0
        s.bin_join(victim)
        assert s.state.active[victim]

    def test_decisions_independent_of_arrival_pattern(self):
        # the online stream draws whole RNG blocks, so interleaving
        # reads between inserts cannot shift later decisions
        s1 = _server(seed=21)
        bins1 = [s1.insert(f"k{i}") for i in range(20)]
        s2 = _server(seed=21)
        bins2 = []
        for i in range(20):
            bins2.append(s2.insert(f"k{i}"))
            for j in range(i + 1):
                s2.lookup(f"k{j}")
        assert bins1 == bins2


class TestSnapshot:
    def test_save_load_roundtrip_continues_identically(self, tmp_path):
        path = tmp_path / "srv.npz"
        a = _server(seed=5)
        for i in range(20):
            a.insert(f"k{i}")
        a.save(path)
        b, _ = PlacementServer.load(path)
        for i in range(20, 45):
            assert a.insert(f"k{i}") == b.insert(f"k{i}")
        assert np.array_equal(a.loads, b.loads)
        assert a.lookup("k3") == b.lookup("k3")

    def test_load_restores_key_map_and_knobs(self, tmp_path):
        path = tmp_path / "srv.npz"
        a = _server(seed=5, max_batch=4, max_pending=32)
        a.insert("hello")
        a.save(path)
        b, _ = PlacementServer.load(path)
        assert b.max_batch == 4 and b.max_pending == 32
        assert b.lookup("hello") == a.lookup("hello")
        with pytest.raises(KeyError):
            b.insert("hello")

    def test_save_flushes_queue(self, tmp_path):
        path = tmp_path / "srv.npz"
        a = _server(seed=5)
        a.enqueue(OP_INSERT, "queued")
        a.save(path)
        b, _ = PlacementServer.load(path)
        assert b.lookup("queued") >= 0

    def test_extra_payload_roundtrip(self, tmp_path):
        path = tmp_path / "srv.npz"
        a = _server(seed=5)
        a.insert("x")
        a.save(path, extra_arrays={"series": np.arange(3)},
               extra_meta={"tag": "t1"})
        _, extra = PlacementServer.load(path)
        assert extra["meta"]["tag"] == "t1"
        assert np.array_equal(extra["arrays"]["series"], np.arange(3))


class TestLatencyStats:
    def test_counts_and_ordering(self):
        s = _server()
        for i in range(10):
            s.insert(f"k{i}")
        st = s.latency_stats()
        assert st.count == 10
        assert 0 < st.p50_s <= st.p95_s <= st.p99_s <= st.max_s
        assert st.ops_per_s > 0
        assert "ops/s" in st.format()

    def test_empty_stats(self):
        st = _server().latency_stats()
        assert st.count == 0 and st.ops_per_s == 0.0

    def test_reset(self):
        s = _server()
        s.insert("a")
        s.reset_latency()
        assert s.latency_stats().count == 0


class TestValidation:
    def test_pending_must_cover_batch(self):
        with pytest.raises(ValueError, match="max_pending"):
            _server(max_batch=64, max_pending=8)

    def test_prebuilt_state_needs_stream(self):
        from repro.core.incremental import IncrementalState

        space = RingSpace.random(16, seed=9)
        state = IncrementalState(space, 2, "random")
        with pytest.raises(ValueError, match="stream"):
            PlacementServer(space, 2, state=state)

    def test_predrawn_stream_exhaustion(self):
        space = RingSpace.random(16, seed=9)
        stream = CandidateStream.predrawn(
            np.zeros((2, 2), dtype=np.int64), np.zeros(2)
        )
        with pytest.raises(RuntimeError, match="exhausted"):
            stream.ensure(3)
