"""zipf_replay_ops: stream structure, liveness, determinism."""

import numpy as np
import pytest

from repro.core.ring import RingSpace
from repro.serve import (
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    PlacementServer,
    zipf_replay_ops,
)


class TestStreamStructure:
    def test_churn_pairs_balance(self):
        kinds, args = zipf_replay_ops(100, 500, lookup_fraction=0.5, seed=0)
        assert (kinds == OP_INSERT).sum() == (kinds == OP_DELETE).sum()
        assert kinds.dtype == np.int8 and args.dtype == np.int64

    def test_expansion_size(self):
        kinds, _ = zipf_replay_ops(100, 500, lookup_fraction=0.5, seed=0)
        n_lookups = int((kinds == OP_LOOKUP).sum())
        n_churn = int((kinds == OP_INSERT).sum())
        assert n_lookups + 2 * n_churn == kinds.size
        assert n_lookups + n_churn == 500

    def test_all_lookups(self):
        kinds, args = zipf_replay_ops(50, 200, lookup_fraction=1.0, seed=1)
        assert (kinds == OP_LOOKUP).all()
        assert args.min() >= 0 and args.max() < 50

    def test_all_churn(self):
        kinds, args = zipf_replay_ops(50, 100, lookup_fraction=0.0, seed=1)
        assert kinds.size == 200
        # strict delete-then-insert alternation, FIFO delete order
        assert (kinds[0::2] == OP_DELETE).all()
        assert (kinds[1::2] == OP_INSERT).all()
        assert np.array_equal(args[0::2], np.arange(100))
        assert np.array_equal(args[1::2], 50 + np.arange(100))

    def test_deterministic(self):
        a = zipf_replay_ops(64, 300, seed=9)
        b = zipf_replay_ops(64, 300, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_replay_ops(0, 10)
        with pytest.raises(ValueError):
            zipf_replay_ops(10, 10, lookup_fraction=1.5)


class TestLiveness:
    def test_stream_replays_cleanly(self):
        # every lookup/delete targets a live ball; occupancy is pinned
        m = 150
        kinds, args = zipf_replay_ops(m, 400, lookup_fraction=0.7, seed=3)
        server = PlacementServer(RingSpace.random(64, seed=0), seed=1,
                                 max_batch=64)
        server.submit_ids(np.full(m, OP_INSERT, dtype=np.int8),
                          np.arange(m, dtype=np.int64))
        res = server.submit_ids(kinds, args)
        assert server.occupancy == m
        looked = res[kinds == OP_LOOKUP]
        assert (looked >= 0).all()  # every lookup found a placed ball
