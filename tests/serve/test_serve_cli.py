"""The ``serve replay`` CLI: artifacts, determinism, checkpoint/resume."""

import json

import pytest

from repro.serve.cli import main


def _quick(*extra):
    return ["replay", "--quick", *extra]


class TestReplayVerb:
    def test_smoke(self, capsys):
        assert main(_quick()) == 0
        out = capsys.readouterr().out
        assert "steady replay" in out
        assert "ops/s" in out

    def test_artifact_schema(self, tmp_path):
        out = tmp_path / "a.json"
        assert main(_quick("--out", str(out))) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-serve-replay-v1"
        assert payload["occupancy"] == payload["inserts"] - payload["deletes"]
        assert len(payload["loads_blake2b"]) == 32
        assert len(payload["series"]["max_load"]) > 0

    def test_artifact_is_batch_and_backend_independent(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(_quick("--out", str(a), "--batch", "1")) == 0
        assert main(_quick("--out", str(b), "--batch", "4096",
                           "--backend", "numpy")) == 0
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.parametrize("workload", ["burst", "storm"])
    def test_other_workloads(self, workload, capsys):
        assert main(_quick("--workload", workload)) == 0
        assert f"{workload} replay" in capsys.readouterr().out


class TestCheckpointResume:
    def test_resumed_artifact_identical(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        ck = tmp_path / "ck.npz"
        assert main(_quick("--out", str(full))) == 0
        assert main(_quick("--checkpoint", str(ck), "--checkpoint-at", "500",
                           "--out", str(resumed))) == 0
        assert not resumed.exists()  # partial runs skip --out
        assert "checkpointed at event 500" in capsys.readouterr().out
        assert main(["replay", "--resume", str(ck),
                     "--out", str(resumed)]) == 0
        assert full.read_bytes() == resumed.read_bytes()

    def test_resume_rejects_non_replay_file(self, tmp_path, capsys):
        from repro.core.ring import RingSpace
        from repro.serve import PlacementServer

        path = tmp_path / "srv.npz"
        server = PlacementServer(RingSpace.random(16, seed=0), seed=1)
        server.insert("k")
        server.save(path)
        assert main(["replay", "--resume", str(path)]) == 2
        assert "no replay parameters" in capsys.readouterr().err
