"""Parity: the incremental core vs the batch dynamics engines.

The serving tier's contract — a replayed trace produces final loads
AND per-epoch trajectories bit-identical to
``simulate_dynamics`` (sequential and batched), for any micro-batch
size, backend, and across a mid-trace checkpoint/restore.
"""

import pytest
from helpers import assert_dynamics_equal as _assert_matches
from helpers import named_scenarios as _traces

from repro.core.ring import RingSpace
from repro.dynamics import simulate_dynamics
from repro.dynamics.events import churn_storm_trace, steady_state_trace
from repro.kernels import available_backends
from repro.serve import replay_trace

BACKENDS = [name for name, ok in available_backends().items() if ok]


class TestReplayParity:
    @pytest.mark.parametrize("name,space,trace", _traces(),
                             ids=["steady", "burst", "storm"])
    def test_matches_sequential_engine(self, name, space, trace):
        ref = simulate_dynamics(space, trace, d=2, seed=7, batch_size=None)
        result = replay_trace(space, trace, d=2, seed=7, max_batch=64)
        _assert_matches(result, ref)

    @pytest.mark.parametrize("name,space,trace", _traces(),
                             ids=["steady", "burst", "storm"])
    def test_matches_batched_engine(self, name, space, trace):
        ref = simulate_dynamics(space, trace, d=2, seed=7, batch_size=128)
        result = replay_trace(space, trace, d=2, seed=7, max_batch=1024)
        _assert_matches(result, ref)

    @pytest.mark.parametrize("max_batch", [1, 3, 64, 4096])
    def test_batch_size_invariant(self, max_batch):
        space = RingSpace.random(48, seed=8)
        trace = steady_state_trace(150, 100, policy="random", epochs=4, seed=9)
        ref = simulate_dynamics(space, trace, d=2, seed=10, batch_size=None)
        result = replay_trace(space, trace, d=2, seed=10, max_batch=max_batch)
        _assert_matches(result, ref)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_invariant(self, backend):
        space = RingSpace.random(48, seed=8)
        trace = churn_storm_trace(48, 120, waves=2, pairs_per_wave=40,
                                  policy="random", seed=11)
        ref = simulate_dynamics(space, trace, d=2, seed=12, batch_size=64)
        result = replay_trace(space, trace, d=2, seed=12, backend=backend)
        _assert_matches(result, ref)

    def test_strategy_and_d_sweep(self):
        space = RingSpace.random(32, seed=13)
        trace = steady_state_trace(100, 80, policy="fifo", epochs=3, seed=14)
        for d in (1, 3):
            for strategy in ("random", "smaller"):
                ref = simulate_dynamics(space, trace, d=d, strategy=strategy,
                                        seed=15, batch_size=None)
                result = replay_trace(space, trace, d=d, strategy=strategy,
                                      seed=15)
                _assert_matches(result, ref)


class TestCheckpointResume:
    @pytest.mark.parametrize("name,space,trace", _traces(),
                             ids=["steady", "burst", "storm"])
    def test_resume_matches_uninterrupted(self, name, space, trace, tmp_path):
        full = replay_trace(space, trace, d=2, seed=16, max_batch=17)
        ck = tmp_path / "ck.npz"
        for at in (1, trace.num_events // 2, trace.num_events - 1):
            part = replay_trace(space, trace, d=2, seed=16, max_batch=17,
                                checkpoint=ck, checkpoint_at=at)
            assert part.checkpointed
            assert part.events == at
            resumed = replay_trace(space, trace, d=2, seed=16, max_batch=17,
                                   resume_from=ck)
            _assert_matches(resumed, full)

    def test_resume_with_different_knobs_is_identical(self, tmp_path):
        # engine knobs cannot change results, so a resume may re-pick them
        space = RingSpace.random(32, seed=4)
        trace = churn_storm_trace(32, 120, waves=3, leave_fraction=0.25,
                                  pairs_per_wave=30, policy="fifo", seed=5)
        full = replay_trace(space, trace, d=2, seed=17)
        ck = tmp_path / "ck.npz"
        replay_trace(space, trace, d=2, seed=17, checkpoint=ck,
                     checkpoint_at=trace.num_events // 3)
        for backend in BACKENDS:
            resumed = replay_trace(space, trace, d=2, seed=17, max_batch=5,
                                   backend=backend, resume_from=ck)
            _assert_matches(resumed, full)

    def test_checkpoint_requires_path(self):
        space = RingSpace.random(16, seed=0)
        trace = steady_state_trace(30, 20, policy="random", epochs=2, seed=1)
        with pytest.raises(ValueError, match="checkpoint path"):
            replay_trace(space, trace, seed=2, checkpoint_at=5)

    def test_wrong_trace_rejected(self, tmp_path):
        space = RingSpace.random(16, seed=0)
        trace = steady_state_trace(30, 20, policy="random", epochs=2, seed=1)
        other = steady_state_trace(30, 40, policy="random", epochs=2, seed=1)
        ck = tmp_path / "ck.npz"
        replay_trace(space, trace, seed=2, checkpoint=ck, checkpoint_at=5)
        with pytest.raises(ValueError, match="trace"):
            replay_trace(space, other, seed=2, resume_from=ck)

    def test_non_replay_checkpoint_rejected(self, tmp_path):
        from repro.serve import PlacementServer

        space = RingSpace.random(16, seed=0)
        server = PlacementServer(space, seed=1)
        server.insert("k")
        path = tmp_path / "srv.npz"
        server.save(path)
        trace = steady_state_trace(30, 20, policy="random", epochs=2, seed=1)
        with pytest.raises(ValueError, match="not a replay checkpoint"):
            replay_trace(space, trace, seed=2, resume_from=path)
