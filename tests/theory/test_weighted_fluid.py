"""Tests for the weighted fluid limit (the conclusion's open problem)."""

import numpy as np
import pytest

from repro.stats.trials import CellSpec, run_cell_profile
from repro.theory.fluid import fluid_limit_tails
from repro.theory.weighted_fluid import (
    VORONOI_GAMMA_SHAPE,
    WeightModel,
    weight_model_for,
    weighted_fluid_predicted_max_load,
    weighted_fluid_tails,
)


class TestWeightModel:
    def test_point_mass(self):
        m = WeightModel.point_mass()
        assert m.weights.tolist() == [1.0]

    def test_gamma_mean_one(self):
        for shape in (0.5, 1.0, 3.575):
            m = WeightModel.gamma(shape, n_buckets=32)
            assert float((m.probs * m.weights).sum()) == pytest.approx(1.0)

    def test_gamma_buckets_increasing(self):
        m = WeightModel.gamma(1.0, n_buckets=16)
        assert np.all(np.diff(m.weights) > 0)

    def test_gamma_variance_matches_law(self):
        """Bucketed second moment approaches Var + 1 = 1/shape + 1."""
        shape = 2.0
        m = WeightModel.gamma(shape, n_buckets=256)
        second = float((m.probs * m.weights**2).sum())
        # bucketing underestimates the variance slightly
        assert second == pytest.approx(1.0 + 1.0 / shape, rel=0.05)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            WeightModel(np.array([]))
        with pytest.raises(ValueError):
            WeightModel(np.array([1.0, -0.5]))
        with pytest.raises(ValueError):
            WeightModel.gamma(0.0)

    def test_weight_model_for(self):
        assert weight_model_for("uniform").k == 1
        assert weight_model_for("ring").k == 48
        with pytest.raises(ValueError, match="unknown space"):
            weight_model_for("sphere")

    def test_voronoi_gamma_fits_exact_areas(self):
        """Kiang's Gamma(3.575) against our exact toroidal areas."""
        from repro.geo2d.voronoi import toroidal_voronoi_areas

        n = 1500
        rng = np.random.default_rng(0)
        areas = n * toroidal_voronoi_areas(rng.random((n, 2)))
        # moment check: Var ~ 1/3.575 ~ 0.28
        assert float(areas.var()) == pytest.approx(
            1.0 / VORONOI_GAMMA_SHAPE, rel=0.2
        )


class TestReductionToClassical:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_point_mass_matches_unweighted_ode(self, d):
        out = weighted_fluid_tails(d, weights=WeightModel.point_mass())
        classical = fluid_limit_tails(d)
        depth = min(out["s"].size, classical.size, 10)
        assert np.allclose(out["s"][:depth], classical[:depth], atol=1e-6)

    def test_s_equals_u_for_point_mass(self):
        out = weighted_fluid_tails(2, weights=WeightModel.point_mass())
        assert np.allclose(out["s"], out["u"], atol=1e-9)


class TestStructure:
    def test_tails_monotone(self):
        out = weighted_fluid_tails(2, weights=weight_model_for("ring"))
        assert np.all(np.diff(out["s"]) <= 1e-12)
        assert np.all(np.diff(out["u"]) <= 1e-12)

    def test_measure_tail_heavier_than_number_tail(self):
        """Big bins fill first: u_i >= s_i everywhere."""
        out = weighted_fluid_tails(2, weights=weight_model_for("ring"))
        assert np.all(out["u"] >= out["s"] - 1e-12)

    def test_mass_conservation(self):
        """sum_i s_i = lam (each ball at exactly one height)."""
        for lam in (1.0, 2.0):
            out = weighted_fluid_tails(2, lam, weights=weight_model_for("ring"))
            assert float(out["s"][1:].sum()) == pytest.approx(lam, rel=1e-4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            weighted_fluid_tails(0)
        with pytest.raises(ValueError):
            weighted_fluid_tails(2, lam=0.0)


class TestMatchesSimulation:
    """The headline: the weighted ODE predicts the geometric tails."""

    N = 4096
    TRIALS = 8

    def _profile(self, kind):
        return (
            run_cell_profile(CellSpec(kind, self.N, 2), self.TRIALS, seed=31)
            / self.N
        )

    def test_ring_tails(self):
        sim = self._profile("ring")
        fluid = weighted_fluid_tails(2, weights=weight_model_for("ring"))["s"]
        for i in (1, 2, 3):
            assert sim[i] == pytest.approx(fluid[i], abs=0.02), i

    def test_torus_tails(self):
        sim = self._profile("torus")
        fluid = weighted_fluid_tails(2, weights=weight_model_for("torus"))["s"]
        for i in (1, 2, 3):
            assert sim[i] == pytest.approx(fluid[i], abs=0.02), i

    def test_predicted_max_loads_match_paper(self):
        """Paper Table 1/2 at 2^20, d=2: ring 5, torus 4; uniform ODE
        alone says 4 -- the weighted model recovers the ring's +1."""
        ring = weighted_fluid_predicted_max_load(
            2**20, 2, weights=weight_model_for("ring")
        )
        torus = weighted_fluid_predicted_max_load(
            2**20, 2, weights=weight_model_for("torus")
        )
        unif = weighted_fluid_predicted_max_load(2**20, 2)
        assert (ring, torus, unif) == (5, 4, 4)
