"""Tests for arc-length laws (Lemmas 4-6) against exact spacing theory."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import RingSpace
from repro.theory.arcs import (
    arc_survival,
    expected_arcs_at_least,
    expected_max_arc,
    lemma4_tail,
    lemma5_tail,
    lemma6_failure_probability_is_small,
    lemma6_in_window,
    lemma6_sum_bound,
    longest_arc_bound,
    longest_arc_exceedance_probability,
    sample_spacings,
)


class TestArcSurvival:
    def test_exact_small_case(self):
        # n=2: spacing ~ U(0,1) survival 1-x... actually (1-x)^{n-1}
        assert arc_survival(0.3, 2) == pytest.approx(0.7)

    def test_boundaries(self):
        assert arc_survival(0.0, 10) == 1.0
        assert arc_survival(1.0, 10) == 0.0

    def test_monte_carlo_agreement(self):
        n = 50
        spacings = sample_spacings(n, 4000, seed=0)
        for x in (0.5 / n, 2.0 / n, 5.0 / n):
            emp = float((spacings[:, 0] >= x).mean())
            assert emp == pytest.approx(arc_survival(x, n), abs=0.03)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            arc_survival(1.5, 3)


class TestExpectedArcs:
    def test_exact_value(self):
        n, c = 100, 3.0
        assert expected_arcs_at_least(c, n) == pytest.approx(
            n * (1 - c / n) ** (n - 1)
        )

    def test_bound_dominates_exact_for_c_ge_2(self):
        for n in (10, 100, 10_000):
            for c in (2.0, 3.0, 8.0):
                if c <= n:
                    assert expected_arcs_at_least(c, n, bound=True) >= (
                        expected_arcs_at_least(c, n)
                    )

    def test_bound_requires_c_ge_2(self):
        with pytest.raises(ValueError, match="c >= 2"):
            expected_arcs_at_least(1.0, 100, bound=True)

    def test_monte_carlo(self):
        n = 200
        spacings = sample_spacings(n, 3000, seed=1)
        emp = float((spacings >= 3.0 / n).sum(axis=1).mean())
        assert emp == pytest.approx(expected_arcs_at_least(3.0, n), rel=0.05)


class TestLemma4And5:
    def test_lemma5_weaker_than_lemma4(self):
        """The martingale tail must dominate the negative-dependence one."""
        for n in (100, 1000, 100_000):
            for c in (2.0, 4.0, 8.0):
                assert lemma5_tail(c, n) >= lemma4_tail(c, n)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            lemma4_tail(1.0, 100)
        with pytest.raises(ValueError):
            lemma4_tail(101.0, 100)
        with pytest.raises(ValueError):
            lemma5_tail(1.9, 100)

    def test_lemma4_dominates_monte_carlo(self):
        """Empirical exceedance frequency must stay below the bound."""
        n, c, trials = 500, 3.0, 2000
        spacings = sample_spacings(n, trials, seed=2)
        counts = (spacings >= c / n).sum(axis=1)
        exceed = float((counts >= 2 * n * math.exp(-c)).mean())
        # 3-sigma slack on the empirical frequency
        slack = 3 * math.sqrt(max(exceed, 1e-4) / trials)
        assert exceed <= lemma4_tail(c, n) + slack

    def test_tails_decrease_in_n(self):
        assert lemma4_tail(3.0, 10_000) < lemma4_tail(3.0, 100)


class TestLemma6:
    def test_bound_value(self):
        assert lemma6_sum_bound(10, 1000) == pytest.approx(
            2 * (10 / 1000) * math.log(100)
        )

    def test_full_selection_returns_one(self):
        assert lemma6_sum_bound(50, 50) == 1.0

    def test_window(self):
        n = 2**16
        assert lemma6_in_window(int(math.log(n) ** 2) + 1, n)
        assert not lemma6_in_window(2, n)
        assert not lemma6_in_window(n // 2, n)

    def test_rejects_a_gt_n(self):
        with pytest.raises(ValueError):
            lemma6_sum_bound(11, 10)

    def test_monte_carlo_bound_holds_in_window(self):
        n = 4096
        a = 200  # in window: (ln 4096)^2 ~ 69, n/64 = 64 -> window empty!
        # note: for n = 4096 the window is empty ((ln n)^2 > n/64); use
        # a larger n where it is not
        n = 2**16
        a = 150  # (ln n)^2 ~ 123 <= a <= n/64 = 1024
        assert lemma6_in_window(a, n)
        spacings = sample_spacings(n, 300, seed=3)
        top = np.sort(spacings, axis=1)[:, -a:]
        sums = top.sum(axis=1)
        bound = lemma6_sum_bound(a, n)
        assert float((sums > bound).mean()) <= 0.01

    def test_failure_probability_caps_at_one(self):
        """At laptop-scale n the bound is vacuous (the paper's constants
        are asymptotic); the function must still be a probability."""
        assert 0 <= lemma6_failure_probability_is_small(400, 2**20) <= 1.0

    def test_failure_probability_small_at_asymptotic_n(self):
        """Where (ln n)^2 is large the recursion's terms all vanish."""
        n = 2**4096  # ln n ~ 2839, (ln n)^2 ~ 8.06e6
        a = 10_000_000
        assert lemma6_in_window(a, n)
        assert lemma6_failure_probability_is_small(a, n) < 1e-9

    def test_failure_probability_decreasing_in_a(self):
        n = 2**4096
        p1 = lemma6_failure_probability_is_small(9_000_000, n)
        p2 = lemma6_failure_probability_is_small(20_000_000, n)
        assert p2 <= p1


class TestLongestArc:
    def test_bound_formula(self):
        assert longest_arc_bound(1000) == pytest.approx(4 * math.log(1000) / 1000)

    def test_single_point(self):
        assert longest_arc_bound(1) == 1.0

    def test_exceedance_below_cubed_inverse(self):
        for n in (64, 1024, 2**20):
            assert longest_arc_exceedance_probability(n) <= 1 / n**3

    def test_expected_max_arc_harmonic(self):
        # H_4 / 4 = (1 + 1/2 + 1/3 + 1/4) / 4
        assert expected_max_arc(4) == pytest.approx((25 / 12) / 4)

    def test_expected_max_matches_simulation(self):
        n = 256
        spacings = sample_spacings(n, 4000, seed=4)
        emp = float(spacings.max(axis=1).mean())
        assert emp == pytest.approx(expected_max_arc(n), rel=0.03)

    def test_ring_space_consistency(self):
        """RingSpace arcs follow the same law as sampled spacings."""
        maxima = [
            RingSpace.random(128, seed=s).region_measures().max()
            for s in range(300)
        ]
        assert float(np.mean(maxima)) == pytest.approx(
            expected_max_arc(128), rel=0.08
        )


class TestSampleSpacings:
    def test_shape_and_simplex(self):
        s = sample_spacings(10, 7, seed=0)
        assert s.shape == (7, 10)
        assert np.allclose(s.sum(axis=1), 1.0)
        assert np.all(s > 0)

    @given(st.integers(2, 100))
    @settings(max_examples=20, deadline=None)
    def test_always_on_simplex(self, n):
        s = sample_spacings(n, 3, seed=1)
        assert np.allclose(s.sum(axis=1), 1.0)


class TestPoissonApproximation:
    def test_matches_simulation(self):
        from repro.theory.arcs import arc_count_poisson_tail

        n, c, trials = 300, 4.0, 4000
        spacings = sample_spacings(n, trials, seed=9)
        counts = (spacings >= c / n).sum(axis=1)
        mean = float(counts.mean())
        for k in (int(mean), int(mean) + 3):
            emp = float((counts >= k).mean())
            approx = arc_count_poisson_tail(c, n, k)
            assert emp == pytest.approx(approx, abs=0.05)

    def test_certain_at_zero(self):
        from repro.theory.arcs import arc_count_poisson_tail

        assert arc_count_poisson_tail(3.0, 100, 0) == 1.0

    def test_sharper_than_lemma4_at_doubling(self):
        """Poisson tail at 2 E[N_c] should undercut Lemma 4's bound."""
        from repro.theory.arcs import arc_count_poisson_tail

        n, c = 10_000, 4.0
        threshold = int(2 * n * math.exp(-c))
        assert arc_count_poisson_tail(c, n, threshold) < lemma4_tail(c, n)

    def test_rejects_negative_k(self):
        from repro.theory.arcs import arc_count_poisson_tail

        with pytest.raises(ValueError):
            arc_count_poisson_tail(3.0, 100, -1)
