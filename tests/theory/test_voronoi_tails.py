"""Tests for Lemmas 8-9: the six-sector lemma and Voronoi area tails."""

import math

import numpy as np
import pytest

from repro.core.torus import TorusSpace
from repro.theory.voronoi_tails import (
    empty_sector_count,
    expected_large_regions_bound,
    lemma8_holds_on_instance,
    lemma8_sector_test,
    lemma9_tail_azuma,
    lemma9_tail_paper,
    lemma9_threshold,
    sector_index,
)


class TestSectorIndex:
    def test_axis_directions(self):
        # along +x: sector 0; along +y (90 deg): sector 1; -x: sector 3
        assert sector_index(np.array([1.0]), np.array([0.0]))[0] == 0
        assert sector_index(np.array([0.0]), np.array([1.0]))[0] == 1
        assert sector_index(np.array([-1.0]), np.array([0.0]))[0] == 3
        assert sector_index(np.array([0.0]), np.array([-1.0]))[0] == 4

    def test_all_six_reached(self):
        angles = np.deg2rad(np.arange(30, 360, 60))
        idx = sector_index(np.cos(angles), np.sin(angles))
        assert sorted(idx.tolist()) == [0, 1, 2, 3, 4, 5]

    def test_boundaries(self):
        # exactly 60 degrees belongs to sector 1 (interval [60, 120))
        a = np.deg2rad(np.array([60.0]))
        assert sector_index(np.cos(a), np.sin(a))[0] == 1


class TestEmptySectorCount:
    def test_isolated_point_all_empty(self):
        pts = np.array([[0.5, 0.5], [0.1, 0.1]])
        # tiny disc around point 0 contains nothing
        assert empty_sector_count(pts, 0, 0.001) == 6

    def test_occupied_sector_detected(self):
        # neighbor due +x, well within the disc
        pts = np.array([[0.5, 0.5], [0.52, 0.5]])
        n = 2
        c = n * math.pi * 0.1**2  # radius 0.1
        assert empty_sector_count(pts, 0, c) == 5

    def test_rejects_large_disc(self):
        pts = np.array([[0.5, 0.5], [0.1, 0.1]])
        with pytest.raises(ValueError, match="radius"):
            empty_sector_count(pts, 0, 2.0)  # radius ~ 0.56 on torus

    def test_rejects_bad_index(self):
        pts = np.array([[0.5, 0.5]])
        with pytest.raises(ValueError, match="out of range"):
            empty_sector_count(pts, 3, 0.1)

    def test_wraparound_neighbor_counts(self):
        pts = np.array([[0.01, 0.5], [0.99, 0.5]])
        n = 2
        c = n * math.pi * 0.05**2  # radius 0.05 > toroidal distance 0.02
        # neighbor is at angle 180 (sector 3) across the seam
        assert empty_sector_count(pts, 0, c) == 5


class TestLemma8:
    def test_holds_on_random_instances(self):
        """Lemma 8 is a theorem: zero failures allowed."""
        for seed in range(10):
            space = TorusSpace.random(300, seed=seed)
            areas = space.region_measures()
            assert lemma8_holds_on_instance(space.points, areas, c=2.0)

    def test_sector_test_shape(self):
        space = TorusSpace.random(100, seed=1)
        areas = space.region_measures()
        verdicts = lemma8_sector_test(space.points, areas, c=1.0)
        assert verdicts.size == int((areas >= 1.0 / 100).sum())

    def test_rejects_mismatched_areas(self):
        space = TorusSpace.random(10, seed=1)
        with pytest.raises(ValueError, match="length"):
            lemma8_sector_test(space.points, np.ones(5), c=1.0)


class TestLemma9Bounds:
    def test_expected_bound_formula(self):
        assert expected_large_regions_bound(6.0, 100) == pytest.approx(
            600 * math.exp(-1.0)
        )

    def test_threshold_is_double_expectation(self):
        assert lemma9_threshold(9.0, 50) == pytest.approx(
            2 * expected_large_regions_bound(9.0, 50)
        )

    def test_domain_enforced(self):
        n = 2**20  # ln n ~ 13.9
        with pytest.raises(ValueError, match="12 <= c"):
            lemma9_tail_paper(5.0, n)
        with pytest.raises(ValueError, match="12 <= c"):
            lemma9_tail_azuma(20.0, n)
        with pytest.raises(ValueError):
            lemma9_tail_paper(12.0, 100)  # ln 100 < 12: empty window

    def test_paper_form_stronger_than_azuma(self):
        """The printed expression divides by L, Azuma by L^2."""
        n = 2**20
        for c in (12.0, 13.0):
            assert lemma9_tail_paper(c, n) <= lemma9_tail_azuma(c, n)

    def test_paper_tail_small_in_window(self):
        n = 2**24  # ln n ~ 16.6
        assert lemma9_tail_paper(12.0, n) < 1e-8

    def test_azuma_tail_small_at_larger_n(self):
        """The rigorous Azuma form (L^2 in the denominator) needs a
        bigger n before the exponent beats the log^6 factor."""
        n = 2**32
        assert lemma9_tail_azuma(12.0, n) < 1e-3
        # and it is vacuous-but-valid at 2^24
        assert 0 < lemma9_tail_azuma(12.0, 2**24) <= 1.0

    def test_expectation_dominates_monte_carlo(self):
        """E[Z] <= 6 n e^{-c/6} with Z from actual instances."""
        n, c, trials = 400, 2.0, 30
        zs = []
        for seed in range(trials):
            space = TorusSpace.random(n, seed=seed)
            z = sum(
                empty_sector_count(space.points, i, c) for i in range(n)
            )
            zs.append(z)
        mean_z = float(np.mean(zs))
        bound = expected_large_regions_bound(c, n)
        # E[Z] is within the bound; allow CLT noise upward
        assert mean_z <= bound * 1.05
