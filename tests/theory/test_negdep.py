"""Tests for Lemma 3: negative dependence of arc indicators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.arcs import sample_spacings
from repro.theory.negdep import (
    empirical_product_moments,
    negative_dependence_holds_exact,
    negative_dependence_margin,
    spacings_joint_survival,
)


class TestJointSurvival:
    def test_single_marginal(self):
        assert spacings_joint_survival(5, [0.1]) == pytest.approx(0.9**4)

    def test_infeasible_thresholds(self):
        assert spacings_joint_survival(3, [0.6, 0.6]) == 0.0

    def test_two_spacings_exact(self):
        # P(S1 >= x, S2 >= y) = (1 - x - y)^{n-1}
        assert spacings_joint_survival(4, [0.2, 0.3]) == pytest.approx(0.5**3)

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            spacings_joint_survival(2, [0.1, 0.1, 0.1])

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            spacings_joint_survival(3, [-0.1])

    def test_monte_carlo_agreement(self):
        n = 20
        s = sample_spacings(n, 20000, seed=0)
        emp = float(((s[:, 0] >= 1 / n) & (s[:, 1] >= 1 / n)).mean())
        assert emp == pytest.approx(
            spacings_joint_survival(n, [1 / n, 1 / n]), abs=0.01
        )


class TestNegativeDependenceExact:
    @given(
        st.integers(2, 400),
        st.floats(0.1, 10.0),
        st.integers(1, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_lemma3_inequality_always_holds(self, n, c, k):
        """E[prod Z] <= prod E[Z] for every (n, c, k): Lemma 3."""
        if k > n or c > n:
            return
        assert negative_dependence_holds_exact(n, c, k)

    def test_margin_zero_for_k1(self):
        assert negative_dependence_margin(10, 2.0, 1) == pytest.approx(0.0)

    def test_margin_positive_for_k2(self):
        assert negative_dependence_margin(50, 3.0, 2) > 0

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            negative_dependence_margin(5, 1.0, 6)
        with pytest.raises(ValueError):
            negative_dependence_margin(5, 6.0, 2)


class TestEmpiricalMoments:
    def test_on_sampled_spacings(self):
        """Pairwise products under-shoot marginal products (negatively
        dependent), up to CLT noise."""
        n, trials, c = 30, 8000, 1.5
        s = sample_spacings(n, trials, seed=1)
        indicators = (s >= c / n).astype(np.int64)
        results = empirical_product_moments(indicators, max_order=2)
        for subset, joint, marginal in results:
            noise = 3.0 / np.sqrt(trials)
            assert joint <= marginal + noise, subset

    def test_explicit_subsets(self):
        samples = np.array([[1, 1, 0], [0, 1, 1]])
        results = empirical_product_moments(samples, subsets=[(0, 1)])
        assert results[0][0] == (0, 1)
        assert results[0][1] == pytest.approx(0.5)  # E[Z0 Z1]
        assert results[0][2] == pytest.approx(0.5)  # E[Z0] E[Z1]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            empirical_product_moments(np.array([[2, 0]]))

    def test_rejects_bad_subset(self):
        with pytest.raises(ValueError, match="out of range"):
            empirical_product_moments(np.array([[1, 0]]), subsets=[(0, 5)])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            empirical_product_moments(np.array([1, 0]))
