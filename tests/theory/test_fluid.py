"""Tests for the fluid-limit ODE against known closed forms."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.theory.fluid import fluid_limit_tails, fluid_predicted_max_load


class TestFluidLimitTails:
    def test_s0_is_one(self):
        assert fluid_limit_tails(2)[0] == 1.0

    def test_monotone_nonincreasing(self):
        s = fluid_limit_tails(2)
        assert np.all(np.diff(s) <= 1e-12)

    def test_d1_is_poisson(self):
        """d=1 fluid limit = Poisson(lam) occupancy tail (exact check)."""
        lam = 1.0
        s = fluid_limit_tails(1, lam)
        for i in range(1, 8):
            expected = stats.poisson.sf(i - 1, lam)
            assert s[i] == pytest.approx(expected, rel=1e-6, abs=1e-12)

    def test_d1_heavier_lam(self):
        lam = 3.0
        s = fluid_limit_tails(1, lam)
        assert s[3] == pytest.approx(stats.poisson.sf(2, lam), rel=1e-6)

    def test_d2_doubly_exponential_decay(self):
        """log(1/s_i) should roughly double-exponentiate in i for d=2."""
        s = fluid_limit_tails(2, 1.0)
        logs = -np.log(s[1:7])
        ratios = logs[2:] / logs[1:-1]
        assert np.all(ratios > 1.5)

    def test_mass_conservation(self):
        """sum_i s_i = expected load per bin = lam."""
        for d in (1, 2, 3):
            s = fluid_limit_tails(d, 1.0)
            assert s[1:].sum() == pytest.approx(1.0, rel=1e-6)

    def test_larger_d_thinner_tail(self):
        s2 = fluid_limit_tails(2)
        s3 = fluid_limit_tails(3)
        assert s3[3] < s2[3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fluid_limit_tails(0)
        with pytest.raises(ValueError):
            fluid_limit_tails(2, lam=-1.0)


class TestFluidPrediction:
    def test_d2_matches_paper_scale(self):
        """Fluid predicts ~4 for n=2^20, d=2 (paper observes 5 on arcs,
        4 on torus and uniform-ish)."""
        assert fluid_predicted_max_load(2**20, 2) in (4, 5)

    def test_monotone_in_n(self):
        vals = [fluid_predicted_max_load(n, 2) for n in (2**8, 2**16, 2**24)]
        assert vals == sorted(vals)

    def test_decreasing_in_d(self):
        n = 2**20
        vals = [fluid_predicted_max_load(n, d) for d in (1, 2, 3)]
        assert vals == sorted(vals, reverse=True)

    def test_d1_log_scale(self):
        """d=1 prediction should sit near ln n / ln ln n."""
        n = 2**20
        v = fluid_predicted_max_load(n, 1)
        scale = math.log(n) / math.log(math.log(n))
        assert 0.8 * scale <= v <= 2.5 * scale
