"""Tests for the layered-induction recursion (Eq. 1, Claim 10)."""

import math

import pytest

from repro.theory.recursion import (
    abku_beta_sequence,
    beta_sequence,
    claim10_constant,
    claim10_envelope,
    i_star,
    practical_predicted_max_load,
    predicted_max_load,
    theorem1_leading_term,
)


class TestBetaSequence:
    def test_terminates_with_paper_seed(self):
        steps = beta_sequence(2**20, 2)
        assert steps[0].index == 256
        assert steps[-1].log_p < math.log(6 * math.log(2**20) / 2**20)

    def test_strictly_decreasing_fractions(self):
        steps = beta_sequence(2**24, 2)
        fracs = [s.log_fraction for s in steps]
        assert all(a > b for a, b in zip(fracs, fracs[1:]))

    def test_istar_grows_like_loglog(self):
        """i* - 256 should grow by ~1 per squaring of log n (d=2)."""
        gaps = [i_star(n, 2) - 256 for n in (2**8, 2**16, 2**24, 2**32)]
        assert gaps == sorted(gaps)
        assert gaps[-1] <= 12  # tiny, double-logarithmic

    def test_istar_decreases_in_d(self):
        n = 2**24
        assert i_star(n, 2) >= i_star(n, 3) >= i_star(n, 4)

    def test_rejects_d1(self):
        with pytest.raises(ValueError, match="d >= 2"):
            beta_sequence(1000, 1)

    def test_rejects_non_contracting_seed(self):
        with pytest.raises(ValueError, match="not contracting"):
            beta_sequence(2**20, 2, seed_index=4, seed_fraction=0.25)

    def test_rejects_unsound_pigeonhole(self):
        with pytest.raises(ValueError, match="pigeonhole"):
            beta_sequence(2**20, 2, seed_index=256, seed_fraction=0.5)

    def test_beta_values_positive(self):
        for step in beta_sequence(2**16, 2):
            assert step.beta(2**16) > 0
            assert 0 < step.beta_over_n < 1

    def test_lam_extension_monotone(self):
        """More balls per bin -> later collapse -> larger i*.

        lam = 2 shifts the contraction region: the pigeonhole seed must
        sit deeper (beta_4096 = 2n/4096 = n/2048).
        """
        a = beta_sequence(2**20, 2, lam=1.0)[-1].index
        b = beta_sequence(
            2**20, 2, seed_index=4096, seed_fraction=2 / 4096, lam=2.0
        )[-1].index
        assert b >= a

    def test_lam_shifts_contraction_region(self):
        """The lam = 1 seed is not contracting once lam = 2."""
        with pytest.raises(ValueError, match="not contracting"):
            beta_sequence(2**20, 2, seed_index=512, seed_fraction=2 / 512, lam=2.0)


class TestAbkuSequence:
    def test_faster_than_geometric(self):
        """Uniform bins collapse at least as fast (no log penalty)."""
        n = 2**24
        geo = beta_sequence(n, 2)
        ab = abku_beta_sequence(n, 2, seed_index=256, seed_fraction=1 / 256)
        assert len(ab) <= len(geo)

    def test_default_seed_contracts(self):
        steps = abku_beta_sequence(2**16, 2)
        assert steps[-1].index < 30

    def test_fixed_point_seed_rejected(self):
        with pytest.raises(ValueError, match="not contracting"):
            abku_beta_sequence(2**16, 2, seed_index=2, seed_fraction=0.5)


class TestPredictors:
    def test_paper_bound_includes_constant(self):
        assert predicted_max_load(2**16, 2) >= 258

    def test_practical_predictor_reasonable(self):
        """Should be within a small factor of the observed ~4-5."""
        v = practical_predicted_max_load(2**16, 2)
        assert 4 <= v <= 12

    def test_practical_monotone_in_n(self):
        vals = [practical_predicted_max_load(n, 2) for n in (2**8, 2**16, 2**32)]
        assert vals == sorted(vals)

    def test_practical_decreasing_in_d(self):
        n = 2**20
        vals = [practical_predicted_max_load(n, d) for d in (2, 3, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_practical_lam_growth_linear_ish(self):
        """O(m/n) + O(log log n): doubling lam shouldn't explode."""
        a = practical_predicted_max_load(2**16, 2, lam=1.0)
        b = practical_predicted_max_load(2**16, 2, lam=4.0)
        assert a < b < 40 * a

    def test_practical_rejects_bad_args(self):
        with pytest.raises(ValueError):
            practical_predicted_max_load(2**16, 1)
        with pytest.raises(ValueError):
            practical_predicted_max_load(2**16, 2, lam=0)


class TestLeadingTermAndClaim10:
    def test_leading_term_values(self):
        assert theorem1_leading_term(2**16, 2) == pytest.approx(
            math.log(math.log(2**16)) / math.log(2)
        )

    def test_leading_term_rejects_small_n(self):
        with pytest.raises(ValueError):
            theorem1_leading_term(2, 2)

    def test_claim10_constant_below_one(self):
        for d in (2, 3, 4, 5, 8):
            assert 0 < claim10_constant(d) < 1

    def test_envelope_collapse(self):
        vals = [claim10_envelope(2**20, 2, k) for k in range(1, 8)]
        assert vals == sorted(vals, reverse=True)
        assert vals[-1] < 1e-6

    def test_envelope_underflow_is_zero(self):
        assert claim10_envelope(2**20, 2, 12) == 0.0

    def test_istar_tracks_leading_term(self):
        """(i* - seed) stays within O(1) of log log n / log d."""
        for n in (2**16, 2**24, 2**32):
            for d in (2, 3):
                gap = i_star(n, d) - 256
                lead = theorem1_leading_term(n, d)
                assert abs(gap - lead) <= 8
