"""Tests for concentration bounds: each must dominate exact tails."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.chernoff import (
    azuma_tail,
    chernoff_lemma2,
    chernoff_multiplicative,
    exact_binomial_tail,
)


class TestChernoffLemma2:
    def test_formula(self):
        assert chernoff_lemma2(90, 0.1) == pytest.approx(math.exp(-3.0))

    @given(st.integers(10, 2000), st.floats(0.01, 0.9))
    @settings(max_examples=100, deadline=None)
    def test_dominates_exact_binomial(self, n, p):
        """Pr(B >= 2np) <= e^{-np/3} must hold (it is a theorem)."""
        assert exact_binomial_tail(n, p, 2 * n * p) <= chernoff_lemma2(n, p) + 1e-12

    def test_monotone_in_np(self):
        assert chernoff_lemma2(100, 0.5) < chernoff_lemma2(100, 0.1)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            chernoff_lemma2(10, 1.5)


class TestChernoffMultiplicative:
    def test_delta_one_close_to_lemma2(self):
        assert chernoff_multiplicative(100, 0.3, 1.0) == pytest.approx(
            chernoff_lemma2(100, 0.3)
        )

    @given(
        st.integers(20, 500),
        st.floats(0.05, 0.5),
        st.floats(0.1, 3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_dominates_exact(self, n, p, delta):
        bound = chernoff_multiplicative(n, p, delta)
        exact = exact_binomial_tail(n, p, (1 + delta) * n * p)
        assert exact <= bound + 1e-12

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            chernoff_multiplicative(10, 0.1, 0.0)


class TestAzuma:
    def test_scalar_form(self):
        # exp(-t^2 / (2 n c^2))
        assert azuma_tail(10.0, 2.0, 100) == pytest.approx(
            math.exp(-100.0 / 800.0)
        )

    def test_sequence_form_matches_scalar(self):
        assert azuma_tail(5.0, [2.0] * 50) == pytest.approx(
            azuma_tail(5.0, 2.0, 50)
        )

    def test_decreasing_in_t(self):
        assert azuma_tail(20.0, 1.0, 100) < azuma_tail(10.0, 1.0, 100)

    def test_requires_steps_for_scalar(self):
        with pytest.raises(ValueError, match="n_steps"):
            azuma_tail(1.0, 2.0)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            azuma_tail(0.0, 2.0, 10)

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            azuma_tail(1.0, [])

    def test_rejects_nonpositive_lipschitz(self):
        with pytest.raises(ValueError):
            azuma_tail(1.0, [1.0, 0.0])


class TestExactBinomialTail:
    def test_certainty(self):
        assert exact_binomial_tail(10, 0.5, 0) == 1.0

    def test_impossible(self):
        assert exact_binomial_tail(10, 0.5, 11) == 0.0

    def test_fair_coin_median(self):
        assert exact_binomial_tail(3, 0.5, 2) == pytest.approx(0.5)
