"""Tests for point-process generators."""

import numpy as np
import pytest

from repro.geo2d.pointsets import clustered_points, grid_points, uniform_points


class TestUniformPoints:
    def test_shape_and_range(self):
        pts = uniform_points(100, dim=3, seed=0)
        assert pts.shape == (100, 3)
        assert np.all((pts >= 0) & (pts < 1))

    def test_deterministic(self):
        assert np.array_equal(uniform_points(5, seed=1), uniform_points(5, seed=1))


class TestGridPoints:
    def test_exact_grid(self):
        pts = grid_points(2)
        assert pts.shape == (4, 2)
        assert sorted(map(tuple, pts.tolist())) == [
            (0.25, 0.25), (0.25, 0.75), (0.75, 0.25), (0.75, 0.75),
        ]

    def test_3d_grid_count(self):
        assert grid_points(3, dim=3).shape == (27, 3)

    def test_jitter_stays_in_torus(self):
        pts = grid_points(4, jitter=0.5, seed=2)
        assert np.all((pts >= 0) & (pts < 1))

    def test_jitter_changes_positions(self):
        assert not np.allclose(grid_points(4), grid_points(4, jitter=0.2, seed=3))

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            grid_points(4, jitter=-0.1)


class TestClusteredPoints:
    def test_shape_and_range(self):
        pts = clustered_points(200, seed=4)
        assert pts.shape == (200, 2)
        assert np.all((pts >= 0) & (pts < 1))

    def test_clustering_is_real(self):
        """Clustered points have much lower nearest-neighbor distance
        spread than uniform ones."""
        from scipy.spatial import cKDTree

        uni = uniform_points(500, seed=5)
        clu = clustered_points(500, n_clusters=4, spread=0.02, seed=5)
        d_uni = cKDTree(uni, boxsize=1.0).query(uni, k=2)[0][:, 1].mean()
        d_clu = cKDTree(clu, boxsize=1.0).query(clu, k=2)[0][:, 1].mean()
        assert d_clu < d_uni

    def test_rejects_bad_spread(self):
        with pytest.raises(ValueError):
            clustered_points(10, spread=0.0)
