"""Tests for the ATM assignment model (paper Section 1.1 example)."""

import numpy as np
import pytest

from repro.geo2d.atm import AtmAssignmentModel
from repro.geo2d.pointsets import clustered_points, uniform_points


@pytest.fixture
def model():
    return AtmAssignmentModel(uniform_points(64, seed=0))


class TestConstruction:
    def test_rejects_3d(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            AtmAssignmentModel(np.zeros((4, 3)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AtmAssignmentModel([[0.5, 1.2]])


class TestNearestMachine:
    def test_matches_torus_metric(self, model):
        locs = uniform_points(100, seed=1)
        owners = model.nearest_machine(locs)
        pts = model.machines
        for loc, got in zip(locs[:20], owners[:20]):
            d = np.abs(pts - loc)
            d = np.minimum(d, 1 - d)
            assert got == int(np.argmin((d**2).sum(axis=1)))


class TestAssign:
    def test_conserves_customers(self, model):
        locs = np.stack(
            [uniform_points(256, seed=2), uniform_points(256, seed=3)], axis=1
        )
        report = model.assign(locs, seed=4)
        assert report.loads.sum() == 256
        assert report.assignments.shape == (256,)
        assert report.d == 2

    def test_single_location_per_customer(self, model):
        locs = uniform_points(128, seed=5)
        report = model.assign(locs, seed=6)
        assert report.d == 1
        # d = 1 means pure nearest-neighbor: assignment == nearest machine
        assert np.array_equal(report.assignments, model.nearest_machine(locs))

    def test_two_choices_balance_better(self, model):
        """The bank example: home+work beats home-only."""
        m = 640
        one = model.assign(uniform_points(m, seed=7), seed=8)
        two = model.assign(
            np.stack(
                [uniform_points(m, seed=7), uniform_points(m, seed=9)], axis=1
            ),
            seed=8,
        )
        assert two.max_load <= one.max_load
        assert two.imbalance <= one.imbalance

    def test_clustered_customers_still_helped(self, model):
        """Footnote 2: non-uniform demand; two choices should still
        reduce the maximum load."""
        m = 640
        home = clustered_points(m, n_clusters=5, spread=0.05, seed=10)
        work = clustered_points(m, n_clusters=5, spread=0.05, seed=11)
        one = model.assign(home, seed=12)
        two = model.assign(np.stack([home, work], axis=1), seed=12)
        assert two.max_load < one.max_load

    def test_strategy_smaller_accepted(self, model):
        locs = np.stack(
            [uniform_points(64, seed=13), uniform_points(64, seed=14)], axis=1
        )
        report = model.assign(locs, strategy="smaller", seed=15)
        assert report.loads.sum() == 64

    def test_rejects_bad_shape(self, model):
        with pytest.raises(ValueError, match=r"\(m, d, 2\)"):
            model.assign(np.zeros((4, 2, 3)))

    def test_histogram_consistent(self, model):
        locs = uniform_points(100, seed=16)
        report = model.assign(locs, seed=17)
        hist = report.histogram()
        assert (hist * np.arange(hist.size)).sum() == 100
