"""Tests for toroidal Voronoi areas: exactness and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo2d.voronoi import (
    monte_carlo_region_measures,
    polygon_area,
    toroidal_voronoi_areas,
)


class TestPolygonArea:
    def test_unit_square(self):
        verts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]])
        assert polygon_area(verts) == pytest.approx(1.0)

    def test_vertex_order_irrelevant(self):
        verts = np.array([[1, 1], [0, 0], [0, 1], [1, 0]])
        assert polygon_area(verts) == pytest.approx(1.0)

    def test_triangle(self):
        verts = np.array([[0, 0], [2, 0], [0, 2]])
        assert polygon_area(verts) == pytest.approx(2.0)

    def test_degenerate(self):
        assert polygon_area(np.array([[0, 0], [1, 1]])) == 0.0


class TestToroidalVoronoiAreas:
    def test_single_point(self):
        assert toroidal_voronoi_areas([[0.5, 0.5]]).tolist() == [1.0]

    def test_two_points_split_evenly_when_antipodal(self):
        areas = toroidal_voronoi_areas([[0.25, 0.25], [0.75, 0.75]])
        assert areas.tolist() == pytest.approx([0.5, 0.5])

    def test_regular_grid_equal_cells(self):
        from repro.geo2d.pointsets import grid_points

        pts = grid_points(4)
        areas = toroidal_voronoi_areas(pts)
        assert np.allclose(areas, 1 / 16)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            toroidal_voronoi_areas([[0.1, 0.1], [0.1, 0.1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            toroidal_voronoi_areas([[0.5, 1.5]])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            toroidal_voronoi_areas([[0.5, 0.5, 0.5]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            toroidal_voronoi_areas(np.empty((0, 2)))

    @given(st.integers(2, 40), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_partition_of_unity(self, n, seed):
        rng = np.random.default_rng(seed)
        areas = toroidal_voronoi_areas(rng.random((n, 2)))
        assert areas.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(areas > 0)

    def test_translation_invariance(self):
        """Shifting all points on the torus must not change areas."""
        rng = np.random.default_rng(3)
        pts = rng.random((20, 2))
        areas = toroidal_voronoi_areas(pts)
        shifted = (pts + [0.37, 0.61]) % 1.0
        assert np.allclose(toroidal_voronoi_areas(shifted), areas, atol=1e-9)


class TestMonteCarloMeasures:
    def test_agrees_with_exact(self):
        rng = np.random.default_rng(4)
        pts = rng.random((50, 2))
        exact = toroidal_voronoi_areas(pts)
        mc = monte_carlo_region_measures(pts, 150_000, seed=5)
        assert np.abs(exact - mc).max() < 0.01

    def test_sums_to_one(self):
        rng = np.random.default_rng(6)
        pts = rng.random((10, 3))
        mc = monte_carlo_region_measures(pts, 20_000, seed=7)
        assert mc.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        pts = np.random.default_rng(8).random((5, 2))
        a = monte_carlo_region_measures(pts, 10_000, seed=9)
        b = monte_carlo_region_measures(pts, 10_000, seed=9)
        assert np.array_equal(a, b)

    def test_block_boundary(self):
        """Sample counts spanning the internal block size stay exact."""
        pts = np.random.default_rng(10).random((4, 2))
        mc = monte_carlo_region_measures(pts, (1 << 17) + 13, seed=11)
        assert mc.sum() == pytest.approx(1.0)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            monte_carlo_region_measures([[0.5, 0.5]], 0)
