"""Public API surface checks: imports, __all__ hygiene, version."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.dynamics",
    "repro.theory",
    "repro.baselines",
    "repro.dht",
    "repro.geo2d",
    "repro.stats",
    "repro.sweeps",
    "repro.experiments",
    "repro.net",
    "repro.serve",
    "repro.utils",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_types_exposed(self):
        from repro import (
            GeometricSpace,
            PlacementResult,
            RingSpace,
            TieBreak,
            TorusSpace,
            place_balls,
        )

        assert issubclass(RingSpace, GeometricSpace)
        assert issubclass(TorusSpace, GeometricSpace)
        assert callable(place_balls)
        assert PlacementResult is not None and TieBreak is not None


@pytest.mark.parametrize("package", SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, package):
        importlib.import_module(package)

    def test_all_resolves(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name}"

    def test_has_docstring(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and len(mod.__doc__) > 40
