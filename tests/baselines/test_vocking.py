"""Tests for Vöcking's Always-Go-Left scheme and phi_d."""

import math

import numpy as np
import pytest

from repro.baselines.uniform import UniformSpace
from repro.baselines.vocking import (
    always_go_left,
    dbonacci_growth_rate,
    vocking_bound,
)
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak


class TestDbonacciGrowthRate:
    def test_phi2_is_golden_ratio(self):
        assert dbonacci_growth_rate(2) == pytest.approx(
            (1 + math.sqrt(5)) / 2, abs=1e-10
        )

    def test_phi3_tribonacci(self):
        assert dbonacci_growth_rate(3) == pytest.approx(1.839286755, abs=1e-6)

    def test_increasing_toward_two(self):
        vals = [dbonacci_growth_rate(d) for d in range(2, 9)]
        assert vals == sorted(vals)
        assert all(1 < v < 2 for v in vals)

    def test_satisfies_characteristic_equation(self):
        for d in (2, 3, 4, 5):
            x = dbonacci_growth_rate(d)
            assert x**d == pytest.approx(sum(x**k for k in range(d)), abs=1e-8)

    def test_rejects_d1(self):
        with pytest.raises(ValueError):
            dbonacci_growth_rate(1)


class TestVockingBound:
    def test_beats_theorem1_leading_term(self):
        from repro.theory.recursion import theorem1_leading_term

        for d in (2, 3, 4):
            assert vocking_bound(2**20, d) < theorem1_leading_term(2**20, d)

    def test_decreasing_in_d(self):
        vals = [vocking_bound(2**20, d) for d in (2, 3, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_domain(self):
        with pytest.raises(ValueError):
            vocking_bound(2, 2)
        with pytest.raises(ValueError):
            vocking_bound(2**10, 1)


class TestAlwaysGoLeft:
    def test_configures_placement(self):
        res = always_go_left(RingSpace.random(128, seed=0), 128, seed=1)
        assert res.partitioned is True
        assert res.strategy is TieBreak.FIRST
        assert res.loads.sum() == 128

    def test_rejects_d1(self):
        with pytest.raises(ValueError, match="d >= 2"):
            always_go_left(RingSpace.random(16, seed=0), 16, d=1)

    def test_not_worse_than_random_ties_on_uniform(self):
        """AGL's guarantee is asymptotically stronger; check it is at
        least statistically not worse here."""
        n = 2048
        agl = np.mean(
            [always_go_left(UniformSpace(n), n, seed=s).max_load for s in range(12)]
        )
        from repro.core.placement import place_balls

        rnd = np.mean(
            [place_balls(UniformSpace(n), n, 2, seed=s).max_load for s in range(12)]
        )
        assert agl <= rnd + 0.5
