"""Tests for the classical uniform-bin baseline."""

import numpy as np
import pytest

from repro.baselines.uniform import UniformSpace, abku_max_load
from repro.core.placement import place_balls


class TestUniformSpace:
    def test_assign_blocks(self):
        u = UniformSpace(4)
        assert u.assign(np.array([0.0, 0.25, 0.5, 0.999])).tolist() == [0, 1, 2, 3]

    def test_assign_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            UniformSpace(4).assign(np.array([1.0]))

    def test_measures_uniform(self):
        m = UniformSpace(8).region_measures()
        assert np.allclose(m, 1 / 8)
        assert m.sum() == pytest.approx(1.0)

    def test_choice_bins_uniform_frequency(self, rng):
        u = UniformSpace(16)
        bins = u.sample_choice_bins(rng, 20_000, 1)
        freq = np.bincount(bins[:, 0], minlength=16) / 20_000
        assert np.abs(freq - 1 / 16).max() < 0.01

    def test_partitioned_blocks(self, rng):
        u = UniformSpace(8)
        bins = u.sample_choice_bins(rng, 400, 2, partitioned=True)
        assert np.all(bins[:, 0] < 4)
        assert np.all(bins[:, 1] >= 4)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            UniformSpace(0)


class TestAbkuBaseline:
    def test_returns_max_load(self):
        v = abku_max_load(512, seed=0)
        assert isinstance(v, int) and v >= 1

    def test_m_defaults_to_n(self):
        # max load * n >= m guarantees all balls placed
        u = UniformSpace(128)
        res = place_balls(u, 128, 2, seed=1)
        assert res.loads.sum() == 128

    def test_two_choices_beat_one(self):
        """Classical power of two choices, statistically robust margin."""
        d1 = [abku_max_load(2048, d=1, seed=s) for s in range(10)]
        d2 = [abku_max_load(2048, d=2, seed=s) for s in range(10)]
        assert np.mean(d2) < np.mean(d1)

    def test_d2_max_load_small(self):
        """log log n / log 2 + O(1): should be <= 5 at n=4096."""
        assert all(abku_max_load(4096, d=2, seed=s) <= 5 for s in range(10))
