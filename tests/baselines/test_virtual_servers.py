"""Tests for the Chord virtual-server baseline."""

import math

import numpy as np
import pytest

from repro.baselines.virtual_servers import VirtualServerRing
from repro.core.ring import RingSpace


class TestConstruction:
    def test_default_virtuals_log2(self):
        assert VirtualServerRing(64, seed=0).virtuals == 6
        assert VirtualServerRing(100, seed=0).virtuals == math.ceil(math.log2(100))

    def test_explicit_virtuals(self):
        v = VirtualServerRing(10, virtuals=3, seed=0)
        assert v.ring.n == 30

    def test_single_server(self):
        v = VirtualServerRing(1, virtuals=1, seed=0)
        assert v.physical_measures().tolist() == [1.0]

    def test_owner_read_only(self):
        v = VirtualServerRing(4, seed=0)
        with pytest.raises(ValueError):
            v.owner[0] = 2


class TestMeasures:
    def test_sum_to_one(self):
        v = VirtualServerRing(32, seed=1)
        assert v.physical_measures().sum() == pytest.approx(1.0)

    def test_variance_reduction(self):
        """The whole point: virtual servers concentrate total ownership."""
        n = 256
        plain_cv = []
        virtual_cv = []
        for seed in range(10):
            plain = RingSpace.random(n, seed=seed).region_measures()
            plain_cv.append(plain.std() / plain.mean())
            pm = VirtualServerRing(n, seed=seed).physical_measures()
            virtual_cv.append(pm.std() / pm.mean())
        assert np.mean(virtual_cv) < 0.6 * np.mean(plain_cv)

    def test_owner_mapping_consistent(self):
        v = VirtualServerRing(8, virtuals=4, seed=2)
        counts = np.bincount(v.owner, minlength=8)
        assert counts.tolist() == [4] * 8


class TestAssignAndPlacement:
    def test_assign_matches_ring_then_owner(self, rng):
        v = VirtualServerRing(16, seed=3)
        pts = rng.random(50)
        assert np.array_equal(v.assign(pts), v.owner[v.ring.assign(pts)])

    def test_place_items_conserves(self):
        v = VirtualServerRing(32, seed=4)
        loads = v.place_items(500, seed=5)
        assert loads.sum() == 500 and loads.shape == (32,)

    def test_zero_items(self):
        v = VirtualServerRing(8, seed=4)
        assert v.place_items(0, seed=5).sum() == 0

    def test_d1_matches_direct_hashing(self):
        v = VirtualServerRing(16, seed=6)
        loads = v.place_items(300, d=1, seed=7)
        rng = np.random.default_rng(7)
        expected = np.bincount(v.assign(rng.random((300, 1)).ravel()), minlength=16)
        assert np.array_equal(loads, expected)

    def test_virtuals_improve_d1_balance(self):
        """Virtual servers should beat the plain ring at d = 1."""
        n, m = 128, 1280
        plain_max, virtual_max = [], []
        for seed in range(8):
            ring = RingSpace.random(n, seed=seed)
            rng = np.random.default_rng(1000 + seed)
            loads = np.bincount(ring.assign(rng.random(m)), minlength=n)
            plain_max.append(loads.max())
            v = VirtualServerRing(n, seed=seed)
            virtual_max.append(v.place_items(m, d=1, seed=1000 + seed).max())
        assert np.mean(virtual_max) < np.mean(plain_max)

    def test_two_choices_beat_virtuals_alone(self):
        """The paper's argument: d=2 on the plain ring balances at least
        as well as log-n virtual servers at d=1."""
        from repro.core.placement import place_balls

        n, m = 128, 1280
        v_max = [
            VirtualServerRing(n, seed=s).place_items(m, d=1, seed=100 + s).max()
            for s in range(8)
        ]
        two_max = [
            place_balls(RingSpace.random(n, seed=s), m, 2, seed=100 + s).max_load
            for s in range(8)
        ]
        assert np.mean(two_max) <= np.mean(v_max)

    def test_d2_with_strategy(self):
        v = VirtualServerRing(16, seed=8)
        loads = v.place_items(200, d=2, strategy="smaller", seed=9)
        assert loads.sum() == 200
