"""Tests for the d = 1 regimes: Theta(log n) vs log n / log log n."""

import numpy as np
import pytest

from repro.baselines.single_choice import (
    geometric_d1_scale,
    simulate_single_choice,
    uniform_d1_scale,
)
from repro.baselines.uniform import UniformSpace
from repro.core.ring import RingSpace


class TestScales:
    def test_geometric_above_uniform(self):
        """Theta(log n) dominates log n / log log n."""
        for n in (2**10, 2**16, 2**24):
            assert geometric_d1_scale(n) > uniform_d1_scale(n)

    def test_uniform_heavy_regime(self):
        v = uniform_d1_scale(2**16, m=100 * 2**16)
        assert v > 100  # m/n term dominates

    def test_geometric_scales_with_m(self):
        assert geometric_d1_scale(2**10, m=2**12) == pytest.approx(
            4 * geometric_d1_scale(2**10)
        )

    def test_reject_small_n(self):
        with pytest.raises(ValueError):
            uniform_d1_scale(8)


class TestSimulation:
    def test_returns_loads(self, small_ring):
        loads = simulate_single_choice(small_ring, 200, seed=0)
        assert loads.sum() == 200

    def test_geometric_d1_worse_than_uniform_d1(self):
        """Tables 1-2's motivation: the ring's d=1 max load exceeds the
        uniform-bin one at the same size."""
        n = 4096
        ring_max = np.mean(
            [
                simulate_single_choice(
                    RingSpace.random(n, seed=s), n, seed=100 + s
                ).max()
                for s in range(8)
            ]
        )
        unif_max = np.mean(
            [
                simulate_single_choice(UniformSpace(n), n, seed=100 + s).max()
                for s in range(8)
            ]
        )
        assert ring_max > unif_max

    def test_scale_brackets_simulation(self):
        """Simulated geometric d=1 max within [0.4x, 2.5x] of ln n."""
        n = 2**12
        # NB: ball seed must differ from the placement seed — with the
        # same generator stream every ball lands exactly on a server
        # position and the load vector is degenerate.
        maxima = [
            simulate_single_choice(
                RingSpace.random(n, seed=s), n, seed=1000 + s
            ).max()
            for s in range(10)
        ]
        scale = geometric_d1_scale(n)
        assert 0.4 * scale <= np.mean(maxima) <= 2.5 * scale
