"""Run every docstring example in the package as a test.

Doc examples are part of the public contract; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("name", _all_modules())
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"
