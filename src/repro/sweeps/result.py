"""Mergeable sweep artifacts: cell tables with a canonical byte form.

A :class:`SweepResult` is what one sweep run (or one shard of it)
produces: the grid description, one record per executed cell (cache
key, full spec, max-load counts), and run metadata.  The canonical
JSON form (:meth:`SweepResult.to_json`) sorts cells by content key and
excludes anything nondeterministic (timings, hit/miss counters), so

* merging the shards of a grid reproduces the unsharded artifact
  **byte-identically**, and
* re-running a cached sweep rewrites the same bytes.

``to_report`` bridges back into the existing reporting stack: it
builds an :class:`~repro.experiments.report.ExperimentReport` whose
grid renders through :mod:`repro.stats.tables` exactly like the
table1/2/3 reporters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.stats.distributions import MaxLoadDistribution
from repro.sweeps.cache import canonical_json

__all__ = ["SweepResult"]


@dataclass
class SweepResult:
    """The outcome of executing (part of) a sweep grid.

    Attributes
    ----------
    grid:
        Canonical grid description (:meth:`SweepGrid.describe
        <repro.sweeps.grid.SweepGrid.describe>`); shards of one grid
        share it and :meth:`merge` enforces that.
    cells:
        One record per executed cell:
        ``{"key": <hex>, "spec": {...}, "counts": {load: trials}}``.
        Keys are the cache content addresses under the default salt,
        so they are stable across machines and cache configurations.
    meta:
        Free-form run info (hits, misses, shard indices, engine).
        Excluded from the canonical byte form.
    """

    grid: dict
    cells: list[dict]
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def distributions(self) -> dict[str, MaxLoadDistribution]:
        """``{cell key: MaxLoadDistribution}`` for every executed cell."""
        return {
            cell["key"]: MaxLoadDistribution.from_json_counts(cell["counts"])
            for cell in self.cells
        }

    def by_axes(self, row: str = "n", col: str = "d") -> dict[tuple, MaxLoadDistribution]:
        """Project cells onto a 2-D grid keyed by two axes.

        Raises if two cells collapse onto the same ``(row, col)`` key —
        that means the chosen axes do not separate the grid and the
        table would silently drop cells.
        """
        out: dict[tuple, MaxLoadDistribution] = {}
        for cell in self.cells:
            key = (cell["spec"][row], cell["spec"][col])
            if key in out:
                raise ValueError(
                    f"axes ({row!r}, {col!r}) do not separate the grid: "
                    f"two cells share {key}"
                )
            out[key] = MaxLoadDistribution.from_json_counts(cell["counts"])
        return out

    def to_report(self, row: str = "n", col: str = "d", title: str | None = None):
        """Bridge to the table reporters: an :class:`ExperimentReport`.

        Row/column orders follow the grid's declared axis value order,
        so the rendered table matches the table1/2/3 layout
        conventions (rows usually ``n``, columns ``d`` or strategy).
        """
        from repro.experiments.report import ExperimentReport

        name = self.grid.get("name", "sweep")
        return ExperimentReport(
            name=name,
            title=title or f"Sweep {name}: max-load distributions",
            cells=self.by_axes(row, col),
            row_keys=list(self.grid[row]),
            col_keys=list(self.grid[col]),
            col_label=lambda c: f"{col} = {c}",
            meta={"trials": self.grid["trials"], "seed": self.grid["seed"]},
        )

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical byte form: grid + cells sorted by content key.

        Deliberately excludes ``meta`` — hit rates and wall-clock vary
        between runs while the artifact must not.
        """
        ordered = sorted(self.cells, key=lambda cell: cell["key"])
        return canonical_json({"grid": self.grid, "cells": ordered}) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write the canonical JSON artifact to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Read an artifact written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        return cls(grid=data["grid"], cells=data["cells"])

    # ------------------------------------------------------------------
    # shard merging
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["SweepResult"]) -> "SweepResult":
        """Union of shard results of **one** grid.

        All parts must describe the same grid; duplicate cell keys must
        carry identical counts (benign re-execution) or the merge
        refuses.  The merged artifact is byte-identical to an
        unsharded run of the same grid.
        """
        if not parts:
            raise ValueError("merge needs at least one part")
        grid = parts[0].grid
        for part in parts[1:]:
            if part.grid != grid:
                raise ValueError("cannot merge results of different grids")
        merged: dict[str, dict] = {}
        hits = misses = 0
        for part in parts:
            hits += part.meta.get("hits", 0)
            misses += part.meta.get("misses", 0)
            for cell in part.cells:
                seen = merged.get(cell["key"])
                if seen is not None and seen["counts"] != cell["counts"]:
                    raise ValueError(
                        f"conflicting counts for cell {cell['key']}: "
                        "shards disagree — refusing to merge"
                    )
                merged[cell["key"]] = cell
        cells = sorted(merged.values(), key=lambda cell: cell["key"])
        return cls(
            grid=grid, cells=cells, meta={"hits": hits, "misses": misses,
                                          "merged_from": len(parts)}
        )
