"""The ``sweep`` subcommand of ``python -m repro.experiments``.

Three verbs::

    # execute (a shard of) a grid, reading/writing the result cache
    python -m repro.experiments sweep run n=256,4096 d=1,2 \\
        --trials 50 --shard-index 0 --shard-count 2 --out shard0.json

    # merge shard artifacts into the canonical unsharded artifact
    python -m repro.experiments sweep merge shard0.json shard1.json \\
        --out merged.json

    # render a saved artifact as a paper-style table
    python -m repro.experiments sweep show merged.json

Axis tokens are ``axis=v1,v2,...`` over the cell axes
(``space``, ``n``, ``d``, ``m``, ``strategy``, ``partitioned``,
``dim``); see :func:`repro.sweeps.grid.parse_axis_args`.  ``--cache``
points at an explicit cache directory, ``--no-cache`` disables
caching; the default follows ``REPRO_SWEEP_CACHE`` (see
:func:`repro.sweeps.runner.resolve_cache`).
"""

from __future__ import annotations

import argparse
import sys

from repro.sweeps.grid import SweepGrid, parse_axis_args
from repro.sweeps.result import SweepResult
from repro.sweeps.runner import resolve_cache, run_sweep

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``sweep`` subcommand parser (run / merge / show verbs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Sharded, cached parameter sweeps over table cells.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run_p = sub.add_parser("run", help="execute (a shard of) a grid")
    run_p.add_argument(
        "axes", nargs="+", metavar="axis=v1,v2",
        help="grid axes, e.g. n=256,4096 d=1,2 space=ring",
    )
    run_p.add_argument("--trials", type=int, default=100, help="trials per cell")
    run_p.add_argument("--seed", type=int, default=20030206, help="master seed")
    run_p.add_argument("--name", default="sweep", help="grid name (seed namespace)")
    run_p.add_argument("--shard-index", type=int, default=0, help="this shard's index")
    run_p.add_argument("--shard-count", type=int, default=1, help="total shards")
    run_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes within one cell (0 = all cores)",
    )
    run_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes across cells (0 = all cores)",
    )
    run_p.add_argument("--engine", default="auto", help="placement engine selector")
    run_p.add_argument("--cache", default=None, help="cache directory (overrides env)")
    run_p.add_argument("--no-cache", action="store_true", help="disable the cache")
    run_p.add_argument("--out", default=None, help="write the result artifact here")
    run_p.add_argument(
        "--table", action="store_true", help="render the result as a table"
    )
    run_p.add_argument(
        "--row", default="n", help="table row axis (with --table; default n)"
    )
    run_p.add_argument(
        "--col", default="d", help="table column axis (with --table; default d)"
    )

    merge_p = sub.add_parser("merge", help="merge shard artifacts")
    merge_p.add_argument("inputs", nargs="+", help="shard artifact files")
    merge_p.add_argument("--out", default=None, help="write the merged artifact here")
    merge_p.add_argument("--table", action="store_true", help="render merged table")
    merge_p.add_argument("--row", default="n", help="table row axis")
    merge_p.add_argument("--col", default="d", help="table column axis")

    show_p = sub.add_parser("show", help="render a saved artifact")
    show_p.add_argument("input", help="artifact file")
    show_p.add_argument("--row", default="n", help="table row axis")
    show_p.add_argument("--col", default="d", help="table column axis")
    return parser


def _cache_arg(args) -> object:
    if args.no_cache:
        return "off"
    if args.cache is not None:
        return args.cache
    return "auto"


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.verb == "run":
        try:
            grid = SweepGrid.from_mapping(
                dict(
                    parse_axis_args(args.axes),
                    trials=args.trials,
                    seed=args.seed,
                    name=args.name,
                )
            )
        except ValueError as exc:
            print(f"bad grid: {exc}", file=sys.stderr)
            return 2
        store = resolve_cache(_cache_arg(args))
        try:
            result = run_sweep(
                grid,
                cache=store if store is not None else "off",
                shard_index=args.shard_index,
                shard_count=args.shard_count,
                n_jobs=None if args.jobs == 0 else args.jobs,
                engine=args.engine,
                workers=None if args.workers == 0 else args.workers,
                progress=lambda line: print(line, file=sys.stderr),
            )
        except ValueError as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 2
        meta = result.meta
        print(
            f"sweep {grid.name}: {len(result)} cells "
            f"(shard {meta['shard_index'] + 1}/{meta['shard_count']}), "
            f"{meta['hits']} cache hits, {meta['misses']} computed"
            + (f", cache at {store.root}" if store is not None else ", cache off")
        )
        if args.out:
            path = result.save(args.out)
            print(f"wrote {path}")
        if args.table:
            print(result.to_report(row=args.row, col=args.col).render())
        return 0

    if args.verb == "merge":
        try:
            parts = [SweepResult.load(path) for path in args.inputs]
            merged = SweepResult.merge(parts)
        except (OSError, KeyError, ValueError) as exc:
            print(f"merge failed: {exc}", file=sys.stderr)
            return 2
        print(f"merged {len(parts)} artifacts -> {len(merged)} cells")
        if args.out:
            path = merged.save(args.out)
            print(f"wrote {path}")
        if args.table:
            print(merged.to_report(row=args.row, col=args.col).render())
        return 0

    # show
    try:
        result = SweepResult.load(args.input)
        print(result.to_report(row=args.row, col=args.col).render())
    except (OSError, KeyError, ValueError) as exc:
        print(f"show failed: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
