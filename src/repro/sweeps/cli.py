"""The ``sweep`` subcommand of ``python -m repro.experiments``.

Four verbs::

    # execute (a shard of) a grid, reading/writing the result cache
    python -m repro.experiments sweep run n=256,4096 d=1,2 \\
        --trials 50 --shard-index 0 --shard-count 2 --out shard0.json

    # progress of the same grid: cells cached / remaining, rate, ETA
    python -m repro.experiments sweep status n=256,4096 d=1,2 --trials 50

    # merge shard artifacts into the canonical unsharded artifact
    python -m repro.experiments sweep merge shard0.json shard1.json \\
        --out merged.json

    # render a saved artifact as a paper-style table
    python -m repro.experiments sweep show merged.json

Axis tokens are ``axis=v1,v2,...`` over the cell axes
(``space``, ``n``, ``d``, ``m``, ``strategy``, ``partitioned``,
``dim``); see :func:`repro.sweeps.grid.parse_axis_args`.  ``--cache``
points at an explicit cache directory, ``--no-cache`` disables
caching; the default follows ``REPRO_SWEEP_CACHE`` (see
:func:`repro.sweeps.runner.resolve_cache`).

``status`` never simulates and never bumps the cache counters: it
probes which cells of the (sharded) grid already have entries on disk
and estimates the completion rate from their modification times
(:func:`repro.obs.report.progress_eta`), so it is safe to point at a
cache another process is actively filling.

Every ``--out`` artifact (``run`` and ``merge``) is written together
with a ``<out>.manifest.json`` run manifest
(:func:`repro.obs.manifest.write_manifest`) recording the code
revision, interpreter/numpy versions, kernel backend and ``REPRO_*``
environment that produced it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.manifest import write_manifest
from repro.obs.report import format_progress, progress_eta
from repro.sweeps.grid import SweepGrid, parse_axis_args, shard_cells
from repro.sweeps.result import SweepResult
from repro.sweeps.runner import resolve_cache, run_sweep

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``sweep`` subcommand parser (run / merge / show verbs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Sharded, cached parameter sweeps over table cells.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run_p = sub.add_parser("run", help="execute (a shard of) a grid")
    run_p.add_argument(
        "axes", nargs="+", metavar="axis=v1,v2",
        help="grid axes, e.g. n=256,4096 d=1,2 space=ring",
    )
    run_p.add_argument("--trials", type=int, default=100, help="trials per cell")
    run_p.add_argument("--seed", type=int, default=20030206, help="master seed")
    run_p.add_argument("--name", default="sweep", help="grid name (seed namespace)")
    run_p.add_argument("--shard-index", type=int, default=0, help="this shard's index")
    run_p.add_argument("--shard-count", type=int, default=1, help="total shards")
    run_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes within one cell (0 = all cores)",
    )
    run_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes across cells (0 = all cores)",
    )
    run_p.add_argument(
        "--threads", type=int, default=None,
        help="kernel threads within one cell (default: REPRO_NUM_THREADS, "
        "else physical cores; forced to 1 under --workers > 1)",
    )
    run_p.add_argument("--engine", default="auto", help="placement engine selector")
    run_p.add_argument("--cache", default=None, help="cache directory (overrides env)")
    run_p.add_argument("--no-cache", action="store_true", help="disable the cache")
    run_p.add_argument("--out", default=None, help="write the result artifact here")
    run_p.add_argument(
        "--table", action="store_true", help="render the result as a table"
    )
    run_p.add_argument(
        "--row", default="n", help="table row axis (with --table; default n)"
    )
    run_p.add_argument(
        "--col", default="d", help="table column axis (with --table; default d)"
    )

    status_p = sub.add_parser(
        "status", help="progress/ETA of a grid against the cache"
    )
    status_p.add_argument(
        "axes", nargs="+", metavar="axis=v1,v2",
        help="grid axes, e.g. n=256,4096 d=1,2 space=ring",
    )
    status_p.add_argument("--trials", type=int, default=100, help="trials per cell")
    status_p.add_argument("--seed", type=int, default=20030206, help="master seed")
    status_p.add_argument("--name", default="sweep", help="grid name (seed namespace)")
    status_p.add_argument(
        "--shard-index", type=int, default=0, help="this shard's index"
    )
    status_p.add_argument("--shard-count", type=int, default=1, help="total shards")
    status_p.add_argument(
        "--cache", default=None, help="cache directory (overrides env)"
    )

    merge_p = sub.add_parser("merge", help="merge shard artifacts")
    merge_p.add_argument("inputs", nargs="+", help="shard artifact files")
    merge_p.add_argument("--out", default=None, help="write the merged artifact here")
    merge_p.add_argument("--table", action="store_true", help="render merged table")
    merge_p.add_argument("--row", default="n", help="table row axis")
    merge_p.add_argument("--col", default="d", help="table column axis")

    show_p = sub.add_parser("show", help="render a saved artifact")
    show_p.add_argument("input", help="artifact file")
    show_p.add_argument("--row", default="n", help="table row axis")
    show_p.add_argument("--col", default="d", help="table column axis")
    return parser


def _cache_arg(args) -> object:
    if getattr(args, "no_cache", False):
        return "off"
    if args.cache is not None:
        return args.cache
    return "auto"


def _grid_from_args(args) -> SweepGrid:
    """Build the grid shared by the ``run`` and ``status`` verbs."""
    return SweepGrid.from_mapping(
        dict(
            parse_axis_args(args.axes),
            trials=args.trials,
            seed=args.seed,
            name=args.name,
        )
    )


def _save_with_manifest(result: SweepResult, out: str) -> None:
    """Write the artifact plus its ``<out>.manifest.json`` sibling."""
    path = result.save(out)
    print(f"wrote {path}")
    manifest_path = write_manifest(Path(out).with_suffix(".manifest.json"))
    print(f"wrote {manifest_path}")


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.verb == "run":
        try:
            grid = _grid_from_args(args)
        except ValueError as exc:
            print(f"bad grid: {exc}", file=sys.stderr)
            return 2
        store = resolve_cache(_cache_arg(args))
        try:
            result = run_sweep(
                grid,
                cache=store if store is not None else "off",
                shard_index=args.shard_index,
                shard_count=args.shard_count,
                n_jobs=None if args.jobs == 0 else args.jobs,
                engine=args.engine,
                workers=None if args.workers == 0 else args.workers,
                threads=args.threads,
                progress=lambda line: print(line, file=sys.stderr),
            )
        except ValueError as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 2
        meta = result.meta
        print(
            f"sweep {grid.name}: {len(result)} cells "
            f"(shard {meta['shard_index'] + 1}/{meta['shard_count']}), "
            f"{meta['hits']} cache hits, {meta['misses']} computed"
            + (f", cache at {store.root}" if store is not None else ", cache off")
        )
        if args.out:
            _save_with_manifest(result, args.out)
        if args.table:
            print(result.to_report(row=args.row, col=args.col).render())
        return 0

    if args.verb == "status":
        try:
            grid = _grid_from_args(args)
        except ValueError as exc:
            print(f"bad grid: {exc}", file=sys.stderr)
            return 2
        store = resolve_cache(_cache_arg(args))
        if store is None:
            print(
                "sweep status needs a cache (set REPRO_SWEEP_CACHE or --cache)",
                file=sys.stderr,
            )
            return 2
        cells = shard_cells(grid.cells(), args.shard_index, args.shard_count)
        mtimes: list[float] = []
        for cell in cells:
            try:
                mtimes.append(store.path_for(cell.spec_dict()).stat().st_mtime)
            except OSError:
                pass
        progress = progress_eta(len(mtimes), len(cells), mtimes)
        shard = f"shard {args.shard_index + 1}/{args.shard_count}, " \
            if args.shard_count > 1 else ""
        print(
            f"sweep {grid.name} ({shard}cache at {store.root}): "
            + format_progress(progress)
        )
        return 0

    if args.verb == "merge":
        try:
            parts = [SweepResult.load(path) for path in args.inputs]
            merged = SweepResult.merge(parts)
        except (OSError, KeyError, ValueError) as exc:
            print(f"merge failed: {exc}", file=sys.stderr)
            return 2
        print(f"merged {len(parts)} artifacts -> {len(merged)} cells")
        if args.out:
            _save_with_manifest(merged, args.out)
        if args.table:
            print(merged.to_report(row=args.row, col=args.col).render())
        return 0

    # show
    try:
        result = SweepResult.load(args.input)
        print(result.to_report(row=args.row, col=args.col).render())
    except (OSError, KeyError, ValueError) as exc:
        print(f"show failed: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
