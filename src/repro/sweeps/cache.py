"""Content-addressed on-disk cache for sweep cell results.

Every cached artifact is keyed by the blake2b digest of the canonical
JSON of its *spec* (the full parameterization of the computation: cell
parameters, trial count, master seed) plus a **code-version salt**.
Identical specs — no matter which driver, shard, or machine submitted
them — map to the same key; perturbing any parameter, or bumping the
package version, changes the key and therefore misses.  The cache is
append-only and the payloads are deterministic, so concurrent shards
writing the same key race benignly (both write identical bytes).

Layout on disk (two-level fan-out keeps directories small)::

    <root>/<key[:2]>/<key>.json     # spec + JSON payload
    <root>/<key[:2]>/<key>.npz      # optional numpy arrays (profiles)

Writes are atomic (temp file + ``os.replace``); unreadable or corrupt
entries degrade to cache misses, never to wrong results — the reader
verifies the stored spec matches the requested one before trusting a
payload.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro._version import __version__
from repro.obs import counter_add

__all__ = [
    "DEFAULT_SALT",
    "ResultCache",
    "canonical_json",
    "default_cache_dir",
    "spec_key",
]

#: Bump when the cached payload schema changes shape.
_SCHEMA = 1

#: The code-version salt mixed into every key: results computed by one
#: version of the simulation code are never served to another.
DEFAULT_SALT = f"repro-{__version__}-sweeps{_SCHEMA}"

#: ``REPRO_SWEEP_CACHE`` values that mean "caching off".
_DISABLED = {"", "0", "off", "none", "disabled"}


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to byte-stable JSON (sorted keys, no spaces).

    Canonical form is what both the content hash and the merged
    :class:`~repro.sweeps.result.SweepResult` artifacts are built from,
    so sharded and unsharded runs of the same grid produce
    byte-identical files.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


def spec_key(spec: Mapping, salt: str = DEFAULT_SALT) -> str:
    """Content address of a spec: blake2b of its canonical JSON + salt.

    Examples
    --------
    >>> spec_key({"n": 256, "d": 2}) == spec_key({"d": 2, "n": 256})
    True
    >>> spec_key({"n": 256, "d": 2}) == spec_key({"n": 256, "d": 3})
    False
    """
    text = canonical_json({"salt": salt, "spec": spec})
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def default_cache_dir() -> Path | None:
    """Resolve the default cache root from the environment.

    ``REPRO_SWEEP_CACHE`` wins when set: a path enables caching there,
    while ``off``/``none``/``0``/empty disables caching entirely
    (returns ``None``).  Unset falls back to the XDG user cache,
    ``$XDG_CACHE_HOME/repro/sweeps`` or ``~/.cache/repro/sweeps``.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        if env.strip().lower() in _DISABLED:
            return None
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "sweeps"


def _normalize(spec: Mapping) -> dict:
    """JSON round-trip so tuples/ints compare equal to loaded entries."""
    return json.loads(canonical_json(spec))


class ResultCache:
    """A content-addressed result store rooted at one directory.

    Parameters
    ----------
    root:
        Directory holding the cache (created lazily on first ``put``).
    salt:
        Code-version salt mixed into every key; defaults to
        :data:`DEFAULT_SALT`.  Changing the salt invalidates every
        existing entry without touching the files.

    Attributes
    ----------
    hits, misses, stores, corrupt:
        Running counters for this instance (``get`` bumps hits/misses,
        ``put`` bumps stores; ``corrupt`` counts entries that existed
        on disk but failed to parse — they *also* count as misses).
        Mirrored into the process-wide obs metrics
        (``sweep.cache.hit`` / ``.miss`` / ``.store`` / ``.corrupt``,
        see :mod:`repro.obs`) so cache behaviour shows up in trace
        reports without passing the instance around.
    """

    def __init__(self, root: str | os.PathLike, *, salt: str = DEFAULT_SALT):
        self.root = Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key(self, spec: Mapping) -> str:
        """Content address of ``spec`` under this cache's salt."""
        return spec_key(spec, self.salt)

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    def __contains__(self, spec: Mapping) -> bool:
        """Entry present on disk?  Does not bump the hit/miss counters."""
        return self._paths(self.key(spec))[0].is_file()

    def path_for(self, spec: Mapping) -> Path:
        """On-disk JSON path a ``spec`` entry lives at (existing or not).

        The ``sweep status`` subcommand reads the modification times of
        finished cells' entries through this to estimate progress/ETA
        without touching the hit/miss counters.
        """
        return self._paths(self.key(spec))[0]

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, spec: Mapping) -> dict | None:
        """Look up ``spec``; return the stored entry or ``None`` on miss.

        The returned dict has ``"payload"`` (the JSON payload stored by
        :meth:`put`) and ``"arrays"`` (a dict of numpy arrays, empty
        when none were stored).  Corrupt or mismatching entries count
        as misses — the cache never returns data whose recorded spec
        differs from the request.
        """
        key = self.key(spec)
        json_path, npz_path = self._paths(key)
        try:
            text = json_path.read_text()
        except OSError:
            return self._miss()
        try:
            entry = json.loads(text)
        except ValueError:
            return self._miss(corrupt=True)
        if entry.get("salt") != self.salt or entry.get("spec") != _normalize(spec):
            return self._miss()
        arrays: dict[str, np.ndarray] = {}
        if entry.get("has_arrays"):
            try:
                with np.load(npz_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except (OSError, ValueError):
                return self._miss(corrupt=True)
        self.hits += 1
        counter_add("sweep.cache.hit")
        return {"payload": entry["payload"], "arrays": arrays}

    def _miss(self, *, corrupt: bool = False) -> None:
        """Record a miss (optionally a corrupt entry) and return ``None``."""
        self.misses += 1
        counter_add("sweep.cache.miss")
        if corrupt:
            self.corrupt += 1
            counter_add("sweep.cache.corrupt")
        return None

    def put(
        self,
        spec: Mapping,
        payload: Mapping,
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Path:
        """Store ``payload`` (JSON-able) and optional numpy ``arrays``.

        Returns the path of the written JSON entry.  Writes are atomic
        per file; re-putting an existing key overwrites with identical
        bytes (payloads are deterministic functions of the spec).
        """
        key = self.key(spec)
        json_path, npz_path = self._paths(key)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        if arrays:
            self._atomic_write(
                npz_path, lambda fh: np.savez_compressed(fh, **dict(arrays))
            )
        entry = {
            "salt": self.salt,
            "spec": _normalize(spec),
            "payload": _normalize(payload),
            "has_arrays": bool(arrays),
        }
        self._atomic_write(
            json_path,
            lambda fh: fh.write((canonical_json(entry) + "\n").encode("utf-8")),
        )
        self.stores += 1
        counter_add("sweep.cache.store")
        return json_path

    @staticmethod
    def _atomic_write(path: Path, write) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Counters snapshot: hits, misses, stores and corrupt entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def entry_count(self) -> int:
        """Number of JSON entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cache file under the root; returns entries removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*"):
            if path.suffix in (".json", ".npz"):
                removed += path.suffix == ".json"
                path.unlink()
        return removed
