"""Sweep execution: cache-aware cell submission and sharded grid runs.

Two levels of API:

* :func:`submit_cell` / :func:`submit_profile` / :func:`fetch_or_compute`
  — drop-in cached versions of the primitives the experiment drivers
  already use (``run_cell``, ``run_cell_profile``, custom trial
  loops).  Every driver in :mod:`repro.experiments` routes its cells
  through these, so **re-running any table is incremental by
  default**: cells whose (spec, trials, seed, code version) were
  computed before are served from the content-addressed cache.

* :func:`run_sweep` — expand a :class:`~repro.sweeps.grid.SweepGrid`,
  select a shard, execute the uncached cells (serially, or
  process-parallel across cells with ``workers``), populate the
  cache, and return a mergeable
  :class:`~repro.sweeps.result.SweepResult`.

Cache resolution (the ``cache=`` argument accepted everywhere):

* ``"auto"`` (default) — the environment decides: the directory named
  by ``REPRO_SWEEP_CACHE``, the XDG user cache when unset, disabled
  when the variable is ``off``/``none``/``0``/empty;
* ``"off"`` / ``None`` / ``False`` — no caching, compute directly;
* a path — a :class:`~repro.sweeps.cache.ResultCache` rooted there;
* a :class:`~repro.sweeps.cache.ResultCache` — used as-is (pass your
  own instance to observe hit/miss counters).

Caching never changes results: payloads are deterministic functions
of the spec, and a cell whose seed is ``None`` (nondeterministic)
bypasses the cache entirely.
"""

from __future__ import annotations

import os
import warnings
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.kernels import logical_cores, resolve_threads
from repro.obs import obs_session, trace_span
from repro.stats.distributions import MaxLoadDistribution
from repro.stats.trials import CellSpec, run_cell, run_cell_profile
from repro.sweeps.cache import DEFAULT_SALT, ResultCache, default_cache_dir, spec_key
from repro.sweeps.grid import SweepCell, SweepGrid, shard_cells
from repro.sweeps.result import SweepResult
from repro.utils.validation import check_positive_int

__all__ = [
    "fetch_or_compute",
    "resolve_cache",
    "run_sweep",
    "submit_cell",
    "submit_profile",
]

CacheLike = "ResultCache | str | os.PathLike | None | bool"


def resolve_cache(cache: CacheLike = "auto") -> ResultCache | None:
    """Normalize any accepted ``cache=`` form to a store or ``None``.

    See the module docstring for the accepted forms.  ``None`` means
    "caching disabled" and makes every submission compute directly.
    """
    if cache is None or cache is False or cache == "off":
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache == "auto":
        root = default_cache_dir()
        return None if root is None else ResultCache(root)
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(Path(cache))
    raise TypeError(
        "cache must be 'auto', 'off', None, a path, or a ResultCache; "
        f"got {type(cache).__name__}"
    )


def _cacheable_seed(seed) -> int | None:
    """The integer seed if the computation is deterministic, else ``None``."""
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return int(seed)
    return None


def _counts_payload(dist: MaxLoadDistribution) -> dict:
    return {"counts": dist.to_json_counts()}


def _dist_from_payload(payload: Mapping, spec=None) -> MaxLoadDistribution:
    return MaxLoadDistribution.from_json_counts(payload["counts"], spec=spec)


def cell_spec_dict(spec: CellSpec, trials: int, seed: int, kind: str = "cell") -> dict:
    """The canonical cache spec of one ``run_cell`` computation."""
    return {
        "kind": kind,
        "space": spec.space,
        "n": spec.n,
        "d": spec.d,
        "m": spec.m,
        "strategy": spec.strategy,
        "partitioned": spec.partitioned,
        "dim": spec.dim,
        "trials": trials,
        "seed": seed,
    }


def submit_cell(
    spec: CellSpec,
    trials: int,
    seed=None,
    *,
    n_jobs: int | None = 1,
    engine: str = "auto",
    cache: CacheLike = "auto",
    backend=None,
    threads: int | None = None,
) -> MaxLoadDistribution:
    """Cached drop-in for :func:`repro.stats.trials.run_cell`.

    On a cache hit the stored counts are returned without simulating;
    on a miss the cell is computed via ``run_cell`` (same ``n_jobs``,
    ``engine``, kernel-``backend`` and ``threads`` semantics,
    bit-identical results) and stored.  ``backend`` and ``threads``
    are deliberately absent from the cache key: backends and thread
    counts are bit-identical by contract, so a hit from one
    configuration is valid for all.  ``seed=None`` or a disabled cache
    falls through to plain ``run_cell``.
    """
    store = resolve_cache(cache)
    cache_seed = _cacheable_seed(seed)
    if store is None or cache_seed is None:
        return run_cell(
            spec, trials, seed, n_jobs=n_jobs, engine=engine, backend=backend,
            threads=threads,
        )
    spec_d = cell_spec_dict(spec, trials, cache_seed)
    entry = store.get(spec_d)
    if entry is not None:
        return _dist_from_payload(entry["payload"], spec=spec)
    dist = run_cell(
        spec, trials, seed, n_jobs=n_jobs, engine=engine, backend=backend,
        threads=threads,
    )
    store.put(spec_d, _counts_payload(dist))
    return dist


def submit_profile(
    spec: CellSpec,
    trials: int,
    seed=None,
    *,
    n_jobs: int | None = 1,
    engine: str = "auto",
    cache: CacheLike = "auto",
    backend=None,
    threads: int | None = None,
) -> np.ndarray:
    """Cached drop-in for :func:`repro.stats.trials.run_cell_profile`.

    The mean ν-profile (a float array) is stored as an NPZ payload next
    to the JSON entry — the cache's array path.  As in
    :func:`submit_cell`, ``backend`` and ``threads`` steer execution on
    a miss and are not part of the cache key.
    """
    store = resolve_cache(cache)
    cache_seed = _cacheable_seed(seed)
    if store is None or cache_seed is None:
        return run_cell_profile(
            spec, trials, seed, n_jobs=n_jobs, engine=engine, backend=backend,
            threads=threads,
        )
    spec_d = cell_spec_dict(spec, trials, cache_seed, kind="cell_profile")
    entry = store.get(spec_d)
    if entry is not None and "profile" in entry["arrays"]:
        return entry["arrays"]["profile"]
    profile = run_cell_profile(
        spec, trials, seed, n_jobs=n_jobs, engine=engine, backend=backend,
        threads=threads,
    )
    store.put(spec_d, {"trials": trials}, arrays={"profile": profile})
    return profile


def fetch_or_compute(
    spec_dict: Mapping,
    compute: Callable[[], MaxLoadDistribution],
    *,
    cache: CacheLike = "auto",
) -> MaxLoadDistribution:
    """Cache an arbitrary max-load distribution under an explicit spec.

    For drivers whose cells are not ``run_cell`` cells (dynamic churn
    trajectories, geometry/staleness ablations): ``spec_dict`` must
    name every parameter that determines the result — including a
    ``"kind"`` discriminator and the seed — and ``compute`` produces
    the distribution on a miss.
    """
    store = resolve_cache(cache)
    if store is None:
        return compute()
    entry = store.get(spec_dict)
    if entry is not None:
        return _dist_from_payload(entry["payload"])
    dist = compute()
    store.put(spec_dict, _counts_payload(dist))
    return dist


def _cell_record(cell: SweepCell, dist: MaxLoadDistribution) -> dict:
    """A SweepResult cell record; keys use the default salt so the
    artifact identity is independent of the local cache configuration."""
    spec_d = cell.spec_dict()
    return {
        "key": spec_key(spec_d, DEFAULT_SALT),
        "spec": spec_d,
        "counts": dist.to_json_counts(),
    }


def _sweep_worker(args) -> dict:
    """Process-pool entry: compute one cell, return its counts."""
    spec, trials, seed, engine, threads = args
    return run_cell(
        spec, trials, seed, engine=engine, threads=threads
    ).to_json_counts()


def _worker_threads(workers: int, threads: int | None) -> int:
    """Inner kernel threads per sweep worker process.

    Process workers already parallelize across cells, so each worker
    defaults to ``threads=1`` — kernel threads on top would
    oversubscribe the machine.  An explicit request (the ``threads``
    kwarg or ``REPRO_NUM_THREADS``) is honoured, but when
    ``workers × threads`` exceeds the logical core count a
    :class:`RuntimeWarning` flags the oversubscription (results are
    unaffected either way — only wall-clock time suffers).
    """
    if threads is None and not os.environ.get("REPRO_NUM_THREADS", "").strip():
        return 1
    eff = resolve_threads(threads)
    total = workers * eff
    cores = logical_cores()
    if total > cores:
        warnings.warn(
            f"sweep oversubscription: {workers} worker processes x {eff} "
            f"kernel threads = {total} > {cores} logical cores; prefer "
            "workers (across cells) or threads (within a cell), not both",
            RuntimeWarning,
            stacklevel=3,
        )
    return eff


def run_sweep(
    grid: SweepGrid,
    *,
    cache: CacheLike = "auto",
    shard_index: int = 0,
    shard_count: int = 1,
    n_jobs: int | None = 1,
    engine: str = "auto",
    workers: int | None = 1,
    threads: int | None = None,
    progress: Callable[[str], None] | None = None,
    obs: bool | None = None,
) -> SweepResult:
    """Execute (one shard of) a grid and return a mergeable result.

    Parameters
    ----------
    grid:
        The declarative grid to expand.
    cache:
        Cache selector (module docstring); hits skip simulation.
    shard_index, shard_count:
        Select shard ``shard_index`` of a ``shard_count``-way
        round-robin partition of the expanded cell list.  Shards of
        the same grid merge (:meth:`SweepResult.merge
        <repro.sweeps.result.SweepResult.merge>`) to the byte-identical
        unsharded artifact.
    n_jobs:
        Worker processes *within* one cell (forwarded to ``run_cell``).
    engine:
        Placement engine selector, forwarded to ``run_cell``; results
        are independent of it.
    workers:
        Process-parallel workers *across* uncached cells (``None`` =
        one per CPU).  Mutually exclusive with ``n_jobs != 1``.
    threads:
        Kernel threads *within* one cell
        (:func:`repro.kernels.resolve_threads` semantics), forwarded to
        ``run_cell``.  With ``workers > 1`` each worker defaults to one
        thread — the processes already cover the cores — and an
        explicit ``workers × threads`` overshoot of the machine raises
        a :class:`RuntimeWarning` (see :func:`_worker_threads`).  Never
        part of the cache key; results are independent of it.
    progress:
        Optional callable receiving one line per executed cell.
    obs:
        Observability scope (:func:`repro.obs.obs_session`): ``True``
        traces a ``run_sweep`` span with one ``sweep_cell`` span per
        computed cell, ``False`` force-disables, ``None`` follows the
        global ``REPRO_OBS`` switch.  Never changes results.

    Returns
    -------
    SweepResult
        Grid description + per-cell counts; ``meta`` carries hit/miss
        counters and the shard coordinates.
    """
    if workers != 1 and n_jobs != 1:
        raise ValueError("use workers (across cells) or n_jobs (within a cell), not both")
    cells = shard_cells(grid.cells(), shard_index, shard_count)
    store = resolve_cache(cache)
    say = progress or (lambda line: None)

    with obs_session(obs), trace_span(
        "run_sweep",
        grid=grid.name,
        cells=len(cells),
        shard=f"{shard_index + 1}/{shard_count}",
    ):
        records: dict[int, dict] = {}
        pending: list[tuple[int, SweepCell]] = []
        hits = 0
        for pos, cell in enumerate(cells):
            entry = store.get(cell.spec_dict()) if store is not None else None
            if entry is not None:
                records[pos] = _cell_record(cell, _dist_from_payload(entry["payload"]))
                hits += 1
                say(f"[cache hit] {cell.label()} trials={cell.trials}")
            else:
                pending.append((pos, cell))

        if pending and workers == 1:
            for pos, cell in pending:
                with trace_span(
                    "sweep_cell", cell=cell.label(), trials=cell.trials
                ):
                    dist = run_cell(
                        cell.spec, cell.trials, cell.seed, n_jobs=n_jobs,
                        engine=engine, threads=threads,
                    )
                    if store is not None:
                        store.put(cell.spec_dict(), _counts_payload(dist))
                records[pos] = _cell_record(cell, dist)
                say(f"[computed]  {cell.label()} trials={cell.trials}")
        elif pending:
            pool_size = workers if workers is not None else (os.cpu_count() or 1)
            check_positive_int(pool_size, "workers")
            inner_threads = _worker_threads(pool_size, threads)
            ctx = get_context("fork") if os.name == "posix" else get_context()
            payload = [
                (c.spec, c.trials, c.seed, engine, inner_threads)
                for _, c in pending
            ]
            with ctx.Pool(min(pool_size, len(pending))) as pool:
                counts_list = pool.map(_sweep_worker, payload)
            for (pos, cell), counts in zip(pending, counts_list):
                dist = _dist_from_payload({"counts": counts})
                if store is not None:
                    store.put(cell.spec_dict(), {"counts": counts})
                records[pos] = _cell_record(cell, dist)
                say(f"[computed]  {cell.label()} trials={cell.trials}")

        meta = {
            "hits": hits,
            "misses": len(pending),
            "shard_index": shard_index,
            "shard_count": shard_count,
            "engine": engine,
            "cached": store is not None,
        }
        return SweepResult(
            grid=grid.describe(),
            cells=[records[pos] for pos in range(len(cells))],
            meta=meta,
        )
