"""Declarative parameter grids and their deterministic expansion.

A :class:`SweepGrid` names, per axis, the values to sweep —
``space``, ``n``, ``d``, ``m``, ``strategy``, ``partitioned``, ``dim``
— plus the trial count and master seed shared by every cell.
:meth:`SweepGrid.cells` expands the cartesian product in a fixed axis
order into :class:`SweepCell` specs whose per-cell seeds are derived
with :func:`repro.utils.rng.stable_hash_seed`, so the expansion is a
pure function of the grid: the same grid always yields the same cells
with the same seeds, regardless of sharding, process count, or which
machine expands it.  That determinism is what makes the
content-addressed cache (:mod:`repro.sweeps.cache`) and shard merging
(:mod:`repro.sweeps.result`) correct.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Iterable, Mapping, Sequence

from repro.stats.trials import CellSpec
from repro.utils.rng import stable_hash_seed
from repro.utils.validation import check_positive_int

__all__ = ["AXES", "SweepCell", "SweepGrid", "parse_axis_args", "shard_cells"]

#: Axis expansion order (outermost first).  Fixed forever: changing it
#: would reorder cells and break shard/merge reproducibility.
AXES = ("space", "n", "d", "m", "strategy", "partitioned", "dim")


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point: a cell spec plus trials and seed.

    Attributes
    ----------
    spec:
        The :class:`~repro.stats.trials.CellSpec` to simulate.
    trials:
        Independent trials of the cell.
    seed:
        Deterministic master seed derived from the grid identity and
        the cell's axis values.
    """

    spec: CellSpec
    trials: int
    seed: int

    def spec_dict(self) -> dict:
        """The JSON-able cache spec: every parameter that defines the result."""
        return {
            "kind": "cell",
            "space": self.spec.space,
            "n": self.spec.n,
            "d": self.spec.d,
            "m": self.spec.m,
            "strategy": self.spec.strategy,
            "partitioned": self.spec.partitioned,
            "dim": self.spec.dim,
            "trials": self.trials,
            "seed": self.seed,
        }

    def axis(self, name: str) -> object:
        """Value of one grid axis for this cell (e.g. ``axis("n")``)."""
        if name not in AXES:
            raise KeyError(f"unknown axis {name!r}; expected one of {AXES}")
        return getattr(self.spec, name)

    def label(self) -> str:
        """Human-readable cell label (delegates to the spec)."""
        return self.spec.label()


def _astuple(value) -> tuple:
    if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class SweepGrid:
    """A declarative parameter grid over the table-cell axes.

    Every axis accepts a scalar or a sequence of values; scalars are
    normalized to one-element tuples.  ``trials`` and ``seed`` are
    shared by all cells; ``name`` namespaces the per-cell seed
    derivation so two grids with the same axes but different names
    draw independent randomness.

    Examples
    --------
    >>> grid = SweepGrid(n=(256, 1024), d=(1, 2), trials=10)
    >>> len(grid)
    4
    >>> [c.label() for c in grid.cells()][:2]
    ['ring n=256 d=1', 'ring n=256 d=2']
    """

    n: Sequence[int] = (256,)
    d: Sequence[int] = (2,)
    space: Sequence[str] = ("ring",)
    m: Sequence[int | None] = (None,)
    strategy: Sequence[str] = ("random",)
    partitioned: Sequence[bool] = (False,)
    dim: Sequence[int] = (2,)
    trials: int = 100
    seed: int = 20030206
    name: str = "sweep"

    def __post_init__(self) -> None:
        for axis in AXES:
            object.__setattr__(self, axis, _astuple(getattr(self, axis)))
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must have at least one value")
        check_positive_int(self.trials, "trials")
        if not isinstance(self.seed, int):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")

    def __len__(self) -> int:
        total = 1
        for axis in AXES:
            total *= len(getattr(self, axis))
        return total

    def describe(self) -> dict:
        """Canonical JSON-able description (the merge-identity of the grid)."""
        desc: dict = {axis: list(getattr(self, axis)) for axis in AXES}
        desc.update(trials=self.trials, seed=self.seed, name=self.name)
        return desc

    def cells(self) -> list[SweepCell]:
        """Expand to the full deterministic cell list (cartesian product).

        Cells are ordered by the fixed :data:`AXES` nesting (``space``
        outermost, ``dim`` innermost); each cell's seed hashes the grid
        name, master seed, and its axis values.
        """
        out = []
        for values in itertools.product(*(getattr(self, axis) for axis in AXES)):
            params = dict(zip(AXES, values))
            spec = CellSpec(**params)
            cell_seed = stable_hash_seed(
                "sweep", self.name, self.seed, *(params[a] for a in AXES)
            )
            out.append(SweepCell(spec=spec, trials=self.trials, seed=cell_seed))
        return out

    def with_(self, **kwargs) -> "SweepGrid":
        """Functional update (convenience mirror of ``CellSpec.with_``)."""
        return replace(self, **kwargs)

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "SweepGrid":
        """Build from a plain dict (axis scalars or lists, plus options).

        Unknown keys raise — catching typos like ``ns=...`` early.
        """
        valid = {f.name for f in fields(cls)}
        unknown = set(mapping) - valid
        if unknown:
            raise ValueError(
                f"unknown grid keys {sorted(unknown)}; valid: {sorted(valid)}"
            )
        return cls(**dict(mapping))


_AXIS_PARSERS = {
    "space": str,
    "n": int,
    "d": int,
    "m": lambda tok: None if tok.lower() in ("none", "null", "-") else int(tok),
    "strategy": str,
    "partitioned": lambda tok: {"true": True, "1": True, "false": False, "0": False}[
        tok.lower()
    ],
    "dim": int,
}


def parse_axis_args(tokens: Sequence[str]) -> dict:
    """Parse CLI axis tokens like ``["n=256,4096", "d=1,2"]`` to a dict.

    Each token is ``axis=v1,v2,...``; values are coerced per axis
    (``n``/``d``/``dim`` to int, ``m`` to int or ``None``,
    ``partitioned`` to bool).  The result feeds
    :meth:`SweepGrid.from_mapping`.

    Examples
    --------
    >>> parse_axis_args(["n=256,1024", "d=2", "m=none,512"])
    {'n': (256, 1024), 'd': (2,), 'm': (None, 512)}
    """
    out: dict = {}
    for token in tokens:
        axis, sep, rest = token.partition("=")
        if not sep or not rest:
            raise ValueError(f"expected axis=v1,v2,... token, got {token!r}")
        if axis not in _AXIS_PARSERS:
            raise ValueError(
                f"unknown axis {axis!r}; expected one of {sorted(_AXIS_PARSERS)}"
            )
        if axis in out:
            raise ValueError(f"duplicate axis {axis!r}")
        try:
            out[axis] = tuple(_AXIS_PARSERS[axis](v) for v in rest.split(","))
        except (KeyError, ValueError) as exc:
            raise ValueError(f"cannot parse {token!r}: {exc}") from None
    return out


def shard_cells(
    cells: Sequence[SweepCell], shard_index: int, shard_count: int
) -> list[SweepCell]:
    """Round-robin slice of a cell list for one shard.

    Shard ``i`` of ``k`` owns cells at positions ``i, i+k, i+2k, ...``
    of the deterministic expansion order; the shards partition the
    grid exactly (disjoint union) so merged shard results equal the
    unsharded run.
    """
    check_positive_int(shard_count, "shard_count")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return [c for pos, c in enumerate(cells) if pos % shard_count == shard_index]
