"""``repro.sweeps`` — sharded parameter sweeps over a result cache.

The orchestration layer between the trial engines
(:mod:`repro.stats.trials`) and the experiment drivers
(:mod:`repro.experiments`).  It turns the table/ablation suite into a
**resumable, cacheable, shardable** sweep engine:

* :class:`SweepGrid` (:mod:`repro.sweeps.grid`) — declarative
  parameter grids over the cell axes (space, n, d, m, strategy,
  partitioned, dim) that expand deterministically into per-cell
  specs with stable derived seeds;
* :class:`ResultCache` (:mod:`repro.sweeps.cache`) — a
  content-addressed on-disk store: each result is keyed by the hash
  of its full spec plus a code-version salt, so identical work is
  never recomputed and bumping the package version orphans every
  result computed by older releases (edits that change results
  without a version bump must also bump the salt or clear the cache);
* :func:`run_sweep` / :func:`submit_cell` (:mod:`repro.sweeps.runner`)
  — cache-aware execution with round-robin shard selection
  (``--shard-index/--shard-count``) and process-parallel workers;
* :class:`SweepResult` (:mod:`repro.sweeps.result`) — mergeable
  artifacts with a canonical byte form: shards of one grid merge to
  the byte-identical unsharded result, and ``to_report`` renders
  through the same :mod:`repro.stats.tables` stack as Tables 1–3.

Caching is on by default (XDG user cache) and controlled by the
``REPRO_SWEEP_CACHE`` environment variable; every experiment driver
accepts ``cache=`` to point at an explicit store or disable it.  See
``docs/sweeps.md`` for the user guide and
``python -m repro.experiments sweep --help`` for the CLI.

Examples
--------
>>> from repro.sweeps import SweepGrid, run_sweep
>>> grid = SweepGrid(n=(64, 128), d=(1, 2), trials=3, name="demo")
>>> result = run_sweep(grid, cache="off")
>>> len(result)
4
"""

from repro.sweeps.cache import (
    DEFAULT_SALT,
    ResultCache,
    canonical_json,
    default_cache_dir,
    spec_key,
)
from repro.sweeps.grid import AXES, SweepCell, SweepGrid, parse_axis_args, shard_cells
from repro.sweeps.result import SweepResult
from repro.sweeps.runner import (
    fetch_or_compute,
    resolve_cache,
    run_sweep,
    submit_cell,
    submit_profile,
)

__all__ = [
    "AXES",
    "DEFAULT_SALT",
    "ResultCache",
    "SweepCell",
    "SweepGrid",
    "SweepResult",
    "canonical_json",
    "default_cache_dir",
    "fetch_or_compute",
    "parse_axis_args",
    "resolve_cache",
    "run_sweep",
    "shard_cells",
    "spec_key",
    "submit_cell",
    "submit_profile",
]
