"""Workload generators for the DHT experiments.

Key *placement* in the paper is uniform (hashing idealizes any key
population); lookup *popularity* in real systems is skewed, so the
experiments also exercise a Zipf lookup stream to show the two-choices
layout does not interact badly with hot keys.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["generate_keys", "zipf_lookups"]


def generate_keys(m: int, seed=None, *, prefix: str = "key") -> list[str]:
    """``m`` distinct printable keys (hex-suffixed), deterministically.

    Examples
    --------
    >>> ks = generate_keys(3, seed=0)
    >>> len(ks) == len(set(ks)) == 3
    True
    """
    m = check_positive_int(m, "m")
    rng = resolve_rng(seed)
    suffixes = rng.integers(0, 1 << 62, size=2 * m, dtype=np.int64)
    keys: list[str] = []
    seen: set[int] = set()
    i = 0
    while len(keys) < m:
        if i >= suffixes.size:  # pragma: no cover - astronomically unlikely
            suffixes = rng.integers(0, 1 << 62, size=2 * m, dtype=np.int64)
            i = 0
        s = int(suffixes[i])
        i += 1
        if s not in seen:
            seen.add(s)
            keys.append(f"{prefix}:{s:016x}")
    return keys


def zipf_lookups(
    keys: list[str], n_lookups: int, *, exponent: float = 1.1, seed=None
) -> list[str]:
    """A lookup stream whose key popularity follows a Zipf law.

    Parameters
    ----------
    keys:
        The key population (rank 0 = most popular).
    n_lookups:
        Stream length.
    exponent:
        Zipf exponent ``s > 0`` (1.0-1.2 is typical of web traces).
    """
    if not keys:
        raise ValueError("keys must be non-empty")
    n_lookups = check_positive_int(n_lookups, "n_lookups")
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")
    rng = resolve_rng(seed)
    ranks = np.arange(1, len(keys) + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    picks = rng.choice(len(keys), size=n_lookups, p=weights)
    return [keys[i] for i in picks]
