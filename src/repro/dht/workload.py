"""Workload generators for the DHT experiments.

Key *placement* in the paper is uniform (hashing idealizes any key
population); lookup *popularity* in real systems is skewed, so the
experiments also exercise a Zipf lookup stream to show the two-choices
layout does not interact badly with hot keys.

These generators sit on the serving tier's replay hot path
(``repro.serve``, ``benchmarks/run_serve_benchmarks.py``), so they are
fully vectorized: key dedup runs through ``np.unique`` and lookup
streams through one bulk ``rng.choice`` — while producing sequences
**identical** to the original scalar implementations for any given
seed (same RNG call pattern, same outputs; pinned by
``tests/dht/test_workload.py``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["generate_keys", "zipf_lookups", "zipf_ranks"]


def generate_keys(m: int, seed=None, *, prefix: str = "key") -> list[str]:
    """``m`` distinct printable keys (hex-suffixed), deterministically.

    Vectorized: one bulk integer draw, first-occurrence dedup via
    ``np.unique``, one formatting pass.  The draw pattern (blocks of
    ``2 * m``, redrawn only in the astronomically unlikely event of
    mass collision) matches the original scalar loop exactly, so any
    seed yields the same key list it always did.

    Examples
    --------
    >>> ks = generate_keys(3, seed=0)
    >>> len(ks) == len(set(ks)) == 3
    True
    """
    m = check_positive_int(m, "m")
    rng = resolve_rng(seed)
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < m:
        suffixes = rng.integers(0, 1 << 62, size=2 * m, dtype=np.int64)
        # first occurrence of each distinct suffix, in draw order
        _, first = np.unique(suffixes, return_index=True)
        batch = suffixes[np.sort(first)]
        if chosen.size:  # pragma: no cover - astronomically unlikely
            batch = batch[~np.isin(batch, chosen)]
        chosen = np.concatenate([chosen, batch]) if chosen.size else batch
    return [f"{prefix}:{s:016x}" for s in chosen[:m].tolist()]


def zipf_ranks(
    n_keys: int, n_lookups: int, *, exponent: float = 1.1, seed=None
) -> np.ndarray:
    """Zipf-distributed rank indices in ``[0, n_keys)`` (0 = hottest).

    The sampling core shared by :func:`zipf_lookups` and the serving
    workload (:func:`repro.serve.workload.zipf_replay_ops`): one bulk
    ``rng.choice`` over the normalized ``rank**-exponent`` law.
    """
    n_keys = check_positive_int(n_keys, "n_keys")
    n_lookups = check_positive_int(n_lookups, "n_lookups")
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")
    rng = resolve_rng(seed)
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return rng.choice(n_keys, size=n_lookups, p=weights)


def zipf_lookups(
    keys: list[str], n_lookups: int, *, exponent: float = 1.1, seed=None
) -> list[str]:
    """A lookup stream whose key popularity follows a Zipf law.

    Parameters
    ----------
    keys:
        The key population (rank 0 = most popular).
    n_lookups:
        Stream length.
    exponent:
        Zipf exponent ``s > 0`` (1.0-1.2 is typical of web traces).
    """
    if not keys:
        raise ValueError("keys must be non-empty")
    picks = zipf_ranks(len(keys), n_lookups, exponent=exponent, seed=seed)
    return np.asarray(keys, dtype=object)[picks].tolist()
