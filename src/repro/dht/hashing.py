"""Deterministic hashing of keys and servers to ring identifiers.

Real DHTs use a cryptographic hash (SHA-1 in Chord); we use BLAKE2b
(stdlib, fast, keyed) truncated to :data:`RING_BITS` bits.  The
``d``-choice scheme needs ``d`` independent hash functions; we derive
them by salting the hash with the choice index, which under the
random-oracle idealization (the same one the paper makes) yields
independent uniform positions.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["RING_BITS", "RING_SIZE", "key_id", "hash_to_unit", "multi_hash"]

#: Identifier width of the ring (Chord uses 160; 64 is plenty for
#: simulation and keeps ids in native integers).
RING_BITS = 64

#: Number of points on the identifier ring.
RING_SIZE = 1 << RING_BITS


def _digest(data: bytes, salt: int) -> int:
    h = hashlib.blake2b(
        data, digest_size=8, salt=salt.to_bytes(8, "big"), usedforsecurity=False
    )
    return int.from_bytes(h.digest(), "big")


def key_id(key: str | bytes, salt: int = 0) -> int:
    """Hash a key (or server name) to a ``RING_BITS``-bit identifier.

    Examples
    --------
    >>> key_id("alice") == key_id(b"alice")
    True
    >>> key_id("alice") != key_id("alice", salt=1)
    True
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    elif not isinstance(key, bytes):
        raise TypeError(f"key must be str or bytes, got {type(key).__name__}")
    salt = check_non_negative_int(salt, "salt")
    return _digest(key, salt)


def hash_to_unit(key: str | bytes, salt: int = 0) -> float:
    """Hash a key to a position in ``[0, 1)`` (the analysis's ring)."""
    return key_id(key, salt) / RING_SIZE


def multi_hash(key: str | bytes, d: int) -> np.ndarray:
    """The ``d`` candidate identifiers of a key (one per hash function).

    Returns a length-``d`` uint64 array; entry ``j`` is the key's image
    under the ``j``-th salted hash.
    """
    d = check_positive_int(d, "d")
    return np.array([key_id(key, salt=j) for j in range(d)], dtype=np.uint64)
