"""Reliability mechanics: successor lists, failures, and churn.

The paper's conclusion: "while we believe the two-choice paradigm will
prove useful for Chord-like networks, there is work to be done
considering how to apply it while maintaining reliability and other
useful features of these systems."  This module implements the standard
reliability story so that question is executable:

* **successor lists** — each node knows its ``r`` clockwise successors;
  a key stays reachable while fewer than ``r`` consecutive nodes fail
  (Chord's classical guarantee),
* **failure simulation** — mark nodes failed without removing them
  (routing must detour around them),
* **churn driver** — interleave joins/leaves/failures with item
  placements and measure how the two-choice balance and the redirect
  pointers degrade,
* **trace replay** — :meth:`ResilientChord.replay_trace` replays the
  bin-churn events of a :mod:`repro.dynamics` trace as node failures
  and recoveries, so the *same* workload drives both the placement
  trajectory (dynamic engines) and the routing availability (here).

Routing here is deliberately simple (successor walking with finger
shortcuts over *live* nodes); the point is measuring reachability and
balance under churn, not squeezing hops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.chord import ChordRing, in_interval
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["ResilientChord", "ChurnReport"]


@dataclass(frozen=True)
class ChurnReport:
    """Outcome of a churn episode."""

    lookups: int
    reachable: int
    mean_hops: float
    failed_nodes: int

    @property
    def availability(self) -> float:
        return self.reachable / self.lookups if self.lookups else 1.0


class ResilientChord:
    """A Chord ring with successor lists and fail-stop nodes.

    Parameters
    ----------
    ring:
        Underlying (healthy) topology.
    successors:
        Length ``r`` of each node's successor list.  Chord recommends
        ``r = Theta(log n)``; default ``ceil(2 log2 n)``.

    Examples
    --------
    >>> rc = ResilientChord(ChordRing.random(32, seed=0))
    >>> rc.fail(5)
    >>> rc.lookup_live(123456).owner_alive
    True
    """

    def __init__(self, ring: ChordRing, successors: int | None = None) -> None:
        if not isinstance(ring, ChordRing):
            raise TypeError(f"ring must be a ChordRing, got {type(ring).__name__}")
        self.ring = ring
        n = ring.n
        if successors is None:
            successors = min(n - 1, max(1, int(2 * np.ceil(np.log2(max(n, 2))))))
        self.r = check_positive_int(successors, "successors")
        if self.r >= n and n > 1:
            self.r = n - 1
        self._alive = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    @property
    def alive(self) -> np.ndarray:
        v = self._alive.view()
        v.flags.writeable = False
        return v

    def fail(self, index: int) -> None:
        """Fail-stop the node at ``index`` (idempotent)."""
        if not 0 <= index < self.ring.n:
            raise ValueError(f"index {index} out of range")
        if self._alive.sum() <= 1:
            raise ValueError("cannot fail the last live node")
        self._alive[index] = False

    def recover(self, index: int) -> None:
        """Bring a failed node back."""
        if not 0 <= index < self.ring.n:
            raise ValueError(f"index {index} out of range")
        self._alive[index] = True

    def fail_random(self, count: int, seed=None) -> list[int]:
        """Fail ``count`` random live nodes; returns their indices."""
        count = check_non_negative_int(count, "count")
        rng = resolve_rng(seed)
        live = np.nonzero(self._alive)[0]
        if count >= live.size:
            raise ValueError(
                f"cannot fail {count} of {live.size} live nodes "
                "(at least one must survive)"
            )
        picks = rng.choice(live, size=count, replace=False)
        for i in picks:
            self.fail(int(i))
        return [int(i) for i in picks]

    # ------------------------------------------------------------------
    # routing over live nodes
    # ------------------------------------------------------------------
    def successor_list(self, index: int) -> list[int]:
        """The ``r`` clockwise successors of a node (live or not)."""
        n = self.ring.n
        return [(index + k) % n for k in range(1, self.r + 1)]

    def live_owner(self, ident: int) -> int:
        """First *live* node at or after ``ident`` clockwise.

        This is where the key's data resides after failures hand
        responsibility to successors.
        """
        idx = self.ring.successor_index(int(ident))
        n = self.ring.n
        for k in range(n):
            candidate = (idx + k) % n
            if self._alive[candidate]:
                return candidate
        raise RuntimeError("no live nodes")  # pragma: no cover - guarded

    @dataclass(frozen=True)
    class LiveLookup:
        owner_index: int
        hops: int
        owner_alive: bool
        detours: int

    def lookup_live(self, ident: int, start_index: int | None = None):
        """Route to the live owner, detouring around failed nodes.

        Per-hop rule: from a live node, take the farthest *live* finger
        that strictly precedes the target (classic Chord), else the
        first live successor.  Each failed candidate skipped counts as
        a detour (a timeout in a real deployment).
        """
        ident = int(ident)
        n = self.ring.n
        if start_index is None:
            live = np.nonzero(self._alive)[0]
            start_index = int(live[0])
        if not self._alive[start_index]:
            raise ValueError(f"start node {start_index} is failed")
        fingers = self.ring.finger_table()
        ids = self.ring.node_ids
        target_owner = self.live_owner(ident)
        cur = start_index
        hops = 0
        detours = 0
        max_hops = 4 * 64 + n  # generous: fingers + successor walking
        while cur != target_owner:
            cur_id = int(ids[cur])
            nxt = None
            for k in range(63, -1, -1):
                f = int(fingers[cur, k])
                if (
                    f != cur
                    and self._alive[f]
                    and in_interval(int(ids[f]), cur_id, ident)
                ):
                    nxt = f
                    break
            if nxt is None:
                # walk the successor list to the first live node
                for s in self.successor_list(cur):
                    if self._alive[s]:
                        nxt = s
                        break
                    detours += 1
                if nxt is None:
                    # successor list exhausted: r consecutive failures
                    raise RuntimeError(
                        f"{self.r} consecutive successors of node {cur} "
                        "failed; key unreachable"
                    )
            cur = nxt
            hops += 1
            if hops > max_hops:  # pragma: no cover - safety net
                raise RuntimeError("routing loop")
        return self.LiveLookup(
            owner_index=cur,
            hops=hops,
            owner_alive=bool(self._alive[cur]),
            detours=detours,
        )

    # ------------------------------------------------------------------
    # churn measurement
    # ------------------------------------------------------------------
    def _measure_lookups(self, lookups: int, rng: np.random.Generator) -> ChurnReport:
        """Availability and hop count over random lookups, as-is."""
        live = np.nonzero(self._alive)[0]
        reachable = 0
        total_hops = 0
        for _ in range(check_positive_int(lookups, "lookups")):
            ident = int(rng.integers(0, 1 << 63)) * 2
            start = int(rng.choice(live))
            try:
                res = self.lookup_live(ident, start)
            except RuntimeError:
                continue
            reachable += 1
            total_hops += res.hops
        return ChurnReport(
            lookups=lookups,
            reachable=reachable,
            mean_hops=total_hops / reachable if reachable else float("nan"),
            failed_nodes=int((~self._alive).sum()),
        )

    def churn_episode(
        self,
        fail_count: int,
        lookups: int = 200,
        seed=None,
    ) -> ChurnReport:
        """Fail ``fail_count`` nodes, then measure lookup availability."""
        rng = resolve_rng(seed)
        self.fail_random(fail_count, seed=rng)
        return self._measure_lookups(lookups, rng)

    def replay_trace(
        self,
        trace,
        *,
        lookups_per_epoch: int = 100,
        seed=None,
    ) -> list[ChurnReport]:
        """Replay a dynamics trace's bin churn as node failures/recoveries.

        Bridges the placement-level dynamics subsystem to the routing
        layer: the same :class:`~repro.dynamics.events.EventTrace` whose
        load trajectory the dynamic engines measure is replayed here as
        fail-stop (``BIN_LEAVE``) and recovery (``BIN_JOIN``) events on
        the Chord substrate, with lookup availability measured at every
        trace epoch.  Item-level (insert/delete) events do not touch
        routing and are skipped.

        The trace's slot universe must be this ring's node set
        (``trace.n_slots == ring.n``) when the trace contains churn;
        nodes are assumed all-alive at the start so the trace's
        "never drop the last bin" invariant maps onto the ring.

        Returns one :class:`ChurnReport` per trace epoch.
        """
        from repro.dynamics.events import EventKind

        rng = resolve_rng(seed)
        if trace.has_churn and trace.n_slots != self.ring.n:
            raise ValueError(
                f"trace expects {trace.n_slots} bin slots but the ring has "
                f"{self.ring.n} nodes"
            )
        if not self._alive.all():
            raise ValueError("replay_trace requires an all-alive starting state")
        kinds = trace.kinds
        args = trace.args
        # only churn events touch routing: walk churn positions merged
        # with epoch boundaries instead of scanning every event
        churn_positions = np.nonzero(kinds >= EventKind.BIN_LEAVE)[0]
        reports: list[ChurnReport] = []
        cp = 0
        for epoch_end in trace.epoch_ends.tolist():
            while cp < churn_positions.size and churn_positions[cp] < epoch_end:
                i = int(churn_positions[cp])
                if kinds[i] == EventKind.BIN_LEAVE:
                    self.fail(int(args[i]))
                else:
                    self.recover(int(args[i]))
                cp += 1
            reports.append(self._measure_lookups(lookups_per_epoch, rng))
        return reports
