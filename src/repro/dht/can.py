"""A CAN-style DHT: zone partition of the k-D torus (Ratnasamy et al.).

The paper's introduction lists CAN [12] among the DHTs motivating
nearest-neighbor load balancing on geometric spaces; its Section 3
torus is CAN's coordinate space.  This module implements the CAN
substrate so the two-choice paradigm can be exercised on a *second*
geometric bin structure:

* the unit k-torus is partitioned into axis-aligned **zones**, built by
  n sequential joins (each join picks a uniform point and halves the
  owning zone along its longest side — CAN's split rule),
* a key hashes to a point and belongs to the zone containing it,
* routing forwards greedily to the neighbor zone closest to the target
  (O(k n^{1/k}) hops, CAN's classic bound — contrast Chord's O(log n)).

Zone volumes are *more* skewed than Voronoi cells (a product of
independent halvings — the max volume is Θ(log n / n) but the spread
is dyadic), so CAN is a stress test for the paper's thesis that two
choices tames geometric non-uniformity.  :class:`CanSpace` plugs the
zone partition into the standard placement engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spaces import GeometricSpace
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_dimension, check_positive_int

__all__ = ["Zone", "CanNetwork", "CanSpace"]


@dataclass(frozen=True)
class Zone:
    """An axis-aligned box ``[lo, hi)`` inside the unit torus.

    Zones are produced by halving and never wrap around the torus
    individually (adjacency handles the wrap).
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def volume(self) -> float:
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    @property
    def center(self) -> np.ndarray:
        return (np.asarray(self.lo) + np.asarray(self.hi)) / 2.0

    def contains(self, point) -> bool:
        return all(a <= x < b for a, b, x in zip(self.lo, self.hi, point))

    def split(self) -> tuple["Zone", "Zone"]:
        """Halve along the longest side (ties: lowest axis)."""
        sides = [b - a for a, b in zip(self.lo, self.hi)]
        axis = int(np.argmax(sides))
        mid = (self.lo[axis] + self.hi[axis]) / 2.0
        left_hi = list(self.hi)
        left_hi[axis] = mid
        right_lo = list(self.lo)
        right_lo[axis] = mid
        return (
            Zone(self.lo, tuple(left_hi)),
            Zone(tuple(right_lo), self.hi),
        )

    def box_distance(self, point: np.ndarray) -> float:
        """Toroidal Euclidean distance from ``point`` to this box."""
        total = 0.0
        for a, b, x in zip(self.lo, self.hi, point):
            if a <= x < b:
                continue
            # nearest approach to the interval, considering the wrap
            d = min(
                abs(x - a) % 1.0,
                abs(x - b) % 1.0,
                1.0 - abs(x - a) % 1.0,
                1.0 - abs(x - b) % 1.0,
            )
            # distance to interval is to the closer endpoint (no wrap
            # through the interval itself since x is outside it)
            d_direct = min(_torus_gap(x, a), _torus_gap(x, b))
            total += min(d, d_direct) ** 2
        return float(np.sqrt(total))


def _torus_gap(x: float, y: float) -> float:
    g = abs(x - y)
    return min(g, 1.0 - g)


class CanNetwork:
    """A CAN overlay built by ``n`` random joins.

    Examples
    --------
    >>> can = CanNetwork.random(16, dim=2, seed=0)
    >>> can.n
    16
    >>> float(sum(z.volume for z in can.zones)) == 1.0
    True
    """

    def __init__(self, zones: list[Zone]) -> None:
        if not zones:
            raise ValueError("CanNetwork needs at least one zone")
        dim = zones[0].dim
        if any(z.dim != dim for z in zones):
            raise ValueError("all zones must share a dimension")
        total = sum(z.volume for z in zones)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"zones must partition the torus (volume {total})")
        self.zones = list(zones)
        self.dim = dim
        self._neighbors: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, n: int, dim: int = 2, seed=None) -> "CanNetwork":
        """Build by ``n - 1`` random joins from the full torus.

        Each join lands at a uniform point and splits the zone that
        owns it — CAN's bootstrap, which is what produces the skewed
        dyadic volume distribution.
        """
        n = check_positive_int(n, "n")
        dim = check_dimension(dim, "dim")
        rng = resolve_rng(seed)
        zones = [Zone((0.0,) * dim, (1.0,) * dim)]
        while len(zones) < n:
            p = rng.random(dim)
            idx = next(i for i, z in enumerate(zones) if z.contains(p))
            a, b = zones[idx].split()
            zones[idx] = a
            zones.append(b)
        return cls(zones)

    @property
    def n(self) -> int:
        return len(self.zones)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def owner(self, point) -> int:
        """Index of the zone containing ``point``."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {p.shape}")
        if np.any((p < 0) | (p >= 1)):
            raise ValueError("point must lie in [0, 1)^k")
        for i, z in enumerate(self.zones):
            if z.contains(p):
                return i
        raise AssertionError("zones do not cover the torus")  # pragma: no cover

    def volumes(self) -> np.ndarray:
        return np.array([z.volume for z in self.zones])

    def neighbors(self, index: int) -> list[int]:
        """Zones sharing a (k-1)-face with ``index`` (torus-aware)."""
        if self._neighbors is None:
            self._neighbors = self._build_neighbors()
        return self._neighbors[index]

    def _build_neighbors(self) -> list[list[int]]:
        n = self.n
        out: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if self._adjacent(self.zones[i], self.zones[j]):
                    out[i].append(j)
                    out[j].append(i)
        return out

    @staticmethod
    def _adjacent(a: Zone, b: Zone) -> bool:
        """Whether two boxes share a (k-1)-face on the torus."""
        touch_axis = -1
        for axis in range(a.dim):
            alo, ahi = a.lo[axis], a.hi[axis]
            blo, bhi = b.lo[axis], b.hi[axis]
            touching = (
                abs(ahi - blo) < 1e-12
                or abs(bhi - alo) < 1e-12
                or (abs(ahi - 1.0) < 1e-12 and abs(blo) < 1e-12)
                or (abs(bhi - 1.0) < 1e-12 and abs(alo) < 1e-12)
            )
            overlapping = ahi - 1e-12 > blo and bhi - 1e-12 > alo
            if touching and not overlapping:
                if touch_axis >= 0:
                    return False  # touch in two axes = corner contact
                touch_axis = axis
            elif not overlapping:
                return False  # separated in this axis
        return touch_axis >= 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @dataclass(frozen=True)
    class Route:
        owner_index: int
        hops: int
        path: tuple[int, ...]

    def route(self, point, start_index: int = 0) -> "CanNetwork.Route":
        """Greedy CAN routing: forward to the neighbor nearest the target.

        Each hop strictly decreases the box distance to the target, so
        the walk terminates at the owner; hop counts scale as
        ``O(k n^{1/k})`` (benchmarked).
        """
        p = np.asarray(point, dtype=np.float64)
        if not 0 <= start_index < self.n:
            raise ValueError(f"start_index {start_index} out of range")
        target = self.owner(p)
        cur = start_index
        hops = 0
        path = [cur]
        max_hops = 4 * self.dim * int(np.ceil(self.n ** (1.0 / self.dim))) + self.n
        while cur != target:
            best, best_dist = cur, self.zones[cur].box_distance(p)
            for nb in self.neighbors(cur):
                d = self.zones[nb].box_distance(p)
                if d < best_dist - 1e-15:
                    best, best_dist = nb, d
            if best == cur:
                # box distance can tie across a face; take any neighbor
                # strictly closer by center distance to guarantee progress
                center_d = {
                    nb: float(
                        np.sqrt(
                            sum(
                                _torus_gap(c, x) ** 2
                                for c, x in zip(self.zones[nb].center, p)
                            )
                        )
                    )
                    for nb in self.neighbors(cur)
                }
                best = min(center_d, key=center_d.get)
            cur = best
            hops += 1
            path.append(cur)
            if hops > max_hops:  # pragma: no cover - safety net
                raise RuntimeError("CAN routing failed to converge")
        return CanNetwork.Route(owner_index=cur, hops=hops, path=tuple(path))


class CanSpace(GeometricSpace):
    """CAN zones as bins for the placement engine.

    Assignment walks the binary split tree implicitly via linear zone
    scan batched in numpy (zones are few enough that an O(n) vector
    test per block is faster than building an index for the sizes the
    experiments use).

    Examples
    --------
    >>> space = CanSpace.random(32, seed=0)
    >>> from repro.core.placement import place_balls
    >>> place_balls(space, 32, 2, seed=1).loads.sum()
    np.int64(32)
    """

    def __init__(self, network: CanNetwork) -> None:
        if not isinstance(network, CanNetwork):
            raise TypeError(
                f"network must be a CanNetwork, got {type(network).__name__}"
            )
        self.network = network
        self.n = network.n
        self.dim = network.dim
        zones = network.zones
        self._lo = np.array([z.lo for z in zones])  # (n, k)
        self._hi = np.array([z.hi for z in zones])

    @classmethod
    def random(cls, n: int, dim: int = 2, seed=None) -> "CanSpace":
        return cls(CanNetwork.random(n, dim=dim, seed=seed))

    def assign(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.shape[-1] != self.dim:
            raise ValueError(
                f"points must have last dimension {self.dim}, got {pts.shape}"
            )
        if pts.size and (np.any(pts < 0) or np.any(pts >= 1)):
            raise ValueError("points must lie in [0, 1)^k")
        # (m, n) containment matrix in blocks to bound memory
        out = np.empty(pts.shape[0], dtype=np.int64)
        block = max(1, (1 << 22) // max(self.n, 1))
        for s in range(0, pts.shape[0], block):
            chunk = pts[s : s + block]  # (b, k)
            inside = np.all(
                (chunk[:, None, :] >= self._lo[None, :, :])
                & (chunk[:, None, :] < self._hi[None, :, :]),
                axis=2,
            )
            out[s : s + chunk.shape[0]] = np.argmax(inside, axis=1)
        return out

    def sample_choice_bins(
        self,
        rng: np.random.Generator,
        m: int,
        d: int,
        *,
        partitioned: bool = False,
    ) -> np.ndarray:
        u = rng.random((m, d, self.dim))
        if partitioned:
            u[..., 0] = (u[..., 0] + np.arange(d)[None, :]) / d
        return self.assign(u.reshape(m * d, self.dim)).reshape(m, d)

    def region_measures(self) -> np.ndarray:
        return self.network.volumes()
