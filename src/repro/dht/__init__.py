"""Chord-style distributed hash table: the paper's motivating application.

The paper's Section 1.1: in consistent hashing, servers and keys hash
onto a one-dimensional ring and each key is assigned to the nearest
server clockwise; Chord adds logarithmic-size finger tables for
O(log n)-hop lookups.  The naive design is Θ(log n)-imbalanced (arc
lengths are non-uniform), Chord's remedy is virtual servers, and the
paper's proposal — analyzed by Theorem 1 — is the two-choices
refinement of [3] (Byers-Considine-Mitzenmacher, IPTPS 2003).

This package is a faithful, self-contained implementation:

* :mod:`repro.dht.hashing` — deterministic BLAKE2b hashing of keys and
  server names to ring positions (the d hash functions of the scheme),
* :mod:`repro.dht.chord` — the ring, successor lookup, finger tables,
  iterative routing with hop counting, joins and departures,
* :mod:`repro.dht.twochoice` — d-choice insertion with redirect
  pointers so lookups stay O(log n) hops,
* :mod:`repro.dht.workload` — key/lookup workload generators (uniform
  and Zipf-popular),
* :mod:`repro.dht.resilience` — successor lists, fail-stop nodes and
  churn measurement (the conclusion's reliability remark),
* :mod:`repro.dht.can` — a CAN-style zone DHT on the k-torus (the
  paper's other DHT citation), whose dyadic zone volumes provide a
  third, more skewed bin geometry for the placement engine.

Static theorem, dynamic system
------------------------------
Theorem 1 bounds the maximum load of a *static* placement: ``m`` keys
inserted once, no departures, no membership change.  A running DHT is
the dynamic closure of that model — keys are deleted as well as
inserted, and nodes join and leave with their keys re-placed — which
the proof does not cover.  :mod:`repro.dynamics` makes that regime
executable (replayable insert/delete/churn traces with per-epoch load
trajectories), and :meth:`repro.dht.resilience.ResilientChord.
replay_trace` closes the loop by replaying the same trace's node churn
against the routing layer, so balance and availability are measured on
one workload.
"""

from repro.dht.hashing import hash_to_unit, key_id, multi_hash, RING_BITS
from repro.dht.can import CanNetwork, CanSpace
from repro.dht.chord import ChordRing, LookupResult
from repro.dht.twochoice import TwoChoiceDHT
from repro.dht.resilience import ChurnReport, ResilientChord
from repro.dht.workload import generate_keys, zipf_lookups

__all__ = [
    "RING_BITS",
    "hash_to_unit",
    "key_id",
    "multi_hash",
    "CanNetwork",
    "CanSpace",
    "ChordRing",
    "LookupResult",
    "TwoChoiceDHT",
    "ResilientChord",
    "ChurnReport",
    "generate_keys",
    "zipf_lookups",
]
