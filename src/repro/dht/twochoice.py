"""The two-choices refinement of consistent hashing ([3], IPTPS 2003).

Insertion: a key is hashed with ``d`` independent hash functions; each
image identifies a candidate owner (its clockwise successor on the
Chord ring).  The key is stored at the *least loaded* candidate; every
other candidate stores a small **redirect pointer** so that a later
lookup arriving via a different hash function still finds the item in
one extra overlay hop.  This is the "simple refinement to the Chord
lookup procedure" the paper cites.

Costs, measured by this implementation and reported by the DHT
experiments:

* insertion: ``d`` O(log n)-hop lookups (candidates' loads must be
  inspected) — or 1 lookup when ``d = 1``,
* lookup: 1 O(log n)-hop lookup using the *first* hash, plus at most
  one redirect hop,
* storage overhead: ``d - 1`` pointers per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.hashing import multi_hash
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["TwoChoiceDHT", "DhtStats"]


@dataclass
class DhtStats:
    """Aggregate hop/operation accounting for a DHT session."""

    inserts: int = 0
    lookups: int = 0
    insert_hops: int = 0
    lookup_hops: int = 0
    redirect_hops: int = 0
    failed_lookups: int = 0

    @property
    def mean_insert_hops(self) -> float:
        return self.insert_hops / self.inserts if self.inserts else 0.0

    @property
    def mean_lookup_hops(self) -> float:
        total = self.lookup_hops + self.redirect_hops
        return total / self.lookups if self.lookups else 0.0


@dataclass
class _NodeState:
    """Per-node storage: primary items and redirect pointers."""

    items: dict = field(default_factory=dict)
    redirects: dict = field(default_factory=dict)

    @property
    def load(self) -> int:
        """Primary load — the quantity the paper balances."""
        return len(self.items)


class TwoChoiceDHT:
    """A Chord ring running d-choice insertion with redirects.

    Parameters
    ----------
    ring:
        The overlay.  Membership must stay fixed while items are
        stored (rebalancing after churn is an application concern the
        paper defers; see its conclusion).
    d:
        Number of hash functions; ``d = 1`` degrades to plain
        consistent hashing (the unbalanced baseline).

    Examples
    --------
    >>> dht = TwoChoiceDHT(ChordRing.random(16, seed=0), d=2, seed=1)
    >>> _ = dht.insert("user:42", {"name": "x"})   # returns storing node
    >>> dht.lookup("user:42")["name"]
    'x'
    """

    def __init__(self, ring: ChordRing, d: int = 2, *, seed=None) -> None:
        if not isinstance(ring, ChordRing):
            raise TypeError(f"ring must be a ChordRing, got {type(ring).__name__}")
        self.ring = ring
        self.d = check_positive_int(d, "d")
        self._rng = resolve_rng(seed)
        self._nodes = [_NodeState() for _ in range(ring.n)]
        self.stats = DhtStats()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Primary item count per node."""
        return np.array([s.load for s in self._nodes], dtype=np.int64)

    def _candidates(self, key: str | bytes) -> tuple[np.ndarray, np.ndarray]:
        ids = multi_hash(key, self.d)
        owners = self.ring.successor_index(ids)
        if self.d == 1:
            owners = np.atleast_1d(owners)
        return ids, np.asarray(owners, dtype=np.int64)

    def insert(self, key: str | bytes, value=None) -> int:
        """Insert or update an item; returns the index of the storing node.

        Re-inserting an existing key updates the value in place at its
        current primary (an upsert — moving it would strand redirect
        pointers).  Routing cost (``d`` lookups from a random start node
        each) is accumulated in :attr:`stats`.
        """
        if isinstance(key, bytes):
            key = key.decode("latin-1")
        ids, owners = self._candidates(key)
        start = int(self._rng.integers(self.ring.n))
        for ident in ids:
            self.stats.insert_hops += self.ring.lookup(int(ident), start).hops
        self.stats.inserts += 1
        for owner in owners:
            node = self._nodes[int(owner)]
            if key in node.items:
                node.items[key] = value
                return int(owner)
        cand_loads = np.array([self._nodes[o].load for o in owners])
        tied = np.nonzero(cand_loads == cand_loads.min())[0]
        pick = int(tied[int(self._rng.integers(tied.size))])
        chosen = int(owners[pick])
        self._nodes[chosen].items[key] = value
        for j, owner in enumerate(owners):
            if int(owner) != chosen and key not in self._nodes[int(owner)].redirects:
                self._nodes[int(owner)].redirects[key] = chosen
        return chosen

    def lookup(self, key: str | bytes, *, probe_all: bool = False):
        """Find an item; returns its value (raises ``KeyError`` if absent).

        Default strategy: route to the first-hash owner; if the item is
        not primary there, follow its redirect pointer (one hop).  With
        ``probe_all=True`` the redirect table is ignored and all ``d``
        candidates are probed in order (the pointer-free variant, at
        ``d``x the routing cost in the worst case).
        """
        if isinstance(key, bytes):
            key = key.decode("latin-1")
        ids, owners = self._candidates(key)
        start = int(self._rng.integers(self.ring.n))
        self.stats.lookups += 1
        if probe_all:
            for ident, owner in zip(ids, owners):
                self.stats.lookup_hops += self.ring.lookup(int(ident), start).hops
                node = self._nodes[int(owner)]
                if key in node.items:
                    return node.items[key]
            self.stats.failed_lookups += 1
            raise KeyError(key)
        first = int(owners[0])
        self.stats.lookup_hops += self.ring.lookup(int(ids[0]), start).hops
        node = self._nodes[first]
        if key in node.items:
            return node.items[key]
        if key in node.redirects:
            self.stats.redirect_hops += 1
            target = self._nodes[node.redirects[key]]
            if key in target.items:
                return target.items[key]
        self.stats.failed_lookups += 1
        raise KeyError(key)

    def remove(self, key: str | bytes) -> None:
        """Delete an item and its redirect pointers."""
        if isinstance(key, bytes):
            key = key.decode("latin-1")
        _, owners = self._candidates(key)
        found = False
        for owner in owners:
            node = self._nodes[int(owner)]
            if key in node.items:
                del node.items[key]
                found = True
            node.redirects.pop(key, None)
        if not found:
            raise KeyError(key)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_overhead(self) -> float:
        """Redirect pointers per stored item (0 when d = 1)."""
        items = sum(s.load for s in self._nodes)
        pointers = sum(len(s.redirects) for s in self._nodes)
        return pointers / items if items else 0.0

    def max_load(self) -> int:
        """Maximum primary load over nodes (the Theorem 1 statistic)."""
        return int(self.loads().max())
