"""The Chord ring: successor ownership, finger tables, O(log n) routing.

Faithful to Stoica et al. (SIGCOMM 2001) at the level the paper needs:

* node identifiers live on a ``2**RING_BITS`` ring; a key belongs to
  its **successor** — the first node clockwise at or after the key
  (this is the "nearest server in the clockwise direction" of the
  paper's Section 1.1, and the arc-bin structure of Theorem 1),
* each node keeps a finger table: entry ``k`` points to
  ``successor(node_id + 2^k)``,
* lookups route iteratively through closest-preceding fingers, halving
  the remaining clockwise distance per hop, so any lookup completes in
  O(log n) hops (asserted by tests, measured by experiments),
* nodes may join and leave; finger tables are rebuilt (the simulation
  equivalent of Chord's stabilization converging).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.hashing import RING_BITS, key_id
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["ChordRing", "LookupResult", "in_interval"]


def in_interval(x: int, a: int, b: int, *, inclusive_right: bool = False) -> bool:
    """Whether ``x`` lies in the circular interval ``(a, b)`` / ``(a, b]``.

    Intervals are clockwise on the identifier ring; when ``a == b`` the
    interval is the whole ring minus ``a`` (plus ``b`` if inclusive).

    Examples
    --------
    >>> in_interval(5, 3, 7)
    True
    >>> in_interval(1, 6, 3)  # wraps around 0
    True
    """
    if a < b:
        return (a < x <= b) if inclusive_right else (a < x < b)
    if a > b:
        return (x > a or x <= b) if inclusive_right else (x > a or x < b)
    # a == b: full circle
    return x != a or inclusive_right


@dataclass(frozen=True)
class LookupResult:
    """Outcome of routing one key lookup through the overlay."""

    owner_index: int
    owner_id: int
    hops: int
    path: tuple[int, ...]


class ChordRing:
    """A stabilized Chord overlay over a fixed set of nodes.

    Parameters
    ----------
    node_ids:
        Iterable of distinct ``RING_BITS``-bit identifiers.

    Examples
    --------
    >>> ring = ChordRing.random(32, seed=0)
    >>> res = ring.lookup(12345)
    >>> res.owner_index == ring.successor_index(12345)
    True
    """

    def __init__(self, node_ids) -> None:
        as_ints = sorted(int(i) for i in node_ids)
        if not as_ints:
            raise ValueError("ChordRing needs at least one node")
        if as_ints[0] < 0 or (as_ints[-1] >> RING_BITS):
            raise ValueError(f"identifiers must fit in {RING_BITS} bits")
        ids = np.array(as_ints, dtype=np.uint64)
        if np.any(ids[1:] == ids[:-1]):
            raise ValueError("node identifiers must be distinct")
        self._ids = ids
        self._fingers: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, n: int, seed=None) -> "ChordRing":
        """``n`` nodes with uniformly random identifiers (no collisions)."""
        n = check_positive_int(n, "n")
        rng = resolve_rng(seed)
        ids: set[int] = set()
        while len(ids) < n:
            batch = rng.integers(0, 1 << 63, size=n, dtype=np.int64)
            # spread over the full 64-bit ring
            ids.update(int(b) << 1 for b in batch)
        return cls(list(ids)[:n])

    @classmethod
    def from_names(cls, names) -> "ChordRing":
        """Hash server names to identifiers (deterministic deployment)."""
        return cls(key_id(name) for name in names)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self._ids.size)

    @property
    def node_ids(self) -> np.ndarray:
        v = self._ids.view()
        v.flags.writeable = False
        return v

    def successor_index(self, ident: int | np.ndarray):
        """Index of the node owning identifier(s) ``ident``.

        Vectorized: accepts scalars or arrays.  Ownership = first node
        id >= ident, wrapping past the highest id to node 0.
        """
        idx = np.searchsorted(self._ids, np.asarray(ident, dtype=np.uint64), "left")
        idx = idx % self.n
        if np.ndim(ident) == 0:
            return int(idx)
        return idx.astype(np.int64)

    def arc_lengths(self) -> np.ndarray:
        """Fraction of the identifier space owned by each node."""
        ids = self._ids.astype(np.float64) / float(1 << RING_BITS)
        lengths = np.empty(self.n)
        lengths[1:] = np.diff(ids)
        lengths[0] = 1.0 - ids[-1] + ids[0]
        return lengths

    def finger_table(self) -> np.ndarray:
        """``(n, RING_BITS)`` finger matrix (built lazily, cached).

        ``fingers[i, k]`` is the index of ``successor(id_i + 2^k)``.
        """
        if self._fingers is None:
            powers = (np.uint64(1) << np.arange(RING_BITS, dtype=np.uint64))
            # uint64 addition wraps mod 2^64 == mod ring size: exactly
            # the arithmetic Chord specifies
            with np.errstate(over="ignore"):
                targets = self._ids[:, None] + powers[None, :]
            self._fingers = self.successor_index(targets)
        return self._fingers

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def lookup(self, ident: int, start_index: int | None = None) -> LookupResult:
        """Route a lookup for ``ident`` from ``start_index`` (default 0).

        Iterative closest-preceding-finger routing; each forwarding is
        one hop.  Resolving at the starting node costs 0 hops.
        """
        ident = int(ident)
        if ident >> RING_BITS:
            raise ValueError(f"identifier must fit in {RING_BITS} bits")
        n = self.n
        if start_index is None:
            start_index = 0
        if not 0 <= start_index < n:
            raise ValueError(f"start_index {start_index} out of range [0, {n})")
        fingers = self.finger_table()
        ids = self._ids
        cur = start_index
        hops = 0
        path = [cur]
        # hop bound: each forwarding at least halves clockwise distance
        max_hops = 2 * RING_BITS + 2
        while True:
            cur_id = int(ids[cur])
            if ident == cur_id:
                # the current node owns its own identifier
                return LookupResult(
                    owner_index=cur,
                    owner_id=cur_id,
                    hops=hops,
                    path=tuple(path),
                )
            succ = (cur + 1) % n
            succ_id = int(ids[succ])
            if n == 1 or in_interval(ident, cur_id, succ_id, inclusive_right=True):
                owner = succ if n > 1 else 0
                if owner != cur:
                    hops += 1
                    path.append(owner)
                return LookupResult(
                    owner_index=owner,
                    owner_id=int(ids[owner]),
                    hops=hops,
                    path=tuple(path),
                )
            nxt = cur
            for k in range(RING_BITS - 1, -1, -1):
                f = int(fingers[cur, k])
                if f != cur and in_interval(int(ids[f]), cur_id, ident):
                    nxt = f
                    break
            if nxt == cur:
                nxt = succ  # no finger strictly precedes: fall to successor
            cur = nxt
            hops += 1
            path.append(cur)
            if hops > max_hops:
                raise RuntimeError(
                    f"lookup for {ident} exceeded {max_hops} hops; "
                    "finger tables are inconsistent"
                )

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------
    def join(self, ident: int) -> int:
        """Add a node; returns its index.  Fingers are rebuilt lazily."""
        ident = int(ident)
        if ident >> RING_BITS:
            raise ValueError(f"identifier must fit in {RING_BITS} bits")
        if np.any(self._ids == np.uint64(ident)):
            raise ValueError(f"identifier {ident} already present")
        pos = int(np.searchsorted(self._ids, np.uint64(ident)))
        self._ids = np.insert(self._ids, pos, np.uint64(ident))
        self._fingers = None
        return pos

    def leave(self, index: int) -> int:
        """Remove the node at ``index``; returns its identifier."""
        if not 0 <= index < self.n:
            raise ValueError(f"index {index} out of range [0, {self.n})")
        if self.n == 1:
            raise ValueError("cannot remove the last node")
        ident = int(self._ids[index])
        self._ids = np.delete(self._ids, index)
        self._fingers = None
        return ident
