"""Trace replay through the placement server, with checkpoint/resume.

:func:`replay_trace` feeds an :class:`~repro.dynamics.events.EventTrace`
through a :class:`~repro.serve.server.PlacementServer` using the batch
engines' exact RNG discipline — the churn generator spawned first,
then every insert's candidates pre-drawn through
:func:`repro.core.engine.choice_blocks` (pipelined on a producer
thread when ``threads >= 2``).  Because the server applies events
strictly in order through the same decision kernels, the final loads
*and* the per-epoch trajectory are bit-identical to
:func:`repro.dynamics.simulate_dynamics` on the same seed — the
serving tier's parity contract, enforced by
``tests/serve/test_incremental_parity.py``.

Checkpointing: ``checkpoint_at=k`` stops the replay after ``k`` events
and writes a full server snapshot (plus the trajectory series so far
and the caller's parameters) to ``checkpoint``; ``resume_from``
restores it and replays the rest.  A resumed replay's artifact is
byte-identical to an uninterrupted run's — checked by the CI ``serve``
leg with ``cmp``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import DEFAULT_RNG_BLOCK
from repro.core.incremental import IncrementalState
from repro.core.loads import nu_profile
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak
from repro.dynamics.engine import _predraw_inserts, _PredrawPipeline
from repro.dynamics.events import EventKind, EventTrace
from repro.kernels import KernelBackend, resolve_backend, resolve_threads
from repro.obs import counter_add, trace_span
from repro.serve.server import CandidateStream, LatencyStats, PlacementServer
from repro.utils.rng import resolve_rng

__all__ = ["ReplayResult", "checkpoint_params", "replay_trace"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one (possibly partial) trace replay through a server.

    Mirrors :class:`repro.dynamics.result.DynamicResult` for the
    trajectory fields so parity tests compare them directly, and adds
    the serving-tier measurements (``latency``, ``max_batch``,
    ``backend``).  ``events`` is how far the replay got —
    ``checkpoint_at`` when it stopped to checkpoint, the trace length
    otherwise.
    """

    loads: np.ndarray
    active: np.ndarray
    d: int
    strategy: TieBreak
    inserts: int
    deletes: int
    events: int
    epoch_ends: np.ndarray
    max_load_over_time: np.ndarray
    total_load_over_time: np.ndarray
    live_bins_over_time: np.ndarray
    nu_profiles: tuple
    latency: LatencyStats
    backend: str
    max_batch: int
    checkpointed: bool = False

    @property
    def occupancy(self) -> int:
        """Balls currently placed."""
        return self.inserts - self.deletes

    @property
    def max_load(self) -> int:
        """Maximum live-bin load at the end of the replay."""
        return int(self.loads[self.active].max())


def checkpoint_params(path) -> dict:
    """The caller-supplied parameter record stored in a checkpoint.

    The ``serve replay`` CLI stores its workload parameters here
    (via ``checkpoint_meta``) so ``--resume`` can rebuild the space and
    trace without re-specifying them.
    """
    from repro.serve.server import _checkpoint_meta

    return _checkpoint_meta(path).get("extra", {}).get("params", {})


def _restore(space, trace, resume_from, stream, backend, threads):
    """Rebuild (server, series, cursor) from a replay checkpoint."""
    server, extra = PlacementServer.load(
        resume_from, space=space, stream=stream, backend=backend, threads=threads
    )
    replay_meta = extra["meta"].get("replay")
    if replay_meta is None:
        raise ValueError(f"{resume_from} is not a replay checkpoint")
    if replay_meta["trace_events"] != trace.num_events:
        raise ValueError(
            f"checkpoint was taken against a {replay_meta['trace_events']}-event "
            f"trace, not {trace.num_events} events"
        )
    arrays = extra["arrays"]
    series = {
        "max": arrays["replay_max"].tolist(),
        "tot": arrays["replay_tot"].tolist(),
        "live": arrays["replay_live"].tolist(),
        "nu": list(
            np.split(arrays["replay_nu_flat"], np.cumsum(arrays["replay_nu_lens"])[:-1])
        )
        if arrays["replay_nu_lens"].size
        else [],
    }
    return server, series, int(replay_meta["events_done"])


def replay_trace(
    space: GeometricSpace,
    trace: EventTrace,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    seed=None,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    max_batch: int = 1024,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
    checkpoint=None,
    checkpoint_at: int | None = None,
    checkpoint_meta: dict | None = None,
    resume_from=None,
) -> ReplayResult:
    """Replay ``trace`` through a placement server; measure latency.

    Submission is micro-batched at ``max_batch`` ops per block with
    churn events and epoch boundaries as barriers — exactly the batched
    dynamic engine's window structure, so results are bit-identical to
    :func:`~repro.dynamics.simulate_dynamics` for the same ``seed``
    regardless of ``max_batch``, ``backend`` or ``threads``.

    ``checkpoint_at`` stops after that many events and saves a resumable
    snapshot to ``checkpoint`` (with ``checkpoint_meta`` recorded for
    :func:`checkpoint_params`); ``resume_from`` continues one.  The
    same ``seed`` must be passed on resume (the candidate stream is
    re-predrawn from it; the mutable state comes from the snapshot).
    """
    if not isinstance(trace, EventTrace):
        raise TypeError(f"trace must be an EventTrace, got {type(trace).__name__}")
    backend_obj = resolve_backend(backend)
    eff_threads = resolve_threads(threads)
    strat = TieBreak.coerce(strategy)
    rng = resolve_rng(seed)
    # spawn order matches the dynamic engines (churn RNG first); on
    # resume the spawned generator is discarded in favour of the
    # checkpointed one, but the main stream's position is unaffected
    aux_rng = rng.spawn(1)[0]
    pipeline = None
    if eff_threads >= 2 and trace.num_inserts > 0:
        pipeline = _PredrawPipeline(
            space, rng, trace.num_inserts, d, partitioned, rng_block
        )
        cands, us = pipeline.cands, pipeline.us
    else:
        cands, us = _predraw_inserts(
            space, rng, trace.num_inserts, d, partitioned, rng_block
        )
    stream = CandidateStream.predrawn(
        cands, us, ensure=pipeline.ensure if pipeline is not None else None
    )
    if resume_from is not None:
        server, series, start = _restore(
            space, trace, resume_from, stream, backend_obj, eff_threads
        )
    else:
        state = IncrementalState(
            space,
            d,
            strat,
            partitioned=partitioned,
            aux_rng=aux_rng,
            expect_balls=trace.num_inserts,
        )
        server = PlacementServer(
            space,
            d,
            strategy=strat,
            partitioned=partitioned,
            max_batch=max_batch,
            backend=backend_obj,
            threads=eff_threads,
            state=state,
            stream=stream,
        )
        series = {"max": [], "tot": [], "live": [], "nu": []}
        start = 0
    kinds = trace.kinds
    args = trace.args
    churn_positions = np.nonzero(kinds >= EventKind.BIN_LEAVE)[0]
    epoch_ends = trace.epoch_ends
    stop_at = trace.num_events if checkpoint_at is None else int(checkpoint_at)
    if not start <= stop_at <= trace.num_events:
        raise ValueError(
            f"checkpoint_at must be in [{start}, {trace.num_events}], got {stop_at}"
        )
    checkpointed = False
    with trace_span(
        "serve.replay",
        events=trace.num_events,
        n=space.n,
        d=d,
        backend=backend_obj.name,
        max_batch=max_batch,
        threads=eff_threads,
    ):
        counter_add("serve.replay_events", stop_at - start)
        i = start
        churn_ptr = int(np.searchsorted(churn_positions, i))
        state = server.state
        for epoch_end in epoch_ends.tolist()[len(series["max"]):]:
            while i < epoch_end and i < stop_at:
                if (
                    churn_ptr < churn_positions.size
                    and churn_positions[churn_ptr] == i
                ):
                    if kinds[i] == EventKind.BIN_LEAVE:
                        server.bin_leave(int(args[i]))
                    else:
                        server.bin_join(int(args[i]))
                    churn_ptr += 1
                    i += 1
                    continue
                stop = min(epoch_end, stop_at)
                if churn_ptr < churn_positions.size:
                    stop = min(stop, int(churn_positions[churn_ptr]))
                server.submit_ids(kinds[i:stop], args[i:stop])
                i = stop
            if i < epoch_end:
                break  # checkpoint point reached mid-epoch
            live = state.live_loads()
            series["max"].append(int(live.max()))
            series["tot"].append(state.occupancy)
            series["live"].append(int(state.active.sum()))
            series["nu"].append(nu_profile(live))
        if checkpoint_at is not None and i == stop_at and stop_at < trace.num_events:
            checkpointed = True
            if checkpoint is None:
                raise ValueError("checkpoint_at requires a checkpoint path")
            nu_lens = np.array([p.size for p in series["nu"]], dtype=np.int64)
            nu_flat = (
                np.concatenate(series["nu"])
                if series["nu"]
                else np.empty(0, dtype=np.int64)
            )
            server.save(
                checkpoint,
                extra_arrays={
                    "replay_max": np.array(series["max"], dtype=np.int64),
                    "replay_tot": np.array(series["tot"], dtype=np.int64),
                    "replay_live": np.array(series["live"], dtype=np.int64),
                    "replay_nu_flat": nu_flat,
                    "replay_nu_lens": nu_lens,
                },
                extra_meta={
                    "replay": {
                        "events_done": i,
                        "trace_events": trace.num_events,
                    },
                    "params": checkpoint_meta or {},
                },
            )
    return ReplayResult(
        loads=state.loads,
        active=state.active,
        d=state.d,
        strategy=strat,
        inserts=state.inserts_done,
        deletes=state.deletes_done,
        events=i,
        epoch_ends=epoch_ends,
        max_load_over_time=np.array(series["max"], dtype=np.int64),
        total_load_over_time=np.array(series["tot"], dtype=np.int64),
        live_bins_over_time=np.array(series["live"], dtype=np.int64),
        nu_profiles=tuple(np.asarray(p) for p in series["nu"]),
        latency=server.latency_stats(),
        backend=backend_obj.name,
        max_batch=max_batch,
        checkpointed=checkpointed,
    )
