"""The placement server: incremental state behind a batched request pipeline.

Request model
-------------
Three op kinds (:data:`OP_INSERT`, :data:`OP_DELETE`,
:data:`OP_LOOKUP`; inserts/deletes numerically match
:class:`repro.dynamics.events.EventKind` so trace arrays pass through
unchanged).  Two submission shapes:

* **immediate** — :meth:`PlacementServer.submit` (string keys) /
  :meth:`PlacementServer.submit_ids` (raw ball ids) apply a batch now
  and return per-op results;
* **queued** — :meth:`PlacementServer.enqueue` buffers ops into a
  bounded pending queue (capacity ``max_pending``); the queue drains
  automatically when full (backpressure: the producing caller absorbs
  the flush cost) and on :meth:`PlacementServer.flush`, which returns
  the queued ops' results in order.

Either way the ops are micro-batched into blocks of at most
``max_batch`` and applied through
:meth:`repro.core.incremental.IncrementalState.apply_window` — the
compiled ``dynamic_window`` kernel for large mutation runs, the scalar
reference below :data:`repro.kernels.SMALL_WINDOW_CUTOFF`.  Lookups
between mutations are answered by one vectorized gather from the
ball→bin index.  Batching is a *latency/throughput* knob only: any
partition of the same op sequence produces bit-identical placements,
because every tier applies events strictly in order with the same
decision kernels.

Randomness
----------
Candidate bins and tie-break uniforms come from a
:class:`CandidateStream`.  The online mode draws full RNG blocks
lazily as inserts arrive — the block layout is fixed (always
``rng_block`` rows), so a server's decisions depend only on its seed,
never on request arrival patterns.  The pre-drawn mode wraps the batch
engines' :func:`repro.core.engine.choice_blocks` arrays, which is what
makes trace replay (:mod:`repro.serve.replay`) bit-identical to
:func:`repro.dynamics.simulate_dynamics`.

Every applied block records decision latency into a
:class:`LatencyStats` reservoir (and, when observability is on, the
``serve.op_latency_s`` / ``serve.batch_ops`` histograms — readable
with p50/p95/p99 via ``obs report``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.engine import DEFAULT_RNG_BLOCK, auto_batch_size
from repro.core.incremental import IncrementalState
from repro.core.spaces import GeometricSpace
from repro.kernels import KernelBackend, resolve_backend, resolve_threads
from repro.obs import counter_add, histogram_observe
from repro.obs import enabled as obs_enabled
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "OP_LOOKUP",
    "CandidateStream",
    "LatencyStats",
    "PlacementServer",
]

#: Request op codes.  Insert/delete match ``EventKind`` numerically.
OP_INSERT = 0
OP_DELETE = 1
OP_LOOKUP = 2


class CandidateStream:
    """Per-insert candidate bins + tie-break uniforms, indexed by ball id.

    Two modes:

    * **online** (the constructor): draws full blocks of ``rng_block``
      rows lazily from ``rng`` as :meth:`ensure` demands them.  Always
      whole blocks, so the stream is a pure function of the seed —
      independent of request batching.
    * **pre-drawn** (:meth:`predrawn`): wraps externally materialized
      arrays (the batch engines' :func:`choice_blocks` layout), with an
      optional ``ensure`` hook gating a background predraw pipeline.
    """

    def __init__(
        self,
        space: GeometricSpace,
        rng,
        d: int,
        *,
        partitioned: bool = False,
        rng_block: int = DEFAULT_RNG_BLOCK,
    ) -> None:
        self._space = space
        self._rng = resolve_rng(rng)
        self.d = check_positive_int(d, "d")
        self.partitioned = bool(partitioned)
        self.rng_block = check_positive_int(rng_block, "rng_block")
        self.cands = np.empty((0, self.d), dtype=np.int64)
        self.us = np.empty(0, dtype=np.float64)
        self.drawn = 0
        self._ensure_hook = None
        self._online = True

    @classmethod
    def predrawn(cls, cands: np.ndarray, us: np.ndarray, *, ensure=None):
        """Wrap pre-materialized candidate arrays (replay parity mode).

        ``ensure`` (optional) is called with the required row count
        before reads — the hook a background predraw pipeline gates on.
        """
        stream = cls.__new__(cls)
        stream._space = None
        stream._rng = None
        stream.d = int(cands.shape[1])
        stream.partitioned = False
        stream.rng_block = DEFAULT_RNG_BLOCK
        stream.cands = cands
        stream.us = us
        stream.drawn = cands.shape[0]
        stream._ensure_hook = ensure
        stream._online = False
        return stream

    def ensure(self, count: int) -> None:
        """Materialize candidate rows ``[0, count)`` (blocking if needed)."""
        if not self._online:
            if self._ensure_hook is not None:
                self._ensure_hook(count)
            elif count > self.drawn:
                raise RuntimeError(
                    f"pre-drawn candidate stream exhausted: need {count} rows, "
                    f"have {self.drawn}"
                )
            return
        while self.drawn < count:
            if self.drawn + self.rng_block > self.cands.shape[0]:
                grow = max(self.drawn + self.rng_block, 2 * self.cands.shape[0])
                cands = np.empty((grow, self.d), dtype=np.int64)
                us = np.empty(grow, dtype=np.float64)
                cands[: self.drawn] = self.cands[: self.drawn]
                us[: self.drawn] = self.us[: self.drawn]
                self.cands, self.us = cands, us
            b = self.rng_block
            self.cands[self.drawn : self.drawn + b] = self._space.sample_choice_bins(
                self._rng, b, self.d, partitioned=self.partitioned
            )
            self.us[self.drawn : self.drawn + b] = self._rng.random(b)
            self.drawn += b

    def state_dict(self, consumed: int) -> tuple[dict, dict]:
        """Snapshot the stream for :meth:`PlacementServer.save`.

        Returns ``(meta, arrays)``: the RNG state plus the drawn-but-
        unconsumed tail rows ``[consumed, drawn)``, so a restored
        server's future draws are byte-identical to an uninterrupted
        one's.  Pre-drawn streams raise — replay owns their restore
        (it re-predraws from the seed).
        """
        if not self._online:
            raise RuntimeError(
                "pre-drawn candidate streams are snapshotted by their owner "
                "(replay re-predraws from the seed); only online streams "
                "save RNG state"
            )
        meta = {
            "kind": "online",
            "rng_state": self._rng.bit_generator.state,
            "rng_block": self.rng_block,
            "partitioned": self.partitioned,
            "drawn": self.drawn,
            "consumed": int(consumed),
        }
        arrays = {
            "serve_tail_cands": self.cands[consumed : self.drawn],
            "serve_tail_us": self.us[consumed : self.drawn],
        }
        return meta, arrays

    @classmethod
    def from_state(cls, space, d, meta: dict, arrays: dict):
        """Rebuild an online stream from :meth:`state_dict` output."""
        stream = cls(
            space,
            np.random.default_rng(0),
            d,
            partitioned=meta["partitioned"],
            rng_block=meta["rng_block"],
        )
        stream._rng.bit_generator.state = meta["rng_state"]
        drawn, consumed = meta["drawn"], meta["consumed"]
        stream.cands = np.zeros((drawn, d), dtype=np.int64)
        stream.us = np.zeros(drawn, dtype=np.float64)
        stream.cands[consumed:drawn] = arrays["serve_tail_cands"]
        stream.us[consumed:drawn] = arrays["serve_tail_us"]
        stream.drawn = drawn
        return stream


@dataclass(frozen=True)
class LatencyStats:
    """Decision-latency summary over every op a server has applied.

    Latency is wall time inside the submit path (key mapping + window
    application), attributed per op as its block's time divided by the
    block size; quantiles are count-weighted over blocks, so a batch=1
    stream yields true per-request latencies.
    """

    count: int
    total_s: float
    ops_per_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def format(self) -> str:
        """One human-readable summary line (microsecond quantiles)."""
        return (
            f"{self.count} ops in {self.total_s:.3f}s = {self.ops_per_s:,.0f} ops/s; "
            f"per-op latency p50={self.p50_s * 1e6:.2f}us "
            f"p95={self.p95_s * 1e6:.2f}us p99={self.p99_s * 1e6:.2f}us "
            f"max={self.max_s * 1e6:.2f}us"
        )


class _LatencyRecorder:
    """Per-block latency accumulator behind :class:`LatencyStats`.

    One entry per applied block — bounded memory for arbitrarily long
    serving sessions, exact count-weighted quantiles over per-op times.
    """

    def __init__(self) -> None:
        self._per_op: list[float] = []
        self._ops: list[int] = []
        self.count = 0
        self.total_s = 0.0

    def record(self, seconds: float, ops: int) -> None:
        """Record one applied block of ``ops`` ops taking ``seconds``."""
        self._per_op.append(seconds / ops)
        self._ops.append(ops)
        self.count += ops
        self.total_s += seconds

    def stats(self) -> LatencyStats:
        """Fold the recorded blocks into a :class:`LatencyStats`."""
        if not self.count:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        per_op = np.array(self._per_op)
        ops = np.array(self._ops, dtype=np.int64)
        order = np.argsort(per_op, kind="stable")
        per_op, ops = per_op[order], ops[order]
        cum = np.cumsum(ops)

        def q(quantile: float) -> float:
            target = quantile * self.count
            idx = int(np.searchsorted(cum, target))
            return float(per_op[min(idx, per_op.size - 1)])

        return LatencyStats(
            count=self.count,
            total_s=self.total_s,
            ops_per_s=self.count / self.total_s if self.total_s > 0 else 0.0,
            mean_s=self.total_s / self.count,
            p50_s=q(0.50),
            p95_s=q(0.95),
            p99_s=q(0.99),
            max_s=float(per_op[-1]),
        )


class PlacementServer:
    """A long-lived two-choice placement service over one geometric space.

    Parameters
    ----------
    space, d, strategy, partitioned:
        The placement process (as in the batch engines).
    seed:
        Master seed: the churn RNG is spawned first, then the online
        candidate stream — the same spawn order as the dynamic
        engines.  Ignored when ``state`` is supplied.
    max_batch:
        Micro-batch size: immediate submits and queue drains are
        applied in blocks of at most this many ops (the
        latency-vs-throughput knob; see ``docs/serving.md``).
    max_pending:
        Bounded queue capacity for :meth:`enqueue`; reaching it drains
        the queue synchronously (backpressure).
    backend, threads:
        Kernel backend / thread budget
        (:func:`repro.kernels.resolve_backend` /
        :func:`~repro.kernels.resolve_threads` semantics).  Threads
        ``>= 2`` matter on the replay path, where candidate pre-draw
        runs on a producer pipeline.
    state, stream:
        Pre-built :class:`~repro.core.incremental.IncrementalState` /
        :class:`CandidateStream` (the replay harness and
        :meth:`load` use these; normal construction leaves them
        ``None``).
    """

    def __init__(
        self,
        space: GeometricSpace,
        d: int = 2,
        *,
        strategy="random",
        seed=None,
        partitioned: bool = False,
        max_batch: int = 1024,
        max_pending: int = 65536,
        backend: KernelBackend | str | None = None,
        threads: int | None = None,
        rng_block: int = DEFAULT_RNG_BLOCK,
        state: IncrementalState | None = None,
        stream: CandidateStream | None = None,
    ) -> None:
        self.space = space
        self.max_batch = check_positive_int(max_batch, "max_batch")
        self.max_pending = check_positive_int(max_pending, "max_pending")
        if self.max_pending < self.max_batch:
            raise ValueError(
                f"max_pending ({self.max_pending}) must be >= max_batch "
                f"({self.max_batch})"
            )
        self.backend = resolve_backend(backend)
        self.threads = resolve_threads(threads)
        if state is None:
            rng = resolve_rng(seed)
            # spawn order mirrors the dynamic engines: churn RNG first,
            # then the insert candidate stream
            aux_rng = rng.spawn(1)[0]
            state = IncrementalState(
                space, d, strategy, partitioned=partitioned, aux_rng=aux_rng
            )
            if stream is None:
                stream = CandidateStream(
                    space,
                    rng,
                    d,
                    partitioned=partitioned,
                    rng_block=rng_block,
                )
        elif stream is None:
            raise ValueError("a pre-built state requires a pre-built stream")
        if state.n != space.n:
            raise ValueError(f"state has n={state.n} bins but space has {space.n}")
        self.state = state
        self.stream = stream
        self._batch_size = auto_batch_size(space.n, state.d)
        self._next_ball = 0
        self._key_ball: dict = {}
        self._lat = _LatencyRecorder()
        self._pending_kinds = np.empty(self.max_pending, dtype=np.int8)
        self._pending_keys: list = []
        self._pending_n = 0
        self._delivered: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Balls currently placed."""
        return self.state.occupancy

    @property
    def loads(self) -> np.ndarray:
        """The live per-bin load vector (a view; do not mutate)."""
        return self.state.loads

    def latency_stats(self) -> LatencyStats:
        """Decision-latency summary over everything applied so far."""
        return self._lat.stats()

    def reset_latency(self) -> None:
        """Drop the latency history (so benchmarks can exclude warm-up)."""
        self._lat = _LatencyRecorder()

    # ------------------------------------------------------------------
    # scalar fast path
    # ------------------------------------------------------------------
    def insert(self, key) -> int:
        """Place one key now; returns its bin.  The batch=1 fast path."""
        self._flush_if_pending()
        t0 = perf_counter()
        if key in self._key_ball:
            raise KeyError(f"key {key!r} is already live")
        ball = self._next_ball
        self._next_ball = ball + 1
        self._key_ball[key] = ball
        self.stream.ensure(ball + 1)
        chosen = self.state.insert(
            ball, self.stream.cands[ball], float(self.stream.us[ball])
        )
        self._record(perf_counter() - t0, 1)
        return chosen

    def delete(self, key) -> int:
        """Remove one key now; returns the bin it vacated."""
        self._flush_if_pending()
        t0 = perf_counter()
        ball = self._key_ball.pop(key)
        freed = self.state.delete(ball)
        self._record(perf_counter() - t0, 1)
        return freed

    def lookup(self, key) -> int:
        """The bin currently holding ``key`` (raises for unknown keys)."""
        self._flush_if_pending()
        t0 = perf_counter()
        bin_ = self.state.lookup(self._key_ball[key])
        self._record(perf_counter() - t0, 1)
        return bin_

    # ------------------------------------------------------------------
    # immediate batched submission
    # ------------------------------------------------------------------
    def submit(self, kinds, keys) -> np.ndarray:
        """Apply a batch of ``(kind, key)`` ops now; per-op results.

        ``kinds`` is a sequence of op codes, ``keys`` the matching key
        sequence.  Results: inserts and lookups yield the bin, deletes
        ``-1``.  Ops apply strictly in order; the batch is split into
        ``max_batch`` blocks internally (identical results for any
        split).  Inserting a live key or deleting/looking up an unknown
        key raises ``KeyError`` before any op of the failing block is
        applied (earlier blocks stay applied; the key map may hold the
        failing block's earlier inserts).
        """
        self._flush_if_pending()
        kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        return self._submit_keyed(kinds, keys)

    def submit_ids(self, kinds, args) -> np.ndarray:
        """Apply a batch of ops addressed by raw ball id (replay path).

        Insert args must be consecutive from the server's next ball id
        — the trace discipline (:class:`~repro.dynamics.events.EventTrace`
        validates it for traces; this method re-checks).  No key map is
        touched.
        """
        self._flush_if_pending()
        kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        args = np.ascontiguousarray(args, dtype=np.int64)
        results = np.empty(args.size, dtype=np.int64)
        for a in range(0, args.size, self.max_batch):
            b = min(a + self.max_batch, args.size)
            t0 = perf_counter()
            ins = kinds[a:b] == OP_INSERT
            n_ins = int(ins.sum())
            if n_ins:
                expected = np.arange(
                    self._next_ball, self._next_ball + n_ins, dtype=np.int64
                )
                if not np.array_equal(args[a:b][ins], expected):
                    raise ValueError(
                        "submit_ids insert args must be consecutive from "
                        f"ball {self._next_ball}"
                    )
                self._next_ball += n_ins
            self._apply_block(kinds, args, a, b, results)
            self._record(perf_counter() - t0, b - a)
        return results

    # ------------------------------------------------------------------
    # queued submission with backpressure
    # ------------------------------------------------------------------
    def enqueue(self, kind: int, key) -> None:
        """Buffer one op; drains synchronously when the queue fills.

        The queue is the bounded ingress buffer: up to ``max_pending``
        ops accumulate, then the enqueueing caller pays for the drain
        (backpressure).  Results are delivered, in op order, by the
        next :meth:`flush`.
        """
        self._pending_kinds[self._pending_n] = kind
        self._pending_keys.append(key)
        self._pending_n += 1
        if self._pending_n >= self.max_pending:
            self._delivered.append(self._drain_pending())

    def flush(self) -> np.ndarray:
        """Drain the queue; results of every op enqueued since last flush."""
        if self._pending_n:
            self._delivered.append(self._drain_pending())
        parts, self._delivered = self._delivered, []
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    @property
    def pending(self) -> int:
        """Ops currently buffered in the queue."""
        return self._pending_n

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def bin_leave(self, slot: int) -> None:
        """A bin departs; its balls re-place onto the survivors."""
        self._flush_if_pending()
        self.state.bin_leave(slot)

    def bin_join(self, slot: int) -> None:
        """A bin (re)joins empty."""
        self._flush_if_pending()
        self.state.bin_join(slot)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def save(self, path, *, extra_arrays=None, extra_meta=None) -> None:
        """Checkpoint the whole server to one NPZ file.

        Flushes the queue, then writes the incremental core (loads,
        ball→bin index, active mask, churn RNG), the key map, the
        candidate stream's RNG state + unconsumed tail, and the serving
        knobs — everything needed for :meth:`load` to resume
        byte-identically to an uninterrupted server.  Pre-drawn
        streams (replay) store no stream state; their owner re-predraws.
        """
        self.flush()
        arrays = dict(extra_arrays or {})
        keys = list(self._key_ball)
        arrays["serve_keys"] = (
            np.array(keys, dtype=np.str_) if keys else np.empty(0, dtype="U1")
        )
        arrays["serve_key_ids"] = np.fromiter(
            (self._key_ball[k] for k in keys), dtype=np.int64, count=len(keys)
        )
        meta = {
            "next_ball": self._next_ball,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
        }
        if self.stream._online:
            stream_meta, stream_arrays = self.stream.state_dict(self._next_ball)
            meta["stream"] = stream_meta
            arrays.update(stream_arrays)
        else:
            meta["stream"] = {"kind": "predrawn", "consumed": self._next_ball}
        full_meta = dict(extra_meta or {})
        full_meta["server"] = meta
        self.state.save(path, extra_arrays=arrays, extra_meta=full_meta)

    @classmethod
    def load(
        cls,
        path,
        *,
        space: GeometricSpace | None = None,
        stream: CandidateStream | None = None,
        backend: KernelBackend | str | None = None,
        threads: int | None = None,
    ):
        """Restore a :meth:`save` checkpoint; returns ``(server, extra)``.

        ``extra`` is the ``{"meta", "arrays"}`` dict of whatever the
        saver piggybacked (the replay harness stores its trajectory
        series there).  ``space`` may be omitted for ring snapshots.
        A checkpoint of a pre-drawn (replay) stream needs ``stream=``
        re-supplied by the caller.
        """
        state, extra = IncrementalState.load(path, space=space)
        meta = extra["meta"].pop("server")
        arrays = extra["arrays"]
        keys = arrays.pop("serve_keys").tolist()
        ids = arrays.pop("serve_key_ids").tolist()
        stream_meta = meta["stream"]
        if stream is None:
            if stream_meta.get("kind") != "online":
                raise ValueError(
                    "checkpoint was saved with a pre-drawn candidate stream; "
                    "pass stream= (the replay harness re-predraws it)"
                )
            stream = CandidateStream.from_state(
                state.space,
                state.d,
                stream_meta,
                {
                    "serve_tail_cands": arrays.pop("serve_tail_cands"),
                    "serve_tail_us": arrays.pop("serve_tail_us"),
                },
            )
        else:
            arrays.pop("serve_tail_cands", None)
            arrays.pop("serve_tail_us", None)
        server = cls(
            state.space,
            state.d,
            strategy=state.strategy,
            partitioned=state.partitioned,
            max_batch=meta["max_batch"],
            max_pending=meta["max_pending"],
            backend=backend,
            threads=threads,
            state=state,
            stream=stream,
        )
        server._next_ball = meta["next_ball"]
        server._key_ball = dict(zip(keys, ids))
        return server, extra

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush_if_pending(self) -> None:
        if self._pending_n:
            self._delivered.append(self._drain_pending())

    def _drain_pending(self) -> np.ndarray:
        kinds = self._pending_kinds[: self._pending_n].copy()
        keys = self._pending_keys
        self._pending_keys = []
        self._pending_n = 0
        return self._submit_keyed(kinds, keys)

    def _submit_keyed(self, kinds: np.ndarray, keys) -> np.ndarray:
        results = np.empty(kinds.size, dtype=np.int64)
        args = np.empty(kinds.size, dtype=np.int64)
        key_ball = self._key_ball
        for a in range(0, kinds.size, self.max_batch):
            b = min(a + self.max_batch, kinds.size)
            t0 = perf_counter()
            ball = self._next_ball
            for i in range(a, b):
                kind = kinds[i]
                key = keys[i]
                if kind == OP_INSERT:
                    if key in key_ball:
                        raise KeyError(f"key {key!r} is already live")
                    key_ball[key] = ball
                    args[i] = ball
                    ball += 1
                elif kind == OP_DELETE:
                    args[i] = key_ball.pop(key)
                else:
                    args[i] = key_ball[key]
            self._next_ball = ball
            self._apply_block(kinds, args, a, b, results)
            self._record(perf_counter() - t0, b - a)
        return results

    def _apply_block(self, kinds, args, a: int, b: int, results) -> None:
        """Apply ops ``[a, b)``: mutation runs batched, lookups gathered."""
        self.stream.ensure(self._next_ball)
        state = self.state
        is_lookup = (kinds[a:b] == OP_LOOKUP).view(np.int8)
        run_edges = np.flatnonzero(np.diff(is_lookup)) + 1 + a
        bounds = [a, *run_edges.tolist(), b]
        for r in range(len(bounds) - 1):
            ra, rb = bounds[r], bounds[r + 1]
            if kinds[ra] == OP_LOOKUP:
                results[ra:rb] = state.ball_bin[args[ra:rb]]
            else:
                state.apply_window(
                    kinds,
                    args,
                    ra,
                    rb,
                    self.stream.cands,
                    self.stream.us,
                    batch_size=self._batch_size,
                    backend=self.backend,
                )
                seg_kinds = kinds[ra:rb]
                seg = results[ra:rb]
                seg[...] = -1
                ins = seg_kinds == OP_INSERT
                if ins.any():
                    seg[ins] = state.ball_bin[args[ra:rb][ins]]

    def _record(self, seconds: float, ops: int) -> None:
        self._lat.record(seconds, ops)
        if obs_enabled():
            counter_add("serve.ops", ops)
            histogram_observe("serve.batch_ops", ops)
            histogram_observe("serve.op_latency_s", seconds / ops)


def _checkpoint_meta(path) -> dict:
    """Read just the JSON metadata record of a server/replay checkpoint."""
    with np.load(path, allow_pickle=False) as payload:
        return json.loads(bytes(payload["core_meta"]).decode("utf-8"))
