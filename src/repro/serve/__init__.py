"""``repro.serve``: a long-lived, stateful online placement service.

The paper's two-choice placement is inherently *online* — each ball
commits on arrival — yet the batch engines want whole traces up
front.  This tier serves the process one request at a time without
giving up the batch engines' speed:

:mod:`repro.serve.server`
    :class:`PlacementServer` — live
    :class:`~repro.core.incremental.IncrementalState` behind a request
    pipeline: ``submit()`` micro-batches adjacent insert/lookup/delete
    ops into kernel-sized blocks (compiled ``dynamic_window`` kernels
    for large runs, the scalar reference below
    :data:`repro.kernels.SMALL_WINDOW_CUTOFF`), ``enqueue()``/
    ``flush()`` add bounded-queue backpressure, and ``save()``/
    ``load()`` checkpoint the whole server to NPZ mid-stream.
:mod:`repro.serve.replay`
    :func:`replay_trace` — feed a :class:`repro.dynamics.events.EventTrace`
    through a server with the batch engines' exact pre-drawn RNG
    layout, so final loads *and* per-epoch trajectories are
    bit-identical to :func:`repro.dynamics.simulate_dynamics`
    (enforced by ``tests/serve``); measures decision latency along the
    way.
:mod:`repro.serve.workload`
    :func:`zipf_replay_ops` — the Zipf-skewed lookup/churn op stream
    behind ``benchmarks/run_serve_benchmarks.py`` (``BENCH_serve.json``).
:mod:`repro.serve.cli`
    ``python -m repro.experiments serve replay ...`` — deterministic
    replay artifacts, checkpoint/resume, latency summaries.

Decision semantics never depend on batching: a request stream produces
the same placements whether submitted one op at a time, in
micro-batches, or replayed as one trace — the same contract the batch
engines make, extended to a server that never sees its trace end.
"""

from repro.serve.server import (
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    CandidateStream,
    LatencyStats,
    PlacementServer,
)
from repro.serve.replay import ReplayResult, checkpoint_params, replay_trace
from repro.serve.workload import zipf_replay_ops

__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "OP_LOOKUP",
    "CandidateStream",
    "LatencyStats",
    "PlacementServer",
    "ReplayResult",
    "checkpoint_params",
    "replay_trace",
    "zipf_replay_ops",
]
