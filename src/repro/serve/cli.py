"""The ``serve`` subcommand of ``python -m repro.experiments``.

One verb so far::

    # replay a synthetic churn trace through the placement server
    python -m repro.experiments serve replay --workload steady --quick

The replay prints a latency summary (p50/p95/p99 per-op decision
latency, sustained ops/s) to stdout and can write a **deterministic**
JSON artifact with ``--out``: placements, trajectories and a blake2b
digest of the final load vector, but no timings and no backend name —
so two artifacts from the same seed are byte-identical regardless of
backend, thread count, batching, or whether the run was interrupted by
a checkpoint and resumed.  The CI ``serve`` leg leans on that: it
``cmp``'s a checkpoint/resume artifact against an uninterrupted one.

Checkpointing::

    ... serve replay --checkpoint ck.npz --checkpoint-at 5000 --out a.json
    ... serve replay --resume ck.npz --out b.json   # finishes the run

``--resume`` rebuilds the space and trace from the parameters recorded
in the checkpoint — only engine knobs (``--backend``, ``--threads``,
``--batch``) may be re-chosen, because they cannot change results.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.core.ring import RingSpace
from repro.dynamics.events import (
    adversarial_burst_trace,
    churn_storm_trace,
    steady_state_trace,
)
from repro.serve.replay import checkpoint_params, replay_trace

__all__ = ["build_parser", "main"]

#: ``--quick`` overrides (CI smoke scale).
_QUICK = {"n": 64, "keys": 300, "pairs": 300, "epochs": 4}


def build_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand parser (currently the ``replay`` verb)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Online placement service: trace replay with latency stats.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    rp = sub.add_parser("replay", help="replay a synthetic trace through a server")
    rp.add_argument(
        "--workload", choices=("steady", "burst", "storm"), default="steady",
        help="trace family (default: steady-state FIFO-less churn)",
    )
    rp.add_argument("--n", type=int, default=256, help="bins (default 256)")
    rp.add_argument(
        "--keys", type=int, default=2000,
        help="standing occupancy / burst base (default 2000)",
    )
    rp.add_argument(
        "--pairs", type=int, default=2000,
        help="churn pairs (steady), burst size (burst), pairs per wave (storm)",
    )
    rp.add_argument(
        "--epochs", type=int, default=10,
        help="epochs (steady), rounds (burst), waves (storm)",
    )
    rp.add_argument("--d", type=int, default=2, help="choices per ball (default 2)")
    rp.add_argument(
        "--strategy", default="random",
        help="tie-break strategy (default random)",
    )
    rp.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    rp.add_argument(
        "--batch", type=int, default=1024,
        help="micro-batch size (results are batch-independent)",
    )
    rp.add_argument("--backend", default=None, help="kernel backend override")
    rp.add_argument("--threads", type=int, default=None, help="predraw threads")
    rp.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke scale ({_QUICK})",
    )
    rp.add_argument(
        "--out", type=Path, default=None,
        help="write the deterministic replay artifact (JSON) here",
    )
    rp.add_argument(
        "--checkpoint", type=Path, default=None,
        help="server snapshot path (with --checkpoint-at)",
    )
    rp.add_argument(
        "--checkpoint-at", type=int, default=None,
        help="stop and checkpoint after this many events",
    )
    rp.add_argument(
        "--resume", type=Path, default=None,
        help="resume a checkpointed replay (workload params come from it)",
    )
    return parser


def _workload_params(args) -> dict:
    """The workload-defining parameter record (stored in checkpoints)."""
    params = {
        "workload": args.workload,
        "n": args.n,
        "keys": args.keys,
        "pairs": args.pairs,
        "epochs": args.epochs,
        "d": args.d,
        "strategy": args.strategy,
        "seed": args.seed,
    }
    if args.quick:
        params.update(_QUICK)
    return params


def _build(params):
    """(space, trace) for a parameter record; seeds derive from ``seed``."""
    space = RingSpace.random(params["n"], seed=params["seed"])
    trace_seed = params["seed"] + 1
    kind = params["workload"]
    if kind == "steady":
        trace = steady_state_trace(
            params["keys"], params["pairs"], policy="random",
            epochs=params["epochs"], seed=trace_seed,
        )
    elif kind == "burst":
        trace = adversarial_burst_trace(
            params["keys"], params["pairs"], params["epochs"], seed=trace_seed,
        )
    else:
        trace = churn_storm_trace(
            params["n"], params["keys"], waves=params["epochs"],
            pairs_per_wave=params["pairs"], policy="random", seed=trace_seed,
        )
    return space, trace


def _artifact(params: dict, result) -> dict:
    """The deterministic (timing-free, backend-free) replay record."""
    loads = result.loads
    return {
        "schema": "repro-serve-replay-v1",
        "params": {**params, "max_batch": None},  # batching cannot matter
        "events": result.events,
        "inserts": result.inserts,
        "deletes": result.deletes,
        "occupancy": result.occupancy,
        "max_load": result.max_load,
        "loads_blake2b": hashlib.blake2b(
            loads.tobytes(), digest_size=16
        ).hexdigest(),
        "series": {
            "max_load": result.max_load_over_time.tolist(),
            "total_load": result.total_load_over_time.tolist(),
            "live_bins": result.live_bins_over_time.tolist(),
        },
    }


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.resume is not None:
        params = checkpoint_params(args.resume)
        if not params:
            print(f"error: {args.resume} has no replay parameters", file=sys.stderr)
            return 2
    else:
        params = _workload_params(args)
    space, trace = _build(params)
    result = replay_trace(
        space,
        trace,
        params["d"],
        strategy=params["strategy"],
        seed=params["seed"] + 2,
        max_batch=args.batch,
        backend=args.backend,
        threads=args.threads,
        checkpoint=args.checkpoint,
        checkpoint_at=args.checkpoint_at,
        checkpoint_meta=params,
        resume_from=args.resume,
    )
    print(
        f"{params['workload']} replay: {result.events}/{trace.num_events} events, "
        f"occupancy {result.occupancy}, max load {result.max_load} "
        f"[{result.backend}, batch={result.max_batch}]"
    )
    print(result.latency.format())
    if result.checkpointed:
        print(f"checkpointed at event {result.events} -> {args.checkpoint}")
    if args.out is not None:
        if result.checkpointed:
            print("note: --out skipped (partial run); it is written on resume")
        else:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(
                json.dumps(_artifact(params, result), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
            print(f"artifact -> {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
