"""Serving-tier workload synthesis: Zipf-skewed lookup/churn op streams.

The benchmark and stress workload behind ``BENCH_serve.json``: after a
warm-up phase inserts ``m_keys`` keys, the steady-state stream mixes
Zipf-popular lookups with FIFO churn (delete the oldest live key,
insert a fresh one), holding occupancy pinned at ``m_keys`` — the DHT
serving regime: a stable population of keys, heavily skewed read
traffic, steady turnover.

Everything is generated up front with numpy (the vectorized
:mod:`repro.dht.workload` helpers supply the Zipf ranks), so replaying
the stream measures the *server*, not the generator.
"""

from __future__ import annotations

import numpy as np

from repro.dht.workload import zipf_ranks
from repro.serve.server import OP_DELETE, OP_INSERT, OP_LOOKUP
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["zipf_replay_ops"]


def zipf_replay_ops(
    m_keys: int,
    ops: int,
    *,
    lookup_fraction: float = 0.8,
    exponent: float = 1.1,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """A steady-state op stream over a standing population of ``m_keys``.

    Each of the ``ops`` slots is a Zipf-ranked lookup with probability
    ``lookup_fraction``, otherwise a churn pair (FIFO delete of the
    oldest live ball + insert of a fresh one, so occupancy stays at
    ``m_keys``).  Returns ``(kinds, args)`` event arrays (a churn slot
    expands to two events) addressed by ball id: the warm-up inserts
    are balls ``[0, m_keys)``, churn inserts continue consecutively —
    ready for :meth:`PlacementServer.submit_ids`, or for key-based
    submission by indexing a key population of size
    ``m_keys + n_churn`` (``args.max() + 1``).

    The lookup target of rank ``r`` (0 = hottest) at a point where
    ``c`` churn pairs have completed is ball ``c + r`` — the live
    window is exactly ``[c, m_keys + c)`` under FIFO churn, so the hot
    set tracks the population as it turns over.

    Examples
    --------
    >>> kinds, args = zipf_replay_ops(4, 6, lookup_fraction=0.5, seed=0)
    >>> int((kinds == OP_INSERT).sum()) == int((kinds == OP_DELETE).sum())
    True
    """
    m_keys = check_positive_int(m_keys, "m_keys")
    ops = check_positive_int(ops, "ops")
    if not 0.0 <= lookup_fraction <= 1.0:
        raise ValueError(f"lookup_fraction must be in [0, 1], got {lookup_fraction}")
    rng = resolve_rng(seed)
    is_lookup = rng.random(ops) < lookup_fraction
    n_lookups = int(is_lookup.sum())
    ranks = (
        zipf_ranks(m_keys, n_lookups, exponent=exponent, seed=rng)
        if n_lookups
        else np.empty(0, dtype=np.int64)
    )
    # churn pairs completed before each op slot (the FIFO cursor)
    is_churn = ~is_lookup
    churn_before = np.cumsum(is_churn) - is_churn
    offsets = np.empty(ops, dtype=np.int64)
    sizes = np.where(is_lookup, 1, 2)
    offsets[0] = 0
    np.cumsum(sizes[:-1], out=offsets[1:])
    total = int(offsets[-1] + sizes[-1]) if ops else 0
    kinds = np.empty(total, dtype=np.int8)
    args = np.empty(total, dtype=np.int64)
    look_pos = offsets[is_lookup]
    kinds[look_pos] = OP_LOOKUP
    args[look_pos] = churn_before[is_lookup] + ranks
    churn_pos = offsets[is_churn]
    kinds[churn_pos] = OP_DELETE
    args[churn_pos] = churn_before[is_churn]
    kinds[churn_pos + 1] = OP_INSERT
    args[churn_pos + 1] = m_keys + churn_before[is_churn]
    return kinds, args
