"""repro: Geometric Generalizations of the Power of Two Choices.

A production-quality reproduction of Byers, Considine & Mitzenmacher's
paper on nearest-neighbor load balancing: the classical d-choice
balls-into-bins process run over bins induced by random points in a
geometric space (arcs on the 1-D ring, Voronoi cells on the k-D torus),
plus the theory toolkit (tail bounds, the layered-induction recursion),
the baselines it is compared against (uniform ABKU bins, Vöcking's
Always-Go-Left, Chord virtual servers), the motivating applications
(a Chord-style DHT; the 2-D ATM assignment model), and a harness that
regenerates every table in the paper's evaluation.

Quickstart
----------
>>> from repro import RingSpace, place_balls
>>> ring = RingSpace.random(1024, seed=0)
>>> one = place_balls(ring, m=1024, d=1, seed=1).max_load
>>> two = place_balls(ring, m=1024, d=2, seed=1).max_load
>>> bool(one >= two)
True
"""

from repro._version import __version__
from repro.core import (
    GeometricSpace,
    PlacementResult,
    RingSpace,
    TieBreak,
    TorusSpace,
    place_balls,
)
from repro.dynamics import DynamicResult, EventTrace, simulate_dynamics

__all__ = [
    "__version__",
    "GeometricSpace",
    "RingSpace",
    "TorusSpace",
    "TieBreak",
    "PlacementResult",
    "place_balls",
    "DynamicResult",
    "EventTrace",
    "simulate_dynamics",
]
