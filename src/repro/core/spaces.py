"""Abstract interface for geometric spaces with nearest-neighbor bins.

A *space* is a compact metric probability space holding ``n`` server
points.  Its nearest-neighbor decomposition (arcs on the ring, Voronoi
cells on the torus) partitions the space into ``n`` bins; an item's
"choice" is a uniform point of the space mapped to the owning bin.  The
placement engine (:mod:`repro.core.engine`) only talks to spaces through
this interface, so Theorem 1's process runs unchanged on any geometry —
exactly the generality the paper's Section 3 closing remark claims.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import resolve_rng

__all__ = ["GeometricSpace"]


class GeometricSpace(abc.ABC):
    """A compact space partitioned into nearest-neighbor regions.

    Concrete subclasses: :class:`repro.core.ring.RingSpace` (1-D circle,
    clockwise-successor ownership as in consistent hashing) and
    :class:`repro.core.torus.TorusSpace` (k-D unit torus, Euclidean
    Voronoi ownership).
    """

    #: number of server points / bins
    n: int

    # ------------------------------------------------------------------
    # sampling / assignment
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample_choice_bins(
        self,
        rng: np.random.Generator,
        m: int,
        d: int,
        *,
        partitioned: bool = False,
    ) -> np.ndarray:
        """Draw candidate bins for ``m`` balls with ``d`` choices each.

        Returns an ``(m, d)`` int64 array of bin indices.  Each entry is
        the bin owning an independent uniform point of the space.  With
        ``partitioned=True`` choice ``j`` is drawn uniformly from the
        ``j``-th of ``d`` equal sub-blocks of the space (Vöcking's
        interval partition; only meaningful where a canonical linear
        order exists — the ring).
        """

    @abc.abstractmethod
    def assign(self, points: np.ndarray) -> np.ndarray:
        """Map points of the space to owning bin indices (vectorized)."""

    @abc.abstractmethod
    def region_measures(self) -> np.ndarray:
        """Return the measure (length/area) of each bin's region.

        Measures are non-negative and sum to 1 (the space is a
        probability space).  Used by the ``smaller``/``larger``
        tie-breaking strategies and by the theory-validation
        experiments.
        """

    # ------------------------------------------------------------------
    # conveniences shared by subclasses
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Alias for ``n`` (number of nearest-neighbor regions)."""
        return self.n

    def choice_probabilities(self) -> np.ndarray:
        """Probability that a single uniform choice probes each bin.

        For nearest-neighbor spaces this *is* the region measure; kept
        as a separate name because baselines (uniform bins) override it.
        """
        return self.region_measures()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"

    @classmethod
    def _resolve(cls, seed) -> np.random.Generator:
        return resolve_rng(seed)
