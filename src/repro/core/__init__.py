"""Core of the paper's contribution: geometric d-choice load balancing.

The pipeline is::

    space = RingSpace.random(n, seed)         # or TorusSpace.random(n, ...)
    result = place_balls(space, m=n, d=2)      # greedy least-loaded insertion
    result.max_load                            # the statistic in Tables 1-3

``place_balls`` is a facade over three interchangeable engines (an
exact sequential reference, a conflict-free-prefix vectorized engine,
and a trial-fused engine that vectorizes across independent runs) that
produce bit-identical results; see :mod:`repro.core.engine` and
:mod:`repro.core.multitrial`.  ``place_balls_multi`` runs many
independent repetitions through the fused engine in one pass.
"""

from repro.core.spaces import GeometricSpace
from repro.core.incremental import IncrementalState
from repro.core.ring import RingSpace
from repro.core.torus import TorusSpace
from repro.core.strategies import TieBreak
from repro.core.placement import PlacementResult, place_balls, place_balls_multi
from repro.core.rounds import place_balls_in_rounds
from repro.core.loads import (
    height_counts_from_loads,
    imbalance_series,
    load_histogram,
    max_load_series,
    nu_profile,
    nu_profile_series,
    total_load_series,
)

__all__ = [
    "GeometricSpace",
    "IncrementalState",
    "RingSpace",
    "TorusSpace",
    "TieBreak",
    "PlacementResult",
    "place_balls",
    "place_balls_multi",
    "place_balls_in_rounds",
    "load_histogram",
    "nu_profile",
    "height_counts_from_loads",
    "max_load_series",
    "total_load_series",
    "imbalance_series",
    "nu_profile_series",
]
