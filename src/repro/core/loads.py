"""Load-vector statistics shared by simulation and theory.

Terminology follows the paper's proof of Theorem 1:

* the **load** of a bin is the number of balls it holds;
* the **height** of a ball is its 1-based position in its bin's stack;
* ``nu_i`` (ν_i) is the number of bins with load **at least** ``i``;
* the number of balls of height at least ``i`` equals ``nu_i`` summed
  over thresholds, and the number of balls at height exactly ``h``
  equals the number of bins with load ≥ h.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "load_histogram",
    "nu_profile",
    "height_counts_from_loads",
    "max_load",
    "load_imbalance",
    "max_load_series",
    "total_load_series",
    "imbalance_series",
    "nu_profile_series",
]


def _as_loads(loads) -> np.ndarray:
    arr = np.asarray(loads)
    if arr.ndim != 1:
        raise ValueError(f"loads must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("loads must be non-empty")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    return arr.astype(np.int64, copy=False)


def load_histogram(loads) -> np.ndarray:
    """``hist[k]`` = number of bins holding exactly ``k`` balls.

    Examples
    --------
    >>> load_histogram([0, 2, 2, 1]).tolist()
    [1, 1, 2]
    """
    arr = _as_loads(loads)
    return np.bincount(arr)


def nu_profile(loads) -> np.ndarray:
    """``nu[i]`` = number of bins with load **at least** ``i``.

    ``nu[0] == n`` and ``nu[max_load]`` is the number of fullest bins.
    This is the ν_i of the layered-induction argument, evaluated at the
    end of the process.

    Examples
    --------
    >>> nu_profile([0, 2, 2, 1]).tolist()
    [4, 3, 2]
    """
    hist = load_histogram(loads)
    return np.cumsum(hist[::-1])[::-1]


def height_counts_from_loads(loads) -> np.ndarray:
    """``counts[h]`` = number of balls whose height is exactly ``h``.

    A bin of load L contributes one ball at each height 1..L, so the
    count at height h equals the number of bins with load >= h (h >= 1);
    index 0 is always 0 for convenient alignment.

    Examples
    --------
    >>> height_counts_from_loads([0, 2, 2, 1]).tolist()
    [0, 3, 2]
    """
    nu = nu_profile(loads)
    counts = nu.copy()
    counts[0] = 0
    return counts


def max_load(loads) -> int:
    """Maximum bin load (the statistic in the paper's Tables 1-3)."""
    return int(_as_loads(loads).max())


# ----------------------------------------------------------------------
# time-series statistics over load trajectories (repro.dynamics)
# ----------------------------------------------------------------------
def max_load_series(snapshots) -> np.ndarray:
    """Maximum load of each snapshot in a load trajectory.

    ``snapshots`` is a sequence of load vectors (e.g. the per-epoch
    snapshots of a :class:`~repro.dynamics.result.DynamicResult`); the
    dynamic load guarantee is a statement about this series, not just
    its final entry.

    Examples
    --------
    >>> max_load_series([[0, 1], [2, 1], [1, 1]]).tolist()
    [1, 2, 1]
    """
    return np.array([max_load(s) for s in snapshots], dtype=np.int64)


def total_load_series(snapshots) -> np.ndarray:
    """Total ball count of each snapshot (inserts minus deletes so far).

    Examples
    --------
    >>> total_load_series([[0, 1], [2, 1]]).tolist()
    [1, 3]
    """
    return np.array([int(_as_loads(s).sum()) for s in snapshots], dtype=np.int64)


def imbalance_series(snapshots) -> np.ndarray:
    """Max-to-mean ratio of each snapshot in a load trajectory.

    Examples
    --------
    >>> imbalance_series([[1, 1], [3, 1]]).tolist()
    [1.0, 1.5]
    """
    return np.array([load_imbalance(s) for s in snapshots], dtype=np.float64)


def nu_profile_series(snapshots) -> list[np.ndarray]:
    """ν-profile of each snapshot: the layered-induction object in time.

    Examples
    --------
    >>> [p.tolist() for p in nu_profile_series([[0, 1], [2, 1]])]
    [[2, 1], [2, 2, 1]]
    """
    return [nu_profile(s) for s in snapshots]


def load_imbalance(loads) -> float:
    """Max-to-mean load ratio; 1.0 is a perfectly balanced system."""
    arr = _as_loads(loads)
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.max() / mean)
