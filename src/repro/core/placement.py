"""High-level facade for the greedy d-choice placement process.

:func:`place_balls` is the single entry point used by experiments,
examples and baselines for one run.  It wires a
:class:`~repro.core.spaces.GeometricSpace` to one of the engines and
wraps the outcome in a :class:`PlacementResult` carrying the statistics
the paper reports.  :func:`place_balls_multi` is its many-runs twin:
independent repetitions of the same process (the tables' trials) are
executed through the trial-fused engine in one vectorized pass, one
:class:`PlacementResult` per run, bit-identical to calling
:func:`place_balls` per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core import engine as _engine
from repro.core import multitrial as _multitrial
from repro.core.loads import (
    height_counts_from_loads,
    load_histogram,
    load_imbalance,
    max_load,
    nu_profile,
)
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["PlacementResult", "place_balls", "place_balls_multi"]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one run of the greedy d-choice process.

    Attributes
    ----------
    loads:
        Final per-bin load vector, length ``n``.
    m, d:
        Number of balls and choices per ball.
    strategy:
        The tie-breaking rule used.
    partitioned:
        Whether choices were drawn from Vöcking's interval partition.
    engine:
        Which engine produced the result
        (``"sequential"``/``"batched"``/``"fused"``).
    heights:
        Per-ball heights (1-based), present only when requested.
    """

    loads: np.ndarray
    m: int
    d: int
    strategy: TieBreak
    partitioned: bool = False
    engine: str = "batched"
    heights: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        total = int(self.loads.sum())
        if total != self.m:
            raise ValueError(
                f"loads sum to {total} but m={self.m}; engine accounting bug"
            )

    # ------------------------------------------------------------------
    # statistics (the vocabulary of the paper's proofs and tables)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of bins."""
        return int(self.loads.shape[0])

    @property
    def max_load(self) -> int:
        """Maximum bin load — the statistic tabulated in Tables 1-3."""
        return max_load(self.loads)

    def load_histogram(self) -> np.ndarray:
        """``hist[k]`` = bins holding exactly ``k`` balls."""
        return load_histogram(self.loads)

    def nu_profile(self) -> np.ndarray:
        """ν_i = bins with load at least i (layered-induction profile)."""
        return nu_profile(self.loads)

    def height_counts(self) -> np.ndarray:
        """Balls at each exact height (index 0 unused)."""
        return height_counts_from_loads(self.loads)

    @property
    def imbalance(self) -> float:
        """Max-to-mean load ratio."""
        return load_imbalance(self.loads)

    # ------------------------------------------------------------------
    # bridge from the dynamic subsystem
    # ------------------------------------------------------------------
    @classmethod
    def from_dynamic(cls, dynamic) -> "PlacementResult":
        """Final state of a :class:`~repro.dynamics.result.DynamicResult`
        as a static placement over the live bins.

        Lets every static analysis (ν-profiles, table statistics,
        theory comparisons) run unchanged on the endpoint of a dynamic
        trajectory.  Inactive slots are dropped, so ``n`` here is the
        number of bins live at the end of the trace.
        """
        loads = np.asarray(dynamic.loads)[np.asarray(dynamic.active)]
        return cls(
            loads=loads,
            m=int(loads.sum()),
            d=dynamic.d,
            strategy=dynamic.strategy,
            partitioned=dynamic.partitioned,
            engine=dynamic.engine,
        )


def place_balls(
    space: GeometricSpace,
    m: int,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    partitioned: bool = False,
    seed=None,
    engine: str = "auto",
    batch_size: int | None = None,
    rng_block: int = _engine.DEFAULT_RNG_BLOCK,
    record_heights: bool = False,
) -> PlacementResult:
    """Sequentially place ``m`` balls with ``d`` choices each.

    This is the process of Theorem 1: each ball draws ``d`` uniform
    points of the space, maps them to owning bins, and joins the least
    loaded candidate, resolving ties with ``strategy``.

    Parameters
    ----------
    space:
        A :class:`RingSpace`, :class:`TorusSpace`, or any other
        :class:`GeometricSpace` (baselines provide a uniform one).
    m:
        Number of balls (items).  The paper's tables use ``m = n``; the
        ``m ≠ n`` remark is exercised by the ablation experiments.
    d:
        Choices per ball; ``d = 1`` reduces to plain nearest-neighbor
        hashing (the Θ(log n) regime), ``d ≥ 2`` activates the
        double-logarithmic regime.
    strategy:
        Tie-breaking rule, see :class:`~repro.core.strategies.TieBreak`.
    partitioned:
        Draw choice ``j`` from the ``j``-th of ``d`` equal sub-blocks
        (Vöcking).  Combine with ``strategy="first"`` for the paper's
        ``arc-left``.
    seed:
        Anything :func:`repro.utils.rng.resolve_rng` accepts.
    engine:
        ``"auto"`` (default), ``"sequential"`` or ``"batched"``.  All
        engines give bit-identical results for a given seed.  (For
        many independent runs, :func:`place_balls_multi` additionally
        offers the trial-fused engine.)
    batch_size:
        Batched-engine batch; ``None`` lets :func:`auto_batch_size`
        tune it to the expected conflict-free prefix length.
    rng_block:
        Pre-draw block size; affects nothing but memory (fixed across
        engines so results do not depend on the engine choice).
    record_heights:
        Also return per-ball heights (costs O(m) memory).

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> ring = RingSpace.random(128, seed=1)
    >>> res = place_balls(ring, m=128, d=2, seed=2)
    >>> res.max_load <= 6
    True
    """
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    strat = TieBreak.coerce(strategy)
    rng = resolve_rng(seed)
    if engine == "auto":
        engine = _engine.auto_engine(space.n)
    if engine == "sequential":
        loads, heights = _engine.run_sequential(
            space,
            m,
            d,
            strat,
            rng,
            partitioned=partitioned,
            rng_block=rng_block,
            record_heights=record_heights,
        )
    elif engine == "batched":
        loads, heights = _engine.run_batched(
            space,
            m,
            d,
            strat,
            rng,
            partitioned=partitioned,
            rng_block=rng_block,
            batch_size=batch_size,
            record_heights=record_heights,
        )
    else:
        raise ValueError(
            f"engine must be 'auto', 'sequential' or 'batched', got {engine!r}"
        )
    return PlacementResult(
        loads=loads,
        m=m,
        d=d,
        strategy=strat,
        partitioned=partitioned,
        engine=engine,
        heights=heights,
    )


def place_balls_multi(
    spaces: Sequence[GeometricSpace],
    m: int,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    partitioned: bool = False,
    seeds=None,
    batch_size: int | None = None,
    rng_block: int = _engine.DEFAULT_RNG_BLOCK,
    record_heights: bool = False,
    backend=None,
    threads: int | None = None,
) -> list[PlacementResult]:
    """Run the greedy process once per space, fused across runs.

    The runs are independent repetitions (one space and one RNG stream
    each — the paper's table trials), executed together by
    :func:`repro.core.multitrial.run_fused`: run ``k`` is bit-identical
    to ``place_balls(spaces[k], ..., seed=seeds[k])``, but all numpy
    work is batched across runs.

    Parameters
    ----------
    spaces:
        One space per run; all must share the same bin count.
    seeds:
        ``None`` (fresh entropy per run) or a sequence of per-run
        seeds, each anything :func:`repro.utils.rng.resolve_rng`
        accepts.
    backend:
        Kernel backend selection for the fused engine, forwarded to
        :func:`repro.core.multitrial.run_fused`
        (:func:`repro.kernels.resolve_backend` semantics; results are
        backend-independent).
    threads:
        Worker-thread count, forwarded to
        :func:`repro.core.multitrial.run_fused`
        (:func:`repro.kernels.resolve_threads` semantics; results are
        thread-count-independent).

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> rings = [RingSpace.random(64, seed=s) for s in (1, 2)]
    >>> results = place_balls_multi(rings, m=64, d=2, seeds=[3, 4])
    >>> [r.max_load == place_balls(rings[i], 64, 2, seed=3 + i).max_load
    ...  for i, r in enumerate(results)]
    [True, True]
    """
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    strat = TieBreak.coerce(strategy)
    if seeds is None:
        rngs = [resolve_rng(None) for _ in spaces]
    else:
        if len(seeds) != len(spaces):
            raise ValueError(f"got {len(spaces)} spaces but {len(seeds)} seeds")
        rngs = [resolve_rng(s) for s in seeds]
    loads, heights = _multitrial.run_fused(
        spaces,
        m,
        d,
        strat,
        rngs,
        partitioned=partitioned,
        rng_block=rng_block,
        batch_size=batch_size,
        record_heights=record_heights,
        backend=backend,
        threads=threads,
    )
    return [
        PlacementResult(
            loads=loads[k],
            m=m,
            d=d,
            strategy=strat,
            partitioned=partitioned,
            engine="fused",
            heights=heights[k] if heights is not None else None,
        )
        for k in range(len(spaces))
    ]
