"""Round-based (parallel-arrival) d-choice placement.

In a real distributed system items do not arrive one at a time: a
*round* of ``b`` items is inserted concurrently, each seeing the loads
as of the round start (stale information).  This is the classical
parallel balls-into-bins relaxation; theory for the uniform case says
staleness costs only O(1) extra load for round sizes up to Θ(n), and
the `ablation_staleness` sweep measures the same resilience on the
geometric spaces — evidence for deploying the paper's scheme with
batched, asynchronous inserts (the systems concern behind its IPTPS
companion).

Unlike the batched engine (which is an *exact reorganization* of the
sequential process), this is a genuinely different process: decisions
within a round are made against the stale snapshot, and all increments
commit at the round boundary.
"""

from __future__ import annotations

import numpy as np

from repro.core.loads import max_load
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak, decide_rows, strategy_needs_measures
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["place_balls_in_rounds"]


def place_balls_in_rounds(
    space: GeometricSpace,
    m: int,
    d: int = 2,
    *,
    round_size: int,
    strategy: TieBreak | str = TieBreak.RANDOM,
    partitioned: bool = False,
    seed=None,
) -> np.ndarray:
    """Place ``m`` balls in rounds of ``round_size`` with stale loads.

    Every ball in a round draws its ``d`` candidates and decides
    against the load vector frozen at the round start; ties use the
    shared tie-break kernels.  ``round_size = 1`` recovers the exact
    sequential process (asserted by tests); ``round_size = m`` is the
    fully parallel one-shot assignment.

    Returns the final load vector.

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> ring = RingSpace.random(256, seed=0)
    >>> loads = place_balls_in_rounds(ring, 256, 2, round_size=64, seed=1)
    >>> int(loads.sum())
    256
    """
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    round_size = check_positive_int(round_size, "round_size")
    strat = TieBreak.coerce(strategy)
    rng = resolve_rng(seed)
    loads = np.zeros(space.n, dtype=np.int64)
    measures = space.region_measures() if strategy_needs_measures(strat) else None
    placed = 0
    while placed < m:
        b = min(round_size, m - placed)
        cand = space.sample_choice_bins(rng, b, d, partitioned=partitioned)
        tiebreaks = rng.random(b)
        cand_loads = loads[cand]
        cand_measures = measures[cand] if measures is not None else None
        j = decide_rows(cand_loads, cand_measures, tiebreaks, strat)
        chosen = cand[np.arange(b), j]
        # within a round several balls may pick the same bin: commit all
        np.add.at(loads, chosen, 1)
        placed += b
    return loads


def staleness_penalty(
    space_factory,
    m: int,
    d: int,
    round_sizes,
    *,
    trials: int = 10,
    seed: int = 0,
) -> dict[int, float]:
    """Mean max load per round size (helper for the staleness ablation).

    ``space_factory(seed)`` builds a fresh space per trial.
    """
    out: dict[int, float] = {}
    for b in round_sizes:
        maxima = []
        for t in range(check_positive_int(trials, "trials")):
            space = space_factory(seed + 1000 * t)
            loads = place_balls_in_rounds(
                space, m, d, round_size=b, seed=seed + 7919 * t
            )
            maxima.append(max_load(loads))
        out[int(b)] = float(np.mean(maxima))
    return out
