"""Incremental two-choice placement state: O(d) per-event updates.

The batch engines (:mod:`repro.core.engine`,
:mod:`repro.dynamics.engine`) are trace-shaped: they want every event
up front so randomness can be pre-drawn and decisions vectorized.  The
paper's process, however, is *online* — each ball commits on arrival —
and a serving deployment (the ``repro.serve`` tier) never sees the end
of its trace.  :class:`IncrementalState` is the state object both
shapes share:

* **live bin loads** plus the ball→bin index, updated in ``O(d)`` per
  insert and ``O(1)`` per delete/lookup with no recompute;
* the **cyclic-successor remap** under bin churn (consistent hashing's
  clockwise hand-off on the ring) and the merged region measures the
  ``smaller``/``larger`` tie-breaks read;
* :meth:`apply_window` — the churn-free mixed insert/delete window
  application the batched dynamic engine runs, dispatching between a
  compiled kernel (``dynamic_window``), the mixed-event
  conflict-free-prefix numpy path, and a scalar fast path for windows
  below :data:`repro.kernels.SMALL_WINDOW_CUTOFF`;
* NPZ :meth:`save` / :meth:`load` snapshots, so a long-lived server
  can checkpoint and resume mid-stream.

Decision semantics are *identical* to the batch engines by
construction: the scalar path **is** the sequential reference
(:func:`repro.core.strategies.decide_row_scalar`), the vectorized and
kernel paths are the existing batched machinery, and churn
re-placement consumes the auxiliary RNG exactly as before.  Feeding
the same pre-drawn candidate stream through this class therefore
reproduces ``simulate_dynamics`` bit-for-bit — enforced by
``tests/serve/test_incremental_parity.py``.

Randomness is deliberately *external*: inserts take their candidate
row and tie-break uniform as arguments (the caller owns the stream
layout — :func:`repro.core.engine.choice_blocks` for replay parity, a
block-drawing online stream for servers).  Only churn re-placement
draws internally, from ``aux_rng``, mirroring the dynamic engines.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.spaces import GeometricSpace
from repro.core.strategies import (
    TieBreak,
    decide_row_scalar,
    decide_rows,
    strategy_needs_measures,
)
from repro.kernels import (
    SMALL_WINDOW_CUTOFF,
    STRATEGY_CODES,
    KernelBackend,
)
from repro.obs import counter_add, histogram_observe
from repro.obs import enabled as obs_enabled
from repro.utils.validation import check_positive_int

__all__ = ["IncrementalState", "mixed_conflict_prefix"]

#: Event codes inside :meth:`IncrementalState.apply_window` windows —
#: numerically identical to :class:`repro.dynamics.events.EventKind`
#: (``INSERT``/``DELETE``) so trace arrays pass through unchanged.
KIND_INSERT = 0
KIND_DELETE = 1

#: Snapshot format version written by :meth:`IncrementalState.save`.
_SNAPSHOT_FORMAT = 1


def mixed_conflict_prefix(touched: np.ndarray, is_insert: np.ndarray) -> int:
    """Longest event prefix decidable from the prefix-start load vector.

    ``touched`` is ``(B, d)``: an insert row holds its candidate bins, a
    delete row its target's bin broadcast ``d`` times (``-1`` when the
    target is inserted within the same batch — its true bin is then the
    chosen bin of that earlier insert, already accounted for by the
    insert's candidates).  An event conflicts when it is an insert and
    any of its bins was touched by an earlier row; deletes never
    conflict.  Returns at least 1 for non-empty input.

    Examples
    --------
    >>> import numpy as np
    >>> t = np.array([[0, 1], [2, 2], [1, 3]])        # rows: ins, del, ins
    >>> mixed_conflict_prefix(t, np.array([True, False, True]))
    2
    >>> mixed_conflict_prefix(t[:2], np.array([True, False]))
    2
    """
    if touched.ndim != 2:
        raise ValueError(f"touched must be 2-D, got shape {touched.shape}")
    b, d = touched.shape
    if b == 0:
        return 0
    flat = touched.ravel()
    _, first_flat, inverse = np.unique(flat, return_index=True, return_inverse=True)
    first_row = first_flat[inverse] // d
    own_row = np.repeat(np.arange(b, dtype=np.int64), d)
    conflicts = (first_row < own_row) & np.repeat(is_insert, d)
    if not conflicts.any():
        return b
    return int(own_row[conflicts].min())


class IncrementalState:
    """Live placement state with O(d) per-event updates and NPZ snapshots.

    Parameters
    ----------
    space:
        The geometric space (bin ownership + region measures).
    d:
        Choices per insert.
    strategy:
        Tie-break rule (:class:`~repro.core.strategies.TieBreak`).
    partitioned:
        Whether candidate draws use the partitioned variant (recorded
        for snapshots; draws themselves are the caller's).
    aux_rng:
        Generator consumed by churn re-placement only.  The dynamic
        engines spawn it off the main seed *before* the insert
        pre-draw; a server may leave it ``None`` until churn is used.
    expect_balls:
        Initial ball-index capacity (grows on demand).
    """

    def __init__(
        self,
        space: GeometricSpace,
        d: int,
        strategy: TieBreak | str,
        *,
        partitioned: bool = False,
        aux_rng: np.random.Generator | None = None,
        expect_balls: int = 0,
    ) -> None:
        self.space = space
        self.n = space.n
        self.d = check_positive_int(d, "d")
        self.strategy = TieBreak.coerce(strategy)
        self.partitioned = bool(partitioned)
        self.aux_rng = aux_rng
        self.loads = np.zeros(self.n, dtype=np.int64)
        self.ball_bin = np.full(max(int(expect_balls), 0), -1, dtype=np.int64)
        self.active = np.ones(self.n, dtype=bool)
        self.needs_measures = strategy_needs_measures(self.strategy)
        self.base_measures = space.region_measures() if self.needs_measures else None
        self.measures = self.base_measures
        self.remap: np.ndarray | None = None  # None == identity (no churn yet)
        self.inserts_done = 0
        self.deletes_done = 0

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    def reserve(self, capacity: int) -> None:
        """Grow the ball→bin index to hold ids ``< capacity`` (amortized)."""
        cur = self.ball_bin.shape[0]
        if capacity <= cur:
            return
        new = max(capacity, 2 * cur, 16)
        grown = np.full(new, -1, dtype=np.int64)
        grown[:cur] = self.ball_bin
        self.ball_bin = grown

    # ------------------------------------------------------------------
    # scalar event application (the sequential reference semantics)
    # ------------------------------------------------------------------
    def insert(self, ball: int, cand_row: np.ndarray, u: float) -> int:
        """Place ``ball`` given its candidate row and tie-break uniform.

        Returns the chosen bin.  ``O(d)``: one load gather, one scalar
        tie-break, one increment.
        """
        if ball >= self.ball_bin.shape[0]:
            self.reserve(ball + 1)
        cand = cand_row if self.remap is None else self.remap[cand_row]
        row = self.loads[cand]
        mrow = self.measures[cand] if self.needs_measures else None
        j = decide_row_scalar(
            row.tolist(),
            None if mrow is None else mrow.tolist(),
            float(u),
            self.strategy,
        )
        chosen = int(cand[j])
        self.loads[chosen] += 1
        self.ball_bin[ball] = chosen
        self.inserts_done += 1
        return chosen

    def delete(self, ball: int) -> int:
        """Remove ``ball``; returns the bin it vacated.  ``O(1)``."""
        if not 0 <= ball < self.ball_bin.shape[0]:
            raise RuntimeError(f"delete of unplaced ball {ball}")
        b = int(self.ball_bin[ball])
        if b < 0:
            raise RuntimeError(f"delete of unplaced ball {ball}")
        self.loads[b] -= 1
        self.ball_bin[ball] = -1
        self.deletes_done += 1
        return b

    def lookup(self, ball: int) -> int:
        """The bin currently holding ``ball`` (``-1`` if unplaced).  ``O(1)``."""
        if not 0 <= ball < self.ball_bin.shape[0]:
            return -1
        return int(self.ball_bin[ball])

    # ------------------------------------------------------------------
    # churn (scalar by nature: rare, topology-changing)
    # ------------------------------------------------------------------
    def bin_leave(self, slot: int) -> None:
        """Deactivate bin ``slot``, re-placing its displaced balls."""
        self.active[slot] = False
        self._recompute_topology()
        displaced = np.nonzero(self.ball_bin == slot)[0]
        self.loads[slot] = 0
        for ball in displaced:
            self._replace_ball(int(ball))

    def bin_join(self, slot: int) -> None:
        """Reactivate bin ``slot`` (empty: no eager rebalancing on joins)."""
        self.active[slot] = True
        self._recompute_topology()

    def _replace_ball(self, ball: int) -> None:
        if self.aux_rng is None:
            raise RuntimeError(
                "churn re-placement needs aux_rng (construct IncrementalState "
                "with aux_rng=... to enable bin churn)"
            )
        raw = self.space.sample_choice_bins(
            self.aux_rng, 1, self.d, partitioned=self.partitioned
        )[0]
        cand = self.remap[raw]
        u = float(self.aux_rng.random())
        row = self.loads[cand]
        mrow = self.measures[cand] if self.needs_measures else None
        j = decide_row_scalar(
            row.tolist(), None if mrow is None else mrow.tolist(), u, self.strategy
        )
        chosen = int(cand[j])
        self.loads[chosen] += 1
        self.ball_bin[ball] = chosen

    def _recompute_topology(self) -> None:
        """Rebuild the cyclic-successor remap and merged measures."""
        if self.active.all():
            self.remap = None
            self.measures = self.base_measures
            return
        n = self.n
        sentinel = 2 * n
        cand = np.where(self.active, np.arange(n, dtype=np.int64), sentinel)
        # next active index at or after j, wrapping to the first active
        succ = np.minimum.accumulate(cand[::-1])[::-1]
        first = int(np.argmax(self.active))
        self.remap = np.where(succ >= sentinel, first, succ).astype(np.int64)
        if self.base_measures is not None:
            self.measures = np.bincount(
                self.remap, weights=self.base_measures, minlength=n
            )

    # ------------------------------------------------------------------
    # batched window application (the batched engines' inner loop)
    # ------------------------------------------------------------------
    def apply_window(
        self,
        kinds: np.ndarray,
        args: np.ndarray,
        start: int,
        stop: int,
        cands: np.ndarray,
        us: np.ndarray,
        *,
        batch_size: int,
        backend: KernelBackend | None = None,
    ) -> None:
        """Apply a churn-free window of insert/delete events in order.

        ``cands``/``us`` are indexed by ball id (the pre-drawn or
        streamed candidate arrays).  Three dispatch tiers, all
        bit-identical:

        * windows below :data:`repro.kernels.SMALL_WINDOW_CUTOFF`
          events run the scalar reference directly — per-event
          application beats both kernel dispatch and numpy batching at
          that size (the serving tier's single-request fast path);
        * an accelerated ``backend`` runs the whole window through its
          compiled ``dynamic_window`` kernel (strictly in-order — the
          sequential semantics itself);
        * otherwise the mixed-event conflict-free-prefix vectorization
          decides provably order-independent prefixes in one shot.
        """
        rows = stop - start
        if rows <= 0:
            return
        if rows > 0:
            amax = int(args[start:stop].max())
            if amax >= self.ball_bin.shape[0]:
                self.reserve(amax + 1)
        _obs = obs_enabled()
        if rows <= SMALL_WINDOW_CUTOFF:
            if _obs:
                counter_add("dynamics.scalar_steps", rows)
            for i in range(start, stop):
                arg = int(args[i])
                if kinds[i] == KIND_INSERT:
                    self.insert(arg, cands[arg], float(us[arg]))
                else:
                    self.delete(arg)
            return
        if backend is not None and backend.dynamic_window is not None:
            if _obs:
                counter_add("dynamics.kernel_windows")
                histogram_observe("dynamics.window_events", rows)
            ins, dels = backend.dynamic_window(
                kinds,
                args,
                start,
                stop,
                cands,
                us,
                self.d,
                self.remap,
                self.loads,
                self.measures if self.needs_measures else None,
                STRATEGY_CODES[self.strategy.value],
                self.ball_bin,
            )
            self.inserts_done += ins
            self.deletes_done += dels
            return
        d = self.d
        i = start
        while i < stop:
            end = min(i + batch_size, stop)
            kw = kinds[i:end]
            aw = args[i:end]
            is_insert = kw == KIND_INSERT
            b = end - i
            touched = np.empty((b, d), dtype=np.int64)
            if is_insert.any():
                raw = cands[aw[is_insert]]
                touched[is_insert] = raw if self.remap is None else self.remap[raw]
            if not is_insert.all():
                touched[~is_insert] = self.ball_bin[aw[~is_insert], None]
            prefix = mixed_conflict_prefix(touched, is_insert)
            if _obs:
                # the mixed-event vectorization's effectiveness in one number:
                # how many events each conflict-free prefix actually covered
                histogram_observe("dynamics.window_events", prefix)
            # --- apply the conflict-free prefix from the current loads ---
            p_ins = is_insert[:prefix]
            ins_ids = aw[:prefix][p_ins]
            if ins_ids.size:
                sub = touched[:prefix][p_ins]
                cand_loads = self.loads[sub]
                cand_measures = self.measures[sub] if self.needs_measures else None
                j = decide_rows(cand_loads, cand_measures, us[ins_ids], self.strategy)
                chosen = sub[np.arange(ins_ids.size), j]
                # prefix inserts have pairwise-disjoint candidates: no dups
                self.loads[chosen] += 1
                self.ball_bin[ins_ids] = chosen
                self.inserts_done += int(ins_ids.size)
            del_ids = aw[:prefix][~p_ins]
            if del_ids.size:
                bins = self.ball_bin[del_ids]
                np.subtract.at(self.loads, bins, 1)
                self.ball_bin[del_ids] = -1
                self.deletes_done += int(del_ids.size)
            i += prefix
            if prefix < b:
                # the event at `i` reads a bin the prefix touched: its
                # decision needs the updated loads, so step it scalar
                if _obs:
                    counter_add("dynamics.scalar_steps")
                arg = int(aw[prefix])
                if is_insert[prefix]:
                    self.insert(arg, cands[arg], float(us[arg]))
                else:
                    self.delete(arg)
                i += 1

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def live_loads(self) -> np.ndarray:
        """Loads of the currently active bins."""
        return self.loads[self.active]

    @property
    def occupancy(self) -> int:
        """Balls currently placed (inserts minus deletes)."""
        return self.inserts_done - self.deletes_done

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def save(self, path, *, extra_arrays=None, extra_meta=None) -> None:
        """Checkpoint the live state to an NPZ file.

        The live arrays (loads, ball→bin index, active mask, ring
        positions) are written directly — no intermediate serialization
        — together with a JSON metadata record (dimensions, strategy,
        counters, the churn RNG state).  ``extra_arrays`` /
        ``extra_meta`` let callers (the serving tier) piggyback their
        own state into the same file; extra array names must not start
        with ``core_``.
        """
        meta = {
            "format": _SNAPSHOT_FORMAT,
            "n": int(self.n),
            "d": int(self.d),
            "strategy": self.strategy.value,
            "partitioned": self.partitioned,
            "inserts_done": int(self.inserts_done),
            "deletes_done": int(self.deletes_done),
            "space_kind": type(self.space).__name__,
            "aux_rng_state": (
                None if self.aux_rng is None else self.aux_rng.bit_generator.state
            ),
        }
        if extra_meta:
            meta["extra"] = extra_meta
        arrays = {
            "core_loads": self.loads,
            "core_ball_bin": self.ball_bin,
            "core_active": self.active,
            "core_meta": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        }
        positions = getattr(self.space, "positions", None)
        if positions is not None:
            arrays["core_positions"] = np.asarray(positions)
        if extra_arrays:
            for name, arr in extra_arrays.items():
                if name.startswith("core_"):
                    raise ValueError(f"extra array name {name!r} is reserved")
                arrays[name] = arr
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path, *, space: GeometricSpace | None = None):
        """Restore a :meth:`save` checkpoint.

        Returns ``(state, extra)`` where ``extra`` is
        ``{"meta": extra_meta_dict, "arrays": {name: array}}`` holding
        whatever the caller piggybacked.  ``space`` may be omitted for
        ring snapshots (rebuilt from the stored positions); other
        spaces must be supplied by the caller and are validated against
        the stored dimensions.
        """
        with np.load(path, allow_pickle=False) as payload:
            meta = json.loads(bytes(payload["core_meta"]).decode("utf-8"))
            if meta.get("format") != _SNAPSHOT_FORMAT:
                raise ValueError(
                    f"unsupported snapshot format {meta.get('format')!r} in {path}"
                )
            if space is None:
                if meta["space_kind"] == "RingSpace" and "core_positions" in payload:
                    from repro.core.ring import RingSpace

                    space = RingSpace(payload["core_positions"])
                else:
                    raise ValueError(
                        f"snapshot holds a {meta['space_kind']}; pass space= to load"
                    )
            if space.n != meta["n"]:
                raise ValueError(
                    f"snapshot expects n={meta['n']} bins but space has {space.n}"
                )
            state = cls(
                space,
                meta["d"],
                meta["strategy"],
                partitioned=meta["partitioned"],
            )
            state.loads = payload["core_loads"].copy()
            state.ball_bin = payload["core_ball_bin"].copy()
            state.active = payload["core_active"].copy()
            state.inserts_done = meta["inserts_done"]
            state.deletes_done = meta["deletes_done"]
            if meta["aux_rng_state"] is not None:
                state.aux_rng = np.random.default_rng(0)
                state.aux_rng.bit_generator.state = meta["aux_rng_state"]
            state._recompute_topology()
            extra_arrays = {
                name: payload[name].copy()
                for name in payload.files
                if not name.startswith("core_")
            }
        return state, {"meta": meta.get("extra", {}), "arrays": extra_arrays}
