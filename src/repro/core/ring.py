"""The 1-D ring: random arcs as bins (paper, Section 2).

``n`` server points are placed on a circle of circumference 1.  Bin
``j`` is the arc *owned* by server ``j``.  Following the consistent-
hashing convention the paper's DHT application uses (keys go to the
nearest server in the clockwise direction), server ``j`` owns the arc
extending **counterclockwise** from its own position to the predecessor
position — equivalently, a uniform point ``x`` belongs to the first
server at or after ``x`` in clockwise order.  The induced arc lengths
are the spacings of ``n`` uniform order statistics, the object of
Lemmas 3–6.

Implementation notes
--------------------
Server positions are kept **sorted** so ownership queries are a single
``np.searchsorted`` (binary search, O(log n) per query, fully
vectorized).  The sort is done once at construction; arc lengths are the
adjacent differences with wraparound.

For the bulk queries the placement engines issue (an RNG block is up to
2¹⁶ balls × d choices), binary search is the hot path: ~log₂ n
dependent cache misses per query.  Large query batches therefore go
through a **bucket lookup table**: the circle is cut into a power-of-two
number of equal buckets and ``table[b]`` caches
``searchsorted(pos, b / B)``.  A query then costs one table gather plus
on average under one linear-probe step (bucket occupancy ≤ 1).  Because
``B`` is a power of two, ``x·B`` and ``b/B`` are exact in float64, so
the fast path returns *exactly* the index binary search would — the
engines' bit-identity doctrine extends to the geometry substrate (and
the test suite checks the two paths against each other).
"""

from __future__ import annotations

import numpy as np

from repro.core.spaces import GeometricSpace
from repro.kernels import default_backend, resolve_threads
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_float_array, check_positive_int

__all__ = ["RingSpace"]


class RingSpace(GeometricSpace):
    """Circle of circumference 1 with clockwise-successor ownership.

    Parameters
    ----------
    positions:
        Server positions in ``[0, 1)``.  Need not be sorted; duplicates
        are rejected (two servers at one point would create an empty,
        ambiguous bin — the paper's continuous model has none almost
        surely).

    Examples
    --------
    >>> ring = RingSpace([0.5, 0.1, 0.9])   # sorted to [0.1, 0.5, 0.9]
    >>> ring.assign(np.array([0.05, 0.45, 0.95]))  # 0.95 wraps to 0.1
    array([0, 1, 0])
    >>> float(ring.region_measures().sum())
    1.0
    """

    def __init__(self, positions) -> None:
        pos = as_float_array(positions, "positions", ndim=1)
        if pos.size < 1:
            raise ValueError("RingSpace needs at least one server position")
        if np.any((pos < 0.0) | (pos >= 1.0)):
            raise ValueError("positions must lie in [0, 1)")
        pos = np.sort(pos)
        if pos.size > 1 and np.any(np.diff(pos) == 0.0):
            raise ValueError("positions must be distinct")
        self._pos = pos
        self.n = int(pos.size)
        # (nbuckets, table, pos_ext) — built lazily on bulk queries
        self._lut: tuple[int, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, n: int, seed=None) -> "RingSpace":
        """Place ``n`` servers independently and uniformly on the circle."""
        n = check_positive_int(n, "n")
        rng = resolve_rng(seed)
        return cls(rng.random(n))

    # ------------------------------------------------------------------
    # GeometricSpace interface
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Sorted server positions (read-only view)."""
        v = self._pos.view()
        v.flags.writeable = False
        return v

    #: Below these sizes the bucket table isn't worth building/using.
    _LUT_MIN_BINS = 1024
    _LUT_MIN_QUERIES = 1024
    #: Below this many queries, thread spawn/join overhead beats the
    #: parallel lookup; above it, auto-thread (results are identical —
    #: each output row is an independent lookup).
    _PAR_MIN_QUERIES = 1 << 16

    def _bucket_table(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Lazy ``(B, table, pos_ext)`` with
        ``table[b] = searchsorted(pos, b/B)`` and ``pos_ext`` the
        positions padded with a ``+inf`` probe sentinel.

        ``B`` is the power of two ≥ n, so bucket occupancy averages ≤ 1
        and every ``x·B`` / ``b/B`` is exact in float64.  Built in O(n)
        from the sorted positions (bincount + cumsum), not by binary
        search.
        """
        if self._lut is None:
            nbuckets = 1 << max(0, int(self.n - 1).bit_length())
            occupancy = np.bincount(
                (self._pos * nbuckets).astype(np.int64), minlength=nbuckets
            )
            table = np.empty(nbuckets + 1, dtype=np.int32)
            table[0] = 0
            np.cumsum(occupancy, out=table[1:])
            # +inf sentinel stops the probe loop at idx == n without
            # per-query upper bounds
            pos_ext = np.append(self._pos, np.inf)
            self._lut = (nbuckets, table, pos_ext)
        return self._lut

    def _assign_bucketed(self, pts: np.ndarray) -> np.ndarray:
        """Bucket-table twin of ``searchsorted(pos, pts, side='left')``.

        Start at the cached lower bound of the query's bucket and
        linearly advance past positions < query; exactness of the
        power-of-two bucket arithmetic guarantees the start is never
        past the true answer, and the sentinel/occupancy bound the walk.
        """
        nbuckets, table, pos_ext = self._bucket_table()
        idx = table[(pts * nbuckets).astype(np.int32)]
        # first probe on the full array (cheap, contiguous); survivors
        # — queries whose bucket holds several servers — are rare and
        # handled on a compressed index set
        adv = pos_ext[idx] < pts
        np.add(idx, adv, out=idx, casting="unsafe")
        active = np.flatnonzero(adv)
        active = active[pos_ext[idx[active]] < pts[active]]
        while active.size:
            idx[active] += 1
            active = active[pos_ext[idx[active]] < pts[active]]
        return idx

    def _assign_trusted(self, pts: np.ndarray) -> np.ndarray:
        """``assign`` without domain validation, for engine-generated
        points that are uniform draws in [0, 1) by construction."""
        if pts.size >= self._LUT_MIN_QUERIES and self.n >= self._LUT_MIN_BINS:
            backend = default_backend()
            if backend.ring_assign is not None:
                # compiled twin of the bucketed walk below (parity suite
                # checks bit-identity); already reduced mod n
                nbuckets, table, pos_ext = self._bucket_table()
                threads = (
                    resolve_threads(None)
                    if pts.size >= self._PAR_MIN_QUERIES
                    else 1
                )
                return backend.ring_assign(
                    np.ascontiguousarray(pts.ravel()), table, pos_ext,
                    nbuckets, self.n, threads=threads,
                ).reshape(pts.shape)
            idx = self._assign_bucketed(pts.ravel()).reshape(pts.shape)
        else:
            # 'left': first index with pos >= x, the clockwise successor.
            idx = np.searchsorted(self._pos, pts, side="left")
        return np.asarray(idx % self.n, dtype=np.int64)

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Owning bin of each point: clockwise successor server.

        A point exactly at a server position is owned by that server.
        Points past the last server wrap to server 0.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.size and (np.any(pts < 0.0) or np.any(pts >= 1.0)):
            raise ValueError("points must lie in [0, 1)")
        return self._assign_trusted(pts)

    def sample_choice_bins(
        self,
        rng: np.random.Generator,
        m: int,
        d: int,
        *,
        partitioned: bool = False,
    ) -> np.ndarray:
        """Draw ``(m, d)`` candidate bins from uniform ring positions.

        With ``partitioned=True``, choice ``j`` is uniform on
        ``[j/d, (j+1)/d)`` — Vöcking's interval scheme from the paper's
        Section 2 remark.
        """
        u = rng.random((m, d))
        if partitioned:
            u = (u + np.arange(d)) / d
        return self._assign_trusted(u.ravel()).reshape(m, d)

    def region_measures(self) -> np.ndarray:
        """Arc lengths: bin ``j`` owns ``(pos[j-1], pos[j]]`` (wrapping).

        These are exactly the uniform spacings studied by Lemmas 3–6;
        they are non-negative and sum to 1.
        """
        if self.n == 1:
            return np.ones(1)
        lengths = np.empty(self.n)
        lengths[1:] = np.diff(self._pos)
        lengths[0] = 1.0 - self._pos[-1] + self._pos[0]
        return lengths

    # ------------------------------------------------------------------
    # ring-specific queries used by theory validation
    # ------------------------------------------------------------------
    def arcs_at_least(self, c: float) -> int:
        """``N_c``: number of arcs with length at least ``c / n``.

        Matches the quantity bounded by Lemmas 4 and 5.
        """
        if c < 0:
            raise ValueError(f"c must be non-negative, got {c}")
        return int(np.count_nonzero(self.region_measures() >= c / self.n))

    def longest_arcs_total(self, a: int) -> float:
        """Total length of the ``a`` longest arcs (Lemma 6's quantity)."""
        a = check_positive_int(a, "a")
        if a > self.n:
            raise ValueError(f"a={a} exceeds the number of arcs n={self.n}")
        lengths = self.region_measures()
        if a == self.n:
            return float(lengths.sum())
        # partial selection: O(n) instead of a full sort
        top = np.partition(lengths, self.n - a)[self.n - a :]
        return float(top.sum())
