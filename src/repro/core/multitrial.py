"""Trial-fused placement engine: vectorize across trials, not just within.

The paper's tables are defined by many *independent* trials of the same
cell — 1000 trials per ``(n, d)`` at ``n`` up to 2²⁴.  Within a single
trial the batched engine's conflict-free prefix saturates at Θ(√n / d)
balls, so every trial pays thousands of small numpy calls plus a scalar
step at each conflict.  Trials, however, never interact: trial ``k``'s
balls touch only trial ``k``'s bins.  :func:`run_fused` therefore runs
all ``T`` trials of a cell simultaneously against one fused load array:

* trial ``k``'s candidate bins are offset by ``k·n`` so candidate sets
  from different trials are disjoint by construction;
* ball rows are interleaved **round-robin** across trials (ball ``t`` of
  trial ``k`` sits at fused row ``t·T + k``), which preserves each
  trial's internal decision order while spreading same-trial rows as
  far apart as possible.

Rows from different trials cannot collide, so the expected gap between
same-bin rows grows from Θ(√n / d) to Θ(√(T·n) / d) — the birthday
bound now counts collisions inside one trial after only ``1/T`` of the
fused rows.  Instead of hunting conflict-free *prefixes* the fused
engine executes fixed **chunks optimistically**: one sort-free
scatter/gather *stamp* pass over scratch storage interleaved with the
loads finds every row whose candidate bins already occurred earlier in
the chunk (*flagged* rows, a vanishing ``O(chunk · d² / (T·n))``
fraction); all other rows are provably independent of intra-chunk
ordering and are decided in a single ``decide_rows`` call, after which
the flagged rows are repaired scalar-sequentially in row order.  Each
ball is scanned exactly once and the numpy call count per chunk is
constant, which is where the fused throughput comes from.

Why the optimistic chunk is exact (the argument the equivalence suite
checks empirically): an unflagged row's bins occur in no earlier row of
the chunk, so the loads it reads at chunk start equal the loads at its
sequential turn, and no two unflagged rows can share a bin (the later
one would be flagged).  A flagged row repaired in ascending order sees
chunk-start loads plus all unflagged increments — later unflagged rows
never touch its bins, else they would be flagged — plus all
earlier-flagged repairs: exactly the sequential state.  Each trial
draws its randomness from its *own* generator through the same
:func:`~repro.core.engine.choice_blocks` layout the single-trial
engines use, and decisions go through the same tie-break kernels, so
per-trial results are **bit-identical** to
:func:`~repro.core.engine.run_sequential`.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.core.engine import DEFAULT_RNG_BLOCK, choice_blocks
from repro.core.spaces import GeometricSpace
from repro.core.strategies import (
    TieBreak,
    decide_row_scalar,
    decide_rows,
    strategy_needs_measures,
)
from repro.kernels import (
    STRATEGY_CODES,
    KernelBackend,
    resolve_backend,
    resolve_threads,
)
from repro.obs import add_span, counter_add
from repro.obs import enabled as obs_enabled
from repro.obs import trace_span
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["run_fused", "auto_fused_batch_size", "fused_trial_chunk"]

#: Cap on fused candidate elements materialized per trial chunk (index
#: entries); keeps peak temporaries around a hundred MB at paper scale
#: regardless of how many trials a cell requests.
_FUSED_CHUNK_ELEMENTS = 1 << 23

#: Cap on the fused bin-state array length (``T·n``) per trial chunk.
_FUSED_CHUNK_BINS = 1 << 24

#: Interleave tile: balls per transpose tile, sized so a tile of the
#: fused destination stays cache-resident while all trials write into
#: it (the naive full-width transpose touches each destination cache
#: line once per trial).
_INTERLEAVE_TILE_BYTES = 1 << 20


def auto_fused_batch_size(n: int, d: int, n_trials: int) -> int:
    """Optimistic-chunk size tuned to the fused collision rate.

    A chunk of ``C`` fused rows flags ``≈ C²d²/(2nT)`` rows for scalar
    repair, while per-chunk numpy dispatch overhead is constant — the
    balance point grows like ``√(nT)/d``.  Oversizing trades python
    overhead for repair work and vice versa; results never change.
    """
    est = int(2.0 * math.sqrt(max(n, 1) * max(n_trials, 1)) / max(d, 1))
    return max(256, min(est, 1 << 14))


def fused_trial_chunk(n: int, m: int, d: int) -> int:
    """How many trials to fuse at once without blowing up memory.

    The fused engine materializes ``(rng_block · T, d)`` candidate
    arrays plus ``(T·n, 2)`` load/stamp state; this caps ``T`` so one
    chunk stays cache/RAM friendly.  Chunking trials never changes
    results — trials are independent.
    """
    rows = min(max(m, 1), DEFAULT_RNG_BLOCK)
    by_candidates = _FUSED_CHUNK_ELEMENTS // (rows * max(d, 1))
    by_bins = _FUSED_CHUNK_BINS // max(n, 1)
    return max(1, min(by_candidates, by_bins))


def _block_sizes(m: int, rng_block: int) -> list[int]:
    """The deterministic RNG-block row counts :func:`choice_blocks` yields."""
    sizes = []
    remaining = m
    while remaining > 0:
        b = min(rng_block, remaining)
        sizes.append(b)
        remaining -= b
    return sizes


class _BlockProducer:
    """Double-buffered producer of per-trial RNG candidate blocks.

    The serial engines interleave candidate generation (numpy RNG +
    ring lookups, partially GIL-bound) with placement, so the two costs
    *add*.  This producer overlaps them: while the consumer places RNG
    block ``s``, block ``s + 1`` is already being generated — the
    per-trial fills run on a small thread pool (``threads`` workers;
    distinct trials own distinct generators, so numpy's per-generator
    locks never contend), driven one step ahead by a dedicated pipeline
    thread.

    Bit-identity: trial ``k``'s iterator is consumed *only* by its
    ``fill(k)`` task, and steps are strictly serialized by the one-slot
    pipeline, so every generator sees exactly the serial consumption
    order — pipelining moves **when** a block is generated, never its
    contents.  ``stacked=True`` additionally interleaves the per-trial
    rows into contiguous ``(T, b, d)`` / ``(T, b)`` arrays for the
    ``place_block_multi`` kernels.

    When observability is on, per-worker-thread generation seconds are
    accumulated (each entry only ever written by its own thread) and
    emitted by :meth:`emit_spans` as one ``run_fused.rng`` span per
    producer thread.
    """

    def __init__(self, iters, sizes, t, d, *, stacked, obs):
        self._iters = iters
        self._sizes = sizes
        self._t = t
        self._d = d
        self._stacked = stacked
        self._obs = obs
        self.thread_seconds: dict[int, float] = {}
        self._gen = ThreadPoolExecutor(
            max_workers=max(2, min(t, 32)), thread_name_prefix="repro-rng"
        )
        self._pipe = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-rng-pipe"
        )
        self._step = 0
        self._future = (
            self._pipe.submit(self._generate, sizes[0]) if sizes else None
        )

    def _fill_stacked(self, k, bins3, us2):
        t0 = time.perf_counter() if self._obs else 0.0
        bins_k, us_k = next(self._iters[k])
        bins3[k] = bins_k
        us2[k] = us_k
        if self._obs:
            tid = threading.get_ident()
            self.thread_seconds[tid] = self.thread_seconds.get(tid, 0.0) + (
                time.perf_counter() - t0
            )

    def _fill(self, k, out):
        t0 = time.perf_counter() if self._obs else 0.0
        out[k] = next(self._iters[k])
        if self._obs:
            tid = threading.get_ident()
            self.thread_seconds[tid] = self.thread_seconds.get(tid, 0.0) + (
                time.perf_counter() - t0
            )

    def _generate(self, bsize):
        if self._stacked:
            bins3 = np.empty((self._t, bsize, self._d), dtype=np.int64)
            us2 = np.empty((self._t, bsize), dtype=np.float64)
            list(
                self._gen.map(
                    lambda k: self._fill_stacked(k, bins3, us2), range(self._t)
                )
            )
            return bins3, us2
        out = [None] * self._t
        list(self._gen.map(lambda k: self._fill(k, out), range(self._t)))
        return out

    def next_block(self):
        """Block ``s`` (stalling if still generating); schedules ``s+1``."""
        result = self._future.result()
        self._step += 1
        if self._step < len(self._sizes):
            self._future = self._pipe.submit(
                self._generate, self._sizes[self._step]
            )
        return result

    def emit_spans(self, threads: int) -> None:
        """Emit one ``run_fused.rng`` span per producer thread (obs on)."""
        for i, (tid, secs) in enumerate(sorted(self.thread_seconds.items())):
            add_span("run_fused.rng", secs, thread=i, threads=threads)

    def close(self) -> None:
        """Shut down both pools (idempotent)."""
        self._pipe.shutdown(wait=False, cancel_futures=True)
        self._gen.shutdown(wait=False, cancel_futures=True)


def _run_fused_kernel_threaded(
    spaces: Sequence[GeometricSpace],
    m: int,
    d: int,
    strategy: TieBreak,
    rngs: Sequence[np.random.Generator],
    backend: KernelBackend,
    threads: int,
    *,
    partitioned: bool,
    rng_block: int,
    record_heights: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Multicore twin of :func:`_run_fused_kernel`.

    Two axes of parallelism, both result-preserving:

    * the ``place_block_multi`` kernel partitions the fused trials into
      static contiguous row groups placed on ``threads`` OS threads
      with the GIL released (any static partition is bit-identical —
      trial ``k`` touches only load row ``k``);
    * a :class:`_BlockProducer` generates RNG block ``s + 1`` while the
      kernel places block ``s``, so candidate-stream cost overlaps
      kernel cost instead of serializing with it (the Amdahl term the
      single-core path pays in full).
    """
    t = len(spaces)
    n = spaces[0].n
    code = STRATEGY_CODES[strategy.value]
    needs_measures = strategy_needs_measures(strategy)
    loads = np.zeros((t, n), dtype=np.int64)
    heights = np.zeros((t, m), dtype=np.int64) if record_heights else None
    measures2 = (
        np.ascontiguousarray(np.stack([s.region_measures() for s in spaces]))
        if needs_measures
        else None
    )
    sizes = _block_sizes(m, rng_block)
    iters = [
        choice_blocks(s, rng, m, d, partitioned=partitioned, rng_block=rng_block)
        for s, rng in zip(spaces, rngs)
    ]
    _obs = obs_enabled()
    kernel_s = stall_s = 0.0
    producer = _BlockProducer(iters, sizes, t, d, stacked=True, obs=_obs)
    try:
        pos = 0
        for bsize in sizes:
            if _obs:
                t0 = time.perf_counter()
            bins3, us2 = producer.next_block()
            if _obs:
                t1 = time.perf_counter()
                stall_s += t1 - t0
            backend.place_block_multi(
                bins3, us2, loads, measures2, code, heights, pos, threads
            )
            if _obs:
                kernel_s += time.perf_counter() - t1
            pos += bsize
    finally:
        producer.close()
    if _obs:
        producer.emit_spans(threads)
        add_span("run_fused.kernel", kernel_s, threads=threads)
        add_span("run_fused.rng_stall", stall_s, threads=threads)
    return loads, heights


def _run_fused_kernel(
    spaces: Sequence[GeometricSpace],
    m: int,
    d: int,
    strategy: TieBreak,
    rngs: Sequence[np.random.Generator],
    backend: KernelBackend,
    *,
    partitioned: bool,
    rng_block: int,
    record_heights: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Kernel-backend twin of :func:`run_fused`'s numpy path.

    A compiled scalar loop has no numpy dispatch overhead to amortize,
    so the optimistic-chunk machinery is unnecessary: each trial's RNG
    blocks are fed straight through the backend's ``place_block``
    kernel, which *is* the sequential reference semantics — trial
    ``k`` consumes ``rngs[k]`` through the same
    :func:`~repro.core.engine.choice_blocks` layout and decides every
    ball with the same tie-break arithmetic, so results stay
    bit-identical to :func:`~repro.core.engine.run_sequential` (the
    parity suite checks this per backend).
    """
    t = len(spaces)
    n = spaces[0].n
    code = STRATEGY_CODES[strategy.value]
    needs_measures = strategy_needs_measures(strategy)
    loads = np.zeros((t, n), dtype=np.int64)
    heights = np.zeros((t, m), dtype=np.int64) if record_heights else None
    _obs = obs_enabled()
    rng_s = kernel_s = 0.0
    for k, (space, rng) in enumerate(zip(spaces, rngs)):
        measures = space.region_measures() if needs_measures else None
        pos = 0
        blocks = choice_blocks(
            space, rng, m, d, partitioned=partitioned, rng_block=rng_block
        )
        while True:
            if _obs:
                t0 = time.perf_counter()
            try:
                bins, us = next(blocks)
            except StopIteration:
                break
            if _obs:
                t1 = time.perf_counter()
                rng_s += t1 - t0
            b = bins.shape[0]
            backend.place_block(
                bins,
                us,
                loads[k],
                measures,
                code,
                heights[k, pos : pos + b] if heights is not None else None,
            )
            if _obs:
                kernel_s += time.perf_counter() - t1
            pos += b
    if _obs:
        add_span("run_fused.rng", rng_s)
        add_span("run_fused.kernel", kernel_s)
    return loads, heights


def run_fused(
    spaces: Sequence[GeometricSpace],
    m: int,
    d: int,
    strategy: TieBreak,
    rngs: Sequence[np.random.Generator],
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    batch_size: int | None = None,
    record_heights: bool = False,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Place ``m`` balls in each of ``len(spaces)`` fused trials.

    Parameters
    ----------
    spaces:
        One space per trial, all with the same bin count ``n`` (each
        trial typically re-draws the server placement).
    rngs:
        One generator per trial.  Trial ``k`` consumes ``rngs[k]``
        exactly as :func:`~repro.core.engine.run_sequential` would, so
        fused trial ``k`` is bit-identical to a sequential run with the
        same space and generator state.
    batch_size:
        Rows per optimistic chunk of the fused stream; ``None`` tunes
        it via :func:`auto_fused_batch_size`.  Affects speed only,
        never results (ignored by accelerated kernel backends, which
        need no chunking).
    backend:
        Kernel backend selection, resolved by
        :func:`repro.kernels.resolve_backend` (env var →  this kwarg →
        auto-detect).  ``"numpy"`` keeps the vectorized
        optimistic-chunk path below; an accelerated backend runs the
        compiled scalar loop instead.  Results are identical either
        way.
    threads:
        Worker-thread count, resolved by
        :func:`repro.kernels.resolve_threads` (``REPRO_NUM_THREADS`` →
        this kwarg → physical cores).  With an accelerated backend,
        ``threads > 1`` partitions the fused trials across GIL-released
        kernel threads and pipelines RNG candidate generation one block
        ahead; on the numpy path it enables the RNG pipeline alone.
        Results are bit-identical for every thread count (enforced by
        ``tests/kernels/test_threads_parity.py``).

    Returns
    -------
    ``(loads, heights)`` where ``loads`` has shape ``(T, n)`` (one load
    vector per trial) and ``heights`` has shape ``(T, m)`` when
    ``record_heights`` else ``None``.
    """
    t = len(spaces)
    if t == 0:
        raise ValueError("run_fused needs at least one trial space")
    if len(rngs) != t:
        raise ValueError(f"got {t} spaces but {len(rngs)} generators")
    n = spaces[0].n
    for k, s in enumerate(spaces):
        if s.n != n:
            raise ValueError(
                f"all trial spaces must share a bin count: spaces[0].n={n}, "
                f"spaces[{k}].n={s.n}"
            )
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    strategy = TieBreak.coerce(strategy)
    backend_obj = resolve_backend(backend)
    eff_threads = resolve_threads(threads)
    with trace_span(
        "run_fused",
        n=n,
        d=d,
        trials=t,
        m=m,
        backend=backend_obj.name,
        strategy=strategy.value,
        threads=eff_threads,
    ):
        counter_add("placement.balls", t * m)
        counter_add("placement.trials", t)
        if backend_obj.place_block is not None:
            if (
                eff_threads > 1
                and backend_obj.place_block_multi is not None
                and m > 0
            ):
                return _run_fused_kernel_threaded(
                    spaces,
                    m,
                    d,
                    strategy,
                    rngs,
                    backend_obj,
                    eff_threads,
                    partitioned=partitioned,
                    rng_block=rng_block,
                    record_heights=record_heights,
                )
            return _run_fused_kernel(
                spaces,
                m,
                d,
                strategy,
                rngs,
                backend_obj,
                partitioned=partitioned,
                rng_block=rng_block,
                record_heights=record_heights,
            )
        return _run_fused_numpy(
            spaces,
            m,
            d,
            strategy,
            rngs,
            partitioned=partitioned,
            rng_block=rng_block,
            batch_size=batch_size,
            record_heights=record_heights,
            threads=eff_threads,
        )


def _run_fused_numpy(
    spaces: Sequence[GeometricSpace],
    m: int,
    d: int,
    strategy: TieBreak,
    rngs: Sequence[np.random.Generator],
    *,
    partitioned: bool,
    rng_block: int,
    batch_size: int | None,
    record_heights: bool,
    threads: int = 1,
) -> tuple[np.ndarray, np.ndarray | None]:
    """The vectorized optimistic-chunk reference path of :func:`run_fused`.

    Arguments are pre-validated by the facade.  When observability is
    on, the three hot phases are timed into ``run_fused.rng``
    (candidate-block generation), ``run_fused.interleave`` and
    ``run_fused.decide`` spans, scalar conflict repair into
    ``run_fused.repair``, and every flagged row bumps the
    ``placement.conflict_rows`` counter — the data behind the
    optimistic-chunk tuning story.  Disabled, the only extra work per
    chunk is a handful of bool checks.

    ``threads >= 2`` runs RNG candidate generation one block ahead on a
    :class:`_BlockProducer` (the decide/interleave machinery itself
    stays single-threaded — it is numpy-vectorized and largely
    GIL-bound); the producer preserves each generator's consumption
    order, so results never change.
    """
    t = len(spaces)
    n = spaces[0].n
    if batch_size is None:
        batch_size = auto_fused_batch_size(n, d, t)
    batch_size = check_positive_int(batch_size, "batch_size")

    # Fused per-bin state: column 0 holds the load, column 1 the scan
    # stamp.  Keeping them adjacent lets ONE random-access gather per
    # chunk fetch both the conflict information and the decision loads
    # (the 8-byte pair shares a cache line).  int32 state halves memory
    # traffic and holds up to T·n = 2³¹ bins, far beyond the chunk
    # caps.  Loads bound ≤ m, stamps bound ≤ chunk·d: both fit easily.
    idx_dtype = np.int32 if t * n <= np.iinfo(np.int32).max else np.int64
    state = np.zeros((t * n, 2), dtype=np.int32)
    needs_measures = strategy_needs_measures(strategy)
    measures = (
        np.concatenate([s.region_measures() for s in spaces])
        if needs_measures
        else None
    )
    heights = np.zeros((t, m), dtype=np.int64) if record_heights else None

    max_wd = batch_size * d
    # Within a chunk we scatter ascending stamps over the *reversed*
    # candidate stream (last write wins ⇒ each bin's stamp records its
    # FIRST chunk occurrence, as a reverse offset).  Every gathered
    # entry was written by the current chunk — bins are only read back
    # at positions where they occur — so stale stamps are never
    # observed and no re-initialization or epoch bookkeeping is needed.
    asc = np.arange(max_wd, dtype=np.int32)
    row_start = (asc // d) * d  # first flat offset of each element's row
    row_of = np.arange(batch_size, dtype=np.int64) * d

    tile = max(1, _INTERLEAVE_TILE_BYTES // (t * (d * 4 + 8)))
    iters = [
        choice_blocks(s, rng, m, d, partitioned=partitioned, rng_block=rng_block)
        for s, rng in zip(spaces, rngs)
    ]

    _obs = obs_enabled()
    rng_s = interleave_s = decide_s = repair_s = 0.0
    chunks = conflict_rows = 0

    sizes = _block_sizes(m, rng_block)
    producer = (
        _BlockProducer(iters, sizes, t, d, stacked=False, obs=_obs)
        if threads >= 2 and len(sizes) > 1
        else None
    )
    try:
        ball_base = 0
        while ball_base < m:
            if _obs:
                t0 = time.perf_counter()
            if producer is not None:
                blocks = producer.next_block()
            else:
                blocks = [next(it) for it in iters]
            if _obs:
                t1 = time.perf_counter()
                rng_s += t1 - t0
            b = blocks[0][0].shape[0]
            # round-robin interleave: fused row t·T + k is ball t of
            # trial k.  Done in ball tiles so the strided destination
            # stays cache-resident across the per-trial passes.
            bins3 = np.empty((b, t, d), dtype=idx_dtype)
            u2 = np.empty((b, t), dtype=np.float64)
            for s0 in range(0, b, tile):
                s1 = min(s0 + tile, b)
                dst_b = bins3[s0:s1]
                dst_u = u2[s0:s1]
                for k, (bins_k, u_k) in enumerate(blocks):
                    np.add(
                        bins_k[s0:s1], k * n, out=dst_b[:, k, :], casting="unsafe"
                    )
                    dst_u[:, k] = u_k[s0:s1]
            fused_bins = bins3.reshape(b * t * d)
            fused_u = u2.reshape(b * t)
            if _obs:
                interleave_s += time.perf_counter() - t1

            block_len = b * t
            pos = 0
            while pos < block_len:
                if _obs:
                    t2 = time.perf_counter()
                    chunks += 1
                end = min(pos + batch_size, block_len)
                w = end - pos
                wd = w * d
                flat = fused_bins[pos * d : end * d]
                # one reverse-scatter + one pair-gather per chunk
                state[flat[::-1], 1] = asc[:wd]
                pair = state[flat]
                # element i is flagged iff its bin first occurred in an
                # earlier row: first_elem < row_start[i], i.e.
                # (wd-1 - stamp) < row_start  ⇔  stamp + row_start > wd-1
                hits = np.flatnonzero((pair[:, 1] + row_start[:wd]) > (wd - 1))
                # optimistic mega-decision on chunk-start loads
                cand_loads = pair[:, 0].reshape(w, d)
                cand_measures = (
                    measures[flat].reshape(w, d) if needs_measures else None
                )
                u_win = fused_u[pos:end]
                j = decide_rows(cand_loads, cand_measures, u_win, strategy)
                chosen = flat[row_of[:w] + j]
                if heights is not None:
                    f = np.arange(pos, end)
                    heights[f % t, ball_base + f // t] = (
                        cand_loads.min(axis=1) + 1
                    )
                if hits.size == 0:
                    state[chosen, 0] += 1
                    if _obs:
                        decide_s += time.perf_counter() - t2
                else:
                    flagged = np.unique(hits // d)
                    keep = np.ones(w, dtype=bool)
                    keep[flagged] = False
                    state[chosen[keep], 0] += 1
                    if _obs:
                        conflict_rows += int(flagged.size)
                        t3 = time.perf_counter()
                        decide_s += t3 - t2
                    # Scalar repair, in row order.  The pure-python
                    # kernel is deliberate: per single row it measures
                    # ~9x faster than the numpy decide_row (no ufunc
                    # dispatch), and repairs are python-scalar work
                    # anyway; bit-identity of the two kernels is
                    # enforced by the strategy tests.
                    for r in flagged.tolist():
                        cand = flat[r * d : (r + 1) * d]
                        jr = decide_row_scalar(
                            state[cand, 0].tolist(),
                            measures[cand].tolist() if needs_measures else None,
                            float(u_win[r]),
                            strategy,
                        )
                        chosen_r = int(cand[jr])
                        if heights is not None:
                            fr = pos + r
                            heights[fr % t, ball_base + fr // t] = (
                                int(state[chosen_r, 0]) + 1
                            )
                        state[chosen_r, 0] += 1
                    if _obs:
                        repair_s += time.perf_counter() - t3
                pos = end
            ball_base += b
    finally:
        if producer is not None:
            producer.close()

    if _obs:
        if producer is not None:
            producer.emit_spans(threads)
            add_span("run_fused.rng_stall", rng_s, threads=threads)
        add_span("run_fused.rng", rng_s)
        add_span("run_fused.interleave", interleave_s)
        add_span("run_fused.decide", decide_s, chunks=chunks)
        add_span("run_fused.repair", repair_s, conflict_rows=conflict_rows)
        counter_add("placement.chunks", chunks)
        counter_add("placement.conflict_rows", conflict_rows)
    loads = state[:, 0].astype(np.int64).reshape(t, n)
    return loads, heights
