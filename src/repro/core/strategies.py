"""Tie-breaking strategies for the greedy d-choice process.

A ball probes ``d`` candidate bins and joins one of least load; when
several candidates are tied at the minimum the *strategy* decides.  The
paper's Table 3 compares four strategies on the ring at ``d = 2``:

* ``arc-random`` — uniform among tied candidates (the Theorem 1 model:
  "ties broken arbitrarily"),
* ``arc-larger`` — tie to the candidate whose arc is longest,
* ``arc-smaller`` — tie to the candidate whose arc is shortest (the
  paper's own heuristic, empirically best),
* ``arc-left`` — Vöcking's Always-Go-Left: choices are drawn from ``d``
  partitioned intervals and ties go to the lowest interval index
  (here: the lowest choice index, combined with ``partitioned=True``
  sampling).

All engines resolve ties through the *same* kernels below (a scalar
variant, a numpy single-row variant and a vectorized batch variant
with identical arithmetic), so their outputs agree bit-for-bit.
"""

from __future__ import annotations

import enum
import math

import numpy as np

__all__ = [
    "TieBreak",
    "decide_rows",
    "decide_row",
    "decide_row_scalar",
    "strategy_needs_measures",
]


class TieBreak(str, enum.Enum):
    """How to resolve ties among least-loaded candidates."""

    RANDOM = "random"
    FIRST = "first"
    SMALLER = "smaller"
    LARGER = "larger"

    @classmethod
    def coerce(cls, value: "TieBreak | str") -> "TieBreak":
        """Accept enum members or their string values (case-insensitive)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        valid = ", ".join(m.value for m in cls)
        raise ValueError(f"unknown tie-break strategy {value!r}; expected one of {valid}")


def strategy_needs_measures(strategy: TieBreak) -> bool:
    """Whether the strategy consults region measures (arc/area sizes)."""
    return strategy in (TieBreak.SMALLER, TieBreak.LARGER)


# ----------------------------------------------------------------------
# vectorized kernel: decide a batch of conflict-free rows at once
# ----------------------------------------------------------------------
def decide_rows(
    cand_loads: np.ndarray,
    cand_measures: np.ndarray | None,
    tiebreak_uniforms: np.ndarray,
    strategy: TieBreak,
) -> np.ndarray:
    """Choose one candidate column per row.

    Parameters
    ----------
    cand_loads:
        ``(B, d)`` loads of each row's candidates *at decision time*.
    cand_measures:
        ``(B, d)`` region measures of the candidates, or ``None`` when
        the strategy does not need them.
    tiebreak_uniforms:
        ``(B,)`` uniforms in ``[0, 1)``, one per row (consumed only by
        ``RANDOM`` but always supplied so RNG usage is
        strategy-independent).
    strategy:
        The tie-breaking rule.

    Returns
    -------
    ``(B,)`` int64 array of chosen column indices in ``[0, d)``.
    """
    loads = np.asarray(cand_loads)
    if loads.ndim != 2:
        raise ValueError(f"cand_loads must be 2-D, got shape {loads.shape}")
    b, d = loads.shape
    # Work column-by-column: d is tiny (1-4) while b is the batch, so
    # length-b contiguous kernels beat numpy's axis-1 reductions, whose
    # per-row dispatch dominates on (b, small) arrays.  The arithmetic
    # (min/tie mask, floor(u·k) rule, first-index preference) is
    # unchanged from the definitional row-wise form that decide_row /
    # decide_row_scalar implement.
    cols = [loads[:, j] for j in range(d)]
    min_load = cols[0].copy()
    for c in cols[1:]:
        np.minimum(min_load, c, out=min_load)
    tied = [c == min_load for c in cols]
    out = np.zeros(b, dtype=np.int64)

    if strategy is TieBreak.FIRST:
        # lowest tied index: assign high columns first, let low overwrite
        for j in range(d - 1, -1, -1):
            out[tied[j]] = j
        return out

    if strategy is TieBreak.RANDOM:
        k = tied[0].astype(np.int64)
        for t in tied[1:]:
            k += t
        # floor(u * k) is in [0, k-1] because u < 1
        target = (np.asarray(tiebreak_uniforms) * k).astype(np.int64) + 1
        run = np.zeros(b, dtype=np.int64)
        for j in range(d):
            run += tied[j]
            out[tied[j] & (run == target)] = j
        return out

    if cand_measures is None:
        raise ValueError(f"strategy {strategy.value!r} requires candidate measures")
    key = np.asarray(cand_measures, dtype=np.float64)
    if key.shape != loads.shape:
        raise ValueError(
            f"cand_measures shape {key.shape} != cand_loads shape {loads.shape}"
        )
    if strategy in (TieBreak.SMALLER, TieBreak.LARGER):
        sentinel = np.inf if strategy is TieBreak.SMALLER else -np.inf
        best = np.where(tied[0], key[:, 0], sentinel)
        for j in range(1, d):
            cand = np.where(tied[j], key[:, j], sentinel)
            # strict comparison keeps the lowest index on measure ties
            upd = cand < best if strategy is TieBreak.SMALLER else cand > best
            out[upd] = j
            if strategy is TieBreak.SMALLER:
                np.minimum(best, cand, out=best)
            else:
                np.maximum(best, cand, out=best)
        return out
    raise AssertionError(f"unhandled strategy {strategy!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# single-row kernel: one ball, numpy in / numpy out (conflict step of the
# batched and fused engines — no Python-list round trip)
# ----------------------------------------------------------------------
def decide_row(
    cand_loads: np.ndarray,
    cand_measures: np.ndarray | None,
    tiebreak_u: float,
    strategy: TieBreak,
) -> int:
    """Single-row twin of :func:`decide_rows`.

    Takes the length-``d`` load (and measure) rows as numpy arrays and
    performs the row-wise arithmetic of :func:`decide_rows` directly —
    same min/tie mask, same ``floor(u * k)`` rule, same first-index
    preference — so engines may mix batch and single-ball decisions
    freely without breaking bit-identity.
    """
    min_load = cand_loads.min()
    tied = cand_loads == min_load
    if strategy is TieBreak.FIRST:
        return int(np.argmax(tied))
    if strategy is TieBreak.RANDOM:
        k = int(tied.sum())
        # truncation == floor: u * k is non-negative
        target = int(tiebreak_u * k) + 1
        return int(np.argmax(np.cumsum(tied) == target))
    if cand_measures is None:
        raise ValueError(f"strategy {strategy.value!r} requires candidate measures")
    if strategy is TieBreak.SMALLER:
        return int(np.argmin(np.where(tied, cand_measures, np.inf)))
    if strategy is TieBreak.LARGER:
        return int(np.argmax(np.where(tied, cand_measures, -np.inf)))
    raise AssertionError(f"unhandled strategy {strategy!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# scalar kernel: one row, plain Python (fast path of the sequential engine)
# ----------------------------------------------------------------------
def decide_row_scalar(
    loads_row,
    measures_row,
    u: float,
    strategy: TieBreak,
) -> int:
    """Scalar twin of :func:`decide_rows` for a single ball.

    ``loads_row``/``measures_row`` are length-``d`` sequences.  The
    arithmetic mirrors the vectorized kernel exactly (same floor rule,
    same first-index preference), which is what makes the two engines
    bit-identical.
    """
    d = len(loads_row)
    min_load = min(loads_row)
    if strategy is TieBreak.FIRST:
        for j in range(d):
            if loads_row[j] == min_load:
                return j
    elif strategy is TieBreak.RANDOM:
        k = 0
        for j in range(d):
            if loads_row[j] == min_load:
                k += 1
        target = math.floor(u * k) + 1
        seen = 0
        for j in range(d):
            if loads_row[j] == min_load:
                seen += 1
                if seen == target:
                    return j
    elif strategy is TieBreak.SMALLER:
        best_j, best_key = -1, math.inf
        for j in range(d):
            if loads_row[j] == min_load and measures_row[j] < best_key:
                best_j, best_key = j, measures_row[j]
        return best_j
    elif strategy is TieBreak.LARGER:
        best_j, best_key = -1, -math.inf
        for j in range(d):
            if loads_row[j] == min_load and measures_row[j] > best_key:
                best_j, best_key = j, measures_row[j]
        return best_j
    else:  # pragma: no cover
        raise AssertionError(f"unhandled strategy {strategy!r}")
    raise AssertionError("tie-break fell through")  # pragma: no cover
