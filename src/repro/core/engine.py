"""Placement engines: exact sequential reference and vectorized batched.

The greedy process of Theorem 1 is inherently sequential — ball ``t``'s
decision depends on the loads left by ball ``t-1`` — which defeats naive
numpy vectorization.  Following the HPC guide's doctrine (vectorize the
hot loop, *verify against the straightforward implementation*), this
module provides:

``sequential``
    A plain Python loop over balls.  Trivially correct; the reference.

``batched``
    Balls are processed in batches.  All candidate bins and tie-break
    uniforms are pre-drawn in fixed-size RNG blocks (so both engines
    consume the generator identically).  Within a batch, the engine
    finds the longest *conflict-free prefix*: the maximal run of balls
    whose candidate-bin sets are pairwise disjoint.  Those balls'
    decisions depend only on the batch-start load vector, so they are
    decided in one vectorized shot; the first conflicting ball is then
    stepped scalar, and the procedure repeats on the remainder.  With
    random candidates the expected prefix length is Θ(√n / d), giving
    large speedups at the table sizes the paper uses (n up to 2²⁴).

``fused`` (:mod:`repro.core.multitrial`)
    The table workloads run many *independent trials* of the same cell,
    and within one trial the conflict-free prefix saturates at
    Θ(√n / d) — the per-call numpy overhead is paid every few hundred
    balls no matter how large ``n`` grows.  The fused engine runs all
    ``T`` trials against a single ``(T·n,)`` load array, offsetting
    trial ``k``'s bins by ``k·n`` and interleaving ball rows
    round-robin across trials.  Rows from different trials can never
    conflict, so the expected prefix grows to Θ(T·√n / d) and one
    ``np.unique`` + one ``decide_rows`` call amortize over hundreds of
    balls.  Each trial's RNG stream, decision order and tie-break
    arithmetic are untouched, so per-trial results stay bit-identical
    to ``sequential``.

Engine-selection model (what ``auto`` means at each layer):

* :func:`repro.core.placement.place_balls` — single run: ``sequential``
  below ``_BATCHED_MIN_BINS`` bins (prefixes too short to amortize),
  ``batched`` above.
* :func:`repro.stats.trials.run_cell` — many runs
  (``auto_cell_engine``): a process pool when ``n_jobs != 1`` (each
  worker then applies the single-run rule), ``fused`` for any serial
  cell with at least two trials (cross-trial amortization wins from
  tiny ``n`` upward), the single-run rule otherwise.

All engines produce **bit-identical** load vectors for the same seed;
the test suite enforces this property across spaces, strategies and
shapes — the vectorized engines may reorganize arithmetic, never
change results.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.spaces import GeometricSpace
from repro.core.strategies import (
    TieBreak,
    decide_row,
    decide_rows,
    strategy_needs_measures,
)
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = [
    "run_sequential",
    "run_batched",
    "conflict_free_prefix",
    "choice_blocks",
    "DEFAULT_RNG_BLOCK",
    "auto_engine",
    "auto_batch_size",
]

#: Number of balls whose randomness is pre-drawn per RNG block.  Fixed
#: (not tunable per-engine) so that engine choice never changes the
#: stream of random numbers consumed.
DEFAULT_RNG_BLOCK = 1 << 16

#: Below this bin count the batched engine's conflict-free prefixes are
#: too short to amortize the vectorization overhead.
_BATCHED_MIN_BINS = 2048


def auto_engine(n: int) -> str:
    """Pick the engine expected to be faster for ``n`` bins."""
    return "batched" if n >= _BATCHED_MIN_BINS else "sequential"


def auto_batch_size(n: int, d: int) -> int:
    """Batch size tuned to the expected conflict-free prefix length.

    Birthday heuristics give an expected prefix of about ``sqrt(2 n) / d``
    rows; we aim a small multiple above it so one ``np.unique`` usually
    covers one prefix, clipped to keep per-batch temporaries cache-sized.
    """
    est = int(3.0 * math.sqrt(max(n, 1)) / max(d, 1))
    return max(32, min(est, 8192))


def choice_blocks(
    space: GeometricSpace,
    rng: np.random.Generator,
    m: int,
    d: int,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(candidate_bins, tiebreak_uniforms)`` blocks for m balls.

    Blocks have at most ``rng_block`` rows.  The draw order inside a
    block is fixed (candidates first, then tie-break uniforms), making
    RNG consumption a pure function of ``(m, d, partitioned, rng_block)``
    — independent of which engine consumes the blocks.
    """
    check_positive_int(rng_block, "rng_block")
    remaining = m
    while remaining > 0:
        b = min(rng_block, remaining)
        bins = space.sample_choice_bins(rng, b, d, partitioned=partitioned)
        tiebreaks = rng.random(b)
        yield bins, tiebreaks
        remaining -= b


def conflict_free_prefix(candidates: np.ndarray) -> int:
    """Longest prefix of rows with pairwise-disjoint candidate sets.

    A row may repeat a bin *within itself* (a ball can draw the same bin
    twice); a conflict only occurs when a bin first seen in an earlier
    row reappears.  Always returns at least 1 for non-empty input (the
    first row cannot conflict with anything).
    """
    if candidates.ndim != 2:
        raise ValueError(f"candidates must be 2-D, got shape {candidates.shape}")
    b, d = candidates.shape
    if b == 0:
        return 0
    flat = candidates.ravel()
    _, first_flat, inverse = np.unique(flat, return_index=True, return_inverse=True)
    first_row = first_flat[inverse] // d
    own_row = np.repeat(np.arange(b, dtype=np.int64), d)
    conflicts = first_row < own_row
    if not conflicts.any():
        return b
    return int(own_row[conflicts].min())


def _step_scalar(
    loads: np.ndarray,
    cand: np.ndarray,
    measures: np.ndarray | None,
    u: float,
    strategy: TieBreak,
    heights: list | None,
) -> None:
    """Place a single ball (shared by all engines at conflict points)."""
    j = decide_row(
        loads[cand],
        measures[cand] if measures is not None else None,
        u,
        strategy,
    )
    chosen = int(cand[j])
    if heights is not None:
        heights.append(int(loads[chosen]) + 1)
    loads[chosen] += 1


def run_sequential(
    space: GeometricSpace,
    m: int,
    d: int,
    strategy: TieBreak,
    rng: np.random.Generator,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    record_heights: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Reference engine: place ``m`` balls one at a time.

    Returns ``(loads, heights)`` where ``heights`` is an ``(m,)`` array
    of ball heights (position in the stack, 1-based) when
    ``record_heights`` else ``None``.
    """
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    loads = np.zeros(space.n, dtype=np.int64)
    measures = space.region_measures() if strategy_needs_measures(strategy) else None
    heights: list | None = [] if record_heights else None
    for bins, tiebreaks in choice_blocks(
        space, rng, m, d, partitioned=partitioned, rng_block=rng_block
    ):
        for t in range(bins.shape[0]):
            _step_scalar(loads, bins[t], measures, tiebreaks[t], strategy, heights)
    heights_arr = np.asarray(heights, dtype=np.int64) if record_heights else None
    return loads, heights_arr


def run_batched(
    space: GeometricSpace,
    m: int,
    d: int,
    strategy: TieBreak,
    rng: np.random.Generator,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    batch_size: int | None = None,
    record_heights: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Vectorized engine: conflict-free-prefix batching.

    Bit-identical to :func:`run_sequential` (enforced by tests): the
    randomness layout is shared via :func:`choice_blocks`, decisions go
    through the same tie-break arithmetic, and only balls provably
    independent of intra-batch ordering are decided together.
    """
    m = check_non_negative_int(m, "m")
    d = check_positive_int(d, "d")
    if batch_size is None:
        batch_size = auto_batch_size(space.n, d)
    batch_size = check_positive_int(batch_size, "batch_size")
    loads = np.zeros(space.n, dtype=np.int64)
    measures = space.region_measures() if strategy_needs_measures(strategy) else None
    heights: list | None = [] if record_heights else None
    rows = np.arange(batch_size, dtype=np.int64)

    for bins, tiebreaks in choice_blocks(
        space, rng, m, d, partitioned=partitioned, rng_block=rng_block
    ):
        block_len = bins.shape[0]
        pos = 0
        while pos < block_len:
            end = min(pos + batch_size, block_len)
            cand = bins[pos:end]
            prefix = conflict_free_prefix(cand)
            if prefix > 0:
                sub = cand[:prefix]
                cand_loads = loads[sub]
                cand_measures = measures[sub] if measures is not None else None
                j = decide_rows(
                    cand_loads, cand_measures, tiebreaks[pos : pos + prefix], strategy
                )
                chosen = sub[rows[:prefix], j]
                if heights is not None:
                    heights.extend((loads[chosen] + 1).tolist())
                # prefix rows are pairwise disjoint: no duplicate indices
                loads[chosen] += 1
            had_conflict = prefix < (end - pos)
            pos += prefix
            if had_conflict:
                # the row at `pos` shares a bin with the prefix it was
                # batched with: its decision needs the updated loads, so
                # step it scalar before re-batching the remainder
                _step_scalar(
                    loads, bins[pos], measures, tiebreaks[pos], strategy, heights
                )
                pos += 1
    heights_arr = np.asarray(heights, dtype=np.int64) if record_heights else None
    return loads, heights_arr
