"""The k-D unit torus with Euclidean Voronoi ownership (paper, Section 3).

Servers are points in ``[0, 1)^k`` with wraparound along every axis; a
uniform point of the torus belongs to the server minimizing toroidal
Euclidean distance, i.e. bins are the cells of a periodic Voronoi
diagram.  The paper analyzes ``k = 2`` and remarks the argument extends
to any constant dimension; we support ``1 <= k <= 8``.

Implementation notes
--------------------
Nearest-neighbor assignment uses :class:`scipy.spatial.cKDTree` with
``boxsize=1.0``, which implements exact periodic metrics — the whole
simulation therefore never materializes the Voronoi diagram.  Region
*areas* (for measure-aware tie-breaking and the Lemma 9 experiments)
are computed exactly for k = 2 via :func:`repro.geo2d.voronoi.
toroidal_voronoi_areas`, exactly for k = 1 in closed form, and by
Monte-Carlo for k >= 3.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.spaces import GeometricSpace
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_float_array, check_dimension, check_positive_int

__all__ = ["TorusSpace"]


class TorusSpace(GeometricSpace):
    """Unit torus ``[0, 1)^k`` with nearest-server (Voronoi) bins.

    Parameters
    ----------
    points:
        ``(n, k)`` server locations, distinct under the toroidal metric.

    Examples
    --------
    >>> t = TorusSpace([[0.25, 0.25], [0.75, 0.75]])
    >>> t.assign(np.array([[0.2, 0.2], [0.8, 0.8]]))
    array([0, 1])
    """

    def __init__(self, points) -> None:
        pts = as_float_array(points, "points", ndim=2)
        if pts.shape[0] < 1:
            raise ValueError("TorusSpace needs at least one server point")
        check_dimension(pts.shape[1], "dimension")
        if np.any((pts < 0.0) | (pts >= 1.0)):
            raise ValueError("points must lie in [0, 1)^k")
        self._pts = pts
        self.n = int(pts.shape[0])
        self.dim = int(pts.shape[1])
        self._tree = cKDTree(pts, boxsize=1.0)
        if self.n > 1:
            dist, _ = self._tree.query(pts, k=2)
            if np.any(dist[:, 1] == 0.0):
                raise ValueError("points must be distinct on the torus")
        self._measures: np.ndarray | None = None
        self._measure_samples = 1_000_000

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, n: int, dim: int = 2, seed=None) -> "TorusSpace":
        """Place ``n`` servers independently and uniformly on the torus."""
        n = check_positive_int(n, "n")
        dim = check_dimension(dim, "dim")
        rng = resolve_rng(seed)
        return cls(rng.random((n, dim)))

    # ------------------------------------------------------------------
    # GeometricSpace interface
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Server locations (read-only view), shape ``(n, dim)``."""
        v = self._pts.view()
        v.flags.writeable = False
        return v

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Owning bin (nearest server under the toroidal metric)."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.shape[-1] != self.dim:
            raise ValueError(
                f"points must have last dimension {self.dim}, got {pts.shape}"
            )
        if pts.size and (np.any(pts < 0.0) or np.any(pts >= 1.0)):
            raise ValueError("points must lie in [0, 1)^k")
        _, idx = self._tree.query(pts)
        return np.asarray(idx, dtype=np.int64)

    def sample_choice_bins(
        self,
        rng: np.random.Generator,
        m: int,
        d: int,
        *,
        partitioned: bool = False,
    ) -> np.ndarray:
        """Draw ``(m, d)`` candidate bins from uniform torus points.

        ``partitioned=True`` partitions the torus into ``d`` slabs along
        the first coordinate (the natural generalization of Vöcking's
        ring intervals; the paper only uses partitioning on the ring).
        """
        u = rng.random((m, d, self.dim))
        if partitioned:
            u[..., 0] = (u[..., 0] + np.arange(d)[None, :]) / d
        _, idx = self._tree.query(u.reshape(m * d, self.dim))
        return np.asarray(idx, dtype=np.int64).reshape(m, d)

    def region_measures(self) -> np.ndarray:
        """Voronoi cell measures (cached).

        * k = 1: closed form — each server owns half of the gap to each
          circular neighbor (note this differs from :class:`RingSpace`,
          whose ownership is one-sided clockwise-successor).
        * k = 2: exact areas via periodic tiling.
        * k >= 3: Monte-Carlo estimate (``measure_samples`` probes).
        """
        if self._measures is None:
            if self.dim == 1:
                self._measures = self._exact_1d_measures()
            elif self.dim == 2:
                from repro.geo2d.voronoi import toroidal_voronoi_areas

                self._measures = toroidal_voronoi_areas(self._pts)
            else:
                from repro.geo2d.voronoi import monte_carlo_region_measures

                self._measures = monte_carlo_region_measures(
                    self._pts,
                    n_samples=self._measure_samples,
                    seed=np.random.SeedSequence(
                        abs(hash((self.n, self.dim))) % (1 << 63)
                    ),
                )
        return self._measures

    def _exact_1d_measures(self) -> np.ndarray:
        if self.n == 1:
            return np.ones(1)
        order = np.argsort(self._pts[:, 0])
        sorted_pos = self._pts[order, 0]
        gaps = np.empty(self.n)
        gaps[:-1] = np.diff(sorted_pos)
        gaps[-1] = 1.0 - sorted_pos[-1] + sorted_pos[0]
        # each point owns half of the gap on either side
        measures_sorted = 0.5 * (gaps + np.roll(gaps, 1))
        measures = np.empty(self.n)
        measures[order] = measures_sorted
        return measures

    # ------------------------------------------------------------------
    # torus-specific queries used by theory validation
    # ------------------------------------------------------------------
    def regions_at_least(self, c: float) -> int:
        """Number of Voronoi regions of area at least ``c / n`` (Lemma 9)."""
        if c < 0:
            raise ValueError(f"c must be non-negative, got {c}")
        return int(np.count_nonzero(self.region_measures() >= c / self.n))

    def toroidal_distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Euclidean distance on the torus between point arrays."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        delta = np.abs(a - b)
        delta = np.minimum(delta, 1.0 - delta)
        return np.sqrt(np.sum(delta**2, axis=-1))
