"""The classical (uniform-bin) d-choice process of Azar et al.

:class:`UniformSpace` plugs the standard balls-into-bins setting into
the same placement engine used by the geometric spaces, so every
comparison in the experiments is apples-to-apples: identical engine,
identical tie-breaking, identical RNG discipline — only the choice
distribution differs.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import place_balls
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak
from repro.utils.validation import check_positive_int

__all__ = ["UniformSpace", "abku_max_load"]


class UniformSpace(GeometricSpace):
    """``n`` equiprobable bins presented through the space interface.

    The "space" is the unit interval split into ``n`` equal cells; a
    uniform point of the interval probes each bin with probability
    exactly ``1/n``.  ``partitioned=True`` maps choice ``j`` to the
    ``j``-th block of ``n/d`` bins, which is Vöcking's grouping.

    Examples
    --------
    >>> u = UniformSpace(4)
    >>> u.assign(np.array([0.0, 0.3, 0.99]))
    array([0, 1, 3])
    """

    def __init__(self, n: int) -> None:
        self.n = check_positive_int(n, "n")

    def assign(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.size and (np.any(pts < 0.0) or np.any(pts >= 1.0)):
            raise ValueError("points must lie in [0, 1)")
        return np.minimum((pts * self.n).astype(np.int64), self.n - 1)

    def sample_choice_bins(
        self,
        rng: np.random.Generator,
        m: int,
        d: int,
        *,
        partitioned: bool = False,
    ) -> np.ndarray:
        u = rng.random((m, d))
        if partitioned:
            u = (u + np.arange(d)) / d
        return self.assign(u.ravel()).reshape(m, d)

    def region_measures(self) -> np.ndarray:
        return np.full(self.n, 1.0 / self.n)


def abku_max_load(
    n: int,
    m: int | None = None,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    seed=None,
    engine: str = "auto",
) -> int:
    """Simulate the classical process once and return the maximum load.

    Convenience wrapper: ``place_balls(UniformSpace(n), ...)`` — the
    exact process analyzed by Azar et al. and the reference line for
    the paper's Tables 1-2.
    """
    n = check_positive_int(n, "n")
    m = n if m is None else m
    result = place_balls(
        UniformSpace(n), m, d, strategy=strategy, seed=seed, engine=engine
    )
    return result.max_load
