"""The d = 1 regimes: what two choices rescues you from.

With a single choice there is no decision to make; the load vector is a
pure occupancy problem.  The two reference scales (for m = n):

* **uniform bins**: max load ``~ ln n / ln ln n`` (classical maximum of
  n Poisson(1)-ish cells),
* **geometric bins** (ring arcs / Voronoi cells): max load ``Θ(log n)``
  — a *qualitatively worse* regime, because the largest region has
  measure ``Θ(log n / n)`` and soaks up ``Θ(log n)`` items by itself.

This gap (visible in Tables 1-2's d = 1 columns growing linearly in
``log n``) is the paper's motivation: plain consistent hashing is
log-n-imbalanced, and two choices repairs it without virtual servers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.placement import place_balls
from repro.core.spaces import GeometricSpace
from repro.utils.validation import check_positive_int

__all__ = ["simulate_single_choice", "uniform_d1_scale", "geometric_d1_scale"]


def simulate_single_choice(
    space: GeometricSpace, m: int, *, seed=None, engine: str = "auto"
) -> np.ndarray:
    """Place ``m`` items with one choice each; returns the load vector."""
    return place_balls(space, m, d=1, seed=seed, engine=engine).loads


def uniform_d1_scale(n: int, m: int | None = None) -> float:
    """Asymptotic max-load scale for uniform bins, one choice.

    For ``m = n``: the classical ``ln n / ln ln n`` (leading term).
    For ``m >> n ln n``: ``m/n + sqrt(2 (m/n) ln n)`` (Gaussian regime).
    """
    n = check_positive_int(n, "n")
    if n < 16:
        raise ValueError("asymptotic scale needs n >= 16")
    m = n if m is None else check_positive_int(m, "m")
    lam = m / n
    if lam <= 1.0:
        return math.log(n) / math.log(math.log(n))
    return lam + math.sqrt(2.0 * lam * math.log(n))


def geometric_d1_scale(n: int, m: int | None = None) -> float:
    """Asymptotic max-load scale for geometric bins, one choice.

    The largest nearest-neighbor region has measure ``~ ln n / n``
    (exactly ``H_n / n`` in expectation on the ring), so with ``m``
    items its expected occupancy alone is ``(m/n) ln n`` — the Θ(log n)
    behaviour of Tables 1-2's d = 1 columns.
    """
    n = check_positive_int(n, "n")
    if n < 16:
        raise ValueError("asymptotic scale needs n >= 16")
    m = n if m is None else check_positive_int(m, "m")
    return (m / n) * math.log(n)
