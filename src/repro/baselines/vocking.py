"""Vöcking's Always-Go-Left scheme ("How asymmetry helps load balancing").

The paper's Section 2 remark: Vöcking's variant draws choice ``i``
uniformly from the interval ``[(i-1)/d, i/d)`` of the ring and breaks
ties toward the *lowest* interval, improving the bound to
``log log n / (d log phi_d) + O(1)`` where ``phi_d`` is the growth rate
of the ``d``-step Fibonacci (d-bonacci) numbers — ``phi_2`` is the
golden ratio.  Table 3's ``arc-left`` column is this scheme on the
random-arc ring.

In our engine the scheme is exactly ``partitioned=True`` sampling plus
``TieBreak.FIRST``; this module provides the convenience wrapper and
the analytical ``phi_d`` bound.
"""

from __future__ import annotations

import math

from repro.core.placement import PlacementResult, place_balls
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak
from repro.utils.validation import check_positive_int

__all__ = ["always_go_left", "dbonacci_growth_rate", "vocking_bound"]


def always_go_left(
    space: GeometricSpace,
    m: int,
    d: int = 2,
    *,
    seed=None,
    engine: str = "auto",
) -> PlacementResult:
    """Run Vöcking's Always-Go-Left on any space.

    Choice ``j`` is drawn from the ``j``-th of ``d`` equal sub-blocks of
    the space and ties break toward the lowest ``j``.

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> res = always_go_left(RingSpace.random(256, seed=0), 256, seed=1)
    >>> res.partitioned and res.strategy.value == "first"
    True
    """
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError("Always-Go-Left requires d >= 2")
    return place_balls(
        space,
        m,
        d,
        strategy=TieBreak.FIRST,
        partitioned=True,
        seed=seed,
        engine=engine,
    )


def dbonacci_growth_rate(d: int, *, tol: float = 1e-14) -> float:
    """``phi_d``: the positive root of ``x^d = x^{d-1} + ... + x + 1``.

    ``phi_2`` is the golden ratio; ``phi_d`` increases toward 2.
    Solved by bisection on the equivalent ``x^{d+1} - 2 x^d + 1 = 0``
    in ``(1, 2)``.

    Examples
    --------
    >>> abs(dbonacci_growth_rate(2) - (1 + 5 ** 0.5) / 2) < 1e-12
    True
    """
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError("phi_d is defined for d >= 2")

    def f(x: float) -> float:
        # x^d - sum_{k<d} x^k, rewritten stably
        return x**d - (x**d - 1.0) / (x - 1.0)

    lo, hi = 1.0 + 1e-9, 2.0
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if f(mid) > 0:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def vocking_bound(n: int, d: int) -> float:
    """Leading term of Vöcking's bound: ``ln ln n / (d ln phi_d)``.

    Compare with Theorem 1's ``ln ln n / ln d``: Always-Go-Left wins
    for every ``d >= 2`` (strictly, since ``d ln phi_d > ln d``).
    """
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("n must be >= 3")
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError("d must be >= 2")
    return math.log(math.log(n)) / (d * math.log(dbonacci_growth_rate(d)))
