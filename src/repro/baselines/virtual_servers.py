"""Chord's virtual-server remedy for consistent-hashing imbalance.

The Chord authors' fix for the Θ(log n)-factor arc-length spread: each
physical server simulates ``v = Θ(log n)`` *virtual* servers, i.e. owns
``v`` independent random arcs whose total length concentrates around
``v/ (v n) = 1/n``.  The paper (and its companion [3]) argues the
two-choices approach achieves better balance at lower cost — no factor-
``log n`` blowup of routing state.

:class:`VirtualServerRing` implements the remedy faithfully so the DHT
experiments can compare all three designs: plain consistent hashing
(``d = 1``, ``v = 1``), virtual servers (``d = 1``, ``v = log n``), and
two choices (``d = 2``, ``v = 1``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak, decide_row_scalar
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["VirtualServerRing"]


class VirtualServerRing:
    """A consistent-hashing ring where each server owns ``v`` arcs.

    Parameters
    ----------
    n:
        Number of physical servers.
    virtuals:
        Virtual servers per physical server; ``None`` uses Chord's
        ``ceil(log2 n)``.
    seed:
        Placement randomness for the ``n * v`` virtual positions.

    Examples
    --------
    >>> ring = VirtualServerRing(64, seed=0)
    >>> ring.virtuals == 6 and ring.ring.n == 64 * 6
    True
    """

    def __init__(self, n: int, virtuals: int | None = None, seed=None) -> None:
        self.n = check_positive_int(n, "n")
        if virtuals is None:
            virtuals = max(1, math.ceil(math.log2(max(n, 2))))
        self.virtuals = check_positive_int(virtuals, "virtuals")
        rng = resolve_rng(seed)
        total = self.n * self.virtuals
        positions = rng.random(total)
        # owner[k] = physical server of the k-th *sorted* virtual position
        order = np.argsort(positions)
        owner_unsorted = np.repeat(np.arange(self.n, dtype=np.int64), self.virtuals)
        self._owner = owner_unsorted[order]
        self.ring = RingSpace(positions)

    @property
    def owner(self) -> np.ndarray:
        """Physical owner of each virtual arc (sorted-arc order)."""
        v = self._owner.view()
        v.flags.writeable = False
        return v

    def physical_measures(self) -> np.ndarray:
        """Total arc length owned by each physical server (sums to 1)."""
        arc = self.ring.region_measures()
        return np.bincount(self._owner, weights=arc, minlength=self.n)

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Physical server owning each ring point."""
        return self._owner[self.ring.assign(points)]

    def place_items(
        self,
        m: int,
        d: int = 1,
        *,
        strategy: TieBreak | str = TieBreak.RANDOM,
        seed=None,
    ) -> np.ndarray:
        """Sequentially place ``m`` items; returns physical load vector.

        ``d = 1`` is Chord's actual design (hash once, store there);
        ``d >= 2`` composes virtual servers *with* the two-choices
        refinement (an ablation the paper's argument implies should be
        unnecessary).  Loads are compared at the physical level, where
        the imbalance actually matters.
        """
        m = check_non_negative_int(m, "m")
        d = check_positive_int(d, "d")
        strat = TieBreak.coerce(strategy)
        rng = resolve_rng(seed)
        loads = np.zeros(self.n, dtype=np.int64)
        if m == 0:
            return loads
        candidates = self.assign(rng.random((m, d)).ravel()).reshape(m, d)
        if d == 1:
            # no decisions to make: pure hashing, fully vectorized
            np.add.at(loads, candidates[:, 0], 1)
            return loads
        measures = None
        if strat in (TieBreak.SMALLER, TieBreak.LARGER):
            measures = self.physical_measures()
        tiebreaks = rng.random(m)
        for t in range(m):
            cand = candidates[t]
            j = decide_row_scalar(
                loads[cand].tolist(),
                None if measures is None else measures[cand].tolist(),
                float(tiebreaks[t]),
                strat,
            )
            loads[cand[j]] += 1
        return loads
