"""Baselines the paper compares against (or builds upon).

* :mod:`repro.baselines.uniform` — the classical Azar-Broder-Karlin-
  Upfal setting: every bin equally likely.  Theorem 1's result is that
  the geometric spaces match this gold standard.
* :mod:`repro.baselines.vocking` — Vöcking's Always-Go-Left scheme and
  its ``log log n / (d log phi_d)`` bound.
* :mod:`repro.baselines.virtual_servers` — Chord's virtual-server
  remedy for consistent-hashing imbalance: each physical server owns
  Θ(log n) random arcs.  The paper argues two choices is the simpler,
  cheaper alternative.
* :mod:`repro.baselines.single_choice` — the d = 1 regimes on both
  uniform and geometric bins (Θ(log n / log log n) vs Θ(log n)).
"""

from repro.baselines.uniform import UniformSpace, abku_max_load
from repro.baselines.vocking import (
    always_go_left,
    dbonacci_growth_rate,
    vocking_bound,
)
from repro.baselines.virtual_servers import VirtualServerRing
from repro.baselines.single_choice import (
    geometric_d1_scale,
    simulate_single_choice,
    uniform_d1_scale,
)

__all__ = [
    "UniformSpace",
    "abku_max_load",
    "always_go_left",
    "vocking_bound",
    "dbonacci_growth_rate",
    "VirtualServerRing",
    "simulate_single_choice",
    "uniform_d1_scale",
    "geometric_d1_scale",
]
