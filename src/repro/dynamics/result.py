"""Outcome of a dynamic simulation: final state plus the trajectory.

Where the static :class:`~repro.core.placement.PlacementResult` is a
single load vector, a dynamic run is a *path*: the engines snapshot the
load state at every epoch boundary of the trace, and
:class:`DynamicResult` carries the per-epoch series (max load, total
load, live-bin count, ν-profiles) the dynamic load guarantee is stated
over.  Bit-identical trajectories — not just final states — are what
the engine-equivalence tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loads import load_imbalance, nu_profile
from repro.core.strategies import TieBreak

__all__ = ["DynamicResult"]


@dataclass(frozen=True)
class DynamicResult:
    """One dynamic run: final loads plus per-epoch trajectory series.

    Attributes
    ----------
    loads:
        Final per-slot load vector over the full slot universe
        (inactive slots hold 0).
    active:
        Final boolean active mask over slots.
    d, strategy, partitioned, engine:
        Process parameters and which engine produced the result.
    inserts, deletes:
        Event totals over the whole trace.
    epoch_ends:
        Event counts at which the series below were sampled.
    max_load_over_time, total_load_over_time, live_bins_over_time:
        One entry per epoch.
    nu_profiles:
        Per-epoch ν-profiles over the *active* bins (ν_i = bins with
        load at least i), the layered-induction object evaluated along
        the trajectory.
    load_snapshots:
        Full per-epoch load vectors when the run recorded them.
    """

    loads: np.ndarray
    active: np.ndarray
    d: int
    strategy: TieBreak
    engine: str
    inserts: int
    deletes: int
    epoch_ends: np.ndarray
    max_load_over_time: np.ndarray
    total_load_over_time: np.ndarray
    live_bins_over_time: np.ndarray
    nu_profiles: tuple[np.ndarray, ...]
    partitioned: bool = False
    load_snapshots: tuple[np.ndarray, ...] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        total = int(self.loads.sum())
        if total != self.occupancy:
            raise ValueError(
                f"loads sum to {total} but inserts-deletes="
                f"{self.occupancy}; engine accounting bug"
            )
        if np.any(self.loads < 0):
            raise ValueError("negative load; engine accounting bug")
        if np.any(self.loads[~self.active] != 0):
            raise ValueError("inactive bin holds balls; engine accounting bug")
        k = int(self.epoch_ends.size)
        for name in (
            "max_load_over_time",
            "total_load_over_time",
            "live_bins_over_time",
        ):
            series = getattr(self, name)
            if series.shape != (k,):
                raise ValueError(f"{name} must have one entry per epoch")
        if len(self.nu_profiles) != k:
            raise ValueError("nu_profiles must have one entry per epoch")

    # ------------------------------------------------------------------
    # final-state statistics
    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return int(self.loads.shape[0])

    @property
    def occupancy(self) -> int:
        """Balls live at the end of the trace."""
        return self.inserts - self.deletes

    @property
    def live_bins(self) -> int:
        return int(self.active.sum())

    @property
    def max_load(self) -> int:
        """Final maximum load over active bins."""
        return int(self.loads[self.active].max())

    @property
    def imbalance(self) -> float:
        """Final max-to-mean load ratio over active bins."""
        return load_imbalance(self.loads[self.active])

    def final_nu_profile(self) -> np.ndarray:
        """ν-profile of the final active load vector."""
        return nu_profile(self.loads[self.active])

    # ------------------------------------------------------------------
    # trajectory statistics
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> int:
        return int(self.epoch_ends.size)

    @property
    def peak_max_load(self) -> int:
        """Worst max load seen at any epoch — the dynamic guarantee's
        statistic (the static tables report only the endpoint)."""
        if self.max_load_over_time.size == 0:
            return self.max_load
        return int(self.max_load_over_time.max())

    def imbalance_over_time(self) -> np.ndarray:
        """Per-epoch max-to-mean load ratio over the *live* bins.

        The mean is taken over the bins active at each epoch, so churn
        does not dilute the ratio with empty inactive slots.
        """
        live = np.maximum(self.live_bins_over_time, 1).astype(np.float64)
        means = self.total_load_over_time / live
        return np.where(
            means > 0, self.max_load_over_time / np.where(means > 0, means, 1.0), 0.0
        )

    def summary_lines(self) -> list[str]:
        """One line per epoch for text reports."""
        out = []
        for i in range(self.epochs):
            out.append(
                f"epoch {i:>3} (events={int(self.epoch_ends[i])}): "
                f"total={int(self.total_load_over_time[i])} "
                f"live_bins={int(self.live_bins_over_time[i])} "
                f"max={int(self.max_load_over_time[i])}"
            )
        return out
