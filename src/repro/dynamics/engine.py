"""Dynamic placement engines: sequential reference and vectorized batched.

This module extends the static engine pair of :mod:`repro.core.engine`
to the dynamic process replayed from an
:class:`~repro.dynamics.events.EventTrace`:

``run_sequential_dynamic``
    One event at a time.  Trivially correct; the reference.

``run_batched_dynamic``
    Generalizes the conflict-free-prefix trick to *mixed* blocks of
    insert and delete events.  Within a batch, an event prefix can be
    decided from the batch-start load vector when no **insert** reads a
    bin touched by any earlier event in the prefix:

    * an insert touches its ``d`` candidate bins,
    * a delete touches the single bin holding its target ball,
    * deletes never *read* loads, so they never conflict themselves —
      they only dirty their bin for later inserts.

    Inserts in such a prefix are decided in one vectorized shot (their
    candidate sets are pairwise disjoint by construction), deletes are
    applied with one scatter-subtract, and the first conflicting event
    is stepped scalar — exactly the static engine's scheme with deletes
    threaded through.

Bin churn events (rare by nature) and epoch snapshots act as batch
barriers and run through code shared verbatim between the engines, so
the two engines produce **bit-identical load trajectories** — the same
per-epoch snapshots, not just the same endpoint.  The test suite
enforces this across spaces, strategies, delete policies and churn.

RNG discipline mirrors the static engines: all insert randomness is
pre-drawn through :func:`repro.core.engine.choice_blocks` (so an
insert-only trace reproduces ``run_sequential`` bit-for-bit on the same
seed), while churn re-placement draws from a generator spawned off the
main seed, consumed identically by both engines because churn handling
is shared scalar code.

When bins leave, ownership is remapped by **cyclic successor**: a
candidate drawn in a departed bin's region belongs to the next active
bin in index order.  On the ring — whose bins are stored in position
order — this is exactly consistent hashing's hand-off to the clockwise
successor; on other spaces it is a documented convention.  Region
measures used by the ``smaller``/``larger`` strategies are merged the
same way, so tie-breaking stays meaningful under churn.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.engine import DEFAULT_RNG_BLOCK, auto_batch_size, choice_blocks
from repro.core.engine import auto_engine as _static_auto_engine
from repro.core.incremental import IncrementalState, mixed_conflict_prefix
from repro.core.loads import nu_profile
from repro.core.spaces import GeometricSpace
from repro.core.strategies import TieBreak
from repro.dynamics.events import EventKind, EventTrace
from repro.dynamics.result import DynamicResult
from repro.kernels import KernelBackend, resolve_backend, resolve_threads
from repro.obs import counter_add, obs_session, trace_span
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "run_sequential_dynamic",
    "run_batched_dynamic",
    "simulate_dynamics",
    "mixed_conflict_prefix",
]


def _predraw_inserts(
    space: GeometricSpace,
    rng: np.random.Generator,
    count: int,
    d: int,
    partitioned: bool,
    rng_block: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize candidate bins and tie-break uniforms for all inserts.

    Uses :func:`choice_blocks`, so the RNG stream layout is identical to
    the static engines' and independent of which dynamic engine runs.
    """
    cands = np.empty((count, d), dtype=np.int64)
    us = np.empty(count, dtype=np.float64)
    pos = 0
    for bins, tiebreaks in choice_blocks(
        space, rng, count, d, partitioned=partitioned, rng_block=rng_block
    ):
        b = bins.shape[0]
        cands[pos : pos + b] = bins
        us[pos : pos + b] = tiebreaks
        pos += b
    return cands, us


class _PredrawPipeline:
    """Background producer of the pre-drawn insert candidate stream.

    The synchronous :func:`_predraw_inserts` pays the full candidate
    generation cost up front, serializing it with trace replay.  This
    pipeline fills the same ``cands``/``us`` arrays chunk-by-chunk from
    the **same** :func:`choice_blocks` iterator on a producer thread
    (numpy's bulk fills release the GIL), so replay of event window
    ``w`` overlaps generation of the candidates windows ``w+1, ...``
    will read.  :meth:`ensure` gates the consumer: it blocks until the
    first ``count`` insert rows are materialized.

    Bit-identity: one iterator, one thread consuming it, identical
    block layout — the stream is byte-for-byte the synchronous one;
    pipelining changes *when* rows are filled, never their values.
    """

    def __init__(self, space, rng, count, d, partitioned, rng_block):
        self.cands = np.empty((count, d), dtype=np.int64)
        self.us = np.empty(count, dtype=np.float64)
        self._filled = 0
        self._error: BaseException | None = None
        self._cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._produce,
            args=(space, rng, count, d, partitioned, rng_block),
            name="repro-predraw",
            daemon=True,
        )
        self._thread.start()

    def _produce(self, space, rng, count, d, partitioned, rng_block):
        try:
            pos = 0
            for bins, tiebreaks in choice_blocks(
                space, rng, count, d, partitioned=partitioned, rng_block=rng_block
            ):
                b = bins.shape[0]
                self.cands[pos : pos + b] = bins
                self.us[pos : pos + b] = tiebreaks
                pos += b
                with self._cond:
                    self._filled = pos
                    self._cond.notify_all()
        except BaseException as exc:  # pragma: no cover - defensive
            with self._cond:
                self._error = exc
                self._cond.notify_all()

    def ensure(self, count: int) -> None:
        """Block until the first ``count`` insert rows are filled."""
        if self._filled >= count and self._error is None:
            # lock-free fast path: _filled grows monotonically and a
            # stale (smaller) read only sends us through the slow path
            return
        with self._cond:
            while self._filled < count and self._error is None:
                self._cond.wait()
            if self._error is not None:
                raise self._error


class _DynamicState:
    """Trace-replay wrapper over the shared :class:`IncrementalState` core.

    The behaviour-bearing state — scalar event application, churn
    handling, topology remaps — lives in
    :class:`repro.core.incremental.IncrementalState`, which both
    engines (and the ``repro.serve`` tier) mutate through the same
    methods, so the engines can only differ in *when* they decide
    events, never in *how*.  This wrapper owns what is trace-specific:
    the pre-drawn candidate stream (optionally pipelined), epoch
    snapshots, and result assembly.
    """

    def __init__(
        self,
        space: GeometricSpace,
        trace: EventTrace,
        d: int,
        strategy: TieBreak,
        rng,
        *,
        partitioned: bool,
        rng_block: int,
        record_loads: bool,
        threads: int = 1,
    ) -> None:
        if not isinstance(trace, EventTrace):
            raise TypeError(f"trace must be an EventTrace, got {type(trace).__name__}")
        if trace.n_slots is not None and trace.n_slots != space.n:
            raise ValueError(
                f"trace expects {trace.n_slots} bin slots but space has {space.n}"
            )
        self.space = space
        self.n = space.n
        self.d = check_positive_int(d, "d")
        self.strategy = TieBreak.coerce(strategy)
        self.partitioned = partitioned
        self.trace = trace
        rng = resolve_rng(rng)
        # spawned (not consumed) before the insert pre-draw, so the
        # insert stream matches the static engines' exactly
        aux_rng = rng.spawn(1)[0]
        if threads >= 2 and trace.num_inserts > 0:
            self._pipeline = _PredrawPipeline(
                space, rng, trace.num_inserts, self.d, partitioned, rng_block
            )
            self.cands = self._pipeline.cands
            self.us = self._pipeline.us
        else:
            self._pipeline = None
            self.cands, self.us = _predraw_inserts(
                space, rng, trace.num_inserts, self.d, partitioned, rng_block
            )
        self.core = IncrementalState(
            space,
            self.d,
            self.strategy,
            partitioned=partitioned,
            aux_rng=aux_rng,
            expect_balls=trace.num_inserts,
        )
        self.record_loads = record_loads
        self._max: list[int] = []
        self._tot: list[int] = []
        self._live: list[int] = []
        self._nu: list[np.ndarray] = []
        self._snaps: list[np.ndarray] = []

    @property
    def loads(self) -> np.ndarray:
        """The core's live per-bin load vector."""
        return self.core.loads

    @property
    def active(self) -> np.ndarray:
        """The core's live-bin mask."""
        return self.core.active

    @property
    def inserts_done(self) -> int:
        """Inserts applied so far (core counter)."""
        return self.core.inserts_done

    @property
    def deletes_done(self) -> int:
        """Deletes applied so far (core counter)."""
        return self.core.deletes_done

    def ensure_cands(self, count: int) -> None:
        """Wait until the first ``count`` insert rows are pre-drawn.

        A no-op without a pipelined predraw.  Ball ids are validated
        consecutive in trace order, so the cumulative insert count of a
        window upper-bounds every ball id it can read.
        """
        if self._pipeline is not None:
            self._pipeline.ensure(count)

    # ------------------------------------------------------------------
    # scalar event application (the sequential engine; conflict steps)
    # ------------------------------------------------------------------
    def apply_insert(self, ball: int) -> None:
        self.core.insert(ball, self.cands[ball], float(self.us[ball]))

    def apply_delete(self, ball: int) -> None:
        self.core.delete(ball)

    # ------------------------------------------------------------------
    # churn (shared scalar code in the core: both engines run it)
    # ------------------------------------------------------------------
    def bin_leave(self, slot: int) -> None:
        self.core.bin_leave(slot)

    def bin_join(self, slot: int) -> None:
        self.core.bin_join(slot)

    # ------------------------------------------------------------------
    # snapshots and result assembly
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        live_loads = self.core.live_loads()
        self._max.append(int(live_loads.max()))
        self._tot.append(self.core.occupancy)
        self._live.append(int(self.active.sum()))
        self._nu.append(nu_profile(live_loads))
        if self.record_loads:
            self._snaps.append(self.loads.copy())

    def result(self, engine: str) -> DynamicResult:
        return DynamicResult(
            loads=self.loads,
            active=self.active,
            d=self.d,
            strategy=self.strategy,
            engine=engine,
            inserts=self.inserts_done,
            deletes=self.deletes_done,
            epoch_ends=self.trace.epoch_ends,
            max_load_over_time=np.array(self._max, dtype=np.int64),
            total_load_over_time=np.array(self._tot, dtype=np.int64),
            live_bins_over_time=np.array(self._live, dtype=np.int64),
            nu_profiles=tuple(self._nu),
            partitioned=self.partitioned,
            load_snapshots=tuple(self._snaps) if self.record_loads else None,
        )


def run_sequential_dynamic(
    space: GeometricSpace,
    trace: EventTrace,
    d: int,
    strategy: TieBreak,
    rng,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    record_loads: bool = False,
) -> DynamicResult:
    """Reference engine: replay the trace one event at a time."""
    state = _DynamicState(
        space,
        trace,
        d,
        strategy,
        rng,
        partitioned=partitioned,
        rng_block=rng_block,
        record_loads=record_loads,
    )
    kinds = trace.kinds
    args = trace.args
    epoch_ends = trace.epoch_ends
    next_epoch_idx = 0
    for i in range(trace.num_events):
        kind = kinds[i]
        arg = int(args[i])
        if kind == EventKind.INSERT:
            state.apply_insert(arg)
        elif kind == EventKind.DELETE:
            state.apply_delete(arg)
        elif kind == EventKind.BIN_LEAVE:
            state.bin_leave(arg)
        else:
            state.bin_join(arg)
        if next_epoch_idx < epoch_ends.size and i + 1 == int(epoch_ends[next_epoch_idx]):
            state.snapshot()
            next_epoch_idx += 1
    return state.result("sequential")


def run_batched_dynamic(
    space: GeometricSpace,
    trace: EventTrace,
    d: int,
    strategy: TieBreak,
    rng,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    batch_size: int | None = None,
    record_loads: bool = False,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
) -> DynamicResult:
    """Vectorized engine: mixed-event conflict-free-prefix batching.

    Bit-identical to :func:`run_sequential_dynamic` (enforced by tests):
    randomness is pre-drawn in the shared layout, decisions run through
    the same tie-break kernels, churn events and snapshots are shared
    scalar code acting as batch barriers, and only events provably
    independent of intra-batch ordering are decided together.

    ``backend`` selects the kernel backend for the churn-free event
    windows (:func:`repro.kernels.resolve_backend` semantics);
    accelerated backends replace the prefix machinery with one compiled
    in-order pass per window, with identical trajectories.

    ``threads`` (:func:`repro.kernels.resolve_threads` semantics) ``>=
    2`` pipelines the insert pre-draw on a producer thread
    (:class:`_PredrawPipeline`): each event window waits only for the
    candidates it can actually read — gated by the cumulative insert
    count at its end — so candidate generation overlaps replay.  The
    window chain itself is a serial dependency (each decision reads the
    loads the previous one wrote), so this overlap is the dynamic
    path's whole multicore story; results are bit-identical for every
    thread count.
    """
    if batch_size is None:
        batch_size = auto_batch_size(space.n, d)
    batch_size = check_positive_int(batch_size, "batch_size")
    backend_obj = resolve_backend(backend)
    eff_threads = resolve_threads(threads)
    state = _DynamicState(
        space,
        trace,
        d,
        strategy,
        rng,
        partitioned=partitioned,
        rng_block=rng_block,
        record_loads=record_loads,
        threads=eff_threads,
    )
    kinds = trace.kinds
    args = trace.args
    # inserts-before-or-at each event index, for pipeline gating (ball
    # ids are consecutive in trace order, so this bounds window reads)
    insert_cum = (
        np.cumsum(kinds == EventKind.INSERT) if state._pipeline is not None else None
    )
    churn_positions = np.nonzero(kinds >= EventKind.BIN_LEAVE)[0]
    churn_ptr = 0
    i = 0
    for epoch_end in trace.epoch_ends.tolist():
        while i < epoch_end:
            if churn_ptr < churn_positions.size and churn_positions[churn_ptr] == i:
                if kinds[i] == EventKind.BIN_LEAVE:
                    state.bin_leave(int(args[i]))
                else:
                    state.bin_join(int(args[i]))
                churn_ptr += 1
                i += 1
                continue
            stop = epoch_end
            if churn_ptr < churn_positions.size:
                stop = min(stop, int(churn_positions[churn_ptr]))
            if insert_cum is not None and stop > 0:
                state.ensure_cands(int(insert_cum[stop - 1]))
            state.core.apply_window(
                kinds,
                args,
                i,
                stop,
                state.cands,
                state.us,
                batch_size=batch_size,
                backend=backend_obj,
            )
            i = stop
        state.snapshot()
    return state.result("batched")


def simulate_dynamics(
    space: GeometricSpace,
    trace: EventTrace,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    seed=None,
    engine: str = "auto",
    batch_size: int | None = None,
    rng_block: int = DEFAULT_RNG_BLOCK,
    partitioned: bool = False,
    record_loads: bool = False,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
    obs: bool | None = None,
) -> DynamicResult:
    """Replay a dynamic workload on a space — the dynamics facade.

    The dynamic counterpart of :func:`repro.core.placement.place_balls`:
    same seed handling, same engine auto-selection, same guarantee that
    the engine choice never changes the result.

    ``obs`` scopes the observability switch for this call
    (:func:`repro.obs.obs_session`): ``True`` traces a
    ``simulate_dynamics`` span (with window-size histograms and event
    counters underneath), ``False`` silences an otherwise-enabled
    process, ``None`` (default) follows the global/env switch.
    Observability never changes results.

    ``backend`` selects the kernel backend
    (:func:`repro.kernels.resolve_backend`: env var → this kwarg →
    auto-detect).  With an accelerated backend, ``engine="auto"``
    resolves to ``"batched"`` at every ``n`` — the compiled window
    kernel has no vectorization overhead to amortize — and the batched
    engine's event windows run through it.  ``engine="sequential"`` is
    always the pure-Python reference and ignores ``backend``.  Results
    are bit-identical across every engine/backend combination.

    ``threads`` (:func:`repro.kernels.resolve_threads`:
    ``REPRO_NUM_THREADS`` → this kwarg → physical cores) ``>= 2``
    pipelines the insert pre-draw on a producer thread in the batched
    engine; the sequential reference stays single-threaded.  Thread
    count never changes results (enforced by
    ``tests/kernels/test_threads_parity.py``).

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> from repro.dynamics import steady_state_trace
    >>> ring = RingSpace.random(128, seed=1)
    >>> trace = steady_state_trace(128, pairs=256, seed=2)
    >>> res = simulate_dynamics(ring, trace, d=2, seed=3)
    >>> res.occupancy
    128
    >>> res.peak_max_load <= 8
    True
    """
    with obs_session(obs):
        if not isinstance(trace, EventTrace):
            raise TypeError(
                f"trace must be an EventTrace, got {type(trace).__name__}"
            )
        strat = TieBreak.coerce(strategy)
        rng = resolve_rng(seed)
        backend_obj = resolve_backend(backend)
        if engine == "auto":
            if backend_obj.dynamic_window is not None:
                engine = "batched"
            else:
                engine = _static_auto_engine(space.n)
        if engine not in ("sequential", "batched"):
            raise ValueError(
                f"engine must be 'auto', 'sequential' or 'batched', got {engine!r}"
            )
        eff_threads = resolve_threads(threads)
        with trace_span(
            "simulate_dynamics",
            engine=engine,
            backend=backend_obj.name,
            events=trace.num_events,
            n=space.n,
            d=d,
            threads=eff_threads,
        ):
            counter_add("dynamics.events", trace.num_events)
            if engine == "sequential":
                return run_sequential_dynamic(
                    space,
                    trace,
                    d,
                    strat,
                    rng,
                    partitioned=partitioned,
                    rng_block=rng_block,
                    record_loads=record_loads,
                )
            return run_batched_dynamic(
                space,
                trace,
                d,
                strat,
                rng,
                partitioned=partitioned,
                rng_block=rng_block,
                batch_size=batch_size,
                record_loads=record_loads,
                backend=backend_obj,
                threads=eff_threads,
            )
