"""Dynamic placement engines: sequential reference and vectorized batched.

This module extends the static engine pair of :mod:`repro.core.engine`
to the dynamic process replayed from an
:class:`~repro.dynamics.events.EventTrace`:

``run_sequential_dynamic``
    One event at a time.  Trivially correct; the reference.

``run_batched_dynamic``
    Generalizes the conflict-free-prefix trick to *mixed* blocks of
    insert and delete events.  Within a batch, an event prefix can be
    decided from the batch-start load vector when no **insert** reads a
    bin touched by any earlier event in the prefix:

    * an insert touches its ``d`` candidate bins,
    * a delete touches the single bin holding its target ball,
    * deletes never *read* loads, so they never conflict themselves —
      they only dirty their bin for later inserts.

    Inserts in such a prefix are decided in one vectorized shot (their
    candidate sets are pairwise disjoint by construction), deletes are
    applied with one scatter-subtract, and the first conflicting event
    is stepped scalar — exactly the static engine's scheme with deletes
    threaded through.

Bin churn events (rare by nature) and epoch snapshots act as batch
barriers and run through code shared verbatim between the engines, so
the two engines produce **bit-identical load trajectories** — the same
per-epoch snapshots, not just the same endpoint.  The test suite
enforces this across spaces, strategies, delete policies and churn.

RNG discipline mirrors the static engines: all insert randomness is
pre-drawn through :func:`repro.core.engine.choice_blocks` (so an
insert-only trace reproduces ``run_sequential`` bit-for-bit on the same
seed), while churn re-placement draws from a generator spawned off the
main seed, consumed identically by both engines because churn handling
is shared scalar code.

When bins leave, ownership is remapped by **cyclic successor**: a
candidate drawn in a departed bin's region belongs to the next active
bin in index order.  On the ring — whose bins are stored in position
order — this is exactly consistent hashing's hand-off to the clockwise
successor; on other spaces it is a documented convention.  Region
measures used by the ``smaller``/``larger`` strategies are merged the
same way, so tie-breaking stays meaningful under churn.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.engine import DEFAULT_RNG_BLOCK, auto_batch_size, choice_blocks
from repro.core.engine import auto_engine as _static_auto_engine
from repro.core.loads import nu_profile
from repro.core.spaces import GeometricSpace
from repro.core.strategies import (
    TieBreak,
    decide_row_scalar,
    decide_rows,
    strategy_needs_measures,
)
from repro.dynamics.events import EventKind, EventTrace
from repro.dynamics.result import DynamicResult
from repro.kernels import (
    STRATEGY_CODES,
    KernelBackend,
    resolve_backend,
    resolve_threads,
)
from repro.obs import counter_add, histogram_observe, obs_session, trace_span
from repro.obs import enabled as obs_enabled
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "run_sequential_dynamic",
    "run_batched_dynamic",
    "simulate_dynamics",
    "mixed_conflict_prefix",
]


def _predraw_inserts(
    space: GeometricSpace,
    rng: np.random.Generator,
    count: int,
    d: int,
    partitioned: bool,
    rng_block: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize candidate bins and tie-break uniforms for all inserts.

    Uses :func:`choice_blocks`, so the RNG stream layout is identical to
    the static engines' and independent of which dynamic engine runs.
    """
    cands = np.empty((count, d), dtype=np.int64)
    us = np.empty(count, dtype=np.float64)
    pos = 0
    for bins, tiebreaks in choice_blocks(
        space, rng, count, d, partitioned=partitioned, rng_block=rng_block
    ):
        b = bins.shape[0]
        cands[pos : pos + b] = bins
        us[pos : pos + b] = tiebreaks
        pos += b
    return cands, us


class _PredrawPipeline:
    """Background producer of the pre-drawn insert candidate stream.

    The synchronous :func:`_predraw_inserts` pays the full candidate
    generation cost up front, serializing it with trace replay.  This
    pipeline fills the same ``cands``/``us`` arrays chunk-by-chunk from
    the **same** :func:`choice_blocks` iterator on a producer thread
    (numpy's bulk fills release the GIL), so replay of event window
    ``w`` overlaps generation of the candidates windows ``w+1, ...``
    will read.  :meth:`ensure` gates the consumer: it blocks until the
    first ``count`` insert rows are materialized.

    Bit-identity: one iterator, one thread consuming it, identical
    block layout — the stream is byte-for-byte the synchronous one;
    pipelining changes *when* rows are filled, never their values.
    """

    def __init__(self, space, rng, count, d, partitioned, rng_block):
        self.cands = np.empty((count, d), dtype=np.int64)
        self.us = np.empty(count, dtype=np.float64)
        self._filled = 0
        self._error: BaseException | None = None
        self._cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._produce,
            args=(space, rng, count, d, partitioned, rng_block),
            name="repro-predraw",
            daemon=True,
        )
        self._thread.start()

    def _produce(self, space, rng, count, d, partitioned, rng_block):
        try:
            pos = 0
            for bins, tiebreaks in choice_blocks(
                space, rng, count, d, partitioned=partitioned, rng_block=rng_block
            ):
                b = bins.shape[0]
                self.cands[pos : pos + b] = bins
                self.us[pos : pos + b] = tiebreaks
                pos += b
                with self._cond:
                    self._filled = pos
                    self._cond.notify_all()
        except BaseException as exc:  # pragma: no cover - defensive
            with self._cond:
                self._error = exc
                self._cond.notify_all()

    def ensure(self, count: int) -> None:
        """Block until the first ``count`` insert rows are filled."""
        if self._filled >= count and self._error is None:
            # lock-free fast path: _filled grows monotonically and a
            # stale (smaller) read only sends us through the slow path
            return
        with self._cond:
            while self._filled < count and self._error is None:
                self._cond.wait()
            if self._error is not None:
                raise self._error


def mixed_conflict_prefix(touched: np.ndarray, is_insert: np.ndarray) -> int:
    """Longest event prefix decidable from the prefix-start load vector.

    ``touched`` is ``(B, d)``: an insert row holds its candidate bins, a
    delete row its target's bin broadcast ``d`` times (``-1`` when the
    target is inserted within the same batch — its true bin is then the
    chosen bin of that earlier insert, already accounted for by the
    insert's candidates).  An event conflicts when it is an insert and
    any of its bins was touched by an earlier row; deletes never
    conflict.  Returns at least 1 for non-empty input.

    Examples
    --------
    >>> import numpy as np
    >>> t = np.array([[0, 1], [2, 2], [1, 3]])        # rows: ins, del, ins
    >>> mixed_conflict_prefix(t, np.array([True, False, True]))
    2
    >>> mixed_conflict_prefix(t[:2], np.array([True, False]))
    2
    """
    if touched.ndim != 2:
        raise ValueError(f"touched must be 2-D, got shape {touched.shape}")
    b, d = touched.shape
    if b == 0:
        return 0
    flat = touched.ravel()
    _, first_flat, inverse = np.unique(flat, return_index=True, return_inverse=True)
    first_row = first_flat[inverse] // d
    own_row = np.repeat(np.arange(b, dtype=np.int64), d)
    conflicts = (first_row < own_row) & np.repeat(is_insert, d)
    if not conflicts.any():
        return b
    return int(own_row[conflicts].min())


class _DynamicState:
    """Mutable simulation state shared by both engines.

    Everything behaviour-bearing that is not the batching itself lives
    here — scalar event application, churn handling, topology remaps,
    epoch snapshots — so the engines can only differ in *when* they
    decide events, never in *how*.
    """

    def __init__(
        self,
        space: GeometricSpace,
        trace: EventTrace,
        d: int,
        strategy: TieBreak,
        rng,
        *,
        partitioned: bool,
        rng_block: int,
        record_loads: bool,
        threads: int = 1,
    ) -> None:
        if not isinstance(trace, EventTrace):
            raise TypeError(f"trace must be an EventTrace, got {type(trace).__name__}")
        if trace.n_slots is not None and trace.n_slots != space.n:
            raise ValueError(
                f"trace expects {trace.n_slots} bin slots but space has {space.n}"
            )
        self.space = space
        self.n = space.n
        self.d = check_positive_int(d, "d")
        self.strategy = TieBreak.coerce(strategy)
        self.partitioned = partitioned
        self.trace = trace
        rng = resolve_rng(rng)
        # spawned (not consumed) before the insert pre-draw, so the
        # insert stream matches the static engines' exactly
        self.aux_rng = rng.spawn(1)[0]
        if threads >= 2 and trace.num_inserts > 0:
            self._pipeline = _PredrawPipeline(
                space, rng, trace.num_inserts, self.d, partitioned, rng_block
            )
            self.cands = self._pipeline.cands
            self.us = self._pipeline.us
        else:
            self._pipeline = None
            self.cands, self.us = _predraw_inserts(
                space, rng, trace.num_inserts, self.d, partitioned, rng_block
            )
        self.loads = np.zeros(self.n, dtype=np.int64)
        self.ball_bin = np.full(trace.num_inserts, -1, dtype=np.int64)
        self.active = np.ones(self.n, dtype=bool)
        self.needs_measures = strategy_needs_measures(self.strategy)
        self.base_measures = space.region_measures() if self.needs_measures else None
        self.measures = self.base_measures
        self.remap: np.ndarray | None = None  # None == identity (no churn yet)
        self.inserts_done = 0
        self.deletes_done = 0
        self.record_loads = record_loads
        self._max: list[int] = []
        self._tot: list[int] = []
        self._live: list[int] = []
        self._nu: list[np.ndarray] = []
        self._snaps: list[np.ndarray] = []

    def ensure_cands(self, count: int) -> None:
        """Wait until the first ``count`` insert rows are pre-drawn.

        A no-op without a pipelined predraw.  Ball ids are validated
        consecutive in trace order, so the cumulative insert count of a
        window upper-bounds every ball id it can read.
        """
        if self._pipeline is not None:
            self._pipeline.ensure(count)

    # ------------------------------------------------------------------
    # scalar event application (the sequential engine; conflict steps)
    # ------------------------------------------------------------------
    def apply_insert(self, ball: int) -> None:
        raw = self.cands[ball]
        cand = raw if self.remap is None else self.remap[raw]
        row = self.loads[cand]
        mrow = self.measures[cand] if self.needs_measures else None
        j = decide_row_scalar(
            row.tolist(),
            None if mrow is None else mrow.tolist(),
            float(self.us[ball]),
            self.strategy,
        )
        chosen = int(cand[j])
        self.loads[chosen] += 1
        self.ball_bin[ball] = chosen
        self.inserts_done += 1

    def apply_delete(self, ball: int) -> None:
        b = int(self.ball_bin[ball])
        if b < 0:  # pragma: no cover - excluded by trace validation
            raise RuntimeError(f"delete of unplaced ball {ball}")
        self.loads[b] -= 1
        self.ball_bin[ball] = -1
        self.deletes_done += 1

    # ------------------------------------------------------------------
    # churn (shared verbatim: both engines run these scalar)
    # ------------------------------------------------------------------
    def bin_leave(self, slot: int) -> None:
        self.active[slot] = False
        self._recompute_topology()
        displaced = np.nonzero(self.ball_bin == slot)[0]
        self.loads[slot] = 0
        for ball in displaced:
            self._replace_ball(int(ball))

    def bin_join(self, slot: int) -> None:
        # the joining bin starts empty: items placed while it was away
        # stay where they are (the two-choice DHT convention — no
        # eager rebalancing on joins)
        self.active[slot] = True
        self._recompute_topology()

    def _replace_ball(self, ball: int) -> None:
        raw = self.space.sample_choice_bins(
            self.aux_rng, 1, self.d, partitioned=self.partitioned
        )[0]
        cand = self.remap[raw]
        u = float(self.aux_rng.random())
        row = self.loads[cand]
        mrow = self.measures[cand] if self.needs_measures else None
        j = decide_row_scalar(
            row.tolist(), None if mrow is None else mrow.tolist(), u, self.strategy
        )
        chosen = int(cand[j])
        self.loads[chosen] += 1
        self.ball_bin[ball] = chosen

    def _recompute_topology(self) -> None:
        """Rebuild the cyclic-successor remap and merged measures."""
        if self.active.all():
            self.remap = None
            self.measures = self.base_measures
            return
        n = self.n
        sentinel = 2 * n
        cand = np.where(self.active, np.arange(n, dtype=np.int64), sentinel)
        # next active index at or after j, wrapping to the first active
        succ = np.minimum.accumulate(cand[::-1])[::-1]
        first = int(np.argmax(self.active))
        self.remap = np.where(succ >= sentinel, first, succ).astype(np.int64)
        if self.base_measures is not None:
            self.measures = np.bincount(
                self.remap, weights=self.base_measures, minlength=n
            )

    # ------------------------------------------------------------------
    # snapshots and result assembly
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        live_loads = self.loads[self.active]
        self._max.append(int(live_loads.max()))
        self._tot.append(self.inserts_done - self.deletes_done)
        self._live.append(int(self.active.sum()))
        self._nu.append(nu_profile(live_loads))
        if self.record_loads:
            self._snaps.append(self.loads.copy())

    def result(self, engine: str) -> DynamicResult:
        return DynamicResult(
            loads=self.loads,
            active=self.active,
            d=self.d,
            strategy=self.strategy,
            engine=engine,
            inserts=self.inserts_done,
            deletes=self.deletes_done,
            epoch_ends=self.trace.epoch_ends,
            max_load_over_time=np.array(self._max, dtype=np.int64),
            total_load_over_time=np.array(self._tot, dtype=np.int64),
            live_bins_over_time=np.array(self._live, dtype=np.int64),
            nu_profiles=tuple(self._nu),
            partitioned=self.partitioned,
            load_snapshots=tuple(self._snaps) if self.record_loads else None,
        )


def run_sequential_dynamic(
    space: GeometricSpace,
    trace: EventTrace,
    d: int,
    strategy: TieBreak,
    rng,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    record_loads: bool = False,
) -> DynamicResult:
    """Reference engine: replay the trace one event at a time."""
    state = _DynamicState(
        space,
        trace,
        d,
        strategy,
        rng,
        partitioned=partitioned,
        rng_block=rng_block,
        record_loads=record_loads,
    )
    kinds = trace.kinds
    args = trace.args
    epoch_ends = trace.epoch_ends
    next_epoch_idx = 0
    for i in range(trace.num_events):
        kind = kinds[i]
        arg = int(args[i])
        if kind == EventKind.INSERT:
            state.apply_insert(arg)
        elif kind == EventKind.DELETE:
            state.apply_delete(arg)
        elif kind == EventKind.BIN_LEAVE:
            state.bin_leave(arg)
        else:
            state.bin_join(arg)
        if next_epoch_idx < epoch_ends.size and i + 1 == int(epoch_ends[next_epoch_idx]):
            state.snapshot()
            next_epoch_idx += 1
    return state.result("sequential")


def _run_event_window(
    state: _DynamicState,
    kinds: np.ndarray,
    args: np.ndarray,
    start: int,
    stop: int,
    batch_size: int,
    backend: KernelBackend | None = None,
) -> None:
    """Batched processing of a churn-free window of inserts/deletes.

    With an accelerated kernel ``backend``, the whole window runs
    through its ``dynamic_window`` kernel — a compiled scalar loop
    applying events strictly in order, i.e. the sequential reference
    semantics itself, so per-epoch trajectories are bit-identical by
    construction.  Otherwise the mixed-event conflict-free-prefix
    vectorization below is used.
    """
    if backend is not None and backend.dynamic_window is not None:
        if obs_enabled():
            counter_add("dynamics.kernel_windows")
            histogram_observe("dynamics.window_events", stop - start)
        ins, dels = backend.dynamic_window(
            kinds,
            args,
            start,
            stop,
            state.cands,
            state.us,
            state.d,
            state.remap,
            state.loads,
            state.measures if state.needs_measures else None,
            STRATEGY_CODES[state.strategy.value],
            state.ball_bin,
        )
        state.inserts_done += ins
        state.deletes_done += dels
        return
    d = state.d
    _obs = obs_enabled()
    i = start
    while i < stop:
        end = min(i + batch_size, stop)
        kw = kinds[i:end]
        aw = args[i:end]
        is_insert = kw == EventKind.INSERT
        b = end - i
        touched = np.empty((b, d), dtype=np.int64)
        if is_insert.any():
            raw = state.cands[aw[is_insert]]
            touched[is_insert] = raw if state.remap is None else state.remap[raw]
        if not is_insert.all():
            touched[~is_insert] = state.ball_bin[aw[~is_insert], None]
        prefix = mixed_conflict_prefix(touched, is_insert)
        if _obs:
            # the mixed-event vectorization's effectiveness in one number:
            # how many events each conflict-free prefix actually covered
            histogram_observe("dynamics.window_events", prefix)
        # --- apply the conflict-free prefix from the current loads ---
        p_ins = is_insert[:prefix]
        ins_ids = aw[:prefix][p_ins]
        if ins_ids.size:
            sub = touched[:prefix][p_ins]
            cand_loads = state.loads[sub]
            cand_measures = state.measures[sub] if state.needs_measures else None
            j = decide_rows(cand_loads, cand_measures, state.us[ins_ids], state.strategy)
            chosen = sub[np.arange(ins_ids.size), j]
            # prefix inserts have pairwise-disjoint candidates: no dups
            state.loads[chosen] += 1
            state.ball_bin[ins_ids] = chosen
            state.inserts_done += int(ins_ids.size)
        del_ids = aw[:prefix][~p_ins]
        if del_ids.size:
            bins = state.ball_bin[del_ids]
            np.subtract.at(state.loads, bins, 1)
            state.ball_bin[del_ids] = -1
            state.deletes_done += int(del_ids.size)
        i += prefix
        if prefix < b:
            # the event at `i` reads a bin the prefix touched: its
            # decision needs the updated loads, so step it scalar
            if _obs:
                counter_add("dynamics.scalar_steps")
            if is_insert[prefix]:
                state.apply_insert(int(aw[prefix]))
            else:
                state.apply_delete(int(aw[prefix]))
            i += 1


def run_batched_dynamic(
    space: GeometricSpace,
    trace: EventTrace,
    d: int,
    strategy: TieBreak,
    rng,
    *,
    partitioned: bool = False,
    rng_block: int = DEFAULT_RNG_BLOCK,
    batch_size: int | None = None,
    record_loads: bool = False,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
) -> DynamicResult:
    """Vectorized engine: mixed-event conflict-free-prefix batching.

    Bit-identical to :func:`run_sequential_dynamic` (enforced by tests):
    randomness is pre-drawn in the shared layout, decisions run through
    the same tie-break kernels, churn events and snapshots are shared
    scalar code acting as batch barriers, and only events provably
    independent of intra-batch ordering are decided together.

    ``backend`` selects the kernel backend for the churn-free event
    windows (:func:`repro.kernels.resolve_backend` semantics);
    accelerated backends replace the prefix machinery with one compiled
    in-order pass per window, with identical trajectories.

    ``threads`` (:func:`repro.kernels.resolve_threads` semantics) ``>=
    2`` pipelines the insert pre-draw on a producer thread
    (:class:`_PredrawPipeline`): each event window waits only for the
    candidates it can actually read — gated by the cumulative insert
    count at its end — so candidate generation overlaps replay.  The
    window chain itself is a serial dependency (each decision reads the
    loads the previous one wrote), so this overlap is the dynamic
    path's whole multicore story; results are bit-identical for every
    thread count.
    """
    if batch_size is None:
        batch_size = auto_batch_size(space.n, d)
    batch_size = check_positive_int(batch_size, "batch_size")
    backend_obj = resolve_backend(backend)
    eff_threads = resolve_threads(threads)
    state = _DynamicState(
        space,
        trace,
        d,
        strategy,
        rng,
        partitioned=partitioned,
        rng_block=rng_block,
        record_loads=record_loads,
        threads=eff_threads,
    )
    kinds = trace.kinds
    args = trace.args
    # inserts-before-or-at each event index, for pipeline gating (ball
    # ids are consecutive in trace order, so this bounds window reads)
    insert_cum = (
        np.cumsum(kinds == EventKind.INSERT) if state._pipeline is not None else None
    )
    churn_positions = np.nonzero(kinds >= EventKind.BIN_LEAVE)[0]
    churn_ptr = 0
    i = 0
    for epoch_end in trace.epoch_ends.tolist():
        while i < epoch_end:
            if churn_ptr < churn_positions.size and churn_positions[churn_ptr] == i:
                if kinds[i] == EventKind.BIN_LEAVE:
                    state.bin_leave(int(args[i]))
                else:
                    state.bin_join(int(args[i]))
                churn_ptr += 1
                i += 1
                continue
            stop = epoch_end
            if churn_ptr < churn_positions.size:
                stop = min(stop, int(churn_positions[churn_ptr]))
            if insert_cum is not None and stop > 0:
                state.ensure_cands(int(insert_cum[stop - 1]))
            _run_event_window(state, kinds, args, i, stop, batch_size, backend_obj)
            i = stop
        state.snapshot()
    return state.result("batched")


def simulate_dynamics(
    space: GeometricSpace,
    trace: EventTrace,
    d: int = 2,
    *,
    strategy: TieBreak | str = TieBreak.RANDOM,
    seed=None,
    engine: str = "auto",
    batch_size: int | None = None,
    rng_block: int = DEFAULT_RNG_BLOCK,
    partitioned: bool = False,
    record_loads: bool = False,
    backend: KernelBackend | str | None = None,
    threads: int | None = None,
    obs: bool | None = None,
) -> DynamicResult:
    """Replay a dynamic workload on a space — the dynamics facade.

    The dynamic counterpart of :func:`repro.core.placement.place_balls`:
    same seed handling, same engine auto-selection, same guarantee that
    the engine choice never changes the result.

    ``obs`` scopes the observability switch for this call
    (:func:`repro.obs.obs_session`): ``True`` traces a
    ``simulate_dynamics`` span (with window-size histograms and event
    counters underneath), ``False`` silences an otherwise-enabled
    process, ``None`` (default) follows the global/env switch.
    Observability never changes results.

    ``backend`` selects the kernel backend
    (:func:`repro.kernels.resolve_backend`: env var → this kwarg →
    auto-detect).  With an accelerated backend, ``engine="auto"``
    resolves to ``"batched"`` at every ``n`` — the compiled window
    kernel has no vectorization overhead to amortize — and the batched
    engine's event windows run through it.  ``engine="sequential"`` is
    always the pure-Python reference and ignores ``backend``.  Results
    are bit-identical across every engine/backend combination.

    ``threads`` (:func:`repro.kernels.resolve_threads`:
    ``REPRO_NUM_THREADS`` → this kwarg → physical cores) ``>= 2``
    pipelines the insert pre-draw on a producer thread in the batched
    engine; the sequential reference stays single-threaded.  Thread
    count never changes results (enforced by
    ``tests/kernels/test_threads_parity.py``).

    Examples
    --------
    >>> from repro.core import RingSpace
    >>> from repro.dynamics import steady_state_trace
    >>> ring = RingSpace.random(128, seed=1)
    >>> trace = steady_state_trace(128, pairs=256, seed=2)
    >>> res = simulate_dynamics(ring, trace, d=2, seed=3)
    >>> res.occupancy
    128
    >>> res.peak_max_load <= 8
    True
    """
    with obs_session(obs):
        if not isinstance(trace, EventTrace):
            raise TypeError(
                f"trace must be an EventTrace, got {type(trace).__name__}"
            )
        strat = TieBreak.coerce(strategy)
        rng = resolve_rng(seed)
        backend_obj = resolve_backend(backend)
        if engine == "auto":
            if backend_obj.dynamic_window is not None:
                engine = "batched"
            else:
                engine = _static_auto_engine(space.n)
        if engine not in ("sequential", "batched"):
            raise ValueError(
                f"engine must be 'auto', 'sequential' or 'batched', got {engine!r}"
            )
        eff_threads = resolve_threads(threads)
        with trace_span(
            "simulate_dynamics",
            engine=engine,
            backend=backend_obj.name,
            events=trace.num_events,
            n=space.n,
            d=d,
            threads=eff_threads,
        ):
            counter_add("dynamics.events", trace.num_events)
            if engine == "sequential":
                return run_sequential_dynamic(
                    space,
                    trace,
                    d,
                    strat,
                    rng,
                    partitioned=partitioned,
                    rng_block=rng_block,
                    record_loads=record_loads,
                )
            return run_batched_dynamic(
                space,
                trace,
                d,
                strat,
                rng,
                partitioned=partitioned,
                rng_block=rng_block,
                batch_size=batch_size,
                record_loads=record_loads,
                backend=backend_obj,
                threads=eff_threads,
            )
