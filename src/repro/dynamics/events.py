"""Event traces for dynamic balls-into-bins workloads.

A *trace* is a concrete, replayable sequence of events over the four
dynamic operations the DHT setting needs:

* ``INSERT`` — a new ball arrives and is placed with d choices,
* ``DELETE`` — a previously inserted ball departs,
* ``BIN_LEAVE`` — a bin (server) leaves; its balls are re-placed,
* ``BIN_JOIN`` — a bin slot comes (back) online, initially empty.

Traces are generated *ahead of execution*: which ball a delete removes
depends only on the arrival/departure order and the delete policy —
never on where balls were placed — so generators can resolve delete
targets to concrete ball ids.  That makes a trace a pure data object
both engines replay identically, which is what allows the batched
engine (:mod:`repro.dynamics.engine`) to prove bit-identical
trajectories against the sequential reference.

Delete policies:

* ``random`` — a uniform ball among the currently live ones (the
  memoryless departure model; matches M/M/∞ thinning),
* ``fifo`` — the oldest live ball (expiring caches, TTL'd DHT items),
* ``lifo`` — the newest live ball (adversarial: bursts that churn the
  most recently placed mass).

Generators produce the workload families of the DHT application:
:func:`steady_state_trace` (fixed-occupancy insert/delete alternation),
:func:`poisson_trace` (the embedded jump chain of an M/M/∞ queue),
:func:`adversarial_burst_trace` (insert/delete storms), and
:func:`churn_storm_trace` (bins leave and rejoin in waves).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = [
    "EventKind",
    "DeletePolicy",
    "EventTrace",
    "TraceBuilder",
    "steady_state_trace",
    "poisson_trace",
    "adversarial_burst_trace",
    "churn_storm_trace",
]


class EventKind(enum.IntEnum):
    """Operation codes stored in :attr:`EventTrace.kinds`."""

    INSERT = 0
    DELETE = 1
    BIN_LEAVE = 2
    BIN_JOIN = 3


class DeletePolicy(str, enum.Enum):
    """Which live ball a delete event removes."""

    RANDOM = "random"
    FIFO = "fifo"
    LIFO = "lifo"

    @classmethod
    def coerce(cls, value: "DeletePolicy | str") -> "DeletePolicy":
        """Accept enum members or their string values (case-insensitive)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        valid = ", ".join(m.value for m in cls)
        raise ValueError(f"unknown delete policy {value!r}; expected one of {valid}")


class _LiveSet:
    """The set of live ball ids with O(log) removal under any policy.

    Supports uniform-random removal (swap-remove over a dense list),
    oldest-first and newest-first removal (lazy min-/max-heaps over ids;
    ids are assigned in insertion order, so id order *is* age order).
    """

    def __init__(self) -> None:
        self._items: list[int] = []
        self._pos: dict[int, int] = {}
        self._oldest: list[int] = []
        self._newest: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def add(self, ball: int) -> None:
        self._pos[ball] = len(self._items)
        self._items.append(ball)
        heapq.heappush(self._oldest, ball)
        heapq.heappush(self._newest, -ball)

    def _swap_remove(self, ball: int) -> None:
        i = self._pos.pop(ball)
        last = self._items.pop()
        if last != ball:
            self._items[i] = last
            self._pos[last] = i

    def pop_random(self, u: float) -> int:
        ball = self._items[int(u * len(self._items))]
        self._swap_remove(ball)
        return ball

    def pop_fifo(self) -> int:
        while True:
            ball = heapq.heappop(self._oldest)
            if ball in self._pos:
                self._swap_remove(ball)
                return ball

    def pop_lifo(self) -> int:
        while True:
            ball = -heapq.heappop(self._newest)
            if ball in self._pos:
                self._swap_remove(ball)
                return ball


@dataclass(frozen=True)
class EventTrace:
    """A validated, replayable dynamic workload.

    Attributes
    ----------
    kinds:
        ``(E,)`` int8 array of :class:`EventKind` codes.
    args:
        ``(E,)`` int64 array: the ball id for ``INSERT``/``DELETE``
        events (insert ids are consecutive ``0, 1, 2, ...`` in event
        order), the bin slot for ``BIN_LEAVE``/``BIN_JOIN``.
    epoch_ends:
        Strictly increasing event counts at which engines snapshot the
        load state; the last entry always equals the number of events
        (when the trace is non-empty), so trajectories include the
        final state.
    n_slots:
        Size of the bin-slot universe; required (and validated) when
        the trace contains churn events, ``None`` otherwise.
    meta:
        Free-form provenance recorded by the generators.

    Examples
    --------
    >>> t = steady_state_trace(4, pairs=2, epochs=1, seed=0)
    >>> t.num_inserts, t.num_deletes, t.final_occupancy
    (6, 2, 4)
    """

    kinds: np.ndarray
    args: np.ndarray
    epoch_ends: np.ndarray
    n_slots: int | None = None
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        frozen = {}
        for name, dtype in (("kinds", np.int8), ("args", np.int64),
                            ("epoch_ends", np.int64)):
            given = getattr(self, name)
            arr = np.asarray(given, dtype=dtype)
            if arr.ndim != 1:
                raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
            # freeze a private copy, never a caller-owned (still
            # writeable) array in place
            if isinstance(given, np.ndarray) and arr.flags.writeable:
                arr = arr.copy()
            arr.flags.writeable = False
            frozen[name] = arr
        for name, arr in frozen.items():
            object.__setattr__(self, name, arr)
        if self.kinds.shape != self.args.shape:
            raise ValueError(
                f"kinds and args must align, got {self.kinds.shape} vs "
                f"{self.args.shape}"
            )
        counts = self._validate_replay()
        object.__setattr__(self, "_counts", counts)

    def _validate_replay(self) -> tuple[int, int, int]:
        """Replay the trace symbolically; return (inserts, deletes, churn)."""
        e = int(self.kinds.size)
        ends = self.epoch_ends
        if e == 0:
            if ends.size:
                raise ValueError("empty trace cannot have epoch_ends")
        else:
            if ends.size == 0 or int(ends[-1]) != e:
                raise ValueError(
                    f"epoch_ends must close the trace (last == {e}), got {ends!r}"
                )
            if int(ends[0]) < 1 or np.any(np.diff(ends) <= 0):
                raise ValueError("epoch_ends must be strictly increasing and >= 1")
        valid = np.isin(self.kinds, [k.value for k in EventKind])
        if not valid.all():
            raise ValueError(f"unknown event kind {self.kinds[~valid][0]}")
        churn = int(np.count_nonzero(self.kinds >= EventKind.BIN_LEAVE))
        if churn and self.n_slots is None:
            raise ValueError("traces with bin churn must set n_slots")
        if self.n_slots is not None:
            check_positive_int(self.n_slots, "n_slots")
        next_ball = 0
        live: set[int] = set()
        inactive: set[int] = set()
        active_count = self.n_slots if self.n_slots is not None else 1
        for kind, arg in zip(self.kinds.tolist(), self.args.tolist()):
            if kind == EventKind.INSERT:
                if arg != next_ball:
                    raise ValueError(
                        f"insert ids must be consecutive: expected {next_ball}, "
                        f"got {arg}"
                    )
                live.add(arg)
                next_ball += 1
            elif kind == EventKind.DELETE:
                if arg not in live:
                    raise ValueError(f"delete of ball {arg} that is not live")
                live.discard(arg)
            elif kind == EventKind.BIN_LEAVE:
                if not 0 <= arg < self.n_slots:
                    raise ValueError(f"bin slot {arg} outside [0, {self.n_slots})")
                if arg in inactive:
                    raise ValueError(f"bin {arg} leaves but is already inactive")
                if active_count <= 1:
                    raise ValueError("the last active bin cannot leave")
                inactive.add(arg)
                active_count -= 1
            else:  # BIN_JOIN
                if not 0 <= arg < self.n_slots:
                    raise ValueError(f"bin slot {arg} outside [0, {self.n_slots})")
                if arg not in inactive:
                    raise ValueError(f"bin {arg} joins but is already active")
                inactive.discard(arg)
                active_count += 1
        inserts = next_ball
        deletes = inserts - len(live)
        return inserts, deletes, churn

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return int(self.kinds.size)

    @property
    def num_inserts(self) -> int:
        return self._counts[0]

    @property
    def num_deletes(self) -> int:
        return self._counts[1]

    @property
    def has_churn(self) -> bool:
        return self._counts[2] > 0

    @property
    def final_occupancy(self) -> int:
        """Balls still live after the whole trace (inserts - deletes)."""
        return self.num_inserts - self.num_deletes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventTrace(events={self.num_events}, inserts={self.num_inserts}, "
            f"deletes={self.num_deletes}, churn={self._counts[2]}, "
            f"epochs={self.epoch_ends.size})"
        )


class TraceBuilder:
    """Imperative construction of an :class:`EventTrace`.

    Tracks the live-ball set (for delete-policy resolution) and the
    active-bin set (for churn validity) so generators only state intent.

    Examples
    --------
    >>> b = TraceBuilder()
    >>> _ = [b.insert() for _ in range(3)]
    >>> b.delete("fifo", resolve_rng(0))
    0
    >>> b.mark_epoch()
    >>> b.build().final_occupancy
    2
    """

    def __init__(self, n_slots: int | None = None) -> None:
        if n_slots is not None:
            n_slots = check_positive_int(n_slots, "n_slots")
        self._n_slots = n_slots
        self._active = set(range(n_slots)) if n_slots is not None else None
        self._kinds: list[int] = []
        self._args: list[int] = []
        self._epochs: list[int] = []
        self._live = _LiveSet()
        self._next_ball = 0

    @property
    def num_events(self) -> int:
        return len(self._kinds)

    @property
    def occupancy(self) -> int:
        return len(self._live)

    def insert(self) -> int:
        """Append an insert; returns the new ball's id."""
        ball = self._next_ball
        self._next_ball += 1
        self._live.add(ball)
        self._kinds.append(EventKind.INSERT)
        self._args.append(ball)
        return ball

    def delete(self, policy: DeletePolicy | str, rng) -> int:
        """Append a delete resolved by ``policy``; returns the ball id.

        ``rng`` is consumed (one uniform) only by the ``random`` policy,
        but is always required so callers keep RNG usage explicit.
        """
        if len(self._live) == 0:
            raise ValueError("cannot delete: no live balls")
        policy = DeletePolicy.coerce(policy)
        if policy is DeletePolicy.RANDOM:
            ball = self._live.pop_random(float(resolve_rng(rng).random()))
        elif policy is DeletePolicy.FIFO:
            ball = self._live.pop_fifo()
        else:
            ball = self._live.pop_lifo()
        self._kinds.append(EventKind.DELETE)
        self._args.append(ball)
        return ball

    def _check_slot(self, slot: int) -> int:
        if self._n_slots is None:
            raise ValueError("bin churn requires a TraceBuilder with n_slots")
        slot = check_non_negative_int(slot, "slot")
        if slot >= self._n_slots:
            raise ValueError(f"slot {slot} outside [0, {self._n_slots})")
        return slot

    def bin_leave(self, slot: int) -> None:
        """Append a bin departure."""
        slot = self._check_slot(slot)
        if slot not in self._active:
            raise ValueError(f"bin {slot} is already inactive")
        if len(self._active) <= 1:
            raise ValueError("the last active bin cannot leave")
        self._active.discard(slot)
        self._kinds.append(EventKind.BIN_LEAVE)
        self._args.append(slot)

    def bin_join(self, slot: int) -> None:
        """Append a bin (re)join."""
        slot = self._check_slot(slot)
        if slot in self._active:
            raise ValueError(f"bin {slot} is already active")
        self._active.add(slot)
        self._kinds.append(EventKind.BIN_JOIN)
        self._args.append(slot)

    def active_slots(self) -> np.ndarray:
        """Currently active bin slots, sorted (for deterministic draws)."""
        if self._active is None:
            raise ValueError("no slot universe: builder created without n_slots")
        return np.array(sorted(self._active), dtype=np.int64)

    def mark_epoch(self) -> None:
        """Snapshot boundary after the current last event (idempotent)."""
        e = len(self._kinds)
        if e == 0 or (self._epochs and self._epochs[-1] == e):
            return
        self._epochs.append(e)

    def build(self, **meta) -> EventTrace:
        """Finalize into a validated :class:`EventTrace`."""
        self.mark_epoch()
        return EventTrace(
            kinds=np.array(self._kinds, dtype=np.int8),
            args=np.array(self._args, dtype=np.int64),
            epoch_ends=np.array(self._epochs, dtype=np.int64),
            n_slots=self._n_slots,
            meta=meta,
        )


# ----------------------------------------------------------------------
# generators: the workload families of the DHT setting
# ----------------------------------------------------------------------
def steady_state_trace(
    m_target: int,
    pairs: int,
    *,
    policy: DeletePolicy | str = DeletePolicy.RANDOM,
    epochs: int = 10,
    seed=None,
) -> EventTrace:
    """Fixed-occupancy steady state: fill to ``m_target``, then churn.

    After a warm-up of ``m_target`` inserts, each of the ``pairs``
    steps deletes one ball (per ``policy``) and inserts a fresh one, so
    occupancy stays pinned at ``m_target`` while the population turns
    over — the regime in which a DHT spends its life.

    Examples
    --------
    >>> t = steady_state_trace(8, pairs=4, epochs=2, seed=1)
    >>> t.num_events, t.final_occupancy
    (16, 8)
    """
    m_target = check_positive_int(m_target, "m_target")
    pairs = check_non_negative_int(pairs, "pairs")
    epochs = check_positive_int(epochs, "epochs")
    rng = resolve_rng(seed)
    b = TraceBuilder()
    for _ in range(m_target):
        b.insert()
    b.mark_epoch()
    chunk_sizes = [len(c) for c in np.array_split(np.arange(pairs), epochs)]
    for size in chunk_sizes:
        for _ in range(size):
            b.delete(policy, rng)
            b.insert()
        b.mark_epoch()
    return b.build(
        generator="steady_state", m_target=m_target, pairs=pairs, policy=str(policy)
    )


def poisson_trace(
    events: int,
    target_occupancy: int,
    *,
    policy: DeletePolicy | str = DeletePolicy.RANDOM,
    epochs: int = 10,
    seed=None,
) -> EventTrace:
    """Embedded jump chain of an M/M/∞ queue (Poisson-thinned trace).

    Balls arrive at rate ``lambda = target_occupancy`` and each live
    ball departs at unit rate, so the next event is an insert with
    probability ``lambda / (lambda + k)`` at occupancy ``k``.  The
    occupancy performs a birth-death walk around ``target_occupancy``
    (its stationary mean) instead of being pinned there — arrivals and
    departures are *thinned*, not alternated.
    """
    events = check_positive_int(events, "events")
    target_occupancy = check_positive_int(target_occupancy, "target_occupancy")
    epochs = check_positive_int(epochs, "epochs")
    rng = resolve_rng(seed)
    lam = float(target_occupancy)
    b = TraceBuilder()
    marks = set(np.linspace(0, events, epochs + 1, dtype=np.int64)[1:].tolist())
    for step in range(1, events + 1):
        k = b.occupancy
        if k == 0 or rng.random() < lam / (lam + k):
            b.insert()
        else:
            b.delete(policy, rng)
        if step in marks:
            b.mark_epoch()
    return b.build(
        generator="poisson",
        target_occupancy=target_occupancy,
        policy=str(policy),
    )


def adversarial_burst_trace(
    base: int,
    burst: int,
    rounds: int,
    *,
    policy: DeletePolicy | str = DeletePolicy.LIFO,
    seed=None,
) -> EventTrace:
    """Alternating insert/delete storms on top of a standing base load.

    ``base`` balls are inserted once; each round then inserts ``burst``
    balls (pushing occupancy to a spike) and deletes ``burst`` balls by
    ``policy``.  The default ``lifo`` is the adversarial choice: the
    burst mass is churned every round, so the process keeps re-placing
    fresh balls on top of a saturated core.  Epochs bracket each spike
    so :class:`~repro.dynamics.result.DynamicResult` captures the peak.
    """
    base = check_non_negative_int(base, "base")
    burst = check_positive_int(burst, "burst")
    rounds = check_positive_int(rounds, "rounds")
    rng = resolve_rng(seed)
    b = TraceBuilder()
    for _ in range(base):
        b.insert()
    b.mark_epoch()
    for _ in range(rounds):
        for _ in range(burst):
            b.insert()
        b.mark_epoch()  # spike top
        for _ in range(burst):
            b.delete(policy, rng)
        b.mark_epoch()  # after drain
    return b.build(
        generator="adversarial_burst",
        base=base,
        burst=burst,
        rounds=rounds,
        policy=str(policy),
    )


def churn_storm_trace(
    n_slots: int,
    m: int,
    *,
    waves: int = 3,
    leave_fraction: float = 0.25,
    pairs_per_wave: int = 0,
    policy: DeletePolicy | str = DeletePolicy.RANDOM,
    rejoin: bool = True,
    seed=None,
) -> EventTrace:
    """Bins leave and (optionally) rejoin in waves under standing load.

    ``m`` balls are inserted, then each wave removes a random
    ``leave_fraction`` of the active bins (displacing their balls onto
    survivors), optionally churns ``pairs_per_wave`` delete/insert
    pairs while degraded, and finally rejoins the departed bins empty.
    This is the DHT churn-storm scenario: mass node failure followed by
    recovery, with the load guarantee measured along the way.
    """
    n_slots = check_positive_int(n_slots, "n_slots")
    m = check_non_negative_int(m, "m")
    waves = check_positive_int(waves, "waves")
    pairs_per_wave = check_non_negative_int(pairs_per_wave, "pairs_per_wave")
    if not 0.0 < leave_fraction < 1.0:
        raise ValueError(f"leave_fraction must be in (0, 1), got {leave_fraction}")
    rng = resolve_rng(seed)
    b = TraceBuilder(n_slots=n_slots)
    for _ in range(m):
        b.insert()
    b.mark_epoch()
    for _ in range(waves):
        active = b.active_slots()
        count = min(max(1, int(leave_fraction * active.size)), active.size - 1)
        leaving = rng.choice(active, size=count, replace=False)
        for slot in leaving:
            b.bin_leave(int(slot))
        b.mark_epoch()  # degraded state
        for _ in range(pairs_per_wave):
            if b.occupancy:
                b.delete(policy, rng)
            b.insert()
        if rejoin:
            for slot in leaving:
                b.bin_join(int(slot))
        b.mark_epoch()  # recovered state
    return b.build(
        generator="churn_storm",
        n_slots=n_slots,
        m=m,
        waves=waves,
        leave_fraction=leave_fraction,
        pairs_per_wave=pairs_per_wave,
        policy=str(policy),
        rejoin=rejoin,
    )
