"""Dynamic insert/delete/churn simulation: the paper's process, in time.

The dynamic model
-----------------
Theorem 1 of the paper is a *static* statement: ``m`` balls are placed
once, each with ``d`` geometric choices, and the maximum load at the
end of the process is ``log log n / log d + O(1)`` w.h.p.  The
motivating DHT setting — and its precursor, the two-choice DHT of
Byers, Considine & Mitzenmacher (IPTPS 2003) — is inherently dynamic:
keys are inserted *and deleted*, servers join and leave, and the load
guarantee must hold along the whole trajectory.  This subsystem makes
that workload class executable:

* :mod:`repro.dynamics.events` — concrete, replayable event traces
  (insert, delete under random/FIFO/LIFO policies, bin leave/join)
  with generators for steady-state occupancy, Poisson-thinned M/M/∞
  traffic, adversarial bursts, and churn storms;
* :mod:`repro.dynamics.engine` — a sequential reference engine and a
  vectorized batched engine that extends the static conflict-free-
  prefix trick to mixed insert/delete blocks, producing bit-identical
  per-epoch load trajectories (enforced by tests);
* :mod:`repro.dynamics.result` — :class:`DynamicResult`, the
  trajectory object: max-load-over-time, per-epoch ν-profiles, live
  bins, and final-state statistics.

Relation to the proof
---------------------
What Theorem 1's layered induction *covers*: any prefix of inserts —
an insert-only trace reproduces the static process bit-for-bit (the
engines share the static RNG layout), so the static bound applies at
every epoch of a pure-arrival trace.  What it does *not* cover:
deletions and churn.  Under random deletions the process resembles the
heavily-loaded dynamic settings studied after ABKU (where two-choice
balance is known to persist), but adversarial (LIFO) deletions and
correlated bin departures step outside the theorem's hypotheses; here
simulation is the instrument, and the ``dynamic_churn`` experiment
measures exactly how far the double-logarithmic guarantee stretches
along dynamic trajectories.

Quickstart
----------
>>> from repro.core import RingSpace
>>> from repro.dynamics import simulate_dynamics, steady_state_trace
>>> ring = RingSpace.random(256, seed=0)
>>> trace = steady_state_trace(256, pairs=512, policy="random", seed=1)
>>> res = simulate_dynamics(ring, trace, d=2, seed=2)
>>> res.occupancy == 256 and res.peak_max_load <= 8
True
"""

from repro.dynamics.events import (
    DeletePolicy,
    EventKind,
    EventTrace,
    TraceBuilder,
    adversarial_burst_trace,
    churn_storm_trace,
    poisson_trace,
    steady_state_trace,
)
from repro.dynamics.engine import (
    mixed_conflict_prefix,
    run_batched_dynamic,
    run_sequential_dynamic,
    simulate_dynamics,
)
from repro.dynamics.result import DynamicResult

__all__ = [
    "DeletePolicy",
    "EventKind",
    "EventTrace",
    "TraceBuilder",
    "steady_state_trace",
    "poisson_trace",
    "adversarial_burst_trace",
    "churn_storm_trace",
    "run_sequential_dynamic",
    "run_batched_dynamic",
    "simulate_dynamics",
    "mixed_conflict_prefix",
    "DynamicResult",
]
