"""Render grids of max-load distributions as the paper's tables.

The paper's tables are grids with one row per ``n`` and one column per
``d`` (Tables 1-2) or per strategy (Table 3); every cell is a small
frequency list.  :func:`render_table` reproduces that layout in
monospace text so the harness output can be compared side by side with
the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stats.distributions import MaxLoadDistribution

__all__ = ["render_table", "exponent_label"]


def exponent_label(n: int) -> str:
    """``2^k`` label when ``n`` is a power of two, else ``str(n)``."""
    if n > 0 and n & (n - 1) == 0:
        return f"2^{n.bit_length() - 1}"
    return str(n)


def render_table(
    cells: Mapping[tuple, MaxLoadDistribution],
    row_keys: Sequence,
    col_keys: Sequence,
    *,
    title: str = "",
    row_label=exponent_label,
    col_label=str,
    min_pct: float = 0.0,
) -> str:
    """Render ``cells[(row, col)]`` distributions as a paper-style grid.

    Parameters
    ----------
    cells:
        Mapping from ``(row_key, col_key)`` to a distribution; missing
        cells render as ``(not run)``.
    row_keys, col_keys:
        Orders the grid (rows are usually ``n`` values, columns ``d``
        values or strategy names).
    row_label, col_label:
        Formatting callables for the header column/row.

    Examples
    --------
    >>> d = MaxLoadDistribution.from_samples([3, 3, 4])
    >>> print(render_table({(256, 2): d}, [256], [2], title="demo")
    ...       )  # doctest: +ELLIPSIS
    demo
    ...
    """
    col_width = 18
    header_width = 8
    blocks: list[str] = []
    if title:
        blocks.append(title)
    header = f"{'n':<{header_width}}" + "".join(
        f"{col_label(c):<{col_width}}" for c in col_keys
    )
    blocks.append(header)
    blocks.append("-" * len(header))
    for r in row_keys:
        cell_lines: list[list[str]] = []
        for c in col_keys:
            dist = cells.get((r, c))
            cell_lines.append(
                dist.lines(min_pct=min_pct) if dist is not None else ["(not run)"]
            )
        height = max(len(lines) for lines in cell_lines)
        for i in range(height):
            left = row_label(r) if i == 0 else ""
            row = f"{left:<{header_width}}"
            for lines in cell_lines:
                text = lines[i] if i < len(lines) else ""
                row += f"{text:<{col_width}}"
            blocks.append(row.rstrip())
        blocks.append("")
    return "\n".join(blocks).rstrip() + "\n"
