"""Deterministic multi-trial simulation of table cells.

A *cell* of the paper's tables is a tuple (space kind, n, m, d,
strategy); each trial re-draws both the server placement and the item
choices.  Seeds are spawned per trial from a master
:class:`~numpy.random.SeedSequence`, so results are identical whether
trials run serially or across a process pool, and whether other cells
run before or after (DESIGN.md decision 3).

Engine selection: trials of one cell are statistically independent, so
the default (``engine="auto"``) runs them through the trial-fused
engine (:func:`repro.core.multitrial.run_fused`) whenever the work is
serial and has at least two trials — one vectorized pass across all
trials instead of a Python loop of per-trial runs.  ``n_jobs != 1``
keeps the process-pool path (each worker using the per-run auto
engine).  Every choice is bit-identical to every other: the engines
share RNG layout and tie-break kernels, so the engine/parallelism knobs
only move wall-clock time, never results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from multiprocessing import get_context

import numpy as np

from repro.core.loads import max_load, nu_profile
from repro.core.multitrial import fused_trial_chunk, run_fused
from repro.core.placement import place_balls
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.obs import counter_add, obs_session, trace_span
from repro.stats.distributions import MaxLoadDistribution
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = [
    "CellSpec",
    "simulate_max_load",
    "run_cell",
    "run_cell_profile",
    "run_trial_map",
    "auto_cell_engine",
]

_CELL_ENGINES = ("auto", "fused", "sequential", "batched", "process")

_SPACES = ("ring", "torus", "uniform")


@dataclass(frozen=True)
class CellSpec:
    """One table cell: the full parameterization of a trial.

    Attributes
    ----------
    space:
        ``"ring"`` (Table 1/3), ``"torus"`` (Table 2) or ``"uniform"``
        (ABKU baseline).
    n:
        Number of servers/bins.
    d:
        Choices per item.
    m:
        Items; ``None`` means ``m = n`` (the tables' setting).
    strategy:
        Tie-break rule (Table 3 varies this).
    partitioned:
        Vöcking interval sampling (the ``arc-left`` scheme combines
        this with ``strategy="first"``).
    dim:
        Torus dimension (2 in the paper; ablations raise it).
    """

    space: str
    n: int
    d: int
    m: int | None = None
    strategy: str = "random"
    partitioned: bool = False
    dim: int = 2

    def __post_init__(self) -> None:
        if self.space not in _SPACES:
            raise ValueError(f"space must be one of {_SPACES}, got {self.space!r}")
        check_positive_int(self.n, "n")
        check_positive_int(self.d, "d")
        if self.m is not None:
            check_positive_int(self.m, "m")
        TieBreak.coerce(self.strategy)  # validate eagerly
        check_positive_int(self.dim, "dim")

    @property
    def balls(self) -> int:
        return self.n if self.m is None else self.m

    def with_(self, **kwargs) -> "CellSpec":
        """Functional update (convenience for sweeps)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        bits = [self.space, f"n={self.n}", f"d={self.d}"]
        if self.m is not None and self.m != self.n:
            bits.append(f"m={self.m}")
        if self.strategy != "random":
            bits.append(self.strategy)
        if self.partitioned:
            bits.append("partitioned")
        if self.space == "torus" and self.dim != 2:
            bits.append(f"dim={self.dim}")
        return " ".join(bits)


def _build_space(spec: CellSpec, rng: np.random.Generator):
    if spec.space == "ring":
        return RingSpace.random(spec.n, seed=rng)
    if spec.space == "torus":
        return TorusSpace.random(spec.n, dim=spec.dim, seed=rng)
    from repro.baselines.uniform import UniformSpace

    return UniformSpace(spec.n)


def simulate_max_load(spec: CellSpec, seed, engine: str = "auto") -> int:
    """One trial: fresh server placement, fresh items, max load out."""
    rng = np.random.default_rng(seed)
    space = _build_space(spec, rng)
    result = place_balls(
        space,
        spec.balls,
        spec.d,
        strategy=spec.strategy,
        partitioned=spec.partitioned,
        seed=rng,
        engine=engine,
    )
    return result.max_load


def simulate_nu_profile(spec: CellSpec, seed, engine: str = "auto") -> np.ndarray:
    """One trial returning the full ν-profile (bins with load >= i).

    This is the object the fluid-limit ODE predicts; see
    :func:`run_cell_profile`.
    """
    rng = np.random.default_rng(seed)
    space = _build_space(spec, rng)
    result = place_balls(
        space,
        spec.balls,
        spec.d,
        strategy=spec.strategy,
        partitioned=spec.partitioned,
        seed=rng,
        engine=engine,
    )
    return result.nu_profile()


def auto_cell_engine(n: int, trials: int, n_jobs: int | None = 1) -> str:
    """Pick the cell-level execution strategy expected to be fastest.

    ``n_jobs != 1`` keeps the process pool (workers then pick the
    per-run engine); serial cells with at least two trials fuse — the
    fused engine amortizes every numpy call over all trials, so it wins
    from tiny ``n`` upward.  A single serial trial degenerates to the
    per-run auto rule.  All outcomes are bit-identical.
    """
    if n_jobs != 1:
        return "process"
    if trials >= 2:
        return "fused"
    from repro.core.engine import auto_engine

    return auto_engine(n)


def _run_cell_fused(
    spec: CellSpec, trials: int, seed, *, profile: bool, backend=None,
    threads=None,
):
    """All trials of a cell through the trial-fused engine.

    Per-trial RNG consumption is identical to
    :func:`simulate_max_load`: trial ``k``'s generator first draws the
    server placement, then the item choices, so results are
    bit-identical to the per-trial paths.  Trials are processed in
    memory-bounded fusion chunks (:func:`fused_trial_chunk`), which
    never changes results.  ``backend`` and ``threads`` are forwarded
    to :func:`~repro.core.multitrial.run_fused` (kernel backend and
    thread-count selection; results are independent of both).
    """
    seeds = spawn_seed_sequences(seed, trials)
    chunk = fused_trial_chunk(spec.n, spec.balls, spec.d)
    strategy = TieBreak.coerce(spec.strategy)
    out = []
    for c0 in range(0, trials, chunk):
        rngs = [np.random.default_rng(ss) for ss in seeds[c0 : c0 + chunk]]
        spaces = [_build_space(spec, rng) for rng in rngs]
        loads, _ = run_fused(
            spaces,
            spec.balls,
            spec.d,
            strategy,
            rngs,
            partitioned=spec.partitioned,
            backend=backend,
            threads=threads,
        )
        if profile:
            out.extend(nu_profile(row) for row in loads)
        else:
            out.extend(max_load(row) for row in loads)
    return out


def _resolve_cell_engine(engine: str, n: int, trials: int, n_jobs: int | None) -> str:
    if engine not in _CELL_ENGINES:
        raise ValueError(f"engine must be one of {_CELL_ENGINES}, got {engine!r}")
    if engine == "auto":
        return auto_cell_engine(n, trials, n_jobs)
    return engine


def run_cell_profile(
    spec: CellSpec,
    trials: int,
    seed=None,
    *,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads: int | None = None,
    obs: bool | None = None,
) -> np.ndarray:
    """Mean ν-profile over trials (padded to the longest observed).

    Returns ``profile`` with ``profile[i]`` = average number of bins
    holding at least ``i`` balls.  Dividing by ``spec.n`` gives the
    empirical counterpart of the fluid limit's ``s_i`` (and of the
    layered induction's ``nu_i / n``), which the `theory_vs_sim`
    analysis and tests compare against
    :func:`repro.theory.fluid.fluid_limit_tails`.

    ``n_jobs``, ``engine`` and ``threads`` behave exactly as in
    :func:`run_cell`; ν-profile sweeps parallelize or fuse the same way
    max-load sweeps do, with identical results either way.
    """
    trials = check_positive_int(trials, "trials")
    resolved = _resolve_cell_engine(engine, spec.n, trials, n_jobs)
    with obs_session(obs), trace_span(
        "run_cell_profile", cell=spec.label(), engine=resolved, trials=trials
    ):
        counter_add("cell.profile_runs")
        if resolved == "fused":
            profiles = _run_cell_fused(
                spec, trials, seed, profile=True, backend=backend,
                threads=threads,
            )
        elif resolved == "process":
            profiles = run_trial_map(
                simulate_nu_profile, spec, trials, seed, n_jobs=n_jobs
            )
        else:
            seeds = spawn_seed_sequences(seed, trials)
            profiles = [simulate_nu_profile(spec, ss, resolved) for ss in seeds]
        depth = max(p.size for p in profiles)
        acc = np.zeros(depth, dtype=np.float64)
        for p in profiles:
            acc[: p.size] += p
        return acc / trials


def _worker(args):
    fn, context, entropy_state = args
    return fn(context, np.random.SeedSequence(**entropy_state))


def _seed_state(ss: np.random.SeedSequence) -> dict:
    return {
        "entropy": ss.entropy,
        "spawn_key": ss.spawn_key,
        "pool_size": ss.pool_size,
    }


def run_trial_map(fn, context, trials: int, seed=None, *, n_jobs: int | None = 1) -> list:
    """Run ``fn(context, seed_seq)`` for ``trials`` spawned seeds.

    The shared trial harness: per-trial seeds are spawned from the
    master seed, and ``n_jobs`` selects serial (1), all cores
    (``None``) or a fixed pool size — with results independent of that
    choice.  ``fn`` must be a module-level callable and ``context``
    picklable so the pool path can ship them to workers.
    """
    trials = check_positive_int(trials, "trials")
    seeds = spawn_seed_sequences(seed, trials)
    if n_jobs == 1:
        return [fn(context, ss) for ss in seeds]
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = check_positive_int(n_jobs, "n_jobs")
    ctx = get_context("fork") if os.name == "posix" else get_context()
    payload = [(fn, context, _seed_state(ss)) for ss in seeds]
    with ctx.Pool(min(n_jobs, trials)) as pool:
        return pool.map(_worker, payload, chunksize=max(1, trials // (4 * n_jobs)))


def run_cell(
    spec: CellSpec,
    trials: int,
    seed=None,
    *,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads: int | None = None,
    obs: bool | None = None,
) -> MaxLoadDistribution:
    """Run ``trials`` independent trials of a cell.

    Parameters
    ----------
    n_jobs:
        1 = serial (default); ``None`` = one process per CPU; k > 1 =
        that many worker processes.  Results are independent of this
        choice.
    engine:
        ``"auto"`` (default, see :func:`auto_cell_engine`),
        ``"fused"`` (all trials through one trial-fused run),
        ``"process"`` (the ``n_jobs`` worker pool), or
        ``"sequential"``/``"batched"`` (serial loop with that per-run
        engine — the pre-fusion behavior, kept mostly for
        benchmarking).  Results are independent of this choice.
    backend:
        Kernel backend for the fused path
        (:func:`repro.kernels.resolve_backend`: env var → this kwarg →
        auto-detect).  The sequential/batched/process paths honour the
        ``REPRO_KERNEL_BACKEND`` env var instead (the kwarg does not
        cross process boundaries).  Results are independent of this
        choice.
    threads:
        Worker-thread count for the fused path
        (:func:`repro.kernels.resolve_threads`: ``REPRO_NUM_THREADS`` →
        this kwarg → physical cores): GIL-released parallel placement
        kernels plus a pipelined RNG candidate producer.  Like
        ``backend``, the other paths honour the env var only.  Results
        are independent of this choice.
    obs:
        Observability scope for this call
        (:func:`repro.obs.obs_session`): ``True`` traces a
        ``run_cell`` span (engine spans nested underneath) and bumps
        the cell counters, ``False`` silences an otherwise-enabled
        process, ``None`` follows the global ``REPRO_OBS`` switch.
        Never changes results.

    Examples
    --------
    >>> dist = run_cell(CellSpec("ring", 256, 2), trials=8, seed=0)
    >>> dist.trials
    8
    """
    trials = check_positive_int(trials, "trials")
    resolved = _resolve_cell_engine(engine, spec.n, trials, n_jobs)
    with obs_session(obs), trace_span(
        "run_cell", cell=spec.label(), engine=resolved, trials=trials
    ):
        counter_add("cell.runs")
        counter_add("cell.engine_selected", engine=resolved)
        if resolved == "fused":
            maxima = _run_cell_fused(
                spec, trials, seed, profile=False, backend=backend,
                threads=threads,
            )
        elif resolved == "process":
            maxima = run_trial_map(
                simulate_max_load, spec, trials, seed, n_jobs=n_jobs
            )
        else:
            seeds = spawn_seed_sequences(seed, trials)
            maxima = [simulate_max_load(spec, ss, resolved) for ss in seeds]
        return MaxLoadDistribution.from_samples(maxima, spec=spec)
