"""Confidence intervals for the reported frequencies.

The paper reports raw percentages over 1000 trials; when we compare our
scaled-down trial counts against those numbers the honest statement is
an interval, not a point.  Wilson's score interval behaves well at the
extreme proportions the tables contain (0.1%-level entries).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["wilson_interval", "frequencies_compatible"]


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Examples
    --------
    >>> lo, hi = wilson_interval(700, 1000)
    >>> lo < 0.7 < hi
    True
    """
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes={successes} exceeds trials={trials}")
    if z <= 0:
        raise ValueError(f"z must be > 0, got {z}")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def frequencies_compatible(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    *,
    z: float = 2.58,
) -> bool:
    """Whether two observed proportions could share a true value.

    True when the two Wilson intervals (at the given z) overlap — the
    criterion the experiment shape checks use to compare our scaled
    trial counts with the paper's 1000-trial percentages.
    """
    lo_a, hi_a = wilson_interval(successes_a, trials_a, z=z)
    lo_b, hi_b = wilson_interval(successes_b, trials_b, z=z)
    return lo_a <= hi_b and lo_b <= hi_a
