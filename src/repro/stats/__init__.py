"""Experiment machinery: deterministic trials, distributions, tables.

The paper's evaluation format is a *frequency table of maximum loads*
over repeated trials (e.g. "4 ...... 70.0%").  This package provides:

* :mod:`repro.stats.trials` — cell specifications and a deterministic
  (optionally multiprocess) trial runner,
* :mod:`repro.stats.distributions` — the max-load frequency
  distribution type with paper-style formatting,
* :mod:`repro.stats.tables` — rendering grids of distributions as the
  paper's tables,
* :mod:`repro.stats.confidence` — Wilson intervals for the reported
  frequencies.
"""

from repro.stats.trials import CellSpec, run_cell, simulate_max_load
from repro.stats.distributions import MaxLoadDistribution
from repro.stats.tables import render_table
from repro.stats.confidence import wilson_interval

__all__ = [
    "CellSpec",
    "simulate_max_load",
    "run_cell",
    "MaxLoadDistribution",
    "render_table",
    "wilson_interval",
]
