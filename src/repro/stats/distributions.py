"""Max-load frequency distributions in the paper's table format.

Each cell of Tables 1-3 is a small frequency table: for every observed
maximum load, the percentage of trials that produced it, e.g.::

    3 ...... 26.8%
    4 ...... 70.0%
    5 ......  3.2%

:class:`MaxLoadDistribution` is that object, with exact integer counts
underneath (percentages are presentation only) plus the summary
statistics the analysis reasons about.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["MaxLoadDistribution"]


@dataclass(frozen=True)
class MaxLoadDistribution:
    """Empirical distribution of the maximum load over trials.

    Attributes
    ----------
    counts:
        Mapping from observed max load to number of trials.
    spec:
        The :class:`~repro.stats.trials.CellSpec` that produced it
        (``None`` for distributions built from raw samples).
    """

    counts: Mapping[int, int]
    spec: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("distribution must contain at least one trial")
        for k, v in self.counts.items():
            if int(k) < 0 or int(v) <= 0:
                raise ValueError(f"invalid count entry {k}: {v}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, maxima, spec=None) -> "MaxLoadDistribution":
        """Build from an iterable of per-trial maximum loads."""
        data = Counter(int(x) for x in maxima)
        return cls(counts=dict(sorted(data.items())), spec=spec)

    @classmethod
    def from_json_counts(cls, counts: Mapping, spec=None) -> "MaxLoadDistribution":
        """Build from a JSON count mapping (string keys), sorted by load.

        Inverse of :meth:`to_json_counts`; the deserialization half of
        the sweep cache's on-disk payload format.
        """
        return cls(
            counts=dict(sorted((int(k), int(v)) for k, v in counts.items())),
            spec=spec,
        )

    def to_json_counts(self) -> dict[str, int]:
        """JSON-safe count mapping (string keys), sorted by load.

        The canonical wire/disk form used by the sweep cache and
        ``SweepResult`` artifacts; round-trips exactly through
        :meth:`from_json_counts`.
        """
        return {str(k): int(v) for k, v in sorted(self.counts.items())}

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def trials(self) -> int:
        return sum(self.counts.values())

    @property
    def support(self) -> list[int]:
        return sorted(self.counts)

    @property
    def mode(self) -> int:
        """Most frequent maximum load (lowest value wins ties)."""
        best = max(self.counts.values())
        return min(k for k, v in self.counts.items() if v == best)

    @property
    def mean(self) -> float:
        return sum(k * v for k, v in self.counts.items()) / self.trials

    @property
    def min(self) -> int:
        return min(self.counts)

    @property
    def max(self) -> int:
        return max(self.counts)

    def frequency(self, load: int) -> float:
        """Fraction of trials with this exact maximum load."""
        return self.counts.get(int(load), 0) / self.trials

    def cdf(self, load: int) -> float:
        """Fraction of trials with maximum load <= ``load``."""
        return sum(v for k, v in self.counts.items() if k <= load) / self.trials

    def quantile(self, q: float) -> int:
        """Smallest load with ``cdf >= q``."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        acc = 0
        for k in self.support:
            acc += self.counts[k]
            if acc / self.trials >= q:
                return k
        return self.max  # pragma: no cover - unreachable

    def merge(self, other: "MaxLoadDistribution") -> "MaxLoadDistribution":
        """Pool trials of two distributions of the same cell."""
        merged = Counter(self.counts)
        merged.update(other.counts)
        return MaxLoadDistribution(
            counts=dict(sorted(merged.items())), spec=self.spec
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def lines(self, *, min_pct: float = 0.0) -> list[str]:
        """Paper-style lines: ``"4 ...... 70.0%"``.

        ``min_pct`` hides entries rarer than the threshold (the paper
        prints everything down to 0.1%).
        """
        total = self.trials
        out = []
        width = len(str(self.max))
        for k in self.support:
            pct = 100.0 * self.counts[k] / total
            if pct + 1e-12 < min_pct:
                continue
            out.append(f"{k:>{width}d} ...... {pct:5.1f}%")
        return out

    def format(self, *, min_pct: float = 0.0) -> str:
        return "\n".join(self.lines(min_pct=min_pct))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()

    # ------------------------------------------------------------------
    # comparison helpers used by the shape checks
    # ------------------------------------------------------------------
    def total_variation(self, other: "MaxLoadDistribution") -> float:
        """Total-variation distance between two empirical distributions."""
        keys = set(self.counts) | set(other.counts)
        return 0.5 * float(
            np.sum(
                [abs(self.frequency(k) - other.frequency(k)) for k in keys]
            )
        )
