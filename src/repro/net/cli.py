"""The ``net`` subcommand of ``python -m repro.experiments``.

One verb so far::

    # churn-storm smoke: build a storm trace, replay it as protocol
    # messages, quiesce, and run the ring-invariant checker
    python -m repro.experiments net smoke --peers 1000 --waves 3

The smoke prints the run summary (hop stats, repair latency, load
skew, message counts, event-log digest) and exits non-zero when the
invariant checker finds a violation — which is what the CI ``net``
job keys off.  ``--fast`` switches to :func:`repro.net.driver.fast_config`
(no key storage, analytic finger refresh) for the 10\\ :sup:`5`-peer
storm that would otherwise not fit a CI budget.
"""

from __future__ import annotations

import argparse
import sys

from repro.dynamics.events import churn_storm_trace
from repro.net.driver import fast_config, run_trace
from repro.net.simulator import NetConfig
from repro.utils.rng import stable_hash_seed

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``net`` subcommand parser (currently the ``smoke`` verb)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments net",
        description="Message-level overlay simulator: churn-storm smoke runs.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    sm = sub.add_parser(
        "smoke", help="replay a churn storm through the simulator and check it"
    )
    sm.add_argument("--peers", type=int, default=1000,
                    help="overlay size (default 1000)")
    sm.add_argument("--keys", type=int, default=256,
                    help="standing stored keys (ignored with --fast)")
    sm.add_argument("--waves", type=int, default=3,
                    help="failure/recovery waves (default 3)")
    sm.add_argument("--leave-fraction", type=float, default=0.1,
                    help="fraction of peers departing per wave (default 0.1)")
    sm.add_argument("--pairs", type=int, default=16,
                    help="key churn pairs per wave (default 16)")
    sm.add_argument("--graceful-fraction", type=float, default=0.5,
                    help="probability a departure announces itself "
                    "(0 = every departure is an abrupt death)")
    sm.add_argument("--lookups", type=int, default=32,
                    help="measurement lookups per epoch (default 32)")
    sm.add_argument("--seed", type=int, default=0, help="master seed")
    sm.add_argument("--check", choices=("full", "ring", "off"), default="ring",
                    help="invariant pass (default ring: a storm wave kills "
                    "more peers than the replication degree covers, so key "
                    "loss is legitimate there; use full for bounded churn)")
    sm.add_argument("--fingers", type=int, default=None,
                    help="finger-table width override")
    sm.add_argument("--fast", action="store_true",
                    help="mega-peer mode: no key storage, analytic "
                    "finger refresh (see repro.net.fast_config)")
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code (1 = invariants failed)."""
    args = build_parser().parse_args(argv)
    overrides = {}
    if args.fingers is not None:
        overrides["n_fingers"] = args.fingers
    cfg = fast_config(**overrides) if args.fast else NetConfig(**overrides)
    trace = churn_storm_trace(
        args.peers,
        0 if args.fast else args.keys,
        waves=args.waves,
        leave_fraction=args.leave_fraction,
        pairs_per_wave=0 if args.fast else args.pairs,
        policy="random",
        seed=stable_hash_seed(args.seed, "net-smoke-trace"),
    )
    result = run_trace(
        trace,
        cfg=cfg,
        seed=args.seed,
        graceful_fraction=args.graceful_fraction,
        lookups_per_epoch=args.lookups,
        check=args.check,
    )
    m = result.metrics
    hops = m["hops"]
    rep = m["repair"]
    print(
        f"net smoke: {result.n_slots} peers, {result.events} trace events, "
        f"{result.ticks} ticks, {result.meta['messages']} messages"
    )
    print(
        f"  lookups: {hops['count']} resolved "
        f"(mean {hops['mean']:.2f} hops, max {hops['max']}, "
        f"p99 {hops['p99']:.0f}); {m['failed_lookups']} failed"
    )
    print(
        f"  repairs: {rep['count']} splices "
        f"(mean {rep['mean']:.1f} ticks, p99 {rep['p99']:.0f}); "
        f"{m['deaths']} deaths, {m['leaves']} leaves, {m['joins']} joins"
    )
    print(
        f"  load skew: {result.skew['skew']:.2f} "
        f"(max {result.skew['max']} / mean {result.skew['mean']:.1f}), "
        f"digest {result.digest}"
    )
    if result.invariants is None:
        print("  invariants: skipped")
        return 0
    if result.invariants.ok:
        print(f"  invariants: ok {result.invariants.stats}")
        return 0
    print(f"  invariants: FAILED {result.invariants.stats}", file=sys.stderr)
    for line in result.invariants.violations[:10]:
        print(f"    {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
