"""Message batches and the deterministic event log of :mod:`repro.net`.

The simulator is *message-level*: every protocol interaction —
stabilization, failure detection, routing, joins, departures — is a
message with a source, a destination, and a delivery tick.  To keep
10\\ :sup:`5`-peer rings feasible in pure numpy, messages are not
objects: a :class:`MsgBatch` is a structure-of-arrays slice holding
every message of one kind sent in one call, and the event loop delivers
whole batches per tick (grouping by kind and concatenating columns)
instead of popping messages one at a time.

Column meaning is kind-dependent (documented on :class:`MsgKind`); the
unused columns of a kind are zero.  The :class:`EventLog` chains a
BLAKE2b digest over every delivered batch, which is what the
determinism pin tests compare: same seed + same trace ⇒ the same
digest, byte for byte, regardless of thread or worker settings.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["MsgKind", "FindMode", "MsgBatch", "EventLog"]


class MsgKind(enum.IntEnum):
    """Protocol message kinds, in deterministic per-tick processing order.

    Column usage (all other columns zero):

    * ``GET_PRED`` — ``src`` asks ``dst`` (its successor) for ``dst``'s
      predecessor and successor list (one stabilize round).
    * ``PRED_REPLY`` — ``node`` is the replier's predecessor slot (or
      -1), ``slist`` its successor list at reply time.
    * ``NOTIFY`` — ``src`` proposes itself as ``dst``'s predecessor.
    * ``PING`` — ``src`` probes ``dst`` (its predecessor); liveness is
      signalled by the *absence* of a :attr:`NACK`.
    * ``FIND_SUCC`` — one routing hop: ``target`` is the identifier
      being resolved, ``node`` the requesting slot, ``hops`` the count
      so far, ``mode`` a :class:`FindMode`, ``fk`` the finger column
      (``FIX_FINGER`` mode), ``tag`` a caller correlation id.
    * ``FOUND`` — resolution reply to the requester: ``node`` is the
      owner slot; ``target``/``hops``/``mode``/``fk``/``tag`` echo the
      request.
    * ``NACK`` — timeout surrogate: a message sent to a dead peer
      bounces back to its sender after ``timeout`` ticks; ``ok`` is the
      original kind and the routing columns are preserved so a
      ``FIND_SUCC`` can be retried around the failure.
    * ``LEAVE_PRED`` — graceful departure notice to the predecessor;
      ``node`` is the leaver's successor (the splice target).
    * ``LEAVE_SUCC`` — graceful departure notice to the successor;
      ``node`` is the leaver's predecessor.
    * ``JOIN_SEED`` — the bootstrap's reply to a first-hop join:
      ``slist`` carries the bootstrap plus its successor list as seed
      contacts, guaranteeing the joiner a live successor candidate
      even when routed resolution is temporarily impossible.
    """

    GET_PRED = 0
    PRED_REPLY = 1
    NOTIFY = 2
    PING = 3
    FIND_SUCC = 4
    FOUND = 5
    NACK = 6
    LEAVE_PRED = 7
    LEAVE_SUCC = 8
    JOIN_SEED = 9


class FindMode(enum.IntEnum):
    """Why a ``FIND_SUCC`` was issued (dispatched on at ``FOUND`` time)."""

    LOOKUP = 0
    JOIN = 1
    FIX_FINGER = 2
    STORE = 3
    ERASE = 4


_INT_COLS = ("src", "dst", "node", "hops", "tag", "mode", "fk", "ok")


@dataclass
class MsgBatch:
    """All messages of one kind emitted by one handler call.

    ``target`` is uint64 (ring identifiers); every other column int64.
    ``slist`` is an optional ``(M, L)`` successor-list payload
    (``PRED_REPLY`` only).
    """

    kind: MsgKind
    src: np.ndarray
    dst: np.ndarray
    target: np.ndarray | None = None
    node: np.ndarray | None = None
    hops: np.ndarray | None = None
    tag: np.ndarray | None = None
    mode: np.ndarray | None = None
    fk: np.ndarray | None = None
    ok: np.ndarray | None = None
    slist: np.ndarray | None = None

    def __post_init__(self) -> None:
        m = len(self.src)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.target is None:
            self.target = np.zeros(m, dtype=np.uint64)
        else:
            self.target = np.asarray(self.target, dtype=np.uint64)
        for name in ("node", "hops", "tag", "mode", "fk", "ok"):
            col = getattr(self, name)
            col = (np.zeros(m, dtype=np.int64) if col is None
                   else np.asarray(col, dtype=np.int64))
            setattr(self, name, col)
        if self.slist is not None:
            self.slist = np.asarray(self.slist, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.src.size)

    def take(self, idx: np.ndarray) -> "MsgBatch":
        """Row subset (fancy-index every column) as a new batch."""
        return MsgBatch(
            kind=self.kind,
            src=self.src[idx],
            dst=self.dst[idx],
            target=self.target[idx],
            node=self.node[idx],
            hops=self.hops[idx],
            tag=self.tag[idx],
            mode=self.mode[idx],
            fk=self.fk[idx],
            ok=self.ok[idx],
            slist=None if self.slist is None else self.slist[idx],
        )

    @staticmethod
    def concat(batches: "list[MsgBatch]") -> "MsgBatch":
        """Concatenate same-kind batches in list order (delivery order)."""
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        slist = None
        if first.slist is not None:
            slist = np.concatenate([b.slist for b in batches], axis=0)
        return MsgBatch(
            kind=first.kind,
            src=np.concatenate([b.src for b in batches]),
            dst=np.concatenate([b.dst for b in batches]),
            target=np.concatenate([b.target for b in batches]),
            node=np.concatenate([b.node for b in batches]),
            hops=np.concatenate([b.hops for b in batches]),
            tag=np.concatenate([b.tag for b in batches]),
            mode=np.concatenate([b.mode for b in batches]),
            fk=np.concatenate([b.fk for b in batches]),
            ok=np.concatenate([b.ok for b in batches]),
            slist=slist,
        )


class EventLog:
    """Chained digest + per-kind counters over every delivered batch.

    The digest is a platform-independent fingerprint of the entire
    simulated execution: tick, kind, and the little-endian bytes of
    every column of every delivered batch, chained through one BLAKE2b
    state.  Two runs with equal digests delivered byte-identical
    message streams in the same order.
    """

    def __init__(self) -> None:
        self._h = hashlib.blake2b(digest_size=16)
        self.counts: dict[str, int] = {k.name: 0 for k in MsgKind}
        self.total = 0

    def record(self, tick: int, batch: MsgBatch) -> None:
        """Fold one delivered batch into the digest and counters."""
        m = len(batch)
        if m == 0:
            return
        self.counts[batch.kind.name] += m
        self.total += m
        h = self._h
        h.update(int(tick).to_bytes(8, "little"))
        h.update(int(batch.kind).to_bytes(1, "little"))
        h.update(batch.target.astype("<u8", copy=False).tobytes())
        for name in _INT_COLS:
            h.update(getattr(batch, name).astype("<i8", copy=False).tobytes())
        if batch.slist is not None:
            h.update(batch.slist.astype("<i8", copy=False).tobytes())

    def digest(self) -> str:
        """Hex digest of everything recorded so far (state preserved)."""
        return self._h.copy().hexdigest()
