"""``repro.net``: a message-level DHT overlay simulator.

Everything else in the repo treats routing analytically —
:mod:`repro.dht` computes successor and finger hops on a frozen ring.
This package simulates the *protocol*: peers exchange join/leave
handshakes, stabilize/notify rounds, successor-list repair, ping and
timeout failure detection, and routed lookups over a seeded
discrete-event loop, so lookup hop counts, ring repair latency, and
key-load skew can be measured **while the overlay is unstable** — the
regime the churn traces of :mod:`repro.dynamics` were built to feed.

Layout (see ``docs/networking.md``):

:mod:`repro.net.messages`
    Structure-of-arrays message batches and the chained-digest
    :class:`~repro.net.messages.EventLog` behind the determinism pin.
:mod:`repro.net.simulator`
    :class:`~repro.net.simulator.NetSim` — vectorized per-tick batch
    delivery feasible at 10\\ :sup:`5` peers — and its
    :class:`~repro.net.simulator.NetConfig` knobs.
:mod:`repro.net.invariants`
    :func:`~repro.net.invariants.check_invariants` — protocol state
    vs ring-arithmetic ground truth (the ``tests/net`` harness).
:mod:`repro.net.driver`
    :func:`~repro.net.driver.run_trace` — replay a
    :class:`~repro.dynamics.events.EventTrace` as protocol traffic.
:mod:`repro.net.stats`
    :class:`~repro.net.stats.NetMetrics`, load skew, and the
    :mod:`repro.obs` bridge.
:mod:`repro.net.cli`
    ``python -m repro.experiments net smoke`` — seeded churn-storm
    smoke runs with the invariant checker.
"""

from repro.net.driver import NetResult, ball_key, fast_config, run_trace
from repro.net.invariants import InvariantReport, check_invariants
from repro.net.messages import EventLog, FindMode, MsgBatch, MsgKind
from repro.net.simulator import NetConfig, NetSim
from repro.net.stats import NetMetrics, emit_obs, load_skew

__all__ = [
    "NetConfig",
    "NetSim",
    "MsgKind",
    "FindMode",
    "MsgBatch",
    "EventLog",
    "NetMetrics",
    "load_skew",
    "emit_obs",
    "InvariantReport",
    "check_invariants",
    "NetResult",
    "run_trace",
    "fast_config",
    "ball_key",
]
