"""Ring-invariant checker: the ground truth the protocol must converge to.

Because :class:`~repro.net.simulator.NetSim` assigns slots in ascending
identifier order, the *true* overlay for any alive-set is pure
arithmetic: the successor of alive slot ``av[i]`` is ``av[(i+1) % a]``,
and the correct finger for target ``t`` is ``searchsorted`` over the
alive identifiers.  :func:`check_invariants` compares the
protocol-maintained state (successor lists, predecessors, finger
tables, key placement) against that ground truth and returns a
:class:`InvariantReport` listing every divergence.

The ``tests/net`` property harness runs this after
``run_until_quiescent`` on randomized seeded join/leave/death
schedules; the CI storm smoke runs it after mass failure.  Invariants
checked:

1. **Successor-ring consistency** — every alive peer's successor list
   equals the next ``L`` alive peers in ring order (cyclically), and
   its predecessor is the previous alive peer.
2. **Finger-table reachability** — every finger entry is the true
   successor of its target among the alive peers (``mode="exact"``),
   or at least an alive peer (``mode="alive"``, for runs quiesced for
   less than a full fix-finger cycle).
3. **No lost keys** — every reference key is held by its current true
   owner (so any correctly-routed lookup resolves it), with the
   observed replication degree reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InvariantReport", "check_invariants"]

_MAX_VIOLATIONS = 25


@dataclass
class InvariantReport:
    """Outcome of one :func:`check_invariants` pass."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` with the violation list when not ok."""
        if not self.ok:
            shown = "\n  ".join(self.violations)
            raise AssertionError(
                f"{len(self.violations)}+ ring invariant violations:\n  {shown}"
            )


def _note(report: InvariantReport, msg: str) -> None:
    if len(report.violations) < _MAX_VIOLATIONS:
        report.violations.append(msg)
    report.ok = False


def check_invariants(sim, *, keys=None, fingers: str = "exact") -> InvariantReport:
    """Compare ``sim``'s protocol state against ring-arithmetic ground truth.

    Parameters
    ----------
    sim:
        A :class:`~repro.net.simulator.NetSim`, normally after
        :meth:`~repro.net.simulator.NetSim.run_until_quiescent`.
    keys:
        Optional iterable of reference keys that must all be resolvable
        (held by their true owner).  Requires ``with_keys`` state.
    fingers:
        ``"exact"`` — every entry equals the true successor of its
        target; ``"alive"`` — every entry is merely an alive peer
        (or unknown); ``"off"`` — skip finger checks.
    """
    if fingers not in ("exact", "alive", "off"):
        raise ValueError(f"unknown fingers mode: {fingers!r}")
    report = InvariantReport(ok=True)
    av = np.flatnonzero(sim.alive)
    a = int(av.size)
    L = sim.cfg.succ_list_len
    report.stats["alive"] = a
    if a < 2:
        _note(report, f"fewer than 2 alive peers ({a})")
        return report

    order = np.arange(a)
    # 1a. successor lists == next L alive peers, cyclically
    expected = np.empty((a, L), dtype=np.int64)
    for j in range(L):
        expected[:, j] = av[(order + 1 + j) % a]
    actual = sim.succ[av]
    bad_rows = np.flatnonzero((actual != expected).any(axis=1))
    report.stats["succ_mismatch"] = int(bad_rows.size)
    for r in bad_rows[:_MAX_VIOLATIONS].tolist():
        _note(report, f"slot {av[r]}: succ list {actual[r].tolist()} != "
                      f"expected {expected[r].tolist()}")

    # 1b. predecessors == previous alive peer
    expected_pred = av[(order - 1) % a]
    bad_pred = np.flatnonzero(sim.pred[av] != expected_pred)
    report.stats["pred_mismatch"] = int(bad_pred.size)
    for r in bad_pred[:_MAX_VIOLATIONS].tolist():
        _note(report, f"slot {av[r]}: pred {sim.pred[av[r]]} != "
                      f"expected {expected_pred[r]}")

    # 2. finger-table reachability
    if fingers != "off":
        fng = sim.fingers[av]
        if fingers == "alive":
            known = fng >= 0
            dead_entries = known & ~sim.alive[np.maximum(fng, 0)]
            n_bad = int(np.count_nonzero(dead_entries))
            report.stats["finger_dead"] = n_bad
            if n_bad:
                rows, cols = np.nonzero(dead_entries)
                for r, c in zip(rows[:_MAX_VIOLATIONS], cols):
                    _note(report, f"slot {av[r]}: finger[{c}] = {fng[r, c]} "
                                  "points at a dead peer")
        else:
            aids = sim.ids[av]
            with np.errstate(over="ignore"):
                targets = aids[:, None] + sim._powers[None, :]
            truth = av[np.searchsorted(aids, targets, side="left") % a]
            bad = fng != truth
            n_bad = int(np.count_nonzero(bad))
            report.stats["finger_mismatch"] = n_bad
            if n_bad:
                rows, cols = np.nonzero(bad)
                for r, c in zip(rows[:_MAX_VIOLATIONS], cols):
                    _note(report, f"slot {av[r]}: finger[{c}] = {fng[r, c]} "
                                  f"!= true successor {truth[r, c]}")

    # 3. key resolvability + replication degree
    if keys is not None:
        if sim.store is None:
            raise ValueError("key invariants need with_keys=True state")
        karr = np.asarray(list(keys), dtype=np.uint64)
        owners = av[np.searchsorted(sim.ids[av], karr, side="left") % a]
        lost = 0
        degrees = []
        R = sim.cfg.replication
        for key, owner in zip(karr.tolist(), owners.tolist()):
            pos = int(np.searchsorted(av, owner))
            holders = [int(av[(pos + j) % a]) for j in range(min(R, a))]
            degree = sum(1 for h in holders if key in sim.store[h])
            degrees.append(degree)
            if key not in sim.store[owner]:
                lost += 1
                _note(report, f"key {key}: not held by true owner {owner} "
                              f"(replica degree {degree}/{min(R, a)})")
        report.stats["keys_checked"] = int(karr.size)
        report.stats["keys_lost"] = lost
        report.stats["min_replication"] = min(degrees) if degrees else 0
    return report
