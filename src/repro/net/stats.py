"""Metrics collected by the network simulator.

:class:`NetMetrics` accumulates per-run protocol counters (joins,
leaves, deaths, timeouts, NACKs), lookup hop samples, ring repair
latencies, and failure counts.  Everything is a plain int or list of
ints, so a metrics snapshot is deterministic, JSON-serializable, and
byte-comparable across runs — the determinism pin serializes
:meth:`NetMetrics.summary` next to the event-log digest.

:func:`load_skew` measures key placement imbalance over the alive
peers (the quantity the paper's load-balancing story is about), and
:func:`emit_obs` mirrors a finished run into the :mod:`repro.obs`
metrics registry for the observability pipeline.
"""

from __future__ import annotations

import numpy as np

from repro import obs

__all__ = ["NetMetrics", "load_skew", "emit_obs"]


def _quantile(sorted_vals: list[int], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample (0 if empty)."""
    if not sorted_vals:
        return 0.0
    pos = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return float(sorted_vals[pos])


class NetMetrics:
    """Mutable per-run counters and samples of one :class:`~repro.net.simulator.NetSim`."""

    def __init__(self) -> None:
        self.joins = 0
        self.leaves = 0
        self.deaths = 0
        self.lookups_issued = 0
        self.lookups_resolved = 0
        self.failed_lookups = 0
        self.failed_ops = 0
        self.lost_puts = 0
        self.nacks = 0
        self.timeouts = 0
        self.hop_samples: list[int] = []
        self.resolve_ticks: list[int] = []
        self.repair_latencies: list[int] = []
        self.by_tag: dict[int, tuple[int, int]] = {}

    def record_lookups(self, hops: np.ndarray, tick: int,
                       tags=None, owners=None) -> None:
        """Fold one batch of resolved lookups (hop counts at ``tick``).

        Lookups issued with a non-negative ``tag`` also land in
        :attr:`by_tag` as ``tag -> (owner_slot, hops)`` — the handle
        the parity suite uses to compare individual lookups against
        :meth:`repro.dht.chord.ChordRing.lookup`.
        """
        self.lookups_resolved += int(hops.size)
        self.hop_samples.extend(int(h) for h in hops)
        self.resolve_ticks.extend([int(tick)] * int(hops.size))
        if tags is not None:
            for t, o, h in zip(tags.tolist(), owners.tolist(), hops.tolist()):
                if t >= 0:
                    self.by_tag[int(t)] = (int(o), int(h))

    def hop_stats(self) -> dict:
        """Mean / max / p50 / p99 of the resolved-lookup hop counts."""
        samples = sorted(self.hop_samples)
        n = len(samples)
        return {
            "count": n,
            "mean": float(sum(samples)) / n if n else 0.0,
            "max": samples[-1] if n else 0,
            "p50": _quantile(samples, 0.50),
            "p99": _quantile(samples, 0.99),
        }

    def repair_stats(self) -> dict:
        """Mean / max / p99 of ring repair latencies (ticks to re-splice)."""
        samples = sorted(self.repair_latencies)
        n = len(samples)
        return {
            "count": n,
            "mean": float(sum(samples)) / n if n else 0.0,
            "max": samples[-1] if n else 0,
            "p99": _quantile(samples, 0.99),
        }

    def summary(self) -> dict:
        """Deterministic JSON-ready snapshot of every counter and stat."""
        return {
            "joins": self.joins,
            "leaves": self.leaves,
            "deaths": self.deaths,
            "lookups_issued": self.lookups_issued,
            "lookups_resolved": self.lookups_resolved,
            "failed_lookups": self.failed_lookups,
            "failed_ops": self.failed_ops,
            "lost_puts": self.lost_puts,
            "nacks": self.nacks,
            "timeouts": self.timeouts,
            "hops": self.hop_stats(),
            "repair": self.repair_stats(),
        }


def load_skew(sim) -> dict:
    """Key-load imbalance across the alive peers of ``sim``.

    Returns total stored copies, mean and max per-peer counts, and the
    ``max/mean`` skew ratio (1.0 = perfectly even, 0.0 when no keys).
    Counts replicas as load — that is what a peer actually stores.
    """
    if sim.store is None:
        return {"total": 0, "mean": 0.0, "max": 0, "skew": 0.0}
    av = np.flatnonzero(sim.alive)
    counts = np.array([len(sim.store[int(i)]) for i in av], dtype=np.int64)
    total = int(counts.sum())
    mean = total / av.size if av.size else 0.0
    peak = int(counts.max()) if av.size else 0
    return {
        "total": total,
        "mean": float(mean),
        "max": peak,
        "skew": float(peak / mean) if mean > 0 else 0.0,
    }


def emit_obs(sim, *, experiment: str = "net") -> None:
    """Mirror a finished run's metrics into the :mod:`repro.obs` registry.

    No-ops (cheaply) when observability is disabled, like every other
    instrumented tier.
    """
    if not obs.enabled():
        return
    m = sim.metrics
    labels = {"experiment": experiment}
    for name in ("joins", "leaves", "deaths", "lookups_issued",
                 "lookups_resolved", "failed_lookups", "failed_ops",
                 "lost_puts", "nacks", "timeouts"):
        obs.counter_add(f"net.{name}", getattr(m, name), **labels)
    obs.counter_add("net.messages_delivered", sim.log.total, **labels)
    for h in m.hop_samples:
        obs.histogram_observe("net.lookup_hops", h, **labels)
    for r in m.repair_latencies:
        obs.histogram_observe("net.repair_latency_ticks", r, **labels)
    skew = load_skew(sim)
    obs.gauge_set("net.load_skew", skew["skew"], **labels)
    obs.gauge_set("net.alive_peers", sim.alive_count, **labels)
    obs.gauge_set("net.ticks", sim.tick, **labels)
