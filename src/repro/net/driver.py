"""Drive a :class:`~repro.net.simulator.NetSim` from a churn EventTrace.

This is the bridge between the churn *scenarios* of
:mod:`repro.dynamics` and the message-level overlay: the same
:class:`~repro.dynamics.events.EventTrace` that feeds the analytic
dynamic engines replays here as real protocol activity —

* ``INSERT`` → a routed, replicated key store (the ball id hashes to a
  ring key via :func:`repro.dht.hashing.key_id`);
* ``DELETE`` → a routed erase;
* ``BIN_LEAVE`` → a peer departure, *graceful* (announce + key
  handoff) or an *abrupt kill* (silence, discovered by timeouts) per a
  seeded coin with ``graceful_fraction`` bias;
* ``BIN_JOIN`` → a join handshake through a random alive bootstrap.

After each epoch's events land, ``lookups_per_epoch`` seeded lookups
are issued from random alive peers — *while the ring is unstable* —
so the hop-count distribution includes the degraded regime, which is
the measurement the analytic layer cannot make.  After the last epoch
the run stabilizes to quiescence, the invariant checker compares the
protocol state to ring-arithmetic ground truth, and everything is
folded into a deterministic :class:`NetResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.hashing import key_id
from repro.dynamics.events import EventKind, EventTrace
from repro.net.invariants import InvariantReport, check_invariants
from repro.net.simulator import NetConfig, NetSim
from repro.net.stats import emit_obs, load_skew
from repro.obs import trace_span
from repro.utils.rng import resolve_rng, stable_hash_seed

__all__ = ["NetResult", "fast_config", "run_trace", "ball_key"]


def ball_key(ball: int) -> int:
    """Deterministic ring key of trace ball ``ball`` (odd ⇒ never a node id)."""
    return int(key_id(f"ball-{int(ball)}")) | 1


def fast_config(**overrides) -> NetConfig:
    """A :class:`NetConfig` tuned for mega-peer routing smokes.

    Key storage is off and message-driven finger repair is replaced by
    the analytic :meth:`~repro.net.simulator.NetSim.rebuild_fingers`
    refresh the driver applies after each epoch — the documented
    shortcut that keeps 10\\ :sup:`5`-peer storms inside a CI budget
    while the protocol still performs ring repair message by message.
    """
    base = dict(with_keys=False, fix_fingers_per_round=0, n_fingers=32)
    base.update(overrides)
    return NetConfig(**base)


@dataclass
class NetResult:
    """Deterministic outcome of one :func:`run_trace` call."""

    digest: str
    metrics: dict
    skew: dict
    invariants: InvariantReport | None
    ticks: int
    alive: int
    n_slots: int
    events: int
    meta: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """JSON-serializable payload (what the sweep cache stores)."""
        inv = None
        if self.invariants is not None:
            inv = {
                "ok": self.invariants.ok,
                "violations": list(self.invariants.violations),
                "stats": dict(self.invariants.stats),
            }
        return {
            "digest": self.digest,
            "metrics": self.metrics,
            "skew": self.skew,
            "invariants": inv,
            "ticks": self.ticks,
            "alive": self.alive,
            "n_slots": self.n_slots,
            "events": self.events,
            "meta": self.meta,
        }


def _settle_ticks(cfg: NetConfig) -> int:
    """Quiet window guaranteeing a full finger-repair cycle has passed."""
    if cfg.fix_fingers_per_round > 0:
        cycle = -(-cfg.n_fingers // cfg.fix_fingers_per_round)  # ceil
        return cfg.period * (cycle + 2)
    return 3 * cfg.period


def run_trace(
    trace: EventTrace,
    *,
    cfg: NetConfig | None = None,
    seed=0,
    graceful_fraction: float = 0.5,
    lookups_per_epoch: int = 32,
    epoch_ticks: int | None = None,
    check: str = "full",
    max_ticks: int = 200_000,
) -> NetResult:
    """Replay ``trace`` as protocol messages and measure the overlay.

    Parameters
    ----------
    trace:
        A :class:`~repro.dynamics.events.EventTrace`; ``n_slots`` sets
        the peer population (all alive at tick 0, fully stabilized).
    cfg:
        Simulator knobs; default :class:`NetConfig` (key storage on).
        With ``with_keys=False`` (see :func:`fast_config`) inserts and
        deletes in the trace are skipped and lookups target random
        identifiers instead of stored keys.
    seed:
        Master seed; node identifiers, graceful/abrupt coins,
        bootstrap picks, and lookup traffic all derive from it via
        :func:`~repro.utils.rng.stable_hash_seed`.
    graceful_fraction:
        Probability that a ``BIN_LEAVE`` departs gracefully instead of
        dying abruptly (0 = every departure is a kill).
    lookups_per_epoch:
        Measurement lookups issued right after each epoch's events,
        i.e. against the not-yet-repaired ring.
    epoch_ticks:
        Simulated ticks between epochs (default ``2 * cfg.period``).
    check:
        Final invariant pass: ``"full"`` (ring + fingers + stored
        keys), ``"ring"`` (no key check), or ``"off"``.
    max_ticks:
        Abort bound for the final quiescence run.
    """
    if trace.n_slots is None:
        raise ValueError("trace has no n_slots; net replay needs a peer count")
    if check not in ("full", "ring", "off"):
        raise ValueError(f"unknown check mode: {check!r}")
    with trace_span(
        "net.run_trace",
        peers=int(trace.n_slots),
        events=int(trace.kinds.size),
        check=check,
    ):
        return _run_trace(
            trace,
            cfg=cfg,
            seed=seed,
            graceful_fraction=graceful_fraction,
            lookups_per_epoch=lookups_per_epoch,
            epoch_ticks=epoch_ticks,
            check=check,
            max_ticks=max_ticks,
        )


def _run_trace(
    trace: EventTrace,
    *,
    cfg: NetConfig | None,
    seed,
    graceful_fraction: float,
    lookups_per_epoch: int,
    epoch_ticks: int | None,
    check: str,
    max_ticks: int,
) -> NetResult:
    """The :func:`run_trace` body, running inside its root trace span."""
    cfg = cfg or NetConfig()
    sim = NetSim.stable(trace.n_slots, cfg=cfg,
                        seed=stable_hash_seed(seed, "net-ids"))
    rng = resolve_rng(stable_hash_seed(seed, "net-driver"))
    step = 2 * cfg.period if epoch_ticks is None else int(epoch_ticks)
    kinds = trace.kinds
    args = trace.args
    live_balls: list[int] = []
    ball_pos: dict[int, int] = {}
    start = 0
    for end in trace.epoch_ends.tolist():
        inserts: list[int] = []
        erases: list[int] = []
        wave: list[int] = []

        def flush_wave() -> None:
            # one coin per departure: graceful announce vs abrupt kill;
            # consecutive kills land as one simultaneous failure wave
            if not wave:
                return
            coins = rng.random(len(wave))
            abrupt = [s for s, c in zip(wave, coins) if c >= graceful_fraction]
            for s, c in zip(wave, coins):
                if c < graceful_fraction:
                    sim.leave(s)
            if abrupt:
                sim.kill_many(abrupt)
            wave.clear()

        for e in range(start, int(end)):
            kind, arg = int(kinds[e]), int(args[e])
            if kind == EventKind.INSERT:
                ball_pos[arg] = len(live_balls)
                live_balls.append(arg)
                inserts.append(arg)
            elif kind == EventKind.DELETE:
                pos = ball_pos.pop(arg)
                last = live_balls.pop()
                if pos < len(live_balls):
                    live_balls[pos] = last
                    ball_pos[last] = pos
                erases.append(arg)
            elif kind == EventKind.BIN_LEAVE:
                wave.append(arg)
            else:  # BIN_JOIN — rejoin of a slot possibly in the wave
                flush_wave()
                sim.join(arg, _pick_alive(sim, rng))
        flush_wave()
        if sim.store is not None:
            if inserts:
                keys = [ball_key(b) for b in inserts]
                sim.put_many(_pick_alive(sim, rng, len(inserts)), keys)
            if erases:
                keys = [ball_key(b) for b in erases]
                sim.erase_many(_pick_alive(sim, rng, len(erases)), keys)
        if lookups_per_epoch > 0:
            _issue_lookups(sim, rng, lookups_per_epoch, live_balls)
        if cfg.fix_fingers_per_round == 0:
            sim.run(step)
            sim.rebuild_fingers()
        else:
            sim.run(step)
        start = int(end)
    ticks = sim.run_until_quiescent(max_ticks=max_ticks,
                                    settle=_settle_ticks(cfg))
    if cfg.fix_fingers_per_round == 0:
        sim.rebuild_fingers()
    report = None
    if check != "off":
        keys = None
        if check == "full" and sim.store is not None:
            keys = sorted(ball_key(b) for b in live_balls)
        report = check_invariants(sim, keys=keys, fingers="exact")
    emit_obs(sim, experiment="net_churn")
    return NetResult(
        digest=sim.log.digest(),
        metrics=sim.metrics.summary(),
        skew=load_skew(sim),
        invariants=report,
        ticks=sim.tick,
        alive=sim.alive_count,
        n_slots=sim.S,
        events=int(trace.kinds.size),
        meta={
            "seed": int(seed) if np.isscalar(seed) else None,
            "graceful_fraction": float(graceful_fraction),
            "lookups_per_epoch": int(lookups_per_epoch),
            "quiesce_ticks": int(ticks),
            "messages": int(sim.log.total),
            "message_counts": dict(sim.log.counts),
        },
    )


def _pick_alive(sim: NetSim, rng, size: int | None = None):
    """Seeded draw of alive slot(s); scalar int when ``size`` is None."""
    av = np.flatnonzero(sim.alive)
    idx = rng.integers(0, av.size, size=1 if size is None else size)
    picked = av[idx]
    return int(picked[0]) if size is None else picked.astype(np.int64)


def _issue_lookups(sim: NetSim, rng, count: int, live_balls: list[int]) -> None:
    """Issue ``count`` seeded lookups from random alive peers."""
    starts = _pick_alive(sim, rng, count)
    if sim.store is not None and live_balls:
        picks = rng.integers(0, len(live_balls), size=count)
        keys = np.array([ball_key(live_balls[int(i)]) for i in picks],
                        dtype=np.uint64)
    else:
        keys = rng.integers(0, 1 << 63, size=count,
                            dtype=np.int64).astype(np.uint64) * np.uint64(2) \
            + np.uint64(1)
    sim.lookup_batch(starts, keys)
