"""Discrete-event, message-level Chord overlay simulator.

Peers exchange *real protocol messages* — join handshakes, stabilize /
notify rounds, successor-list repair, ping/timeout failure detection,
routed lookups — over a ticked event loop.  Unlike :mod:`repro.dht`
(which computes routing analytically on a frozen ring), this simulator
measures the overlay *while it is unstable*: lookup hop counts, ring
repair latency, and key-load skew during joins, graceful departures,
and abrupt (non-graceful) deaths.

Design notes
------------

* **Structure-of-arrays state.**  Node state lives in flat numpy
  arrays indexed by *slot* (``ids``, ``alive``, ``succ``, ``pred``,
  ``fingers``), and slots are assigned in ascending identifier order,
  so slot order *is* ring order — ground-truth neighbors are a
  ``searchsorted`` away, never a graph walk.
* **Batched message delivery.**  The event loop keeps a per-tick
  bucket of :class:`~repro.net.messages.MsgBatch` columns.  Each tick
  concatenates the bucket per kind and runs one vectorized handler per
  kind, so 10\\ :sup:`5` peers exchanging millions of messages stay in
  numpy instead of Python loops.
* **Failure detection by NACK.**  A message addressed to a dead peer
  bounces back to its sender after ``timeout`` ticks (the
  retransmission-timer surrogate).  The sender scrubs the dead peer
  from its successor list / fingers / predecessor and — for routing
  messages — retries around the failure.
* **Determinism.**  One seeded generator, deterministic per-tick
  processing order (kind order, then append order), and an
  :class:`~repro.net.messages.EventLog` digest chained over every
  delivered batch.  Same seed + same trace ⇒ byte-identical digest and
  metrics, independent of thread/worker environment settings.

The routing rule (closest preceding finger, successor fallback, hop
accounting) mirrors :meth:`repro.dht.chord.ChordRing.lookup` exactly,
which is what the ``tests/net`` parity suite pins: on a stable ring the
simulated hop counts equal the analytic ones lookup for lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.hashing import RING_BITS
from repro.net.messages import EventLog, FindMode, MsgBatch, MsgKind
from repro.net.stats import NetMetrics
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["NetConfig", "NetSim"]


def _in_open(x, a, b):
    """Elementwise ``x ∈ (a, b)`` on the uint64 identifier ring."""
    return np.where(a < b, (x > a) & (x < b),
                    np.where(a > b, (x > a) | (x < b), x != a))


def _in_ropen(x, a, b):
    """Elementwise ``x ∈ (a, b]`` on the uint64 identifier ring."""
    lt = (x > a) & (x <= b)
    wrap = (x > a) | (x <= b)
    return np.where(a < b, lt, np.where(a > b, wrap, True))


@dataclass(frozen=True)
class NetConfig:
    """Protocol and event-loop knobs of one :class:`NetSim`.

    Attributes
    ----------
    succ_list_len:
        Successor-list length ``L`` (Chord's ``r``); the ring survives
        up to ``L - 1`` *simultaneous* failures between stabilization
        quiescence points.
    replication:
        Key replication degree ``R``: a stored key lives on its owner
        plus the owner's next ``R - 1`` successors, so any ``R - 1``
        simultaneous deaths leave at least one live holder.
    period:
        Ticks between two maintenance rounds of one node (stabilize +
        predecessor ping + finger fixing), staggered across slots.
    fix_fingers_per_round:
        Finger columns refreshed per maintenance round (0 disables the
        message-driven finger repair — use
        :meth:`NetSim.rebuild_fingers` instead for bulk runs).
    latency:
        Message delivery delay in ticks (constant, deterministic).
    timeout:
        Extra ticks before a message to a dead peer bounces back as a
        ``NACK`` (the retransmission-timeout surrogate).
    n_fingers:
        Finger-table width ``F``; column ``j`` holds the successor of
        ``id + 2^(RING_BITS - F + j)``.  The default covers the full
        identifier space (analytic parity); smaller values save memory
        at mega-peer scale where low fingers all equal the successor.
    max_hops:
        Routing-hop budget per lookup before it is dropped as failed.
    self_check_every:
        Every this-many maintenance rounds a node re-resolves its own
        successor through the ring (a routed ``FIND_SUCC`` for
        ``id + 1`` via its current successor) and adopts any strictly
        closer owner.  Plain stabilization provably cannot untangle a
        *laced* ring — crossed successor arcs whose predecessor links
        mutually confirm each other, which concurrent rejoins under
        churn do produce — but the self-check resolves each arc from
        behind and restores the true ring.  0 disables.
    with_keys:
        Track per-node key storage (replicated puts, transfers on
        join/leave, erase).  Disable for pure-routing mega-peer runs.
    """

    succ_list_len: int = 4
    replication: int = 3
    period: int = 8
    fix_fingers_per_round: int = 4
    latency: int = 1
    timeout: int = 3
    n_fingers: int = RING_BITS
    max_hops: int = 4 * RING_BITS + 64
    self_check_every: int = 1
    with_keys: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.succ_list_len, "succ_list_len")
        check_positive_int(self.period, "period")
        check_positive_int(self.latency, "latency")
        check_positive_int(self.timeout, "timeout")
        if not 1 <= self.replication <= self.succ_list_len + 1:
            raise ValueError(
                "replication must be in [1, succ_list_len + 1], got "
                f"{self.replication}"
            )
        if not 1 <= self.n_fingers <= RING_BITS:
            raise ValueError(f"n_fingers must be in [1, {RING_BITS}]")
        if self.fix_fingers_per_round < 0:
            raise ValueError("fix_fingers_per_round must be >= 0")
        if self.self_check_every < 0:
            raise ValueError("self_check_every must be >= 0")


# delivery to a dead peer bounces these kinds back to the sender
_NACKABLE = (MsgKind.GET_PRED, MsgKind.PING, MsgKind.FIND_SUCC)

#: chunk rows for the (M, F) finger gather so mega-batches stay in cache
_ROUTE_CHUNK = 1 << 15


class NetSim:
    """A simulated Chord overlay driven by protocol messages.

    Construct with :meth:`stable` (a quiesced ring, the usual starting
    point) or :meth:`from_ids`, then mutate with :meth:`join`,
    :meth:`leave`, :meth:`kill`, issue traffic with :meth:`lookup` /
    :meth:`put_key` / :meth:`erase_key`, and advance time with
    :meth:`run` or :meth:`run_until_quiescent`.

    Examples
    --------
    >>> sim = NetSim.stable(16, seed=0)
    >>> sim.kill(3)
    >>> _ = sim.run_until_quiescent()
    >>> bool(sim.alive[3])
    False
    """

    def __init__(self, ids, cfg: NetConfig | None = None, seed=0) -> None:
        self.cfg = cfg or NetConfig()
        as_ints = [int(i) for i in ids]
        if sorted(as_ints) != as_ints:
            raise ValueError("slot identifiers must be given in ascending order")
        if len(set(as_ints)) != len(as_ints):
            raise ValueError("slot identifiers must be distinct")
        if len(as_ints) < 2:
            raise ValueError("NetSim needs at least 2 slots")
        self.ids = np.array(as_ints, dtype=np.uint64)
        self.S = int(self.ids.size)
        L = self.cfg.succ_list_len
        self.alive = np.ones(self.S, dtype=bool)
        self.succ = np.full((self.S, L), -1, dtype=np.int64)
        self.pred = np.full(self.S, -1, dtype=np.int64)
        self.fingers = np.full((self.S, self.cfg.n_fingers), -1, dtype=np.int64)
        self.fix_next = np.zeros(self.S, dtype=np.int64)
        self._boot = np.full(self.S, -1, dtype=np.int64)
        self.store: list[set[int]] | None = (
            [set() for _ in range(self.S)] if self.cfg.with_keys else None
        )
        self.tick = 0
        self._n_alive = self.S
        self.rng = resolve_rng(seed)
        self.log = EventLog()
        self.metrics = NetMetrics()
        self.outstanding_lookups = 0
        self.outstanding_ops = 0
        self._pending: dict[int, list[MsgBatch]] = {}
        self._side: dict[int, list[tuple]] = {}
        self._repairs: list[list[int]] = []
        self._last_mutation = 0
        # powers of two for the finger columns (column j -> 2^(RB-F+j))
        ks = np.arange(RING_BITS - self.cfg.n_fingers, RING_BITS, dtype=np.uint64)
        self._powers = np.uint64(1) << ks

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def stable(cls, n: int, *, cfg: NetConfig | None = None, seed=0) -> "NetSim":
        """A fully stabilized ``n``-peer ring with random identifiers.

        Successor lists, predecessors, and finger tables are installed
        directly in their converged state — the state message-driven
        stabilization would reach — so churn experiments start from
        equilibrium.  The identifier draw consumes the seeded stream
        deterministically.
        """
        n = check_positive_int(n, "n")
        rng = resolve_rng(seed)
        # even identifiers only, so odd test keys never collide with a node
        ids: list[int] = []
        seen: set[int] = set()
        while len(ids) < n:
            batch = rng.integers(0, 1 << 63, size=n - len(ids), dtype=np.int64)
            for b in batch.tolist():
                v = int(b) << 1
                if v not in seen:
                    seen.add(v)
                    ids.append(v)
        sim = cls(sorted(ids), cfg=cfg, seed=rng)
        sim.install_stable_state()
        return sim

    @classmethod
    def from_ids(cls, ids, *, cfg: NetConfig | None = None, seed=0) -> "NetSim":
        """A stabilized ring over explicit identifiers (ascending order).

        Slot ``i`` is the ``i``-th smallest identifier, matching
        :class:`repro.dht.chord.ChordRing` indexing — the parity tests
        build both structures from the same id set and compare lookups
        index for index.
        """
        sim = cls(ids, cfg=cfg, seed=seed)
        sim.install_stable_state()
        return sim

    def install_stable_state(self) -> None:
        """(Re)install converged successor/pred/finger state for alive slots."""
        av = np.flatnonzero(self.alive)
        a = av.size
        if a < 2:
            raise ValueError("need at least 2 alive slots")
        order = np.arange(a)
        for j in range(self.cfg.succ_list_len):
            self.succ[av, j] = av[(order + 1 + j) % a]
        self.pred[av] = av[(order - 1) % a]
        self.rebuild_fingers()
        self._mutated()

    def rebuild_fingers(self) -> None:
        """Vectorized analytic finger refresh for every alive slot.

        This is the offline equivalent of letting ``fix_fingers``
        cycle to convergence — used to bootstrap :meth:`stable` rings
        and as the documented shortcut for mega-peer smokes where
        message-driven finger repair would dominate the budget.
        """
        av = np.flatnonzero(self.alive)
        aids = self.ids[av]
        with np.errstate(over="ignore"):
            targets = aids[:, None] + self._powers[None, :]
        idx = np.searchsorted(aids, targets, side="left") % av.size
        self.fingers[av] = av[idx]
        self._mutated()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def alive_count(self) -> int:
        """Number of currently alive peers."""
        return self._n_alive

    def _mutated(self) -> None:
        self._last_mutation = self.tick

    def _send(self, batch: MsgBatch, delay: int | None = None) -> None:
        if len(batch) == 0:
            return
        at = self.tick + (self.cfg.latency if delay is None else delay)
        self._pending.setdefault(at, []).append(batch)

    def _send_side(self, record: tuple, delay: int | None = None) -> None:
        at = self.tick + (self.cfg.latency if delay is None else delay)
        self._side.setdefault(at, []).append(record)

    def _live_neighbors(self, slot: int) -> tuple[int, int]:
        """Ground-truth (predecessor, successor) alive slots of ``slot``."""
        av = np.flatnonzero(self.alive)
        pos = int(np.searchsorted(av, slot))
        succ = int(av[pos % av.size])
        pred = int(av[(pos - 1) % av.size])
        return pred, succ

    def _owned_keys(self, slot: int) -> list[int]:
        """Keys in ``slot``'s store that fall in its owned arc, sorted."""
        held = self.store[slot]
        if not held:
            return []
        p = int(self.pred[slot])
        if p < 0:
            return sorted(held)
        a, b = self.ids[p], self.ids[slot]
        keys = np.fromiter(held, dtype=np.uint64, count=len(held))
        mask = _in_ropen(keys, a, b)
        return sorted(int(k) for k in keys[mask])

    def _replica_targets(self, slot: int) -> list[int]:
        """First ``R - 1`` distinct valid successor-list entries of ``slot``."""
        return self._targets_of_row(self.succ[slot], slot)

    def _targets_of_row(self, row: np.ndarray, slot: int) -> list[int]:
        out: list[int] = []
        for w in row.tolist():
            if w >= 0 and w != slot and w not in out:
                out.append(w)
                if len(out) >= self.cfg.replication - 1:
                    break
        return out

    def _replicate_owned(self, slot: int) -> None:
        """Push ``slot``'s owned keys to its replica set (side channel)."""
        if self.store is None:
            return
        keys = self._owned_keys(slot)
        if not keys:
            return
        for w in self._replica_targets(slot):
            self._send_side(("copy", w, tuple(keys)))

    # ------------------------------------------------------------------
    # membership API (driven by traces or tests)
    # ------------------------------------------------------------------
    def join(self, slot: int, bootstrap: int) -> None:
        """(Re)activate ``slot`` and start its join handshake.

        The joiner routes a ``FIND_SUCC`` for its own identifier via
        ``bootstrap``; the ``FOUND`` reply seeds its successor, and the
        normal stabilize/notify rounds link predecessors, pull the
        successor list, and trigger key handoff.
        """
        if self.alive[slot]:
            raise ValueError(f"slot {slot} is already alive")
        if not self.alive[bootstrap]:
            raise ValueError(f"bootstrap {bootstrap} is dead")
        self.alive[slot] = True
        self.pred[slot] = -1
        self.succ[slot] = -1
        self.fingers[slot] = -1
        self.fix_next[slot] = 0
        if self.store is not None:
            self.store[slot] = set()
        self._boot[slot] = bootstrap
        self._n_alive += 1
        self.metrics.joins += 1
        self._mutated()
        self._send_join(np.array([slot], dtype=np.int64))

    def _send_join(self, slots: np.ndarray) -> None:
        # resolve successor(id + 1): never the joiner itself, so a
        # retried join cannot self-adopt once partially linked.  A peer
        # whose bootstrap died (or that never had one — an established
        # node whose whole successor list was wiped) first self-routes
        # through its surviving fingers; if it has none either, it
        # re-bootstraps through the rendezvous surrogate (the lowest-id
        # alive peer — every real deployment has bootstrap servers).
        boot = self._boot[slots]
        bad_boot = (boot < 0) | ~self.alive[np.maximum(boot, 0)]
        dst = np.where(bad_boot, slots, boot)
        if bad_boot.any():
            # no live bootstrap: the joiner cannot resolve succ(id+1)
            # itself — the open interval (id, id+1) admits no finger —
            # so route via the rendezvous peers (lowest two alive)
            av = np.flatnonzero(self.alive)
            first, second = int(av[0]), int(av[1])
            rend = np.where(slots == first, second, first)
            dst = np.where(bad_boot, rend, dst)
            self._boot[slots[bad_boot]] = rend[bad_boot]
        with np.errstate(over="ignore"):
            targets = self.ids[slots] + np.uint64(1)
        self._send(MsgBatch(
            kind=MsgKind.FIND_SUCC,
            src=slots, dst=dst, target=targets, node=slots,
            mode=np.full(slots.size, FindMode.JOIN, dtype=np.int64),
        ))

    def leave(self, slot: int) -> None:
        """Graceful departure: announce, hand keys to the successor, die."""
        self._check_departure(slot)
        p, s = int(self.pred[slot]), int(self.succ[slot, 0])
        one = np.array([slot], dtype=np.int64)
        if p >= 0 and s >= 0:
            self._send(MsgBatch(
                kind=MsgKind.LEAVE_PRED, src=one,
                dst=np.array([p], dtype=np.int64),
                node=np.array([s], dtype=np.int64),
            ))
        if s >= 0:
            self._send(MsgBatch(
                kind=MsgKind.LEAVE_SUCC, src=one,
                dst=np.array([s], dtype=np.int64),
                node=np.array([p], dtype=np.int64),
            ))
            if self.store is not None and self.store[slot]:
                self._send_side(("copy", s, tuple(sorted(self.store[slot]))))
        self._deactivate(slot)
        self.metrics.leaves += 1

    def kill(self, slot: int) -> None:
        """Abrupt, non-graceful death: no messages, data lost.

        Survivors only learn of it through ping/forwarding timeouts;
        the tick at which the ring is spliced back together around the
        corpse is recorded as a repair-latency sample.
        """
        self._check_departure(slot)
        self._deactivate(slot)
        self.metrics.deaths += 1
        p, s = self._live_neighbors(slot)
        self._repairs.append([slot, self.tick, p, s])

    def kill_many(self, slots) -> None:
        """Abrupt simultaneous death of many peers (one failure wave).

        Equivalent to :meth:`kill` for each slot but with the live
        neighbors of every corpse computed once, vectorized, *after*
        the whole wave lands — which is also the semantically right
        splice target when adjacent peers die together.
        """
        slots = np.unique(np.asarray(slots, dtype=np.int64))
        if slots.size == 0:
            return
        if not self.alive[slots].all():
            raise ValueError("kill_many: some slots are already dead")
        if self.alive_count - slots.size < 2:
            raise ValueError("cannot drop below 2 alive peers")
        self.alive[slots] = False
        self._n_alive -= int(slots.size)
        self.pred[slots] = -1
        self.succ[slots] = -1
        self.fingers[slots] = -1
        if self.store is not None:
            for s in slots.tolist():
                self.store[s] = set()
        self.metrics.deaths += int(slots.size)
        self._mutated()
        av = np.flatnonzero(self.alive)
        pos = np.searchsorted(av, slots)
        preds = av[(pos - 1) % av.size]
        succs = av[pos % av.size]
        for s, p, q in zip(slots.tolist(), preds.tolist(), succs.tolist()):
            self._repairs.append([s, self.tick, p, q])

    def _check_departure(self, slot: int) -> None:
        if not self.alive[slot]:
            raise ValueError(f"slot {slot} is already dead")
        if self.alive_count <= 2:
            raise ValueError("cannot drop below 2 alive peers")

    def _deactivate(self, slot: int) -> None:
        self.alive[slot] = False
        self._n_alive -= 1
        self.pred[slot] = -1
        self.succ[slot] = -1
        self.fingers[slot] = -1
        if self.store is not None:
            self.store[slot] = set()
        self._mutated()

    # ------------------------------------------------------------------
    # traffic API
    # ------------------------------------------------------------------
    def lookup(self, start: int, key: int, tag: int = -1) -> None:
        """Issue one routed lookup for ``key`` starting at ``start``."""
        self.lookup_batch(np.array([start], dtype=np.int64),
                          np.array([key], dtype=np.uint64),
                          np.array([tag], dtype=np.int64))

    def lookup_batch(self, starts, keys, tags=None) -> None:
        """Issue many routed lookups at once (one message each)."""
        starts = np.asarray(starts, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if tags is None:
            tags = np.full(starts.size, -1, dtype=np.int64)
        if not self.alive[starts].all():
            raise ValueError("lookup start nodes must be alive")
        self.outstanding_lookups += int(starts.size)
        self.metrics.lookups_issued += int(starts.size)
        self._send(MsgBatch(
            kind=MsgKind.FIND_SUCC, src=starts, dst=starts,
            target=keys, node=starts,
            mode=np.full(starts.size, FindMode.LOOKUP, dtype=np.int64),
            tag=np.asarray(tags, dtype=np.int64),
        ))

    def put_key(self, origin: int, key: int) -> None:
        """Route a replicated store of ``key`` from ``origin``."""
        self.put_many([origin], [key])

    def put_many(self, origins, keys) -> None:
        """Route many replicated stores at once (one message each)."""
        if self.store is None:
            raise ValueError("key storage disabled (with_keys=False)")
        origins = np.asarray(origins, dtype=np.int64)
        self.outstanding_ops += int(origins.size)
        self._send(MsgBatch(
            kind=MsgKind.FIND_SUCC, src=origins, dst=origins,
            target=np.asarray(keys, dtype=np.uint64), node=origins,
            mode=np.full(origins.size, FindMode.STORE, dtype=np.int64),
        ))

    def erase_key(self, origin: int, key: int) -> None:
        """Route an erase of ``key`` (owner plus replica set) from ``origin``."""
        self.erase_many([origin], [key])

    def erase_many(self, origins, keys) -> None:
        """Route many erases at once (one message each)."""
        if self.store is None:
            raise ValueError("key storage disabled (with_keys=False)")
        origins = np.asarray(origins, dtype=np.int64)
        self.outstanding_ops += int(origins.size)
        self._send(MsgBatch(
            kind=MsgKind.FIND_SUCC, src=origins, dst=origins,
            target=np.asarray(keys, dtype=np.uint64), node=origins,
            mode=np.full(origins.size, FindMode.ERASE, dtype=np.int64),
        ))

    def bootstrap_keys(self, keys) -> None:
        """Install keys at their owners + replicas directly (no messages).

        The bulk-load counterpart of :meth:`put_key` for mega-peer
        runs: ownership is resolved analytically over the current
        alive ring, exactly where routed stores would land on a
        quiesced ring.
        """
        if self.store is None:
            raise ValueError("key storage disabled (with_keys=False)")
        keys = np.asarray(keys, dtype=np.uint64)
        av = np.flatnonzero(self.alive)
        owners = av[np.searchsorted(self.ids[av], keys, side="left") % av.size]
        for key, owner in zip(keys.tolist(), owners.tolist()):
            self.store[owner].add(int(key))
            for w in self._replica_targets(owner):
                self.store[w].add(int(key))
        self._mutated()

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, ticks: int) -> None:
        """Advance the simulation by ``ticks`` ticks."""
        for _ in range(int(ticks)):
            self.step()

    def run_until_quiescent(self, *, max_ticks: int = 20000,
                            settle: int | None = None) -> int:
        """Run until stabilization quiesces; returns ticks consumed.

        Quiescence = no state mutation (successor/pred/finger/key
        writes), no side-channel transfers, and no outstanding routed
        operations (lookups, puts, erases) for ``settle`` consecutive
        ticks (default ``3 * period`` — a full maintenance round of
        every node plus slack).  Steady-state maintenance traffic that
        changes nothing does not count.
        """
        settle = 3 * self.cfg.period if settle is None else int(settle)
        start = self.tick
        while self.tick - start < max_ticks:
            self.step()
            if (self.tick - self._last_mutation >= settle
                    and not self._side
                    and self.outstanding_lookups == 0
                    and self.outstanding_ops == 0):
                return self.tick - start
        raise RuntimeError(
            f"no quiescence within {max_ticks} ticks "
            f"(last mutation at tick {self._last_mutation})"
        )

    def step(self) -> None:
        """Process one tick: maintenance round, deliveries, key transfers."""
        self._emit_periodic()
        bucket = self._pending.pop(self.tick, None)
        if bucket:
            grouped: dict[int, list[MsgBatch]] = {}
            for batch in bucket:
                grouped.setdefault(int(batch.kind), []).append(batch)
            for kind in sorted(grouped):
                batch = MsgBatch.concat(grouped[kind])
                self.log.record(self.tick, batch)
                self._deliver(batch)
        side = self._side.pop(self.tick, None)
        if side:
            for record in side:
                self._apply_side(record)
        if self._repairs:
            self._scan_repairs()
        self.tick += 1

    def _emit_periodic(self) -> None:
        cfg = self.cfg
        due = self.alive & (((self.tick + np.arange(self.S)) % cfg.period) == 0)
        u = np.flatnonzero(due).astype(np.int64)
        if u.size == 0:
            return
        s0 = self.succ[u, 0]
        m = (s0 >= 0) & (s0 != u)
        if m.any():
            # a finger strictly inside (u, succ0) is a closer successor
            # candidate — adopt it before stabilizing.  Stabilization's
            # pred walk moves one node per round, so a far overshoot
            # (a join seeded from a distant bootstrap under churn)
            # would otherwise take O(n) rounds to walk back; fingers
            # jump it exponentially close in one adoption.
            mu = u[m]
            fng = self.fingers[mu]
            okf = (fng >= 0) & (fng != mu[:, None])
            fid = self.ids[np.maximum(fng, 0)]
            inside = okf & _in_open(fid, self.ids[mu][:, None],
                                    self.ids[s0[m]][:, None])
            has = inside.any(axis=1)
            if has.any():
                first = np.argmax(inside, axis=1)
                hu = mu[has]
                self.succ[hu, 0] = fng[np.flatnonzero(has), first[has]]
                self._mutated()
                s0 = self.succ[u, 0]
            self._send(MsgBatch(kind=MsgKind.GET_PRED, src=u[m], dst=s0[m]))
        if cfg.self_check_every > 0 and m.any():
            # ring self-check: re-resolve succ(id + 1) through the ring
            # and let the JOIN-mode adopt guard pull in a closer owner;
            # this is what untangles laced rings (see NetConfig)
            rounds = (self.tick + u) // cfg.period
            chk = m & (rounds % cfg.self_check_every == 0)
            if chk.any():
                cu = u[chk]
                with np.errstate(over="ignore"):
                    tgt = self.ids[cu] + np.uint64(1)
                self._send(MsgBatch(
                    kind=MsgKind.FIND_SUCC, src=cu, dst=s0[chk],
                    target=tgt, node=cu,
                    mode=np.full(cu.size, FindMode.JOIN, dtype=np.int64),
                ))
        # successor-less peers self-heal: adopt the closest surviving
        # finger as a tentative successor (stabilization's
        # adopt-predecessor rule then walks it back to the true one);
        # with no fingers either — a joiner whose handshake got lost —
        # retry the join handshake every round until linked
        stuck = s0 < 0
        if stuck.any():
            su = u[stuck]
            fng = self.fingers[su]
            valid = (fng >= 0) & (fng != su[:, None])
            has = valid.any(axis=1)
            if has.any():
                first = np.argmax(valid, axis=1)
                hu = su[has]
                self.succ[hu, 0] = fng[np.flatnonzero(has), first[has]]
                self._mutated()
            if (~has).any():
                self._send_join(su[~has])
        p = self.pred[u]
        mp = p >= 0
        if mp.any():
            self._send(MsgBatch(kind=MsgKind.PING, src=u[mp], dst=p[mp]))
        fpr = cfg.fix_fingers_per_round
        if fpr > 0:
            cols_list = []
            for j in range(fpr):
                cols_list.append((self.fix_next[u] + j) % cfg.n_fingers)
            self.fix_next[u] = (self.fix_next[u] + fpr) % cfg.n_fingers
            cols = np.concatenate(cols_list)
            uu = np.tile(u, fpr)
            with np.errstate(over="ignore"):
                targets = self.ids[uu] + self._powers[cols]
            self._send(MsgBatch(
                kind=MsgKind.FIND_SUCC, src=uu, dst=uu,
                target=targets, node=uu,
                mode=np.full(uu.size, FindMode.FIX_FINGER, dtype=np.int64),
                fk=cols,
            ))

    # ------------------------------------------------------------------
    # delivery + handlers
    # ------------------------------------------------------------------
    def _deliver(self, batch: MsgBatch) -> None:
        alive_dst = self.alive[batch.dst]
        if not alive_dst.all():
            dead = batch.take(np.flatnonzero(~alive_dst))
            self._bounce(dead)
            batch = batch.take(np.flatnonzero(alive_dst))
            if len(batch) == 0:
                return
        kind = batch.kind
        if kind == MsgKind.GET_PRED:
            self._on_get_pred(batch)
        elif kind == MsgKind.PRED_REPLY:
            self._on_pred_reply(batch)
        elif kind == MsgKind.NOTIFY:
            self._on_notify(batch)
        elif kind == MsgKind.PING:
            pass  # liveness is signalled by the absence of a NACK
        elif kind == MsgKind.FIND_SUCC:
            self._on_find_succ(batch)
        elif kind == MsgKind.FOUND:
            self._on_found(batch)
        elif kind == MsgKind.NACK:
            self._on_nack(batch)
        elif kind == MsgKind.LEAVE_PRED:
            self._on_leave_pred(batch)
        elif kind == MsgKind.LEAVE_SUCC:
            self._on_leave_succ(batch)
        elif kind == MsgKind.JOIN_SEED:
            self._on_join_seed(batch)

    def _bounce(self, dead: MsgBatch) -> None:
        """Messages to dead peers: NACK the sender, account lost traffic."""
        if len(dead) == 0:
            return
        if dead.kind == MsgKind.FOUND:
            # requester died before its answer arrived
            lost_lookups = int(np.count_nonzero(dead.mode == FindMode.LOOKUP))
            self.outstanding_lookups -= lost_lookups
            self.outstanding_ops -= int(np.count_nonzero(
                (dead.mode == FindMode.STORE) | (dead.mode == FindMode.ERASE)))
            self.metrics.failed_lookups += lost_lookups
            self.metrics.failed_ops += len(dead) - lost_lookups
            return
        if dead.kind == MsgKind.NACK:
            # the peer that would have retried died too: any enclosed
            # query dies with it, so account it now instead of leaking
            # an outstanding-operation count
            enclosed = np.flatnonzero(dead.ok == MsgKind.FIND_SUCC)
            if enclosed.size:
                self._fail_finds(dead.take(enclosed))
            return
        if dead.kind not in _NACKABLE:
            return
        if dead.kind == MsgKind.FIND_SUCC:
            # a query whose origin or forwarding sender died can never be
            # retried: fail it now instead of bouncing a NACK into the void
            orphan = ~self.alive[dead.node] | ~self.alive[dead.src]
            if orphan.any():
                self._fail_finds(dead.take(np.flatnonzero(orphan)))
                dead = dead.take(np.flatnonzero(~orphan))
                if len(dead) == 0:
                    return
        elif not self.alive[dead.src].all():
            dead = dead.take(np.flatnonzero(self.alive[dead.src]))
            if len(dead) == 0:
                return
        self.metrics.timeouts += len(dead)
        self._send(MsgBatch(
            kind=MsgKind.NACK,
            src=dead.dst, dst=dead.src,
            target=dead.target, node=dead.node, hops=dead.hops,
            tag=dead.tag, mode=dead.mode, fk=dead.fk,
            ok=np.full(len(dead), int(dead.kind), dtype=np.int64),
        ), delay=self.cfg.timeout)

    def _on_get_pred(self, b: MsgBatch) -> None:
        s = b.dst
        self._send(MsgBatch(
            kind=MsgKind.PRED_REPLY, src=s, dst=b.src,
            node=self.pred[s], slist=self.succ[s].copy(),
        ))

    def _on_pred_reply(self, b: MsgBatch) -> None:
        L = self.cfg.succ_list_len
        u, s, p = b.dst, b.src, b.node
        fresh = self.succ[u, 0] == s  # drop stale replies
        if not fresh.all():
            b = b.take(np.flatnonzero(fresh))
            if len(b) == 0:
                return
            u, s, p = b.dst, b.src, b.node
        adopt = (p >= 0) & (p != u) & _in_open(
            self.ids[np.maximum(p, 0)], self.ids[u], self.ids[s])
        newlist = np.empty((len(b), L), dtype=np.int64)
        newlist[:, 0] = np.where(adopt, p, s)
        if L > 1:
            newlist[:, 1] = np.where(adopt, s, b.slist[:, 0])
        for j in range(2, L):
            newlist[:, j] = np.where(adopt, b.slist[:, j - 2], b.slist[:, j - 1])
        old = self.succ[u]
        changed = (newlist != old).any(axis=1)
        if changed.any():
            if self.store is not None:
                for i in np.flatnonzero(changed).tolist():
                    # diff the replica *range* (first R-1 valid entries),
                    # not raw membership: an entry promoted from deeper in
                    # the list also needs the keys
                    old_t = self._targets_of_row(old[i], int(u[i]))
                    new_t = self._targets_of_row(newlist[i], int(u[i]))
                    promoted = [w for w in new_t if w not in old_t]
                    if promoted:
                        keys = self._owned_keys(int(u[i]))
                        for w in promoted:
                            if keys:
                                self._send_side(("copy", w, tuple(keys)))
            self.succ[u] = newlist
            self._mutated()
        self._send(MsgBatch(kind=MsgKind.NOTIFY, src=u, dst=newlist[:, 0]))

    def _on_notify(self, b: MsgBatch) -> None:
        live_src = self.alive[b.src]
        if not live_src.all():
            b = b.take(np.flatnonzero(live_src))
            if len(b) == 0:
                return
        u, s = b.src, b.dst
        ok = u != s
        pre = self.pred[s]
        cond = ok & ((pre < 0) | _in_open(
            self.ids[u], self.ids[np.maximum(pre, 0)], self.ids[s]))
        if not cond.any():
            return
        idx = np.flatnonzero(cond)
        u, s, pre = u[idx], s[idx], pre[idx]
        # per-destination winner: the closest preceding candidate,
        # applied last so duplicate scatters resolve deterministically
        dist = self.ids[s] - self.ids[u]  # clockwise distance, wraps
        order = np.lexsort((~dist, s))
        u, s, pre = u[order], s[order], pre[order]
        old = self.pred[s].copy()
        self.pred[s] = u
        if not np.array_equal(self.pred[s], old):
            self._mutated()
        if self.store is not None:
            last = {}
            for i in range(len(s)):
                last[int(s[i])] = (int(u[i]), int(pre[i]))
            for si, (ui, pi) in sorted(last.items()):
                self._transfer_on_adoption(si, ui, pi)

    def _transfer_on_adoption(self, s: int, u: int, old_pred: int) -> None:
        """Key handoff when ``s`` adopts predecessor ``u``.

        Keys outside ``(u, s]`` now belong to (or are better replicated
        at) ``u``, and any adoption means ``s``'s owned arc changed —
        re-replicating it restores the replication degree before the
        next failure (redundant copies are set-union no-ops).
        """
        held = self.store[s]
        if held:
            keys = np.fromiter(held, dtype=np.uint64, count=len(held))
            outside = ~_in_ropen(keys, self.ids[u], self.ids[s])
            moved = sorted(int(k) for k in keys[outside])
            if moved:
                self._send_side(("copy", u, tuple(moved)))
        self._replicate_owned(s)

    def _route(self, cur: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Closest preceding valid finger of each (cur, target); -1 if none."""
        out = np.full(cur.size, -1, dtype=np.int64)
        F = self.cfg.n_fingers
        for lo in range(0, cur.size, _ROUTE_CHUNK):
            sl = slice(lo, min(lo + _ROUTE_CHUNK, cur.size))
            c = cur[sl]
            f = self.fingers[c]  # (m, F)
            valid = (f >= 0) & (f != c[:, None])
            fid = self.ids[np.maximum(f, 0)]
            okm = valid & _in_open(fid, self.ids[c][:, None],
                                   target[sl][:, None])
            has = okm.any(axis=1)
            best = F - 1 - np.argmax(okm[:, ::-1], axis=1)
            picked = f[np.arange(f.shape[0]), best]
            out[sl] = np.where(has, picked, -1)
        return out

    def _on_find_succ(self, b: MsgBatch) -> None:
        # successor-less origins only: a periodic self-check (above) also
        # arrives as a first-hop JOIN query but needs no seeding
        first_join = ((b.mode == FindMode.JOIN) & (b.hops == 0)
                      & (b.dst != b.node) & (self.succ[b.node, 0] < 0))
        if first_join.any():
            # a bootstrap seeds the joiner with itself + its successor
            # list, so the joiner always gains a live contact even if
            # the routed resolution below dies in a degraded ring
            idx = np.flatnonzero(first_join)
            boots = b.dst[idx]
            L = self.cfg.succ_list_len
            seeds = np.concatenate(
                [boots[:, None], self.succ[boots][:, :L - 1]], axis=1)
            self._send(MsgBatch(kind=MsgKind.JOIN_SEED, src=boots,
                                dst=b.node[idx], slist=seeds))
        cur = b.dst
        cid = self.ids[cur]
        s0 = self.succ[cur, 0]
        has_s0 = (s0 >= 0) & (s0 != cur)
        self_owner = b.target == cid
        in_succ = has_s0 & _in_ropen(b.target, cid, self.ids[np.maximum(s0, 0)])
        found = self_owner | in_succ
        if found.any():
            idx = np.flatnonzero(found)
            owner = np.where(self_owner[idx], cur[idx], s0[idx])
            hops = b.hops[idx] + (in_succ[idx] & (owner != cur[idx]))
            self._send(MsgBatch(
                kind=MsgKind.FOUND, src=cur[idx], dst=b.node[idx],
                target=b.target[idx], node=owner, hops=hops,
                tag=b.tag[idx], mode=b.mode[idx], fk=b.fk[idx],
            ))
        rest = np.flatnonzero(~found)
        if rest.size == 0:
            return
        fb = b.take(rest)
        over = fb.hops + 1 > self.cfg.max_hops
        if over.any():
            self._fail_finds(fb.take(np.flatnonzero(over)))
            fb = fb.take(np.flatnonzero(~over))
            if len(fb) == 0:
                return
        # closest preceding finger; successor fallback; a successor-less
        # peer may still make progress through its surviving fingers
        nxt = self._route(fb.dst, fb.target)
        nxt = np.where(nxt >= 0, nxt, self.succ[fb.dst, 0])
        dead_end = nxt < 0
        if dead_end.any():
            # a successor-less peer that also has no usable finger
            # cannot make progress; drop the query (the issuer's retry
            # or NACK path covers it) rather than poisoning neighbors
            self._fail_finds(fb.take(np.flatnonzero(dead_end)))
            fb = fb.take(np.flatnonzero(~dead_end))
            nxt = nxt[~dead_end]
            if len(fb) == 0:
                return
        self._send(MsgBatch(
            kind=MsgKind.FIND_SUCC, src=fb.dst, dst=nxt,
            target=fb.target, node=fb.node, hops=fb.hops + 1,
            tag=fb.tag, mode=fb.mode, fk=fb.fk,
        ))

    def _fail_finds(self, b: MsgBatch) -> None:
        """Account FIND_SUCC rows dropped (hop budget / isolation)."""
        lookups = int(np.count_nonzero(b.mode == FindMode.LOOKUP))
        self.outstanding_lookups -= lookups
        self.outstanding_ops -= int(np.count_nonzero(
            (b.mode == FindMode.STORE) | (b.mode == FindMode.ERASE)))
        self.metrics.failed_lookups += lookups
        self.metrics.failed_ops += len(b) - lookups

    def _on_found(self, b: MsgBatch) -> None:
        for mode in (FindMode.LOOKUP, FindMode.JOIN, FindMode.FIX_FINGER,
                     FindMode.STORE, FindMode.ERASE):
            idx = np.flatnonzero(b.mode == mode)
            if idx.size == 0:
                continue
            o, owner, hops = b.dst[idx], b.node[idx], b.hops[idx]
            if mode == FindMode.LOOKUP:
                self.outstanding_lookups -= int(idx.size)
                self.metrics.record_lookups(hops, self.tick,
                                            tags=b.tag[idx], owners=owner)
            elif mode == FindMode.JOIN:
                # a retried join can resolve the joiner's own id back to
                # itself once it is partially linked — never self-adopt,
                # and never replace a strictly closer successor
                s0 = self.succ[o, 0]
                adopt = (owner != o) & ((s0 < 0) | (
                    (owner != s0) & _in_ropen(
                        self.ids[owner], self.ids[o],
                        self.ids[np.maximum(s0, 0)])))
                if adopt.any():
                    k = np.flatnonzero(adopt)
                    self.succ[o[k], 0] = owner[k]
                    self._mutated()
                    self._send(MsgBatch(kind=MsgKind.NOTIFY,
                                        src=o[k], dst=owner[k]))
            elif mode == FindMode.FIX_FINGER:
                fk = b.fk[idx]
                if not np.array_equal(self.fingers[o, fk], owner):
                    self.fingers[o, fk] = owner
                    self._mutated()
            elif mode == FindMode.STORE:
                for i in range(idx.size):
                    self._send_side(("put", int(owner[i]),
                                     (int(b.target[idx][i]),), int(o[i])))
            else:  # ERASE
                for i in range(idx.size):
                    self._send_side(("erase", int(owner[i]),
                                     (int(b.target[idx][i]),), int(o[i])))

    def _on_nack(self, b: MsgBatch) -> None:
        self.metrics.nacks += len(b)
        self._scrub(b.dst, b.src)
        retry = np.flatnonzero(b.ok == MsgKind.FIND_SUCC)
        if retry.size:
            rb = b.take(retry)
            self._send(MsgBatch(
                kind=MsgKind.FIND_SUCC, src=rb.dst, dst=rb.dst,
                target=rb.target, node=rb.node, hops=rb.hops,
                tag=rb.tag, mode=rb.mode, fk=rb.fk,
            ))

    def _scrub(self, u: np.ndarray, v: np.ndarray) -> None:
        """Remove dead peer ``v[i]`` from ``u[i]``'s local state, rowwise."""
        if u.size == 0:
            return
        if np.unique(u).size != u.size:
            # duplicate survivors in one batch: apply sequentially so no
            # scrub is lost to a conflicting scatter
            for i in range(u.size):
                self._scrub(u[i:i + 1], v[i:i + 1])
            return
        fm = self.fingers[u]
        hit = fm == v[:, None]
        if hit.any():
            self.fingers[u] = np.where(hit, -1, fm)
            self._mutated()
        rows = self.succ[u]
        mask = rows == v[:, None]
        if mask.any():
            keep = np.where(mask, -1, rows)
            order = np.argsort(mask, axis=1, kind="stable")
            self.succ[u] = np.take_along_axis(keep, order, axis=1)
            self._mutated()
        pm = self.pred[u] == v
        if pm.any():
            self.pred[u] = np.where(pm, -1, self.pred[u])
            self._mutated()

    def _on_leave_pred(self, b: MsgBatch) -> None:
        p, v, s_new = b.dst, b.src, b.node
        rows = self.succ[p]
        hit = rows == v[:, None]
        if hit.any():
            self.succ[p] = np.where(hit, s_new[:, None], rows)
            self._mutated()
        fm = self.fingers[p]
        fhit = fm == v[:, None]
        if fhit.any():
            # v's successor now owns every target v owned
            self.fingers[p] = np.where(fhit, s_new[:, None], fm)
            self._mutated()

    def _on_leave_succ(self, b: MsgBatch) -> None:
        s, v, p_new = b.dst, b.src, b.node
        m = self.pred[s] == v
        if m.any():
            self.pred[s] = np.where(m & (p_new >= 0), p_new,
                                    np.where(m, -1, self.pred[s]))
            self._mutated()
        fm = self.fingers[s]
        fhit = fm == v[:, None]
        if fhit.any():
            self.fingers[s] = np.where(fhit, s[:, None], fm)
            self._mutated()
        if self.store is not None:
            for si in sorted(set(s[m].tolist())):
                self._replicate_owned(si)

    def _on_join_seed(self, b: MsgBatch) -> None:
        """Adopt the closest-following seed contact as a tentative successor.

        The seed list (the bootstrap plus its successor list) is the
        joiner's guaranteed-progress path: routed join resolution can
        dead-end while the ring is degraded, but any live contact
        clockwise of the joiner lets stabilization's adopt-predecessor
        rule walk the overshoot back to the true successor.  A dead
        seed entry is handled by the normal NACK/scrub path.
        """
        u = b.dst
        cands = b.slist
        m = len(b)
        valid = (cands >= 0) & (cands != u[:, None])
        with np.errstate(over="ignore"):
            dist = self.ids[np.maximum(cands, 0)] - self.ids[u][:, None]
        far = np.uint64(np.iinfo(np.uint64).max)
        dist = np.where(valid, dist, far)
        best = np.argmin(dist, axis=1)
        rows = np.arange(m)
        bdist = dist[rows, best]
        bcand = cands[rows, best]
        s0 = self.succ[u, 0]
        with np.errstate(over="ignore"):
            cur = np.where(s0 >= 0,
                           self.ids[np.maximum(s0, 0)] - self.ids[u], far)
        adopt = valid.any(axis=1) & (bdist < cur)
        if not adopt.any():
            return
        idx = np.flatnonzero(adopt)
        # per-joiner winner: closest candidate applied last, so duplicate
        # scatters (several seed replies in one tick) resolve deterministically
        order = np.lexsort((~bdist[idx], u[idx]))
        uu, cc = u[idx][order], bcand[idx][order]
        self.succ[uu, 0] = cc
        self._mutated()
        self._send(MsgBatch(kind=MsgKind.NOTIFY, src=uu, dst=cc))

    # ------------------------------------------------------------------
    # side channel: key payloads (variable-size, low-volume)
    # ------------------------------------------------------------------
    def _apply_side(self, record: tuple) -> None:
        op, dst, keys = record[0], record[1], record[2]
        if op == "put":
            origin = record[3]
            self.outstanding_ops -= 1  # a re-resolve below re-counts it
            if not self.alive[dst]:
                if self.alive[origin]:
                    self.put_key(origin, keys[0])  # owner died: re-resolve
                else:
                    self.metrics.lost_puts += 1
                return
            added = [k for k in keys if k not in self.store[dst]]
            if added:
                self.store[dst].update(added)
                self._mutated()
                self._backflow(dst, added)
            for w in self._replica_targets(dst):
                self._send_side(("copy", w, keys))
        elif op == "copy":
            if not self.alive[dst]:
                return
            added = [k for k in keys if k not in self.store[dst]]
            if added:
                self.store[dst].update(added)
                self._mutated()
                self._backflow(dst, added)
        elif op == "erase":
            origin = record[3]
            self.outstanding_ops -= 1  # a re-resolve below re-counts it
            if not self.alive[dst]:
                if self.alive[origin]:
                    self.erase_key(origin, keys[0])
                else:
                    self.metrics.failed_ops += 1
                return
            changed = False
            for k in keys:
                if k in self.store[dst]:
                    self.store[dst].discard(k)
                    changed = True
            for w in self._replica_targets(dst):
                self._send_side(("erase_copy", w, keys))
            if changed:
                self._mutated()
        elif op == "erase_copy":
            if self.alive[dst]:
                before = len(self.store[dst])
                self.store[dst].difference_update(keys)
                if len(self.store[dst]) != before:
                    self._mutated()

    def _backflow(self, dst: int, added: list[int]) -> None:
        """Forward newly gained out-of-arc keys toward their owner.

        A key replicated forward along the successor chain can strand
        there when its owner rejoins empty: handoff happens at pred
        *adoption* instants, so copies arriving later would never flow
        back.  Forwarding only what was newly gained terminates — once
        every holder on the backward path has the key, nothing is new
        and nothing is forwarded.
        """
        p = int(self.pred[dst])
        if p < 0 or p == dst:
            return
        arr = np.fromiter(added, dtype=np.uint64, count=len(added))
        outside = ~_in_ropen(arr, self.ids[p], self.ids[dst])
        if outside.any():
            moved = tuple(sorted(int(k) for k in arr[outside]))
            self._send_side(("copy", p, moved))

    # ------------------------------------------------------------------
    # repair-latency tracking
    # ------------------------------------------------------------------
    def _scan_repairs(self) -> None:
        remaining = []
        for entry in self._repairs:
            slot, t0, p, s = entry
            if not self.alive[p] or not self.alive[s]:
                p, s = self._live_neighbors(slot)
                entry[2], entry[3] = p, s
            if self.succ[p, 0] == s and self.pred[s] == p:
                self.metrics.repair_latencies.append(self.tick - t0)
                if self.store is not None:
                    # every owner that replicated onto the corpse (its
                    # R-1 predecessors) lost a copy; restore the degree
                    w = p
                    for _ in range(self.cfg.replication - 1):
                        if w < 0 or not self.alive[w]:
                            break
                        self._replicate_owned(int(w))
                        w = int(self.pred[w])
            else:
                remaining.append(entry)
        self._repairs = remaining
