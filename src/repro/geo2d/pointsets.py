"""Point processes on the unit torus / unit square.

The paper's theory assumes uniform placements; its ATM footnote notes
that "in practice, the distribution of ATMs and customers may be highly
non-uniform" yet two choices still helps.  These generators provide both
regimes so the 2-D application experiments can probe the gap.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import check_dimension, check_positive_int

__all__ = ["uniform_points", "grid_points", "clustered_points"]


def uniform_points(n: int, dim: int = 2, seed=None) -> np.ndarray:
    """``n`` i.i.d. uniform points in ``[0, 1)^dim`` (the paper's model)."""
    n = check_positive_int(n, "n")
    dim = check_dimension(dim, "dim")
    rng = resolve_rng(seed)
    return rng.random((n, dim))


def grid_points(side: int, dim: int = 2, jitter: float = 0.0, seed=None) -> np.ndarray:
    """``side**dim`` points on a regular grid, optionally jittered.

    The perfectly regular placement is the best case for nearest-neighbor
    balancing (all cells equal) and serves as a control in ablations.

    Parameters
    ----------
    jitter:
        Standard deviation of toroidal Gaussian noise added to each
        coordinate, as a fraction of the grid spacing.  ``0`` = exact grid.
    """
    side = check_positive_int(side, "side")
    dim = check_dimension(dim, "dim")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    axes = [np.arange(side) / side + 0.5 / side] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0:
        rng = resolve_rng(seed)
        noise = rng.normal(scale=jitter / side, size=pts.shape)
        pts = (pts + noise) % 1.0
    return pts


def clustered_points(
    n: int,
    n_clusters: int = 8,
    spread: float = 0.05,
    dim: int = 2,
    seed=None,
) -> np.ndarray:
    """Gaussian-cluster (toroidally wrapped) point process.

    Models a city where locations concentrate around ``n_clusters``
    centers — the "highly non-uniform" case of the paper's footnote 2.

    Parameters
    ----------
    n_clusters:
        Number of cluster centers (uniform on the torus).
    spread:
        Per-coordinate standard deviation of each cluster.
    """
    n = check_positive_int(n, "n")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    dim = check_dimension(dim, "dim")
    if spread <= 0:
        raise ValueError(f"spread must be > 0, got {spread}")
    rng = resolve_rng(seed)
    centers = rng.random((n_clusters, dim))
    assignments = rng.integers(n_clusters, size=n)
    noise = rng.normal(scale=spread, size=(n, dim))
    return (centers[assignments] + noise) % 1.0
