"""2-D application substrate: toroidal Voronoi geometry and the ATM model.

This package provides the geometric machinery behind the paper's
Section 3 (Voronoi cells on the unit torus) and the Section 1.1 bank /
automatic-teller-machine motivating example:

* exact Voronoi cell areas on the torus (3x3 periodic tiling + shoelace),
* a Monte-Carlo area estimator (cross-check + higher dimensions),
* point processes (uniform, grid, clustered) for the "in practice the
  distribution may be highly non-uniform" footnote,
* the ATM customer-assignment model built on the core engine.
"""

from repro.geo2d.voronoi import (
    monte_carlo_region_measures,
    toroidal_voronoi_areas,
)
from repro.geo2d.pointsets import (
    clustered_points,
    grid_points,
    uniform_points,
)
from repro.geo2d.atm import AtmAssignmentModel, AtmReport

__all__ = [
    "toroidal_voronoi_areas",
    "monte_carlo_region_measures",
    "uniform_points",
    "grid_points",
    "clustered_points",
    "AtmAssignmentModel",
    "AtmReport",
]
