"""Voronoi cell areas on the unit torus.

The paper's torus analysis (Section 3) reasons about the *areas* of the
Voronoi regions induced by ``n`` uniform points on the 2-D unit torus.
We need those areas for two things:

* the ``smaller`` / ``larger`` tie-breaking strategies of Table 3's
  family applied on the torus, and
* empirical validation of Lemma 9's tail bound on the number of large
  regions.

Exact computation uses the standard periodic-tiling trick: replicate the
``n`` points into the 3x3 grid of unit translates, build a planar
Voronoi diagram of the ``9n`` copies with :class:`scipy.spatial.Voronoi`,
and read off the (bounded, convex) cells of the central copies.  Each
central cell's area equals the toroidal cell area whenever every cell
has diameter < 1, which holds with overwhelming probability for n >= 2
random points and is *verified* here by checking the areas sum to 1.

A Monte-Carlo estimator is provided as an independent cross-check and as
the fallback for dimension >= 3, where exact cell volumes are not
needed by any experiment.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Voronoi, cKDTree

from repro.utils.rng import resolve_rng
from repro.utils.validation import as_float_array, check_positive_int

__all__ = [
    "toroidal_voronoi_areas",
    "monte_carlo_region_measures",
    "polygon_area",
]

#: relative tolerance for the "areas sum to 1" sanity check
_AREA_SUM_RTOL = 1e-9


def polygon_area(vertices: np.ndarray) -> float:
    """Area of a convex polygon given unordered vertices (shoelace).

    The vertices are sorted by angle around their centroid first, which
    is valid because Voronoi cells are convex.

    Examples
    --------
    >>> polygon_area(np.array([[0, 0], [1, 0], [1, 1], [0, 1]]))
    1.0
    """
    verts = as_float_array(vertices, "vertices", ndim=2)
    if verts.shape[0] < 3:
        return 0.0
    centroid = verts.mean(axis=0)
    angles = np.arctan2(verts[:, 1] - centroid[1], verts[:, 0] - centroid[0])
    order = np.argsort(angles)
    v = verts[order]
    x, y = v[:, 0], v[:, 1]
    return float(0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(np.roll(x, -1), y)))


def _tile_3x3(points: np.ndarray) -> np.ndarray:
    """Replicate points into the 3x3 grid of unit translates.

    The original points occupy the first ``n`` rows (offset (0, 0)) so
    cell ``i`` of the output diagram corresponds to input point ``i``.
    """
    offsets = np.array(
        [
            (0.0, 0.0),
            (-1.0, -1.0),
            (-1.0, 0.0),
            (-1.0, 1.0),
            (0.0, -1.0),
            (0.0, 1.0),
            (1.0, -1.0),
            (1.0, 0.0),
            (1.0, 1.0),
        ]
    )
    return (points[None, :, :] + offsets[:, None, :]).reshape(-1, 2)


def toroidal_voronoi_areas(points) -> np.ndarray:
    """Exact Voronoi cell areas for points on the unit 2-torus.

    Parameters
    ----------
    points:
        ``(n, 2)`` array in ``[0, 1)^2`` with distinct rows.

    Returns
    -------
    ``(n,)`` array of areas, non-negative, summing to 1.

    Raises
    ------
    ValueError
        If points are out of range, duplicated, or the tiling produced
        an inconsistent diagram (areas not summing to 1), which signals
        a degenerate configuration.
    """
    pts = as_float_array(points, "points", ndim=2)
    if pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("points must be non-empty")
    if np.any((pts < 0.0) | (pts >= 1.0)):
        raise ValueError("points must lie in [0, 1)^2")
    if n == 1:
        return np.ones(1)
    # duplicate detection on the torus
    tree = cKDTree(pts, boxsize=1.0)
    dist, _ = tree.query(pts, k=2)
    if np.any(dist[:, 1] == 0.0):
        raise ValueError("points must be distinct on the torus")

    vor = Voronoi(_tile_3x3(pts))
    areas = np.empty(n)
    for i in range(n):
        region_idx = vor.point_region[i]
        region = vor.regions[region_idx]
        if -1 in region or len(region) == 0:
            raise ValueError(
                "central Voronoi cell is unbounded; configuration too "
                "degenerate for the 3x3 tiling (cell diameter >= 1)"
            )
        areas[i] = polygon_area(vor.vertices[region])
    total = areas.sum()
    if not np.isclose(total, 1.0, rtol=1e-6, atol=1e-9):
        raise ValueError(
            f"toroidal Voronoi areas sum to {total!r}, expected 1.0; "
            "degenerate configuration"
        )
    # remove the O(1e-12) numerical drift so downstream probability uses
    # an exact distribution
    return areas / total


def monte_carlo_region_measures(
    points,
    n_samples: int = 200_000,
    seed=None,
    *,
    workers: int = 1,
) -> np.ndarray:
    """Monte-Carlo estimate of nearest-neighbor region measures.

    Works in any dimension (points of shape ``(n, k)``); used as an
    independent cross-check of :func:`toroidal_voronoi_areas` and as the
    measure source for k >= 3 tori.

    Parameters
    ----------
    points:
        ``(n, k)`` server locations in ``[0, 1)^k``.
    n_samples:
        Number of uniform probes; the estimate of each measure has
        standard error ``sqrt(p (1-p) / n_samples)``.
    workers:
        Passed to :meth:`scipy.spatial.cKDTree.query` (-1 = all cores).
    """
    pts = as_float_array(points, "points", ndim=2)
    n_samples = check_positive_int(n_samples, "n_samples")
    n, k = pts.shape
    rng = resolve_rng(seed)
    tree = cKDTree(pts, boxsize=1.0)
    counts = np.zeros(n, dtype=np.int64)
    # probe in blocks to bound memory at ~8 MB regardless of n_samples
    block = 1 << 17
    remaining = n_samples
    while remaining > 0:
        b = min(block, remaining)
        queries = rng.random((b, k))
        _, owner = tree.query(queries, workers=workers)
        counts += np.bincount(owner, minlength=n)
        remaining -= b
    return counts / n_samples
