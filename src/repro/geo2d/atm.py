"""The bank / automatic-teller-machine assignment model (paper, Sec. 1.1).

"Suppose that one's bank wanted to try to balance the load among its
automatic teller machines throughout the city.  For each customer, it
suggests a base machine, which will be the closest machine to either the
customer's home or work location."

Machines are servers on the 2-D torus; each customer supplies ``d``
candidate locations (home, work, ...) and is assigned to the least
loaded machine among the nearest machines of those locations.  With
``d = 1`` (home only) this is plain nearest-neighbor assignment; with
``d = 2`` it is exactly the paper's geometric two-choice process, except
that candidate locations may follow a *non-uniform* customer
distribution (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.core.loads import load_histogram, load_imbalance, max_load
from repro.core.strategies import TieBreak, decide_row_scalar
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_float_array, check_positive_int

__all__ = ["AtmAssignmentModel", "AtmReport"]


@dataclass(frozen=True)
class AtmReport:
    """Outcome of assigning all customers to machines."""

    loads: np.ndarray
    assignments: np.ndarray
    d: int

    @property
    def max_load(self) -> int:
        return max_load(self.loads)

    @property
    def imbalance(self) -> float:
        return load_imbalance(self.loads)

    def histogram(self) -> np.ndarray:
        return load_histogram(self.loads)


class AtmAssignmentModel:
    """Sequentially assign customers to the least loaded nearby machine.

    Parameters
    ----------
    machines:
        ``(n, 2)`` machine locations in ``[0, 1)^2`` (torus).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.geo2d import uniform_points
    >>> model = AtmAssignmentModel(uniform_points(64, seed=0))
    >>> locs = uniform_points(256, seed=1), uniform_points(256, seed=2)
    >>> report = model.assign(np.stack(locs, axis=1), seed=3)
    >>> int(report.loads.sum())
    256
    """

    def __init__(self, machines) -> None:
        pts = as_float_array(machines, "machines", ndim=2)
        if pts.shape[1] != 2:
            raise ValueError(f"machines must have shape (n, 2), got {pts.shape}")
        if np.any((pts < 0.0) | (pts >= 1.0)):
            raise ValueError("machines must lie in [0, 1)^2")
        self.machines = pts
        self.n = int(pts.shape[0])
        self._tree = cKDTree(pts, boxsize=1.0)

    def nearest_machine(self, locations) -> np.ndarray:
        """Index of the nearest machine (toroidal metric) per location."""
        locs = as_float_array(locations, "locations")
        _, idx = self._tree.query(locs)
        return np.asarray(idx, dtype=np.int64)

    def assign(
        self,
        candidate_locations,
        *,
        strategy: TieBreak | str = TieBreak.RANDOM,
        seed=None,
    ) -> AtmReport:
        """Assign customers in arrival order.

        Parameters
        ----------
        candidate_locations:
            ``(m, d, 2)`` array: customer ``t`` offers ``d`` candidate
            locations (e.g. home and work).  ``d`` may be 1.
        strategy:
            Tie-break among equally loaded candidate machines.
        """
        locs = as_float_array(candidate_locations, "candidate_locations")
        if locs.ndim == 2:  # (m, 2) == single location per customer
            locs = locs[:, None, :]
        if locs.ndim != 3 or locs.shape[-1] != 2:
            raise ValueError(
                f"candidate_locations must have shape (m, d, 2), got {locs.shape}"
            )
        m, d, _ = locs.shape
        check_positive_int(m, "number of customers")
        strat = TieBreak.coerce(strategy)
        rng = resolve_rng(seed)

        candidates = self.nearest_machine(locs.reshape(m * d, 2)).reshape(m, d)
        # measures for smaller/larger tie-breaks: exact Voronoi areas
        measures = None
        if strat in (TieBreak.SMALLER, TieBreak.LARGER):
            from repro.geo2d.voronoi import toroidal_voronoi_areas

            measures = toroidal_voronoi_areas(self.machines)

        loads = np.zeros(self.n, dtype=np.int64)
        assignments = np.empty(m, dtype=np.int64)
        tiebreaks = rng.random(m)
        for t in range(m):
            cand = candidates[t]
            j = decide_row_scalar(
                loads[cand].tolist(),
                None if measures is None else measures[cand].tolist(),
                float(tiebreaks[t]),
                strat,
            )
            chosen = int(cand[j])
            assignments[t] = chosen
            loads[chosen] += 1
        return AtmReport(loads=loads, assignments=assignments, d=d)
