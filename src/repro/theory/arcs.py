"""Arc-length (uniform spacing) laws: the paper's Lemmas 4-6.

When ``n`` points land uniformly on a circle of circumference 1, the
``n`` induced arcs are the *uniform spacings*: jointly distributed as a
flat Dirichlet, each marginally with survival function
``Pr(L >= x) = (1 - x)^(n-1)``.  The paper's whole Section 2 reduces to
controlling, for ``N_c`` = number of arcs of length at least ``c/n``:

* the expectation ``E[N_c] = n (1 - c/n)^(n-1) <= n e^{-c}`` (c >= 2),
* Lemma 4's Chernoff tail (via Lemma 3's negative dependence),
* Lemma 5's weaker Azuma/Doob-martingale tail,
* Lemma 6's bound ``2 (a/n) ln(n/a)`` on the total length of the ``a``
  longest arcs,
* the ``4 ln n / n`` bound on the single longest arc.
"""

from __future__ import annotations

import math

import numpy as np

from repro.theory.chernoff import azuma_tail, chernoff_lemma2
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "arc_survival",
    "expected_arcs_at_least",
    "lemma4_tail",
    "lemma5_tail",
    "lemma6_sum_bound",
    "lemma6_failure_probability_is_small",
    "longest_arc_bound",
    "longest_arc_exceedance_probability",
    "expected_max_arc",
    "sample_spacings",
]


def arc_survival(x: float, n: int) -> float:
    """``Pr(a given arc has length >= x)`` = ``(1 - x)^(n-1)``.

    Exact for uniform spacings of ``n`` points; the paper uses the
    threshold form ``x = c/n``.

    Examples
    --------
    >>> arc_survival(0.5, 2)
    0.5
    """
    n = check_positive_int(n, "n")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    return float((1.0 - x) ** (n - 1))


def expected_arcs_at_least(c: float, n: int, *, bound: bool = False) -> float:
    """``E[N_c]``: expected number of arcs of length >= ``c/n``.

    Exact value ``n (1 - c/n)^(n-1)``; with ``bound=True`` returns the
    paper's relaxation ``n e^{-c}`` (valid — i.e. dominating — for
    ``c >= 2``, per the inequality below Lemma 4).
    """
    n = check_positive_int(n, "n")
    if c < 0 or c > n:
        raise ValueError(f"c must be in [0, n], got {c}")
    if bound:
        if c < 2:
            raise ValueError(f"the e^-c bound requires c >= 2, got {c}")
        return n * math.exp(-c)
    return n * arc_survival(c / n, n)


def lemma4_tail(c: float, n: int) -> float:
    """Lemma 4: ``Pr(N_c >= 2 n e^{-c}) <= exp(-n e^{-c} / 3)``.

    Valid for ``2 <= c <= n``; rests on Lemma 3's negative dependence of
    the arc indicators, which lets Lemma 2's Chernoff bound apply.
    """
    n = check_positive_int(n, "n")
    if not 2.0 <= c <= n:
        raise ValueError(f"Lemma 4 requires 2 <= c <= n, got c={c}, n={n}")
    p = math.exp(-c)
    return chernoff_lemma2(n, p)


def lemma5_tail(c: float, n: int) -> float:
    """Lemma 5: ``Pr(N_c >= 2 n e^{-c}) <= exp(-n e^{-2c} / 8)``.

    The martingale alternative: the Doob sequence exposing points one at
    a time satisfies a Lipschitz condition with constant 2 (each point
    splits at most one long arc into two, or merges nothing), so Azuma
    applies with deviation ``t = n e^{-c}``.  Weaker than Lemma 4 —
    tests confirm ``lemma5_tail >= lemma4_tail`` — but generalizes to
    settings without a negative-dependence proof (the torus).
    """
    n = check_positive_int(n, "n")
    if not 2.0 <= c <= n:
        raise ValueError(f"Lemma 5 requires 2 <= c <= n, got c={c}, n={n}")
    t = n * math.exp(-c)
    return azuma_tail(t, 2.0, n)


def lemma6_sum_bound(a: int, n: int) -> float:
    """Lemma 6: w.h.p. the ``a`` longest arcs total at most this length.

    Bound: ``2 (a/n) ln(n/a)``, stated for ``(ln n)^2 <= a <= n/64``.
    Outside that window the bound expression is still returned (it is
    only the probability guarantee that needs the window); callers can
    check the window with :func:`lemma6_in_window`.
    """
    a = check_positive_int(a, "a")
    n = check_positive_int(n, "n")
    if a > n:
        raise ValueError(f"a={a} cannot exceed n={n}")
    return 2.0 * (a / n) * math.log(n / a) if a < n else 1.0


def lemma6_in_window(a: int, n: int) -> bool:
    """Whether ``(ln n)^2 <= a <= n/64`` (Lemma 6's stated range).

    Integer arithmetic on the upper limit so asymptotic sanity checks
    can pass astronomically large ``n``.
    """
    return math.log(n) ** 2 <= a and 64 * a <= n


def lemma6_failure_probability_is_small(a: int, n: int) -> float:
    """Crude upper estimate of Lemma 6's failure probability.

    The proof bounds the failure probability by
    ``sum_k exp(-(a / 2^k) / 12) + 1/n^3`` over the recursion levels
    down to ``a / 2^j ~ (ln n)^2 / 32``; we evaluate that sum directly.
    """
    a = check_positive_int(a, "a")
    n = check_positive_int(n, "n")
    # exp(-3 ln n) instead of 1/n^3: safe for astronomically large n
    total = math.exp(max(-745.0, -3.0 * math.log(n)))
    b = float(a)
    floor = math.log(n) ** 2 / 32.0
    while b >= floor:
        total += math.exp(-b / 12.0)
        b /= 2.0
    return min(total, 1.0)


def longest_arc_bound(n: int) -> float:
    """The proof's high-probability cap on the single longest arc.

    ``4 ln n / n``, exceeded with probability at most ``1/n^3``
    (shown inside Lemma 6's proof).
    """
    n = check_positive_int(n, "n")
    if n < 2:
        return 1.0
    return 4.0 * math.log(n) / n


def longest_arc_exceedance_probability(n: int) -> float:
    """Union bound ``n (1 - 4 ln n / n)^(n-1)`` for the longest arc.

    This is the quantity the proof bounds by ``1/n^3``.
    """
    n = check_positive_int(n, "n")
    if n < 2:
        return 0.0
    x = 4.0 * math.log(n) / n
    if x >= 1.0:
        return 0.0
    return float(n * (1.0 - x) ** (n - 1))


def expected_max_arc(n: int) -> float:
    """Exact expectation of the longest arc: ``H_n / n``.

    Classical order-statistics identity for uniform spacings
    (``H_n`` = n-th harmonic number); confirms the Θ(log n / n) scale
    the paper quotes for the largest region.
    """
    n = check_positive_int(n, "n")
    harmonic = float(np.sum(1.0 / np.arange(1, n + 1)))
    return harmonic / n


def arc_count_poisson_tail(c: float, n: int, k: int) -> float:
    """Poisson approximation to ``Pr(N_c >= k)``.

    For large ``n`` the number of arcs of length at least ``c/n`` is
    approximately Poisson with mean ``E[N_c] = n (1 - c/n)^{n-1}`` (the
    indicators are weakly negatively dependent, so the approximation is
    slightly conservative in the upper tail).  This gives a *sharp*
    counterpart to Lemma 4's Chernoff bound, useful for choosing
    thresholds in applications; tests validate it against simulation.
    """
    from scipy import stats

    n = check_positive_int(n, "n")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    mean = expected_arcs_at_least(c, n)
    return float(stats.poisson.sf(k - 1, mean))


def sample_spacings(n: int, size: int = 1, seed=None) -> np.ndarray:
    """Sample uniform-spacing vectors directly (Dirichlet(1,...,1)).

    Returns shape ``(size, n)`` arrays of arc lengths summing to 1 —
    equivalent in distribution to the arcs of ``n`` uniform points, and
    the fast path for Monte-Carlo validation of Lemmas 4-6 without
    constructing ring instances.
    """
    n = check_positive_int(n, "n")
    size = check_positive_int(size, "size")
    rng = resolve_rng(seed)
    exp = rng.exponential(size=(size, n))
    return exp / exp.sum(axis=1, keepdims=True)
