"""A measure-weighted fluid limit for *geometric* d-choice allocation.

The paper's conclusion poses an open problem: "In the case of uniform
bin sizes, [load distribution prediction] can be done quite well using
methods based on differential equations... It is not clear whether
either of these methods can be made to apply to this setting."  This
module is a constructive (numerical) answer for the i.i.d.-weight
idealization of the geometric setting.

Model.  Give each bin a *weight* ``W`` with ``E[W] = 1`` — the
normalized region measure.  For the ring, arc lengths scaled by ``n``
converge to Exp(1); for the 2-D torus, normalized Voronoi areas are
well approximated by a Gamma(a, 1/a) law with shape ``a ≈ 3.575``
(Kiang's classical fit; tests check it against our exact areas).  A
choice probes a bin with probability proportional to its weight.

Let ``v_w,i(t)`` be the fraction of weight-``w`` bins with load >= i
and ``u_i = E[W v_W,i]`` the *measure* of load->=i bins.  A bin of
weight ``w`` at load exactly ``j`` receives the next ball with
probability ``(w/n) h_j`` where

    h_j = (u_j^d - u_{j+1}^d) / (u_j - u_{j+1})

(the standard d-choice identity: the ball joins it iff it is a
candidate, no candidate is less loaded, and it wins the uniform
tie-break among equally loaded candidates).  Scaling time so balls
arrive at rate ``n`` gives, per weight class,

    dv_w,i/dt = w * (v_w,i-1 - v_w,i) * h_{i-1},        v_w,0 = 1.

We discretize ``W`` into equal-probability quantile buckets with exact
conditional means and integrate the coupled system.  Setting the weight
distribution to the point mass at 1 recovers Mitzenmacher's classical
system exactly (a test asserts this), and the Exp(1) / Gamma instances
reproduce the simulated ring / torus tail fractions to ~1e-2 (tests).

Caveat recorded for honesty: real arc lengths / cell areas are weakly
(negatively) *dependent*; the model treats them as i.i.d.  The match
with simulation shows the dependence is second-order for tail
prediction — which is itself an empirical contribution to the open
problem, not a proof.
"""

from __future__ import annotations

import numpy as np
from scipy import special, stats
from scipy.integrate import solve_ivp

from repro.utils.validation import check_positive_int

__all__ = [
    "WeightModel",
    "weight_model_for",
    "weighted_fluid_tails",
    "weighted_fluid_predicted_max_load",
    "VORONOI_GAMMA_SHAPE",
]

#: Kiang's classical shape parameter for normalized 2-D Poisson-Voronoi
#: cell areas (Gamma(a, 1/a) with a ~ 3.575).
VORONOI_GAMMA_SHAPE = 3.575


class WeightModel:
    """A discretized bin-weight distribution with ``E[W] = 1``.

    Parameters
    ----------
    bucket_weights:
        Conditional mean weight of each equal-probability bucket.
    """

    def __init__(self, bucket_weights: np.ndarray) -> None:
        w = np.asarray(bucket_weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("bucket_weights must be a non-empty 1-D array")
        if np.any(w <= 0):
            raise ValueError("bucket weights must be positive")
        # exact renormalization so the discretization has mean exactly 1
        self.weights = w / w.mean()
        self.k = int(w.size)
        self.probs = np.full(self.k, 1.0 / self.k)

    @classmethod
    def point_mass(cls) -> "WeightModel":
        """Uniform bins: every weight is 1 (the classical model)."""
        return cls(np.ones(1))

    @classmethod
    def gamma(cls, shape: float, n_buckets: int = 48) -> "WeightModel":
        """Gamma(shape, 1/shape) weights (mean 1), quantile-bucketed.

        ``shape = 1`` is Exp(1) — the ring's arc-length law;
        ``shape = VORONOI_GAMMA_SHAPE`` fits 2-D Voronoi areas.

        Bucket means are exact truncated-Gamma expectations computed
        from regularized incomplete gamma functions.
        """
        if shape <= 0:
            raise ValueError(f"shape must be > 0, got {shape}")
        n_buckets = check_positive_int(n_buckets, "n_buckets")
        scale = 1.0 / shape
        qs = np.linspace(0.0, 1.0, n_buckets + 1)
        edges = stats.gamma.ppf(qs, a=shape, scale=scale)
        edges[0], edges[-1] = 0.0, np.inf
        # E[W; a < W < b] for Gamma(k, theta) = k*theta*(P(k+1, b/theta)
        # - P(k+1, a/theta)) with P the regularized lower incomplete gamma
        upper = np.where(np.isinf(edges), 1.0, special.gammainc(shape + 1, edges / scale))
        partial = shape * scale * np.diff(upper)
        mass = 1.0 / n_buckets
        return cls(partial / mass)


def weight_model_for(space_kind: str, n_buckets: int = 48) -> WeightModel:
    """The weight model matching one of the package's spaces.

    ``"uniform"`` -> point mass, ``"ring"`` -> Exp(1),
    ``"torus"`` -> Gamma(3.575) (2-D Voronoi areas).
    """
    if space_kind == "uniform":
        return WeightModel.point_mass()
    if space_kind == "ring":
        return WeightModel.gamma(1.0, n_buckets)
    if space_kind == "torus":
        return WeightModel.gamma(VORONOI_GAMMA_SHAPE, n_buckets)
    raise ValueError(
        f"unknown space kind {space_kind!r}; expected uniform/ring/torus"
    )


def _flux(u: np.ndarray, d: int) -> np.ndarray:
    """``h_j = (u_j^d - u_{j+1}^d) / (u_j - u_{j+1})`` with limits.

    ``u`` has length i_max+1 (u[i_max] treated as its own successor 0).
    Returns h of length i_max.
    """
    u_lo = np.concatenate([u[1:], [0.0]])
    num = u**d - u_lo**d
    den = u - u_lo
    # limit d*u^{d-1} when the gap vanishes
    with np.errstate(divide="ignore", invalid="ignore"):
        h = np.where(den > 1e-14, num / np.maximum(den, 1e-300), d * u ** (d - 1))
    return h


def weighted_fluid_tails(
    d: int,
    lam: float = 1.0,
    *,
    weights: WeightModel | None = None,
    i_max: int = 40,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> dict[str, np.ndarray]:
    """Integrate the weighted system to time ``lam = m/n``.

    Returns ``{"s": number-tails, "u": measure-tails, "per_bucket": v}``
    where ``s[i]`` is the limiting fraction of *bins* with load >= i
    (the empirical ``nu_i / n``) and ``u[i]`` the fraction of *measure*
    in such bins.  ``s[0] == u[0] == 1``.

    Examples
    --------
    >>> out = weighted_fluid_tails(2, weights=WeightModel.point_mass())
    >>> from repro.theory.fluid import fluid_limit_tails
    >>> import numpy as np
    >>> bool(np.allclose(out["s"][:8], fluid_limit_tails(2)[:8], atol=1e-6))
    True
    """
    d = check_positive_int(d, "d")
    i_max = check_positive_int(i_max, "i_max")
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    model = WeightModel.point_mass() if weights is None else weights
    k = model.k
    w = model.weights
    p = model.probs

    def rhs(_t, flat):
        v = flat.reshape(k, i_max)
        v = np.clip(v, 0.0, 1.0)
        # u_i = sum_k p_k w_k v_{k,i}; prepend u_0 = 1
        u = np.empty(i_max + 1)
        u[0] = 1.0
        u[1:] = (p * w) @ v
        h = _flux(u, d)  # h[j] multiplies the j -> j+1 transition
        v_prev = np.empty_like(v)
        v_prev[:, 0] = 1.0
        v_prev[:, 1:] = v[:, :-1]
        return (w[:, None] * (v_prev - v) * h[None, :i_max]).ravel()

    v0 = np.zeros(k * i_max)
    sol = solve_ivp(rhs, (0.0, float(lam)), v0, method="RK45", rtol=rtol, atol=atol)
    if not sol.success:  # pragma: no cover - robust system
        raise RuntimeError(f"weighted fluid integration failed: {sol.message}")
    v = np.clip(sol.y[:, -1].reshape(k, i_max), 0.0, 1.0)
    s = np.concatenate([[1.0], p @ v])
    u = np.concatenate([[1.0], (p * w) @ v])
    return {"s": s, "u": u, "per_bucket": v}


def weighted_fluid_predicted_max_load(
    n: int,
    d: int,
    lam: float = 1.0,
    *,
    weights: WeightModel | None = None,
) -> int:
    """Largest ``i`` with ``n * s_i >= 1`` under the weighted model.

    The geometric analogue of
    :func:`repro.theory.fluid.fluid_predicted_max_load`; for the ring
    weight model this predicts the extra +1 the simulations show over
    uniform bins.
    """
    n = check_positive_int(n, "n")
    out = weighted_fluid_tails(d, lam, weights=weights)
    above = np.nonzero(n * out["s"] >= 1.0)[0]
    return int(above.max())
