"""The layered-induction recursion (paper Eq. (1) and Claim 10).

The proof of Theorem 1 constructs a sequence ``beta_i`` dominating
``nu_i`` (the number of bins with load >= i) w.h.p.:

* seed: ``beta_256 = n / 256`` (pigeonhole: with m = n balls at most
  n/256 bins can hold 256 or more),
* step (Eq. 1): ``beta_{i+1} = 2 n (2 (beta_i / n) ln(n / beta_i))^d``
  — the extra ``2 ln(n / beta_i)`` factor relative to the classical
  recursion pays for the non-uniform arc lengths via Lemma 6,
* stop: ``i*`` = first ``i`` with
  ``p_i = (2 (beta_i/n) ln(n/beta_i))^d < 6 ln n / n``; the maximum
  load is then ``i* + 2`` w.h.p.  Claim 10 shows
  ``i* = log log n / log d + O(1)``.

The classical ABKU recursion (``beta_{i+1} = 2 beta_i^d / n^{d-1}``,
uniform bins) is provided for comparison.  Iteration is carried out in
log space so the doubly-exponential collapse never underflows.

Both recursions take ``lam = m / n`` (default 1) implementing the
paper's ``m != n`` remark: with ``m = lam n`` balls the per-step count
bound becomes ``beta_{i+1} = 2 lam n p_i`` and the pigeonhole seed
``nu_i <= lam n / i``.

A numerical subtlety the seed constant encodes: the geometric map
``x -> 2 (2 x ln(1/x))^d`` is only a contraction for small ``x`` (for
``d = 2`` roughly ``x ln^2(1/x) < 1/8``), and ``x = 1/256`` is about the
largest power-of-two fraction inside that region — the likely origin of
the paper's "excessive" 256.  Seeding above the contraction threshold
raises a descriptive error rather than looping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive_int

__all__ = [
    "BetaStep",
    "beta_sequence",
    "abku_beta_sequence",
    "i_star",
    "predicted_max_load",
    "practical_predicted_max_load",
    "theorem1_leading_term",
    "claim10_envelope",
    "claim10_constant",
]


@dataclass(frozen=True)
class BetaStep:
    """One step of a layered-induction recursion.

    Attributes
    ----------
    index:
        The load threshold ``i`` this step bounds.
    log_fraction:
        ``ln(beta_i / n)`` (kept in log space; ``beta_i`` itself
        underflows within a few steps of the collapse).
    log_p:
        ``ln p_i`` — the per-ball probability bound that all ``d``
        choices land in currently-full bins.
    """

    index: int
    log_fraction: float
    log_p: float

    @property
    def beta_over_n(self) -> float:
        return math.exp(self.log_fraction)

    def beta(self, n: int) -> float:
        return n * math.exp(self.log_fraction)


def _validate_common(
    n: int, d: int, seed_index: int, seed_fraction: float, lam: float
):
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError(
            f"the layered induction requires d >= 2 (got d={d}); d = 1 is "
            "the Theta(log n) regime with no recursion"
        )
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    seed_index = check_positive_int(seed_index, "seed_index")
    if not 0.0 < seed_fraction < 1.0:
        raise ValueError(f"seed_fraction must be in (0, 1), got {seed_fraction}")
    if seed_fraction > lam / seed_index + 1e-12:
        raise ValueError(
            f"seed_fraction={seed_fraction} > lam/seed_index="
            f"{lam / seed_index}: the pigeonhole seed "
            "nu_i <= m/i = lam*n/i would not dominate"
        )
    return n, d, seed_index, seed_fraction


def _stop_threshold(n: int) -> float:
    """ln of the recursion's stopping level ``6 ln n / n``."""
    return math.log(6.0 * math.log(max(n, 2)) / n)


def beta_sequence(
    n: int,
    d: int,
    *,
    seed_index: int = 256,
    seed_fraction: float = 1.0 / 256.0,
    lam: float = 1.0,
    max_steps: int = 10_000,
) -> list[BetaStep]:
    """Iterate Eq. (1) until ``p_i < 6 ln n / n`` (the i* stop).

    Returns the full trajectory, ending with the step at ``i*`` (the
    first index whose ``p_i`` crosses the threshold).

    Examples
    --------
    >>> steps = beta_sequence(2**16, 2)
    >>> steps[-1].index - 256 <= 12  # collapses in O(log log n) rounds
    True
    """
    n, d, seed_index, seed_fraction = _validate_common(
        n, d, seed_index, seed_fraction, lam
    )
    log_threshold = _stop_threshold(n)
    log2 = math.log(2.0)
    log2lam = math.log(2.0 * lam)

    def log_p_of(log_x: float) -> float:
        # p_i = (2 x ln(1/x))^d with x = beta_i / n
        return d * (log2 + log_x + math.log(-log_x))

    log_x = math.log(seed_fraction)
    steps = [BetaStep(seed_index, log_x, log_p_of(log_x))]
    i = seed_index
    while steps[-1].log_p >= log_threshold:
        if len(steps) > max_steps:  # pragma: no cover - guarded below
            raise RuntimeError(
                f"beta recursion did not collapse within {max_steps} steps"
            )
        new_log_x = log2lam + steps[-1].log_p  # beta_{i+1}/n = 2 lam p_i
        if new_log_x >= log_x:
            # The map x -> 2 lam (2 x ln(1/x))^d is only a contraction
            # for small x (for d = 2, lam = 1: roughly x ln^2(1/x) < 1/8
            # -- satisfied at x = 1/256, the very reason the paper seeds
            # there).
            raise ValueError(
                f"beta recursion is not contracting at beta/n = "
                f"{math.exp(log_x):.4g} (d={d}, lam={lam}); use a smaller "
                "seed_fraction (the paper uses 1/256)"
            )
        log_x = new_log_x
        i += 1
        steps.append(BetaStep(i, log_x, log_p_of(log_x)))
    return steps


def abku_beta_sequence(
    n: int,
    d: int,
    *,
    seed_index: int = 4,
    seed_fraction: float = 0.25,
    lam: float = 1.0,
    max_steps: int = 10_000,
) -> list[BetaStep]:
    """Classical uniform-bin recursion ``beta_{i+1} = 2 lam n (beta_i/n)^d``.

    This is the Azar-Broder-Karlin-Upfal argument the paper extends;
    the stopping rule mirrors :func:`beta_sequence` so the two
    trajectories are directly comparable (the geometric recursion pays
    an extra ``(2 ln(n/beta_i))^d`` per step).
    """
    n, d, seed_index, seed_fraction = _validate_common(
        n, d, seed_index, seed_fraction, lam
    )
    log_threshold = _stop_threshold(n)
    log2lam = math.log(2.0 * lam)

    def log_p_of(log_x: float) -> float:
        return d * log_x

    log_x = math.log(seed_fraction)
    steps = [BetaStep(seed_index, log_x, log_p_of(log_x))]
    i = seed_index
    while steps[-1].log_p >= log_threshold:
        if len(steps) > max_steps:  # pragma: no cover - guarded below
            raise RuntimeError("ABKU recursion did not collapse")
        new_log_x = log2lam + d * log_x
        if new_log_x >= log_x:
            raise ValueError(
                f"ABKU recursion is not contracting at beta/n = "
                f"{math.exp(log_x):.4g} (d={d}, lam={lam}); the map "
                "x -> 2 lam x^d needs 2 lam x^(d-1) < 1 at the seed"
            )
        log_x = new_log_x
        i += 1
        steps.append(BetaStep(i, log_x, log_p_of(log_x)))
    return steps


def i_star(
    n: int,
    d: int,
    *,
    seed_index: int = 256,
    seed_fraction: float = 1 / 256,
    lam: float = 1.0,
    geometric: bool = True,
) -> int:
    """The stopping index ``i*`` (first ``i`` with ``p_i < 6 ln n / n``)."""
    seq = (beta_sequence if geometric else abku_beta_sequence)(
        n, d, seed_index=seed_index, seed_fraction=seed_fraction, lam=lam
    )
    return seq[-1].index


def predicted_max_load(
    n: int,
    d: int,
    *,
    seed_index: int = 256,
    seed_fraction: float = 1.0 / 256.0,
    lam: float = 1.0,
    geometric: bool = True,
) -> int:
    """The theorem's w.h.p. max-load bound ``i* + 2``.

    With the paper's seed (256) this is the *proved* bound including
    its "excessive" O(1) — correct but loose (it can never return less
    than 258).  Use :func:`practical_predicted_max_load` for a usable
    estimate.
    """
    return (
        i_star(
            n,
            d,
            seed_index=seed_index,
            seed_fraction=seed_fraction,
            lam=lam,
            geometric=geometric,
        )
        + 2
    )


def practical_predicted_max_load(n: int, d: int, *, lam: float = 1.0) -> int:
    """A usable max-load predictor (the proved constants are excessive).

    The paper itself notes "the O(1) constant chosen is excessive for
    practical considerations".  For prediction we run the classical
    ABKU recursion from a tight pigeonhole seed: the geometric
    recursion's extra log factor exists to absorb worst-case arc
    lengths, and the simulated geometric maxima track the uniform ones
    closely (paper Tables 1-2), so this is the right practical curve.

    The seed is the pigeonhole bound ``beta_s = lam n / s`` at the
    smallest index ``s`` comfortably inside the ABKU contraction region
    ``2 lam x^{d-1} < 1``, i.e. ``s = ceil(1.5 lam (2 lam)^{1/(d-1)})``.
    The ``O(lam) + O(log log n)`` shape of the result matches the
    paper's heavily-loaded remark.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError("practical predictor requires d >= 2")
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    seed_index = max(3, math.ceil(1.5 * lam * (2.0 * lam) ** (1.0 / (d - 1))))
    seed_fraction = lam / seed_index
    seq = abku_beta_sequence(
        n, d, seed_index=seed_index, seed_fraction=seed_fraction, lam=lam
    )
    return seq[-1].index + 2


def theorem1_leading_term(n: int, d: int) -> float:
    """``log log n / log d`` — Theorem 1's leading term."""
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if n < 3:
        raise ValueError("n must be >= 3 for log log n to be positive")
    if d < 2:
        raise ValueError("d must be >= 2")
    return math.log(math.log(n)) / math.log(d)


def claim10_constant(d: int) -> float:
    """The envelope base ``c = 8 d^{4/d} ln(256) / 256`` from Claim 10.

    As printed in the paper's final display; ``c < 1`` for every integer
    ``d >= 2``, which is what makes ``beta_{k+256} <= n c^{d^k}``
    collapse and yields ``i* = log log n / log d + O(1)``.  (The
    intermediate display in the paper carries ``(ln 256)^2``; the final
    constant uses a single power — we expose the printed final form and
    verify empirically that the *numeric* recursion collapses at the
    claimed rate, which is the substance of the claim.)
    """
    d = check_positive_int(d, "d")
    if d < 2:
        raise ValueError("d must be >= 2")
    return 8.0 * d ** (4.0 / d) * math.log(256.0) / 256.0


def claim10_envelope(n: int, d: int, k: int) -> float:
    """Claim 10's envelope ``n * c^{d^k}`` for ``beta_{k + 256}``.

    Evaluated in log space; returns 0.0 once the true value underflows
    a float (the envelope is doubly-exponentially small in k).
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    c = claim10_constant(d)
    log_value = math.log(n) + (d**k) * math.log(c)
    if log_value < -745.0:  # exp underflow threshold
        return 0.0
    return math.exp(log_value)
