"""Concentration inequalities used throughout the paper's proofs.

The paper leans on exactly two tools: the Chernoff bound in the specific
form of its Lemma 2 (valid for sums of 0-1 variables that are
independent *or negatively dependent*, the point of Lemma 3), and the
Azuma–Hoeffding inequality for Doob martingales with a Lipschitz
condition (Lemmas 5 and 9).  Exact binomial tails are provided so tests
can confirm each bound actually dominates the truth.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "chernoff_lemma2",
    "chernoff_multiplicative",
    "azuma_tail",
    "exact_binomial_tail",
]


def chernoff_lemma2(n: int, p: float) -> float:
    """Lemma 2: ``Pr(B(n, p) >= 2 n p) <= exp(-n p / 3)``.

    Valid for independent or negatively dependent 0-1 summands (the
    negative-dependence extension is why Lemma 3 matters).

    Examples
    --------
    >>> chernoff_lemma2(100, 0.5) <= math.exp(-100 * 0.5 / 3) + 1e-15
    True
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    return math.exp(-n * p / 3.0)


def chernoff_multiplicative(n: int, p: float, delta: float) -> float:
    """Upper tail ``Pr(B(n,p) >= (1+delta) n p)`` multiplicative bound.

    Uses ``exp(-mu delta^2 / 3)`` for ``0 < delta <= 1`` and the general
    ``(e^delta / (1+delta)^(1+delta))^mu`` otherwise; Lemma 2 is the
    ``delta = 1`` specialization (with constant 3).
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    mu = n * p
    if delta <= 1.0:
        return math.exp(-mu * delta * delta / 3.0)
    return math.exp(mu * (delta - (1.0 + delta) * math.log1p(delta)))


def azuma_tail(t: float, lipschitz, n_steps: int | None = None) -> float:
    """One-sided Azuma–Hoeffding: ``Pr(X - E[X] >= t)``.

    Parameters
    ----------
    t:
        Deviation from the mean (must be > 0).
    lipschitz:
        Either a scalar ``c`` (all steps share the bound; requires
        ``n_steps``) or a sequence of per-step bounds ``c_i``.
    n_steps:
        Number of martingale steps when ``lipschitz`` is scalar.

    Notes
    -----
    Bound: ``exp(-t^2 / (2 * sum c_i^2))`` — the form used by Lemma 5
    (``c_i = 2``) and Lemma 9 (``c_i = ln^3 n + 6``).
    """
    if t <= 0:
        raise ValueError(f"t must be > 0, got {t}")
    if isinstance(lipschitz, (int, float)):
        if n_steps is None:
            raise ValueError("n_steps is required when lipschitz is scalar")
        n_steps = check_positive_int(n_steps, "n_steps")
        if lipschitz <= 0:
            raise ValueError(f"lipschitz must be > 0, got {lipschitz}")
        ssq = n_steps * float(lipschitz) ** 2
    else:
        cs = [float(c) for c in lipschitz]
        if not cs:
            raise ValueError("lipschitz sequence must be non-empty")
        if any(c <= 0 for c in cs):
            raise ValueError("all lipschitz constants must be > 0")
        ssq = sum(c * c for c in cs)
    return math.exp(-t * t / (2.0 * ssq))


def exact_binomial_tail(n: int, p: float, k: float) -> float:
    """Exact ``Pr(B(n, p) >= k)`` via scipy (ground truth for tests)."""
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    return float(stats.binom.sf(math.ceil(k) - 1, n, p))
