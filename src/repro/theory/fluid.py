"""Fluid-limit (differential-equation) analysis of d-choice allocation.

The paper's conclusion points to Mitzenmacher's differential-equation
method as the sharper tool for predicting the *load distribution* (not
just the maximum) in the uniform-bin case, and poses extending it to the
geometric setting as an open problem.  We implement the classical system
so the `theory_check` experiment can compare its predictions with the
uniform baseline simulation — and measure how far the geometric setting
deviates from it.

Model (balls arrive continuously at rate ``n``, ``t`` in units of ``m/n``):
``s_i(t)`` is the fraction of bins with load >= i.  A ball lands in a
bin of load >= i exactly when all ``d`` choices hit bins of load >= i-1
and not all hit load >= i ... integrating the standard coupling gives::

    ds_i/dt = s_{i-1}^d - s_i^d,      s_0 = 1,  s_i(0) = 0 (i >= 1)

The stationary shape is the famous doubly-exponential decay
``s_i ~ d^{-(d^i - d)/(d-1)}``-ish tail that mirrors the
``log log n / log d`` maximum.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp

from repro.utils.validation import check_positive_int

__all__ = ["fluid_limit_tails", "fluid_predicted_max_load"]


def fluid_limit_tails(
    d: int,
    lam: float = 1.0,
    *,
    i_max: int = 64,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> np.ndarray:
    """Integrate the fluid-limit ODE to time ``lam`` = m/n.

    Returns ``s`` with ``s[i] = `` limiting fraction of bins with load
    at least ``i`` (``s[0] == 1``).

    Parameters
    ----------
    d:
        Number of choices (>= 1; ``d = 1`` reproduces the Poisson(lam)
        tail, a useful cross-check).
    lam:
        Ball-to-bin ratio ``m / n`` (the paper's tables use 1).
    i_max:
        Truncation depth; tails beyond it are < machine epsilon for any
        sane (d, lam).

    Examples
    --------
    >>> s = fluid_limit_tails(2, 1.0)
    >>> bool(s[1] < 1.0 and s[4] < 1e-3)
    True
    """
    d = check_positive_int(d, "d")
    i_max = check_positive_int(i_max, "i_max")
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")

    def rhs(_t, s):
        sd = np.clip(s, 0.0, 1.0) ** d
        prev = np.empty_like(sd)
        prev[0] = 1.0  # s_0 == 1
        prev[1:] = sd[:-1]
        return prev - sd

    s0 = np.zeros(i_max)
    sol = solve_ivp(
        rhs, (0.0, float(lam)), s0, method="RK45", rtol=rtol, atol=atol
    )
    if not sol.success:  # pragma: no cover - solver is robust on this system
        raise RuntimeError(f"fluid-limit integration failed: {sol.message}")
    tail = np.clip(sol.y[:, -1], 0.0, 1.0)
    return np.concatenate(([1.0], tail))


def fluid_predicted_max_load(n: int, d: int, lam: float = 1.0) -> int:
    """Largest ``i`` with ``n * s_i >= 1``: the fluid max-load estimate.

    In a system of ``n`` bins the expected number with load >= i is
    ``n s_i``; the maximum load concentrates near where that crosses 1.
    """
    n = check_positive_int(n, "n")
    s = fluid_limit_tails(d, lam)
    counts = n * s
    above = np.nonzero(counts >= 1.0)[0]
    return int(above.max())
