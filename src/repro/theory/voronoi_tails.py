"""Tail bounds for random Voronoi region areas (paper, Lemmas 8-9).

The torus argument replaces arc-length tails with Voronoi-area tails.
Two ingredients:

**Lemma 8 (six-sector lemma).**  Divide the disc of area ``c/n`` around
a point ``u`` into six 60-degree sectors.  If the Voronoi cell of ``u``
has area at least ``c/n`` then at least one sector contains none of the
other ``n - 1`` points — because a point ``v`` inside a sector is closer
than ``u`` to *every* location beyond ``v`` in that sector's angular
range (the law-of-cosines argument of Figure 1).  Hence
``Z = sum of empty-sector indicators`` dominates the number of large
cells, and ``E[Z] <= 6 n e^{-c/6}``.

**Lemma 9.**  Raw sector indicators violate the Lipschitz condition
(one inserted point can touch many discs), so the paper truncates to
"empty-or-rare" sectors, obtaining a Doob martingale with Lipschitz
constant ``ln^3 n + 6`` and the tail
``Pr(#cells of area >= c/n  >= 12 n e^{-c/6}) = o(1/n^4)`` for
``12 <= c <= ln n``.

This module provides executable versions: the sector test on concrete
instances (used by the `fig1_lemma8` experiment to validate the lemma
empirically) and both tail expressions — the Azuma evaluation and the
expression printed in the paper (which drops a square on the Lipschitz
constant; tests document that the Azuma form is the dominating one).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree

from repro.theory.chernoff import azuma_tail
from repro.utils.validation import as_float_array, check_positive_int

__all__ = [
    "sector_index",
    "lemma8_sector_test",
    "lemma8_holds_on_instance",
    "empty_sector_count",
    "expected_large_regions_bound",
    "lemma9_threshold",
    "lemma9_tail_paper",
    "lemma9_tail_azuma",
]


def sector_index(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Sector (0-5) of displacement vectors, 60 degrees each from 0°.

    Sector ``j`` covers angles ``[60j, 60(j+1))`` degrees measured
    counterclockwise from the positive x-axis, matching Figure 1(a).
    """
    ang = np.arctan2(dy, dx)  # (-pi, pi]
    ang = np.mod(ang, 2.0 * np.pi)
    idx = np.floor(ang / (np.pi / 3.0)).astype(np.int64)
    # guard the ang == 2*pi numerical edge
    return np.clip(idx, 0, 5)


def _toroidal_delta(points: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Shortest displacement vectors from u to each point on the torus."""
    delta = points - u
    return (delta + 0.5) % 1.0 - 0.5


def empty_sector_count(points, i: int, c: float) -> int:
    """Number of empty sectors of the area-``c/n`` disc around point i.

    The disc of area ``c/n`` has radius ``sqrt(c / (n pi))``; the six
    sectors each have area ``c/(6n)``.  Counts sectors containing none
    of the other points (toroidal metric).
    """
    pts = as_float_array(points, "points", ndim=2)
    n = pts.shape[0]
    if pts.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {pts.shape}")
    if not 0 <= i < n:
        raise ValueError(f"i={i} out of range for n={n}")
    if c <= 0:
        raise ValueError(f"c must be > 0, got {c}")
    radius = math.sqrt(c / (n * math.pi))
    if radius >= 0.5:
        raise ValueError(
            f"disc radius {radius:.3f} >= 0.5: c={c} too large for n={n} "
            "on the unit torus"
        )
    u = pts[i]
    others = np.delete(pts, i, axis=0)
    delta = _toroidal_delta(others, u)
    dist = np.sqrt((delta**2).sum(axis=1))
    inside = dist < radius
    if not inside.any():
        return 6
    sectors = sector_index(delta[inside, 0], delta[inside, 1])
    occupied = np.unique(sectors)
    return 6 - int(occupied.size)


def lemma8_sector_test(points, areas, c: float) -> np.ndarray:
    """Vector of Lemma 8 verdicts: one entry per *large* region.

    For each point whose Voronoi area is at least ``c/n``, record
    whether at least one of its six sectors is empty (the lemma asserts
    this is always true).  Returns a boolean array over the large
    regions; all-True means the lemma held on this instance.
    """
    pts = as_float_array(points, "points", ndim=2)
    ar = as_float_array(areas, "areas", ndim=1)
    if ar.shape[0] != pts.shape[0]:
        raise ValueError("areas length must match number of points")
    n = pts.shape[0]
    large = np.nonzero(ar >= c / n)[0]
    verdicts = np.empty(large.size, dtype=bool)
    for k, i in enumerate(large):
        verdicts[k] = empty_sector_count(pts, int(i), c) >= 1
    return verdicts


def lemma8_holds_on_instance(points, areas, c: float) -> bool:
    """True iff every large region passes the six-sector test."""
    return bool(np.all(lemma8_sector_test(points, areas, c)))


def expected_large_regions_bound(c: float, n: int) -> float:
    """``E[Z] <= 6 n e^{-c/6}`` (the bound below Lemma 8).

    ``Z`` counts empty sectors over all points; it dominates the number
    of Voronoi regions with area at least ``c/n``.
    """
    n = check_positive_int(n, "n")
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c}")
    return 6.0 * n * math.exp(-c / 6.0)


def lemma9_threshold(c: float, n: int) -> float:
    """The count threshold in Lemma 9: ``12 n e^{-c/6}``."""
    n = check_positive_int(n, "n")
    return 12.0 * n * math.exp(-c / 6.0)


def _check_lemma9_domain(c: float, n: int) -> None:
    if n < 3:
        raise ValueError(f"Lemma 9 needs n >= 3, got {n}")
    if not 12.0 <= c <= math.log(n):
        raise ValueError(
            f"Lemma 9 requires 12 <= c <= ln n; got c={c}, ln n={math.log(n):.2f}"
        )


def lemma9_tail_paper(c: float, n: int) -> float:
    """Lemma 9's tail as printed: ``exp(-18 n e^{-c/3} / (ln^3 n + 6))``.

    Note: applying Azuma with deviation ``t = 6 n e^{-c/6}`` and
    Lipschitz constant ``L = ln^3 n + 6`` over ``n`` steps gives
    ``exp(-t^2 / (2 n L^2)) = exp(-18 n e^{-c/3} / L^2)`` — the printed
    expression divides by ``L`` rather than ``L^2``.  We expose both;
    the printed form is *smaller* (stronger), the Azuma form is the one
    the derivation supports.  Either is ``o(1/n^4)`` in the stated
    ``c`` range.
    """
    n = check_positive_int(n, "n")
    _check_lemma9_domain(c, n)
    lip = math.log(n) ** 3 + 6.0
    return math.exp(-18.0 * n * math.exp(-c / 3.0) / lip)


def lemma9_tail_azuma(c: float, n: int) -> float:
    """Lemma 9's tail evaluated rigorously through Azuma–Hoeffding.

    ``Pr(F >= 12 n e^{-c/6}) <= exp(-t^2 / (2 n L^2))`` with
    ``t = 6 n e^{-c/6}`` (deviation above ``E[F] <= 6 n e^{-c/6}``) and
    ``L = ln^3 n + 6``.
    """
    n = check_positive_int(n, "n")
    _check_lemma9_domain(c, n)
    t = 6.0 * n * math.exp(-c / 6.0)
    lip = math.log(n) ** 3 + 6.0
    return azuma_tail(t, lip, n)
