"""Analytical toolkit: every bound and recursion in the paper's proofs.

Modules map one-to-one onto the paper's lemmas:

* :mod:`repro.theory.chernoff` — Lemma 2's Chernoff form, the general
  multiplicative Chernoff bound, Azuma–Hoeffding, exact binomial tails.
* :mod:`repro.theory.arcs` — the arc-length (uniform spacing) laws:
  exact survival functions, Lemma 4 (negative-dependence Chernoff tail),
  Lemma 5 (martingale tail), Lemma 6 (sum of the a longest arcs), and
  the 4 ln n / n longest-arc bound.
* :mod:`repro.theory.negdep` — Lemma 3: negative dependence of the
  arc-length indicators, verified exactly via the joint spacing
  survival function and empirically on samples.
* :mod:`repro.theory.voronoi_tails` — Lemma 8's six-sector geometric
  test and Lemma 9's tail bound on large Voronoi regions.
* :mod:`repro.theory.recursion` — Eq. (1)'s layered-induction recursion,
  the i* stopping index, Claim 10's envelope, and predicted max-load
  curves for both the geometric and the classical (ABKU) recursions.
* :mod:`repro.theory.fluid` — Mitzenmacher's differential-equation
  (fluid-limit) method for the uniform case, referenced in the paper's
  conclusion as the sharper prediction tool.
"""

from repro.theory.chernoff import (
    azuma_tail,
    chernoff_lemma2,
    chernoff_multiplicative,
    exact_binomial_tail,
)
from repro.theory.arcs import (
    arc_count_poisson_tail,
    arc_survival,
    expected_arcs_at_least,
    expected_max_arc,
    lemma4_tail,
    lemma5_tail,
    lemma6_sum_bound,
    longest_arc_bound,
    sample_spacings,
)
from repro.theory.negdep import (
    empirical_product_moments,
    negative_dependence_holds_exact,
    spacings_joint_survival,
)
from repro.theory.voronoi_tails import (
    expected_large_regions_bound,
    lemma8_sector_test,
    lemma9_tail_azuma,
    lemma9_tail_paper,
)
from repro.theory.recursion import (
    abku_beta_sequence,
    beta_sequence,
    claim10_constant,
    claim10_envelope,
    i_star,
    practical_predicted_max_load,
    predicted_max_load,
    theorem1_leading_term,
)
from repro.theory.fluid import fluid_limit_tails, fluid_predicted_max_load
from repro.theory.weighted_fluid import (
    VORONOI_GAMMA_SHAPE,
    WeightModel,
    weight_model_for,
    weighted_fluid_predicted_max_load,
    weighted_fluid_tails,
)

__all__ = [
    "chernoff_lemma2",
    "chernoff_multiplicative",
    "azuma_tail",
    "exact_binomial_tail",
    "arc_survival",
    "arc_count_poisson_tail",
    "expected_arcs_at_least",
    "expected_max_arc",
    "lemma4_tail",
    "lemma5_tail",
    "lemma6_sum_bound",
    "longest_arc_bound",
    "sample_spacings",
    "spacings_joint_survival",
    "negative_dependence_holds_exact",
    "empirical_product_moments",
    "lemma8_sector_test",
    "lemma9_tail_paper",
    "lemma9_tail_azuma",
    "expected_large_regions_bound",
    "beta_sequence",
    "abku_beta_sequence",
    "claim10_constant",
    "claim10_envelope",
    "i_star",
    "predicted_max_load",
    "practical_predicted_max_load",
    "theorem1_leading_term",
    "fluid_limit_tails",
    "fluid_predicted_max_load",
    "WeightModel",
    "weight_model_for",
    "weighted_fluid_tails",
    "weighted_fluid_predicted_max_load",
    "VORONOI_GAMMA_SHAPE",
]
