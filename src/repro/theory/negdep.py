"""Negative dependence of arc-length indicators (the paper's Lemma 3).

A family of 0-1 variables is *negatively dependent* (in the paper's
sense) when every product moment is dominated by the product of the
marginals: ``E[prod Z_i] <= prod E[Z_i]``.  Lemma 3 proves this for the
indicators ``Z_j = 1{arc_j >= c/n}``; it is the hinge that lets Lemma 2's
Chernoff bound apply to ``N_c = sum Z_j`` despite the arcs being
dependent.

For uniform spacings the joint survival function is classical and
*exact*::

    Pr(S_{i_1} >= x_1, ..., S_{i_k} >= x_k) = (1 - sum x_j)_+^{n-1}

so negative dependence reduces to the scalar inequality
``(1 - k c/n)^{n-1} <= (1 - c/n)^{k(n-1)}`` — which we can check
symbolically for every (n, c, k), turning Lemma 3 into an executable
statement.  An empirical product-moment estimator is also provided for
settings without a closed form (the torus, where the paper could *not*
prove negative dependence and fell back to martingales).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "spacings_joint_survival",
    "negative_dependence_holds_exact",
    "negative_dependence_margin",
    "empirical_product_moments",
]


def spacings_joint_survival(n: int, thresholds: Sequence[float]) -> float:
    """Exact ``Pr(S_1 >= x_1, ..., S_k >= x_k)`` for uniform spacings.

    ``thresholds`` are the ``x_j`` for ``k`` distinct spacings of ``n``
    uniform points on the circle; the value is ``(1 - sum x_j)^{n-1}``
    clamped at 0.

    Examples
    --------
    >>> spacings_joint_survival(2, [0.25, 0.25])
    0.5
    """
    n = check_positive_int(n, "n")
    xs = [float(x) for x in thresholds]
    if len(xs) > n:
        raise ValueError(f"cannot constrain {len(xs)} spacings of only {n}")
    if any(x < 0 or x > 1 for x in xs):
        raise ValueError("thresholds must lie in [0, 1]")
    s = sum(xs)
    if s >= 1.0:
        return 0.0
    return float((1.0 - s) ** (n - 1))


def negative_dependence_margin(n: int, c: float, k: int) -> float:
    """``prod E[Z_i] - E[prod Z_i]`` for k arc indicators at level c/n.

    Non-negative iff Lemma 3's inequality holds for this (n, c, k).
    Uses the exact joint survival function, so this is a *proof check*,
    not an estimate.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > n:
        raise ValueError(f"k={k} cannot exceed n={n}")
    if c < 0 or c > n:
        raise ValueError(f"c must be in [0, n], got {c}")
    x = c / n
    joint = spacings_joint_survival(n, [x] * k)
    marginal_product = (1.0 - x) ** (k * (n - 1))
    return float(marginal_product - joint)


def negative_dependence_holds_exact(n: int, c: float, k: int) -> bool:
    """Whether Lemma 3's inequality holds exactly for (n, c, k)."""
    return negative_dependence_margin(n, c, k) >= -1e-15


def empirical_product_moments(
    samples: np.ndarray,
    subsets: Sequence[Sequence[int]] | None = None,
    max_order: int = 2,
) -> list[tuple[tuple[int, ...], float, float]]:
    """Estimate ``E[prod Z]`` vs ``prod E[Z]`` from indicator samples.

    Parameters
    ----------
    samples:
        ``(trials, n)`` array of 0/1 indicator draws.
    subsets:
        Index tuples to test; default — all pairs and triples up to
        ``max_order`` over the first ``min(n, 6)`` indices (keeps the
        default cheap).
    max_order:
        Order cap for the default subset enumeration.

    Returns
    -------
    List of ``(subset, joint_estimate, marginal_product_estimate)``.
    Negative dependence predicts ``joint <= product`` up to sampling
    noise; the tests apply a CLT slack.
    """
    arr = np.asarray(samples)
    if arr.ndim != 2:
        raise ValueError(f"samples must be 2-D (trials, n), got {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("samples must be 0/1 indicators")
    trials, n = arr.shape
    if trials < 1:
        raise ValueError("need at least one trial")
    if subsets is None:
        idx = range(min(n, 6))
        subsets = [
            combo
            for order in range(2, max_order + 1)
            for combo in combinations(idx, order)
        ]
    means = arr.mean(axis=0)
    out = []
    for subset in subsets:
        subset = tuple(int(i) for i in subset)
        if any(i < 0 or i >= n for i in subset):
            raise ValueError(f"subset {subset} out of range for n={n}")
        joint = float(arr[:, subset].prod(axis=1).mean())
        marginal = float(math.prod(means[i] for i in subset))
        out.append((subset, joint, marginal))
    return out
