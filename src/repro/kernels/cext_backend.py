"""C kernel backend: scalar loops compiled on first use via ``ctypes``.

The three hot-path kernels (see :mod:`repro.kernels`) are a few dozen
lines of portable C99 each.  Rather than shipping a binary wheel, the
source is embedded here and compiled once per machine with the host C
compiler (``$CC``, else the first of ``cc``/``gcc``/``clang`` on
``PATH``) into a shared library cached under
``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro-kernels``), keyed by
a hash of the source — editing the C invalidates the cache, re-running
does not rebuild.  Everything degrades gracefully: no compiler, an
unwritable cache dir, or a failed compile raise :class:`RuntimeError`,
which the registry's auto-detection treats as "backend unavailable".

The C code mirrors :func:`repro.core.strategies.decide_row_scalar`
operation for operation (same minimum scan, same ``floor(u·k)+1``
tie-break rule — a C cast truncates toward zero, which is ``floor``
for the non-negative operand — same strict-inequality measure
preference), so its placements are bit-identical to the numpy
reference; the parity suite enforces this.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["build_backend", "C_SOURCE"]

#: The kernel library source.  ``kind == 0`` is an insert event
#: (matches ``repro.dynamics.events.EventKind.INSERT``); anything else
#: in a churn-free window is a delete.
C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <pthread.h>

/* Remap-aware candidate lookup: remap == NULL means identity. */
static inline int64_t bin_of(const int64_t *cand, const int64_t *remap,
                             int64_t j)
{
    int64_t c = cand[j];
    return remap ? remap[c] : c;
}

/* Twin of repro.core.strategies.decide_row_scalar: index of the chosen
 * candidate among cand[0..d).  Strategy codes: 0 random, 1 first,
 * 2 smaller, 3 larger (repro.kernels.STRATEGY_CODES). */
static int64_t decide(const int64_t *loads, const int64_t *cand,
                      const int64_t *remap, int64_t d,
                      const double *measures, double u, int64_t strategy)
{
    int64_t j, min_load = loads[bin_of(cand, remap, 0)];
    for (j = 1; j < d; j++) {
        int64_t l = loads[bin_of(cand, remap, j)];
        if (l < min_load)
            min_load = l;
    }
    if (strategy == 1) { /* first: lowest tied index */
        for (j = 0; j < d; j++)
            if (loads[bin_of(cand, remap, j)] == min_load)
                return j;
    } else if (strategy == 0) { /* random: floor(u*k)+1'th tied index */
        int64_t k = 0, target, seen = 0;
        for (j = 0; j < d; j++)
            if (loads[bin_of(cand, remap, j)] == min_load)
                k++;
        target = (int64_t)(u * (double)k) + 1; /* trunc == floor: u*k >= 0 */
        for (j = 0; j < d; j++) {
            if (loads[bin_of(cand, remap, j)] == min_load) {
                seen++;
                if (seen == target)
                    return j;
            }
        }
    } else if (strategy == 2) { /* smaller: strictly smallest measure */
        int64_t best_j = -1;
        double best_key = HUGE_VAL;
        for (j = 0; j < d; j++) {
            int64_t b = bin_of(cand, remap, j);
            if (loads[b] == min_load && measures[b] < best_key) {
                best_j = j;
                best_key = measures[b];
            }
        }
        return best_j;
    } else { /* larger: strictly largest measure */
        int64_t best_j = -1;
        double best_key = -HUGE_VAL;
        for (j = 0; j < d; j++) {
            int64_t b = bin_of(cand, remap, j);
            if (loads[b] == min_load && measures[b] > best_key) {
                best_j = j;
                best_key = measures[b];
            }
        }
        return best_j;
    }
    return 0; /* unreachable: random/first always return in-loop */
}

/* Best-effort cache-line warming; a no-op where unsupported. */
#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH_RW(p) __builtin_prefetch((p), 1, 1)
#define PREFETCH_RO(p) __builtin_prefetch((p), 0, 1)
#else
#define PREFETCH_RW(p)
#define PREFETCH_RO(p)
#endif

/* Balls to look ahead in the placement loop.  The loop's serial
 * dependency is only the loads update of the *current* ball; the
 * candidate bins of future balls are already materialized in `bins`,
 * so their load entries can be warmed early.  At paper scale
 * (n = 2^20, loads = 8 MB) the loop is bound by cache-miss latency,
 * and ~16 balls of lookahead keeps that many independent misses in
 * flight (sweet spot measured on x86; harmless elsewhere).  Prefetch
 * never changes results — it only moves cache lines. */
#define PLACE_LOOKAHEAD 16

/* Kernel 1: sequential greedy placement of one block of balls. */
void repro_place_block(const int64_t *bins, const double *us, int64_t b,
                       int64_t d, int64_t *loads, const double *measures,
                       int64_t strategy, int64_t *heights)
{
    int64_t t, j;
    for (t = 0; t < b; t++) {
        if (t + PLACE_LOOKAHEAD < b) {
            const int64_t *f = bins + (t + PLACE_LOOKAHEAD) * d;
            for (j = 0; j < d; j++)
                PREFETCH_RW(&loads[f[j]]);
        }
        const int64_t *cand = bins + t * d;
        int64_t chosen = cand[decide(loads, cand, 0, d, measures, us[t],
                                     strategy)];
        if (heights)
            heights[t] = loads[chosen] + 1;
        loads[chosen] += 1;
    }
}

/* Kernel 2: churn-free window of mixed insert (kind 0) / delete events.
 * counts[0] += inserts applied, counts[1] += deletes applied. */
void repro_dynamic_window(const int8_t *kinds, const int64_t *args,
                          int64_t start, int64_t stop, const int64_t *cands,
                          const double *us, int64_t d, const int64_t *remap,
                          int64_t *loads, const double *measures,
                          int64_t strategy, int64_t *ball_bin,
                          int64_t *counts)
{
    int64_t i, ins = 0, dels = 0;
    for (i = start; i < stop; i++) {
        if (i + PLACE_LOOKAHEAD < stop) {
            int64_t fb = args[i + PLACE_LOOKAHEAD];
            PREFETCH_RW(&cands[fb * d]);
            PREFETCH_RW(&ball_bin[fb]);
        }
        int64_t ball = args[i];
        if (kinds[i] == 0) {
            const int64_t *cand = cands + ball * d;
            int64_t chosen = bin_of(
                cand, remap,
                decide(loads, cand, remap, d, measures, us[ball], strategy));
            loads[chosen] += 1;
            ball_bin[ball] = chosen;
            ins++;
        } else {
            loads[ball_bin[ball]] -= 1;
            ball_bin[ball] = -1;
            dels++;
        }
    }
    counts[0] += ins;
    counts[1] += dels;
}

/* Kernel 3: bucket-table ring ownership lookup.  table caches
 * searchsorted(pos, bucket/nbuckets); pos_ext carries a +inf sentinel
 * at index n, so the probe loop needs no bound check and the only
 * possible overshoot (j == n) wraps to server 0.
 *
 * The loop is software-pipelined two stages deep: each point's table
 * entry is prefetched 2·LOOKAHEAD points ahead, read LOOKAHEAD points
 * ahead into a small ring buffer (which prefetches the pos_ext probe
 * start), and probed when its turn comes — both dependent random
 * accesses are then cache-warm.  The slot for point i+LOOKAHEAD is
 * i's own (same residue mod LOOKAHEAD), so i's entry is read out
 * before the refill overwrites it. */
void repro_ring_assign(const double *pts, int64_t q, const int32_t *table,
                       const double *pos_ext, int64_t nbuckets, int64_t n,
                       int64_t *out)
{
    int64_t j0buf[PLACE_LOOKAHEAD];
    int64_t i, head = q < PLACE_LOOKAHEAD ? q : PLACE_LOOKAHEAD;
    for (i = 0; i < head; i++) {
        int64_t j0 = (int64_t)table[(int64_t)(pts[i] * (double)nbuckets)];
        j0buf[i % PLACE_LOOKAHEAD] = j0;
        PREFETCH_RO(&pos_ext[j0]);
    }
    for (i = 0; i < q; i++) {
        double x = pts[i];
        int64_t j = j0buf[i % PLACE_LOOKAHEAD];
        if (i + PLACE_LOOKAHEAD < q) {
            int64_t j0;
            if (i + 2 * PLACE_LOOKAHEAD < q)
                PREFETCH_RO(&table[(int64_t)(
                    pts[i + 2 * PLACE_LOOKAHEAD] * (double)nbuckets)]);
            j0 = (int64_t)table[(int64_t)(
                pts[i + PLACE_LOOKAHEAD] * (double)nbuckets)];
            j0buf[(i + PLACE_LOOKAHEAD) % PLACE_LOOKAHEAD] = j0;
            PREFETCH_RO(&pos_ext[j0]);
        }
        while (pos_ext[j] < x)
            j++;
        out[i] = (j == n) ? 0 : j;
    }
}

/* ---------------- thread-parallel variants (pthreads) ----------------
 *
 * Work is partitioned STATICALLY into contiguous row groups (earlier
 * groups at most one row longer), so the schedule — and therefore the
 * result — is a pure function of (count, nthreads).  Each group's rows
 * are fully independent (trials never share fused bins; ring lookups
 * never share output rows), so every partition is bit-identical to
 * the serial loop.  These entry points are called through ctypes,
 * which drops the GIL for the duration of the call: the threads below
 * run on bare cores while Python-side producers keep generating RNG
 * candidate blocks. */

#define MAX_KERNEL_THREADS 64

/* One trial range of a fused place_block_multi call. */
typedef struct {
    const int64_t *bins;    /* (t, b, d) fused candidate rows */
    const double *us;       /* (t, b) tie-break uniforms */
    int64_t k0, k1, b, d;
    int64_t *loads;         /* (t, n) fused load matrix */
    int64_t n;
    const double *measures; /* (t, n) or NULL */
    int64_t strategy;
    int64_t *heights;       /* (t, m) or NULL, written at column pos */
    int64_t m, pos;
} place_multi_job;

static void *place_multi_worker(void *arg)
{
    place_multi_job *job = (place_multi_job *)arg;
    int64_t k;
    for (k = job->k0; k < job->k1; k++)
        repro_place_block(job->bins + k * job->b * job->d,
                          job->us + k * job->b, job->b, job->d,
                          job->loads + k * job->n,
                          job->measures ? job->measures + k * job->n : 0,
                          job->strategy,
                          job->heights ? job->heights + k * job->m + job->pos
                                       : 0);
    return 0;
}

/* Kernel 1b: place one RNG block of every fused trial, trials
 * partitioned across nthreads OS threads. */
void repro_place_block_multi(const int64_t *bins, const double *us,
                             int64_t t, int64_t b, int64_t d,
                             int64_t *loads, int64_t n,
                             const double *measures, int64_t strategy,
                             int64_t *heights, int64_t m, int64_t pos,
                             int64_t nthreads)
{
    pthread_t tids[MAX_KERNEL_THREADS];
    place_multi_job jobs[MAX_KERNEL_THREADS];
    int64_t w, base, extra, start, i, spawned = 0;
    if (nthreads > t)
        nthreads = t;
    if (nthreads > MAX_KERNEL_THREADS)
        nthreads = MAX_KERNEL_THREADS;
    if (nthreads < 1)
        nthreads = 1;
    base = t / nthreads;
    extra = t % nthreads;
    start = 0;
    for (w = 0; w < nthreads; w++) {
        int64_t stop = start + base + (w < extra ? 1 : 0);
        jobs[w] = (place_multi_job){bins, us, start, stop, b, d, loads, n,
                                    measures, strategy, heights, m, pos};
        start = stop;
    }
    for (w = 1; w < nthreads; w++) {
        if (pthread_create(&tids[w], 0, place_multi_worker, &jobs[w]) != 0)
            place_multi_worker(&jobs[w]); /* degrade: run inline */
        else
            spawned |= ((int64_t)1 << w);
    }
    place_multi_worker(&jobs[0]); /* the calling thread takes group 0 */
    for (i = 1; i < nthreads; i++)
        if (spawned & ((int64_t)1 << i))
            pthread_join(tids[i], 0);
}

/* One point range of a parallel ring_assign call. */
typedef struct {
    const double *pts;
    int64_t q;
    const int32_t *table;
    const double *pos_ext;
    int64_t nbuckets, n;
    int64_t *out;
} ring_job;

static void *ring_worker(void *arg)
{
    ring_job *job = (ring_job *)arg;
    repro_ring_assign(job->pts, job->q, job->table, job->pos_ext,
                      job->nbuckets, job->n, job->out);
    return 0;
}

/* Kernel 3b: ring ownership lookup, points partitioned across
 * nthreads OS threads (each runs the pipelined serial loop on its
 * contiguous slice). */
void repro_ring_assign_par(const double *pts, int64_t q,
                           const int32_t *table, const double *pos_ext,
                           int64_t nbuckets, int64_t n, int64_t *out,
                           int64_t nthreads)
{
    pthread_t tids[MAX_KERNEL_THREADS];
    ring_job jobs[MAX_KERNEL_THREADS];
    int64_t w, base, extra, start, i, spawned = 0;
    if (nthreads > q)
        nthreads = q;
    if (nthreads > MAX_KERNEL_THREADS)
        nthreads = MAX_KERNEL_THREADS;
    if (nthreads <= 1) {
        repro_ring_assign(pts, q, table, pos_ext, nbuckets, n, out);
        return;
    }
    base = q / nthreads;
    extra = q % nthreads;
    start = 0;
    for (w = 0; w < nthreads; w++) {
        int64_t stop = start + base + (w < extra ? 1 : 0);
        jobs[w] = (ring_job){pts + start, stop - start, table, pos_ext,
                             nbuckets, n, out + start};
        start = stop;
    }
    for (w = 1; w < nthreads; w++) {
        if (pthread_create(&tids[w], 0, ring_worker, &jobs[w]) != 0)
            ring_worker(&jobs[w]);
        else
            spawned |= ((int64_t)1 << w);
    }
    ring_worker(&jobs[0]);
    for (i = 1; i < nthreads; i++)
        if (spawned & ((int64_t)1 << i))
            pthread_join(tids[i], 0);
}
"""

_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-kernels"


def _find_compiler() -> str:
    cc = os.environ.get("CC", "").strip()
    candidates = [cc] if cc else []
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        found = shutil.which(cand)
        if found:
            return found
    raise RuntimeError(
        "kernel backend 'cext' unavailable: no C compiler found "
        "(set $CC or install cc/gcc/clang)"
    )


def _compile_library() -> Path:
    """Compile the kernel library (cached by source hash) and return it."""
    digest = hashlib.blake2b(C_SOURCE.encode(), digest_size=16).hexdigest()
    libname = f"repro_kernels_{digest}.so"
    for base in (_cache_dir(), Path(tempfile.gettempdir()) / "repro-kernels"):
        libpath = base / libname
        if libpath.exists():
            return libpath
        cc = _find_compiler()
        try:
            base.mkdir(parents=True, exist_ok=True)
            src = base / f"repro_kernels_{digest}.c"
            src.write_text(C_SOURCE, encoding="utf-8")
            tmp = base / f".{libname}.{os.getpid()}.tmp"
            proc = subprocess.run(
                [cc, "-O3", "-fPIC", "-shared", "-pthread", "-o", str(tmp), str(src)],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    "kernel backend 'cext' unavailable: compile failed: "
                    + proc.stderr.strip()[:500]
                )
            os.replace(tmp, libpath)  # atomic: concurrent builds converge
            return libpath
        except OSError:
            continue  # unwritable dir: try the tempdir fallback
    raise RuntimeError(
        "kernel backend 'cext' unavailable: no writable cache directory "
        "(set $REPRO_KERNEL_CACHE)"
    )


def _as_c(arr: np.ndarray, dtype) -> np.ndarray:
    """Read-only input: coerce to a C-contiguous array of ``dtype``."""
    return np.ascontiguousarray(arr, dtype=dtype)


def _check_inplace(arr: np.ndarray, dtype, name: str) -> np.ndarray:
    """In-place operand: must already be C-contiguous of ``dtype``."""
    if arr.dtype != dtype or not arr.flags.c_contiguous:
        raise ValueError(
            f"{name} must be C-contiguous {np.dtype(dtype).name}, got "
            f"{arr.dtype.name} (contiguous={arr.flags.c_contiguous})"
        )
    return arr


def _p(arr: np.ndarray | None) -> int:
    """ctypes pointer value of an array (NULL for ``None``)."""
    return 0 if arr is None else arr.ctypes.data


def build_backend():
    """Compile (or load the cached) C library and wrap its kernels.

    Raises :class:`RuntimeError` when no compiler or writable cache
    directory is available — the registry's auto path treats that as
    "unavailable" and falls back.
    """
    lib = ctypes.CDLL(str(_compile_library()))
    lib.repro_place_block.argtypes = [_PTR, _PTR, _I64, _I64, _PTR, _PTR, _I64, _PTR]
    lib.repro_place_block.restype = None
    lib.repro_dynamic_window.argtypes = [
        _PTR, _PTR, _I64, _I64, _PTR, _PTR, _I64, _PTR, _PTR, _PTR, _I64,
        _PTR, _PTR,
    ]
    lib.repro_dynamic_window.restype = None
    lib.repro_ring_assign.argtypes = [_PTR, _I64, _PTR, _PTR, _I64, _I64, _PTR]
    lib.repro_ring_assign.restype = None
    lib.repro_place_block_multi.argtypes = [
        _PTR, _PTR, _I64, _I64, _I64, _PTR, _I64, _PTR, _I64, _PTR, _I64,
        _I64, _I64,
    ]
    lib.repro_place_block_multi.restype = None
    lib.repro_ring_assign_par.argtypes = [
        _PTR, _I64, _PTR, _PTR, _I64, _I64, _PTR, _I64,
    ]
    lib.repro_ring_assign_par.restype = None

    def place_block(bins, us, loads, measures, strategy_code, heights):
        """C kernel for one block of sequential greedy placements."""
        bins = _as_c(bins, np.int64)
        us = _as_c(us, np.float64)
        _check_inplace(loads, np.int64, "loads")
        measures = None if measures is None else _as_c(measures, np.float64)
        if heights is not None:
            _check_inplace(heights, np.int64, "heights")
        b, d = bins.shape
        lib.repro_place_block(
            _p(bins), _p(us), b, d, _p(loads), _p(measures),
            int(strategy_code), _p(heights),
        )

    def dynamic_window(
        kinds, args, start, stop, cands, us, d, remap, loads, measures,
        strategy_code, ball_bin,
    ):
        """C kernel for a churn-free insert/delete event window."""
        kinds = _as_c(kinds, np.int8)
        args = _as_c(args, np.int64)
        cands = _as_c(cands, np.int64)
        us = _as_c(us, np.float64)
        remap = None if remap is None else _as_c(remap, np.int64)
        measures = None if measures is None else _as_c(measures, np.float64)
        _check_inplace(loads, np.int64, "loads")
        _check_inplace(ball_bin, np.int64, "ball_bin")
        counts = np.zeros(2, dtype=np.int64)
        lib.repro_dynamic_window(
            _p(kinds), _p(args), int(start), int(stop), _p(cands), _p(us),
            int(d), _p(remap), _p(loads), _p(measures), int(strategy_code),
            _p(ball_bin), _p(counts),
        )
        return int(counts[0]), int(counts[1])

    def ring_assign(pts, table, pos_ext, nbuckets, n, threads=1):
        """C kernel for the bucket-table ring ownership lookup.

        ``threads > 1`` partitions the points into contiguous row
        groups looked up on that many OS threads (bit-identical: each
        output row is independent).
        """
        pts = _as_c(pts, np.float64)
        table = _as_c(table, np.int32)
        pos_ext = _as_c(pos_ext, np.float64)
        out = np.empty(pts.size, dtype=np.int64)
        if threads > 1:
            lib.repro_ring_assign_par(
                _p(pts), pts.size, _p(table), _p(pos_ext), int(nbuckets),
                int(n), _p(out), int(threads),
            )
        else:
            lib.repro_ring_assign(
                _p(pts), pts.size, _p(table), _p(pos_ext), int(nbuckets),
                int(n), _p(out),
            )
        return out

    def place_block_multi(
        bins3, us2, loads2, measures2, strategy_code, heights2, pos, threads
    ):
        """C kernel placing one RNG block of every fused trial at once.

        Trials are partitioned into static contiguous row groups
        processed on ``threads`` OS threads; each group runs the same
        scalar ``place_block`` loop as the serial path, so results are
        bit-identical for every thread count.
        """
        bins3 = _as_c(bins3, np.int64)
        us2 = _as_c(us2, np.float64)
        _check_inplace(loads2, np.int64, "loads2")
        measures2 = None if measures2 is None else _as_c(measures2, np.float64)
        if heights2 is not None:
            _check_inplace(heights2, np.int64, "heights2")
        t, b, d = bins3.shape
        n = loads2.shape[1]
        m = 0 if heights2 is None else heights2.shape[1]
        lib.repro_place_block_multi(
            _p(bins3), _p(us2), t, b, d, _p(loads2), n, _p(measures2),
            int(strategy_code), _p(heights2), m, int(pos), int(threads),
        )

    from repro.kernels import KernelBackend

    return KernelBackend(
        name="cext",
        place_block=place_block,
        dynamic_window=dynamic_window,
        ring_assign=ring_assign,
        place_block_multi=place_block_multi,
    )
