"""Pluggable raw-speed backends for the hot placement kernels.

`BENCH_engine.json` showed the fused engine plateauing around 4M
balls/s with the fused-over-batched edge decaying as ``n`` grows: at
paper scale the process is bound by numpy dispatch overhead, not by
the algorithm.  This package factors the three hot paths into *scalar
kernels* that a compiled tier can run at memory speed:

``place_block``
    Sequential greedy placement of one RNG block of balls — the inner
    loop of :func:`repro.core.multitrial.run_fused` (and, per trial,
    of every engine).  One compiled pass replaces the whole
    optimistic-chunk + scalar-repair dance.
``dynamic_window``
    A churn-free window of mixed insert/delete events — the inner loop
    of :func:`repro.dynamics.engine.run_batched_dynamic`.
``ring_assign``
    The bucket-table ring ownership lookup behind
    :meth:`repro.core.ring.RingSpace.assign`.

Three backends provide them:

``numpy``
    The reference.  It carries **no** kernels (all three attributes are
    ``None``): callers keep their existing vectorized numpy code paths,
    which remain the semantics every other backend must reproduce
    bit-for-bit.
``numba``
    ``@njit``-compiled scalar loops (optional dependency, installed via
    ``pip install repro-geometric-two-choices[fast]``).  Import is lazy:
    ``import repro`` never touches numba, and an absent numba never
    raises on the auto path.
``cext``
    The same scalar loops as a tiny C library compiled on first use
    with the host C compiler (``cc -O3``) and loaded through
    ``ctypes``; the build artifact is cached on disk keyed by a source
    hash.  Available wherever a C toolchain is, with zero Python
    dependencies.

Selection order (strongest first): the ``REPRO_KERNEL_BACKEND``
environment variable, then the ``backend=`` kwarg threaded through
:func:`repro.stats.trials.run_cell` /
:func:`repro.dynamics.engine.simulate_dynamics` /
:func:`repro.core.multitrial.run_fused`, then auto-detection
(``numba`` if importable, else ``cext`` if a C compiler is found, else
``numpy``).  The env var lets CI force a backend through every code
path; auto-detection degrades gracefully — when every accelerated
backend is unavailable it falls back to ``numpy`` with a **one-time**
``logging`` warning naming what failed (plus a
``kernels.auto_fallback`` obs counter), so a machine silently running
5x slower than it could is visible without being spammy.

Observability: every :func:`resolve_backend` call bumps the
``kernels.backend_selected{name=...}`` counter (a no-op unless
``REPRO_OBS`` is on — see :mod:`repro.obs`), which is how trace
reports attribute throughput to the backend that actually ran.

All backends are interchangeable **bit-for-bit**: the parity suite
(``tests/kernels``) checks identical placements, per-epoch dynamic
trajectories and ring assignments against the numpy reference for
every backend that is available.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable

from repro.kernels.threads import (
    cpu_topology,
    logical_cores,
    physical_cores,
    resolve_threads,
    thread_chunks,
)
from repro.obs.metrics import counter_add

_log = logging.getLogger(__name__)

__all__ = [
    "KernelBackend",
    "BACKEND_NAMES",
    "SMALL_WINDOW_CUTOFF",
    "STRATEGY_CODES",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "default_backend",
    "cpu_topology",
    "logical_cores",
    "physical_cores",
    "resolve_threads",
    "thread_chunks",
]

#: Names accepted by :func:`get_backend` (besides ``"auto"``).
BACKEND_NAMES = ("numpy", "numba", "cext")

#: Small-batch dispatch cutoff for mixed-event windows: at or below
#: this many events, per-event scalar application beats both a kernel
#: call (ctypes/numba argument marshalling) and the numpy
#: conflict-free-prefix machinery (``np.unique`` setup), so
#: :meth:`repro.core.incremental.IncrementalState.apply_window` — and
#: through it the batched dynamic engine and the serving tier's
#: single-request path — steps these windows scalar.  Dispatch-only:
#: every tier is bit-identical, so the cutoff moves wall-clock time,
#: never results.
SMALL_WINDOW_CUTOFF = 16

#: Integer codes the compiled kernels use for the tie-break strategy,
#: keyed by :class:`repro.core.strategies.TieBreak` *values* (plain
#: strings, so this package never imports ``repro.core``).
STRATEGY_CODES = {"random": 0, "first": 1, "smaller": 2, "larger": 3}

#: Auto-detection preference among accelerated backends.
_AUTO_ORDER = ("numba", "cext")


@dataclass(frozen=True)
class KernelBackend:
    """One entry of the kernel registry.

    Each kernel attribute is either a callable with the uniform
    signature below or ``None``, meaning "use the caller's built-in
    numpy path" (the numpy reference backend has all three ``None``).

    ``place_block(bins, us, loads, measures, strategy_code, heights)``
        Place ``bins.shape[0]`` balls sequentially: for each row pick
        the least-loaded of its ``d`` candidate bins (ties by
        ``strategy_code``, consuming ``us``), increment ``loads`` in
        place, and record 1-based heights into ``heights`` when it is
        not ``None``.  ``measures`` is the full per-bin measure array
        (or ``None`` for strategies that ignore it).
    ``dynamic_window(kinds, args, start, stop, cands, us, d, remap,
    loads, measures, strategy_code, ball_bin)``
        Apply trace events ``start <= i < stop`` (inserts and deletes
        only — churn is a barrier handled by the caller), mutating
        ``loads`` and ``ball_bin`` in place; ``remap`` is the cyclic-
        successor bin remap or ``None`` for the identity.  Returns the
        ``(inserts, deletes)`` counts applied.
    ``ring_assign(pts, table, pos_ext, nbuckets, n, threads=1)``
        Bucket-table ring ownership lookup: for each point start at
        the cached lower bound of its bucket and probe forward, exactly
        like :meth:`repro.core.ring.RingSpace._assign_bucketed`.
        Returns an int64 index array.  ``threads > 1`` partitions the
        points into static contiguous row groups
        (:func:`repro.kernels.threads.thread_chunks`) processed
        GIL-free in parallel — each output row is an independent
        lookup, so the partition is bit-identical by construction.
    ``place_block_multi(bins3, us2, loads2, measures2, strategy_code,
    heights2, pos, threads)``
        Thread-parallel twin of ``place_block`` over ``T`` fused
        trials: ``bins3`` is ``(T, b, d)``, ``us2`` ``(T, b)``,
        ``loads2`` the full ``(T, n)`` fused load array, ``measures2``
        ``(T, n)`` or ``None``, ``heights2`` the full ``(T, m)``
        heights array or ``None`` (rows written at column offset
        ``pos``).  Trials are partitioned into static contiguous
        row groups, one ``place_block`` loop per trial — trials never
        share bins, so any static partition is bit-identical to the
        serial per-trial loop.
    """

    name: str
    place_block: Callable | None = None
    dynamic_window: Callable | None = None
    ring_assign: Callable | None = None
    place_block_multi: Callable | None = None

    @property
    def is_accelerated(self) -> bool:
        """Whether this backend supplies compiled kernels."""
        return self.place_block is not None


#: Built backends by name (including the resolved ``"auto"`` choice).
_CACHE: dict[str, KernelBackend] = {}
#: First failure message per backend name, so an unavailable backend is
#: probed (and its import/compile cost paid) at most once per process.
_FAILED: dict[str, str] = {}
#: Whether the one-time auto-fallback warning fired in this process.
_WARNED_FALLBACK = False


def _build(name: str) -> KernelBackend:
    """Construct a backend, raising when it is unavailable."""
    if name == "numpy":
        return KernelBackend("numpy")
    if name == "numba":
        try:
            from repro.kernels.numba_backend import build_backend
        except ImportError as exc:  # pragma: no cover - package damage
            raise RuntimeError(f"kernel backend 'numba' unavailable: {exc}") from exc
        return build_backend()
    if name == "cext":
        from repro.kernels.cext_backend import build_backend

        return build_backend()
    raise AssertionError(name)  # pragma: no cover - guarded by get_backend


def get_backend(name: str) -> KernelBackend:
    """Return the named backend, building (and caching) it on first use.

    ``"auto"`` tries the accelerated backends in preference order
    (``numba`` then ``cext``) and falls back to ``numpy`` when none is
    available, logging a one-time warning (and bumping the
    ``kernels.auto_fallback`` obs counter) so the degradation is never
    silent.  An explicit name raises: :class:`ValueError` for an
    unknown name, :class:`RuntimeError` when the backend exists but
    cannot be loaded (numba not installed, no C compiler, ...).
    """
    global _WARNED_FALLBACK
    if name in _CACHE:
        return _CACHE[name]
    if name == "auto":
        for candidate in _AUTO_ORDER:
            try:
                backend = get_backend(candidate)
            except RuntimeError:
                continue
            _CACHE["auto"] = backend
            return backend
        backend = get_backend("numpy")
        _CACHE["auto"] = backend
        counter_add("kernels.auto_fallback")
        if not _WARNED_FALLBACK:
            _WARNED_FALLBACK = True
            reasons = "; ".join(
                f"{cand}: {_FAILED.get(cand, 'unavailable')}" for cand in _AUTO_ORDER
            )
            _log.warning(
                "kernel backend auto-detection fell back to the numpy "
                "reference — accelerated backends unavailable (%s); install "
                "the [fast] extra or a C toolchain for 5x+ placement "
                "throughput",
                reasons,
            )
        return backend
    if name not in BACKEND_NAMES:
        valid = ", ".join(BACKEND_NAMES + ("auto",))
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {valid} "
            "(set via backend= or the REPRO_KERNEL_BACKEND env var)"
        )
    if name in _FAILED:
        raise RuntimeError(_FAILED[name])
    try:
        backend = _build(name)
    except RuntimeError as exc:
        _FAILED[name] = str(exc)
        raise
    _CACHE[name] = backend
    return backend


def resolve_backend(backend: "KernelBackend | str | None" = None) -> KernelBackend:
    """Resolve the effective backend for one engine call.

    Selection order is **env → kwarg → auto**: a non-empty
    ``REPRO_KERNEL_BACKEND`` environment variable overrides everything
    (so one shell export steers every layer, including code that never
    grew a kwarg), an explicit ``backend`` argument (name or
    :class:`KernelBackend` instance) comes next, and ``None`` means
    auto-detection.
    """
    env = os.environ.get("REPRO_KERNEL_BACKEND", "").strip()
    if env:
        resolved = get_backend(env)
    elif isinstance(backend, KernelBackend):
        resolved = backend
    else:
        resolved = get_backend(backend if backend is not None else "auto")
    counter_add("kernels.backend_selected", backend=resolved.name)
    return resolved


def default_backend() -> KernelBackend:
    """The backend implied by the environment alone (no kwarg).

    Used by call sites without a ``backend=`` kwarg of their own —
    notably :meth:`repro.core.ring.RingSpace.assign`, which sits below
    the engines.  Equivalent to ``resolve_backend(None)``.
    """
    return resolve_backend(None)


def available_backends() -> dict[str, bool]:
    """Availability of every registered backend name, without raising.

    Probing an accelerated backend may import numba or compile the C
    library on first call; failures are cached, so this is cheap to
    call repeatedly.
    """
    out = {}
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
        except RuntimeError:
            out[name] = False
        else:
            out[name] = True
    return out


def _reset() -> None:
    """Drop all cached backends, failures and warnings (test hook)."""
    global _WARNED_FALLBACK
    _CACHE.clear()
    _FAILED.clear()
    _WARNED_FALLBACK = False
