"""Thread-count resolution and CPU topology for the parallel kernels.

The multicore tier (thread-parallel ``place_block_multi`` /
``ring_assign`` kernels, the double-buffered RNG producer in
:func:`repro.core.multitrial.run_fused`, the pipelined candidate
predraw in :func:`repro.dynamics.engine.simulate_dynamics`) is steered
by **one** knob with the same resolution order as the kernel backend:

1. the ``REPRO_NUM_THREADS`` environment variable (strongest — one
   shell export steers every layer, and it crosses process boundaries
   into sweep workers);
2. the ``threads=`` kwarg threaded through
   :func:`repro.stats.trials.run_cell` /
   :func:`repro.core.multitrial.run_fused` /
   :func:`repro.dynamics.engine.simulate_dynamics` /
   :func:`repro.sweeps.runner.run_sweep`;
3. auto-detection: the number of **physical** cores (SMT siblings share
   the load/store units the placement kernels are bound by, so logical
   cores past the physical count add contention, not throughput).

``threads`` never changes results: work is partitioned statically by
trial row-group (trials are independent in the fused load array) or by
output row (ring lookups), and RNG pipelining only moves *when* a
candidate block is generated, never its contents.  The parity suite
(``tests/kernels/test_threads_parity.py``) enforces bit-identity for
every backend × engine × thread count, which is also why ``threads``
is excluded from sweep cache keys (like ``backend=``).

:func:`cpu_topology` additionally feeds the observability layer: run
manifests (:func:`repro.obs.manifest.run_manifest`) and both tracked
``BENCH_*.json`` files record physical/logical core counts and the CPU
model string, so thread-scaling numbers are interpretable across
machines.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

__all__ = [
    "cpu_topology",
    "logical_cores",
    "physical_cores",
    "resolve_threads",
    "thread_chunks",
]

#: Cached :func:`cpu_topology` result (the topology cannot change under
#: a running process; caching also keeps run manifests deterministic).
_TOPOLOGY: dict | None = None


def _parse_proc_cpuinfo(text: str) -> tuple[int | None, str | None]:
    """Extract ``(physical_cores, model_name)`` from ``/proc/cpuinfo``.

    Physical cores are counted as distinct ``(physical id, core id)``
    pairs; either field missing (common in VMs and containers) yields
    ``None`` so the caller can fall back to the logical count.
    """
    model = None
    pairs = set()
    phys = core = None
    for line in text.splitlines():
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "model name" and model is None:
            model = value
        elif key == "physical id":
            phys = value
        elif key == "core id":
            core = value
        elif not line.strip():
            if phys is not None and core is not None:
                pairs.add((phys, core))
            phys = core = None
    if phys is not None and core is not None:
        pairs.add((phys, core))
    return (len(pairs) or None), model


def cpu_topology() -> dict:
    """Physical/logical core counts and CPU model of this machine.

    Returns a dict with ``logical`` (the scheduler's CPU count),
    ``physical`` (distinct cores, SMT siblings collapsed; equals
    ``logical`` when the platform exposes no topology) and ``model``
    (the CPU model string, or ``"unknown"``).  Cached after the first
    call — the answer cannot change under a running process, and a
    stable answer keeps :func:`repro.obs.manifest.run_manifest`
    deterministic.

    Examples
    --------
    >>> topo = cpu_topology()
    >>> 1 <= topo["physical"] <= topo["logical"]
    True
    """
    global _TOPOLOGY
    if _TOPOLOGY is not None:
        return dict(_TOPOLOGY)
    logical = os.cpu_count() or 1
    physical = None
    model = None
    try:
        text = Path("/proc/cpuinfo").read_text(encoding="utf-8", errors="replace")
    except OSError:
        text = ""
    if text:
        physical, model = _parse_proc_cpuinfo(text)
    if physical is None:
        # macOS exposes the physical count via sysctl; anything else
        # (or a failed probe) falls back to the logical count.
        physical = _sysctl_physical()
    _TOPOLOGY = {
        "logical": int(logical),
        "physical": int(min(physical or logical, logical)),
        "model": model or "unknown",
    }
    return dict(_TOPOLOGY)


def _sysctl_physical() -> int | None:
    """``hw.physicalcpu`` via sysctl, or ``None`` where unavailable."""
    import subprocess

    try:
        out = subprocess.run(
            ["sysctl", "-n", "hw.physicalcpu"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode == 0 and re.fullmatch(r"\d+", out.stdout.strip()):
        return int(out.stdout.strip())
    return None


def logical_cores() -> int:
    """The OS scheduler's CPU count (SMT siblings included)."""
    return cpu_topology()["logical"]


def physical_cores() -> int:
    """Distinct physical cores (the ``threads`` auto default)."""
    return cpu_topology()["physical"]


def resolve_threads(threads: int | None = None) -> int:
    """Resolve the effective thread count for one engine call.

    Selection order is **env → kwarg → auto** (mirroring
    :func:`repro.kernels.resolve_backend`): a non-empty
    ``REPRO_NUM_THREADS`` environment variable overrides everything, an
    explicit ``threads`` argument comes next, and ``None`` auto-detects
    the physical core count.  The result is always at least 1; a bogus
    env value or kwarg raises :class:`ValueError`.

    Examples
    --------
    >>> resolve_threads(3)  # doctest: +SKIP
    3
    >>> resolve_threads(1)
    1
    """
    env = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_NUM_THREADS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_NUM_THREADS must be a positive integer, got {env!r}"
            )
        return value
    if threads is None:
        return physical_cores()
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"threads must be a positive integer, got {threads}")
    return threads


def thread_chunks(count: int, threads: int) -> list[tuple[int, int]]:
    """Static contiguous partition of ``count`` rows into thread ranges.

    Returns up to ``threads`` non-empty ``(start, stop)`` half-open
    ranges covering ``[0, count)``; earlier ranges are at most one row
    longer.  The partition is a pure function of ``(count, threads)`` —
    the static schedule that makes thread-parallel kernels trivially
    bit-identical (each row's computation is independent and lands in
    its own output slot).

    Examples
    --------
    >>> thread_chunks(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    >>> thread_chunks(2, 8)
    [(0, 1), (1, 2)]
    >>> thread_chunks(0, 4)
    []
    """
    if count <= 0:
        return []
    threads = max(1, min(int(threads), count))
    base, extra = divmod(count, threads)
    out = []
    start = 0
    for i in range(threads):
        stop = start + base + (1 if i < extra else 0)
        out.append((start, stop))
        start = stop
    return out
