"""Numba kernel backend: ``@njit``-compiled scalar loops.

The kernel bodies live here as plain module-level Python functions and
are JIT-compiled only inside :func:`build_backend`, so importing this
module (or ``repro`` itself) never pays numba's import cost and works
with numba absent; the registry calls :func:`build_backend` lazily and
converts its :class:`RuntimeError` into auto-fallback.

The loops are line-for-line transcriptions of
:func:`repro.core.strategies.decide_row_scalar` and the sequential
engines (``int(u * k)`` truncates toward zero, which equals ``floor``
for the non-negative operand, exactly like the reference's
``math.floor``), so placements are bit-identical to the numpy
reference — the parity suite enforces this whenever numba is
installed, and the CI numba leg runs the whole tier-1 suite under
``REPRO_KERNEL_BACKEND=numba``.

Numba cannot type optional arguments, so the jitted signatures take
dummy empty arrays plus ``use_*``/``record_*`` flags; the thin Python
shims below translate from the registry's uniform ``None``-based
kernel interface (:class:`repro.kernels.KernelBackend`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_backend"]

_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)


def _place_block_impl(bins, us, loads, measures, use_measures, strategy,
                      heights, record_heights):
    """Sequential greedy placement of one block (jitted scalar loop)."""
    b, d = bins.shape
    for t in range(b):
        min_load = loads[bins[t, 0]]
        for j in range(1, d):
            l = loads[bins[t, j]]
            if l < min_load:
                min_load = l
        if strategy == 1:  # first
            chosen = bins[t, 0]
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    chosen = bins[t, j]
                    break
        elif strategy == 0:  # random: floor(u*k)+1'th tied candidate
            k = 0
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    k += 1
            target = np.int64(us[t] * k) + 1  # trunc == floor: u*k >= 0
            seen = 0
            chosen = bins[t, 0]
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    seen += 1
                    if seen == target:
                        chosen = bins[t, j]
                        break
        elif strategy == 2:  # smaller: strictly smallest measure
            best_key = np.inf
            chosen = bins[t, 0]
            for j in range(d):
                c = bins[t, j]
                if loads[c] == min_load and measures[c] < best_key:
                    chosen = c
                    best_key = measures[c]
        else:  # larger: strictly largest measure
            best_key = -np.inf
            chosen = bins[t, 0]
            for j in range(d):
                c = bins[t, j]
                if loads[c] == min_load and measures[c] > best_key:
                    chosen = c
                    best_key = measures[c]
        if record_heights:
            heights[t] = loads[chosen] + 1
        loads[chosen] += 1


def _dynamic_window_impl(kinds, args, start, stop, cands, us, d, remap,
                         use_remap, loads, measures, use_measures, strategy,
                         ball_bin):
    """Churn-free insert/delete window (jitted scalar loop)."""
    ins = np.int64(0)
    dels = np.int64(0)
    for i in range(start, stop):
        ball = args[i]
        if kinds[i] == 0:  # EventKind.INSERT
            min_load = np.int64(0)
            for j in range(d):
                c = cands[ball, j]
                if use_remap:
                    c = remap[c]
                l = loads[c]
                if j == 0 or l < min_load:
                    min_load = l
            if strategy == 1:  # first
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        chosen = c
                        break
            elif strategy == 0:  # random
                k = 0
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        k += 1
                target = np.int64(us[ball] * k) + 1
                seen = 0
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        seen += 1
                        if seen == target:
                            chosen = c
                            break
            elif strategy == 2:  # smaller
                best_key = np.inf
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load and measures[c] < best_key:
                        chosen = c
                        best_key = measures[c]
            else:  # larger
                best_key = -np.inf
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load and measures[c] > best_key:
                        chosen = c
                        best_key = measures[c]
            loads[chosen] += 1
            ball_bin[ball] = chosen
            ins += 1
        else:  # delete
            loads[ball_bin[ball]] -= 1
            ball_bin[ball] = -1
            dels += 1
    return ins, dels


def _ring_assign_impl(pts, table, pos_ext, nbuckets, n, out):
    """Bucket-table ring ownership lookup (jitted scalar loop)."""
    for i in range(pts.size):
        x = pts[i]
        j = np.int64(table[np.int64(x * nbuckets)])
        while pos_ext[j] < x:
            j += 1
        out[i] = 0 if j == n else j


def build_backend():
    """JIT-compile the kernels and wrap them as a :class:`KernelBackend`.

    Raises :class:`RuntimeError` when numba is not importable, which
    the registry's auto path treats as "unavailable".
    """
    try:
        import numba
    except ImportError as exc:
        raise RuntimeError(
            "kernel backend 'numba' unavailable: numba is not installed "
            "(pip install 'repro-geometric-two-choices[fast]')"
        ) from exc

    jit = numba.njit(cache=True, fastmath=False)
    place_block_jit = jit(_place_block_impl)
    dynamic_window_jit = jit(_dynamic_window_impl)
    ring_assign_jit = jit(_ring_assign_impl)

    def place_block(bins, us, loads, measures, strategy_code, heights):
        """Numba kernel for one block of sequential greedy placements."""
        place_block_jit(
            np.ascontiguousarray(bins, dtype=np.int64),
            np.ascontiguousarray(us, dtype=np.float64),
            loads,
            _EMPTY_F8 if measures is None else measures,
            measures is not None,
            strategy_code,
            _EMPTY_I8 if heights is None else heights,
            heights is not None,
        )

    def dynamic_window(kinds, args, start, stop, cands, us, d, remap, loads,
                       measures, strategy_code, ball_bin):
        """Numba kernel for a churn-free insert/delete event window."""
        ins, dels = dynamic_window_jit(
            kinds,
            args,
            start,
            stop,
            cands,
            us,
            d,
            _EMPTY_I8 if remap is None else remap,
            remap is not None,
            loads,
            _EMPTY_F8 if measures is None else measures,
            measures is not None,
            strategy_code,
            ball_bin,
        )
        return int(ins), int(dels)

    def ring_assign(pts, table, pos_ext, nbuckets, n):
        """Numba kernel for the bucket-table ring ownership lookup."""
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        out = np.empty(pts.size, dtype=np.int64)
        ring_assign_jit(pts, table, pos_ext, nbuckets, n, out)
        return out

    from repro.kernels import KernelBackend

    return KernelBackend(
        name="numba",
        place_block=place_block,
        dynamic_window=dynamic_window,
        ring_assign=ring_assign,
    )
