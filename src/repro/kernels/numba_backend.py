"""Numba kernel backend: ``@njit``-compiled scalar loops.

The kernel bodies live here as plain module-level Python functions and
are JIT-compiled only inside :func:`build_backend`, so importing this
module (or ``repro`` itself) never pays numba's import cost and works
with numba absent; the registry calls :func:`build_backend` lazily and
converts its :class:`RuntimeError` into auto-fallback.

The loops are line-for-line transcriptions of
:func:`repro.core.strategies.decide_row_scalar` and the sequential
engines (``int(u * k)`` truncates toward zero, which equals ``floor``
for the non-negative operand, exactly like the reference's
``math.floor``), so placements are bit-identical to the numpy
reference — the parity suite enforces this whenever numba is
installed, and the CI numba leg runs the whole tier-1 suite under
``REPRO_KERNEL_BACKEND=numba``.

Numba cannot type optional arguments, so the jitted signatures take
dummy empty arrays plus ``use_*``/``record_*`` flags; the thin Python
shims below translate from the registry's uniform ``None``-based
kernel interface (:class:`repro.kernels.KernelBackend`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_backend"]

_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)


def _place_block_impl(bins, us, loads, measures, use_measures, strategy,
                      heights, record_heights):
    """Sequential greedy placement of one block (jitted scalar loop)."""
    b, d = bins.shape
    for t in range(b):
        min_load = loads[bins[t, 0]]
        for j in range(1, d):
            l = loads[bins[t, j]]
            if l < min_load:
                min_load = l
        if strategy == 1:  # first
            chosen = bins[t, 0]
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    chosen = bins[t, j]
                    break
        elif strategy == 0:  # random: floor(u*k)+1'th tied candidate
            k = 0
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    k += 1
            target = np.int64(us[t] * k) + 1  # trunc == floor: u*k >= 0
            seen = 0
            chosen = bins[t, 0]
            for j in range(d):
                if loads[bins[t, j]] == min_load:
                    seen += 1
                    if seen == target:
                        chosen = bins[t, j]
                        break
        elif strategy == 2:  # smaller: strictly smallest measure
            best_key = np.inf
            chosen = bins[t, 0]
            for j in range(d):
                c = bins[t, j]
                if loads[c] == min_load and measures[c] < best_key:
                    chosen = c
                    best_key = measures[c]
        else:  # larger: strictly largest measure
            best_key = -np.inf
            chosen = bins[t, 0]
            for j in range(d):
                c = bins[t, j]
                if loads[c] == min_load and measures[c] > best_key:
                    chosen = c
                    best_key = measures[c]
        if record_heights:
            heights[t] = loads[chosen] + 1
        loads[chosen] += 1


def _dynamic_window_impl(kinds, args, start, stop, cands, us, d, remap,
                         use_remap, loads, measures, use_measures, strategy,
                         ball_bin):
    """Churn-free insert/delete window (jitted scalar loop)."""
    ins = np.int64(0)
    dels = np.int64(0)
    for i in range(start, stop):
        ball = args[i]
        if kinds[i] == 0:  # EventKind.INSERT
            min_load = np.int64(0)
            for j in range(d):
                c = cands[ball, j]
                if use_remap:
                    c = remap[c]
                l = loads[c]
                if j == 0 or l < min_load:
                    min_load = l
            if strategy == 1:  # first
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        chosen = c
                        break
            elif strategy == 0:  # random
                k = 0
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        k += 1
                target = np.int64(us[ball] * k) + 1
                seen = 0
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load:
                        seen += 1
                        if seen == target:
                            chosen = c
                            break
            elif strategy == 2:  # smaller
                best_key = np.inf
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load and measures[c] < best_key:
                        chosen = c
                        best_key = measures[c]
            else:  # larger
                best_key = -np.inf
                chosen = np.int64(-1)
                for j in range(d):
                    c = cands[ball, j]
                    if use_remap:
                        c = remap[c]
                    if loads[c] == min_load and measures[c] > best_key:
                        chosen = c
                        best_key = measures[c]
            loads[chosen] += 1
            ball_bin[ball] = chosen
            ins += 1
        else:  # delete
            loads[ball_bin[ball]] -= 1
            ball_bin[ball] = -1
            dels += 1
    return ins, dels


def _ring_assign_impl(pts, table, pos_ext, nbuckets, n, out):
    """Bucket-table ring ownership lookup (jitted scalar loop)."""
    for i in range(pts.size):
        x = pts[i]
        j = np.int64(table[np.int64(x * nbuckets)])
        while pos_ext[j] < x:
            j += 1
        out[i] = 0 if j == n else j


def _make_parallel_kernels(jit, numba, place_block_jit):
    """Build the ``prange`` thread-parallel kernel twins.

    ``place_block_multi`` pranges over fused trials (each trial's loop
    is the serial ``place_block`` body — trials never share bins, so
    any prange schedule is bit-identical); the parallel ``ring_assign``
    pranges over points (each output row is an independent lookup).
    Raises whatever ``numba.njit(parallel=True)`` raises when the
    threading layer is unavailable; the caller degrades gracefully.
    """
    prange = numba.prange
    pjit = numba.njit(cache=True, fastmath=False, parallel=True)

    def _place_block_multi_impl(bins3, us2, loads2, measures2, use_measures,
                                strategy, heights2, record_heights, pos):
        t = bins3.shape[0]
        b = bins3.shape[1]
        for k in prange(t):
            km = k if use_measures else 0
            kh = k if record_heights else 0
            place_block_jit(
                bins3[k],
                us2[k],
                loads2[k],
                measures2[km],
                use_measures,
                strategy,
                heights2[kh, pos : pos + b],
                record_heights,
            )

    def _ring_assign_par_impl(pts, table, pos_ext, nbuckets, n, out):
        for i in prange(pts.size):
            x = pts[i]
            j = np.int64(table[np.int64(x * nbuckets)])
            while pos_ext[j] < x:
                j += 1
            out[i] = 0 if j == n else j

    return pjit(_place_block_multi_impl), pjit(_ring_assign_par_impl)


def build_backend():
    """JIT-compile the kernels and wrap them as a :class:`KernelBackend`.

    Raises :class:`RuntimeError` when numba is not importable, which
    the registry's auto path treats as "unavailable".
    """
    try:
        import numba
    except ImportError as exc:
        raise RuntimeError(
            "kernel backend 'numba' unavailable: numba is not installed "
            "(pip install 'repro-geometric-two-choices[fast]')"
        ) from exc

    jit = numba.njit(cache=True, fastmath=False)
    place_block_jit = jit(_place_block_impl)
    dynamic_window_jit = jit(_dynamic_window_impl)
    ring_assign_jit = jit(_ring_assign_impl)
    try:
        place_block_multi_jit, ring_assign_par_jit = _make_parallel_kernels(
            jit, numba, place_block_jit
        )
    except Exception:  # pragma: no cover - threading layer unavailable
        place_block_multi_jit = ring_assign_par_jit = None

    def _clamped_threads(threads: int) -> int:
        limit = getattr(numba.config, "NUMBA_NUM_THREADS", threads)
        return max(1, min(int(threads), int(limit)))

    def place_block(bins, us, loads, measures, strategy_code, heights):
        """Numba kernel for one block of sequential greedy placements."""
        place_block_jit(
            np.ascontiguousarray(bins, dtype=np.int64),
            np.ascontiguousarray(us, dtype=np.float64),
            loads,
            _EMPTY_F8 if measures is None else measures,
            measures is not None,
            strategy_code,
            _EMPTY_I8 if heights is None else heights,
            heights is not None,
        )

    def dynamic_window(kinds, args, start, stop, cands, us, d, remap, loads,
                       measures, strategy_code, ball_bin):
        """Numba kernel for a churn-free insert/delete event window."""
        ins, dels = dynamic_window_jit(
            kinds,
            args,
            start,
            stop,
            cands,
            us,
            d,
            _EMPTY_I8 if remap is None else remap,
            remap is not None,
            loads,
            _EMPTY_F8 if measures is None else measures,
            measures is not None,
            strategy_code,
            ball_bin,
        )
        return int(ins), int(dels)

    def ring_assign(pts, table, pos_ext, nbuckets, n, threads=1):
        """Numba kernel for the bucket-table ring ownership lookup.

        ``threads > 1`` runs the prange-parallel twin under that many
        numba threads (bit-identical: each output row is independent).
        """
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        out = np.empty(pts.size, dtype=np.int64)
        if threads > 1 and ring_assign_par_jit is not None and pts.size > 1:
            prev = numba.get_num_threads()
            numba.set_num_threads(_clamped_threads(threads))
            try:
                ring_assign_par_jit(pts, table, pos_ext, nbuckets, n, out)
            finally:
                numba.set_num_threads(prev)
        else:
            ring_assign_jit(pts, table, pos_ext, nbuckets, n, out)
        return out

    def place_block_multi(
        bins3, us2, loads2, measures2, strategy_code, heights2, pos, threads
    ):
        """Numba kernel placing one RNG block of every fused trial.

        Trials are prange-partitioned across numba threads; each
        trial's loop is the serial ``place_block`` body, so results
        are bit-identical for every thread count.
        """
        bins3 = np.ascontiguousarray(bins3, dtype=np.int64)
        us2 = np.ascontiguousarray(us2, dtype=np.float64)
        dummy_f8 = np.zeros((1, 1), dtype=np.float64)
        dummy_i8 = np.zeros((1, bins3.shape[1]), dtype=np.int64)
        prev = numba.get_num_threads()
        numba.set_num_threads(_clamped_threads(threads))
        try:
            place_block_multi_jit(
                bins3,
                us2,
                loads2,
                dummy_f8 if measures2 is None else measures2,
                measures2 is not None,
                strategy_code,
                dummy_i8 if heights2 is None else heights2,
                heights2 is not None,
                pos if heights2 is not None else 0,
            )
        finally:
            numba.set_num_threads(prev)

    from repro.kernels import KernelBackend

    return KernelBackend(
        name="numba",
        place_block=place_block,
        dynamic_window=dynamic_window,
        ring_assign=ring_assign,
        place_block_multi=(
            None if place_block_multi_jit is None else place_block_multi
        ),
    )
