"""Figure 1 / Lemmas 8-9 validation: the paper's geometric machinery.

The paper's only figure illustrates the six-sector construction behind
Lemma 8.  The executable counterpart, regenerated here:

1. **Lemma 8** — on random torus instances, *every* Voronoi cell of
   area >= c/n has at least one empty sector of its area-c/n disc
   (a theorem: any counterexample is a bug in our geometry or a
   misreading of the paper).
2. **Lemma 8 bound chain** — #large cells <= #points with empty
   sectors (Z), and empirically ``E[Z] <= 6 n e^{-c/6}``.
3. **Lemma 9** — the count of large cells never approaches the
   ``12 n e^{-c/6}`` threshold; the empirical exceedance frequency is
   compatible with the o(1/n^4) claim.
4. **Ring analogue (Lemmas 4-6)** — arc counts vs ``2 n e^{-c}`` and
   the longest-a arc sums vs ``2 (a/n) ln(n/a)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.torus import TorusSpace
from repro.experiments.report import TextReport
from repro.theory.arcs import (
    expected_arcs_at_least,
    lemma6_in_window,
    lemma6_sum_bound,
    longest_arc_bound,
    sample_spacings,
)
from repro.theory.voronoi_tails import (
    expected_large_regions_bound,
    lemma8_sector_test,
    lemma9_threshold,
)
from repro.utils.rng import spawn_rngs, stable_hash_seed
from repro.utils.validation import check_positive_int

__all__ = ["run"]


def _validate_lemma8(n: int, c: float, trials: int, seed) -> dict:
    """Run Lemma 8's sector test on ``trials`` random torus instances."""
    rngs = spawn_rngs(seed, trials)
    total_large = 0
    failures = 0
    z_values = []
    large_counts = []
    for rng in rngs:
        space = TorusSpace(rng.random((n, 2)))
        areas = space.region_measures()
        verdicts = lemma8_sector_test(space.points, areas, c)
        total_large += verdicts.size
        failures += int((~verdicts).sum())
        large_counts.append(int((areas >= c / n).sum()))
        # Z = total number of empty sectors over all points (the
        # dominating count in the E[Z] bound); evaluate on a subsample
        # for cost: the large-region points plus a random slice
        z_values.append(_count_empty_sectors(space.points, c, rng))
    return {
        "total_large_regions": total_large,
        "sector_test_failures": failures,
        "mean_large_count": float(np.mean(large_counts)),
        "lemma9_threshold": lemma9_threshold(c, n) if c >= 12 else None,
        "mean_Z": float(np.mean(z_values)),
        "EZ_bound": expected_large_regions_bound(c, n),
    }


def _count_empty_sectors(points: np.ndarray, c: float, rng) -> int:
    """Exact Z: empty sectors of the area-c/n disc around every point.

    Vectorized over all point pairs within the disc radius via a
    KD-tree ball query.
    """
    from scipy.spatial import cKDTree

    from repro.theory.voronoi_tails import sector_index

    n = points.shape[0]
    radius = math.sqrt(c / (n * math.pi))
    tree = cKDTree(points, boxsize=1.0)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    occupied = np.zeros((n, 6), dtype=bool)
    if pairs.size:
        i, j = pairs[:, 0], pairs[:, 1]
        delta = points[j] - points[i]
        delta = (delta + 0.5) % 1.0 - 0.5
        occupied[i, sector_index(delta[:, 0], delta[:, 1])] = True
        occupied[j, sector_index(-delta[:, 0], -delta[:, 1])] = True
    return int((~occupied).sum())


def _validate_ring_lemmas(n: int, trials: int, seed) -> list[str]:
    """Empirical checks of Lemmas 4-6 on sampled spacings."""
    from repro.theory.arcs import lemma4_tail

    spacings = sample_spacings(n, trials, seed)
    lines = []
    for c in (3.0, 5.0, 8.0):
        counts = (spacings >= c / n).sum(axis=1)
        bound = 2.0 * expected_arcs_at_least(c, n, bound=True)
        exceed = float((counts >= bound).mean())
        lines.append(
            f"  Lemma 4  c={c:.0f}: mean N_c={counts.mean():7.2f}  "
            f"2n e^-c={bound:8.2f}  exceedance={exceed:.3f} "
            f"(bound {lemma4_tail(c, n):.3f})"
        )
    sorted_desc = np.sort(spacings, axis=1)[:, ::-1]
    for frac in (1 / 32, 1 / 64):
        a = max(1, int(n * frac))
        sums = sorted_desc[:, :a].sum(axis=1)
        bound = lemma6_sum_bound(a, n)
        exceed = float((sums > bound).mean())
        window = "in-window" if lemma6_in_window(a, n) else "out-of-window"
        lines.append(
            f"  Lemma 6  a={a:5d} ({window}): mean sum={sums.mean():.4f}  "
            f"bound={bound:.4f}  exceedance={exceed:.3f}"
        )
    longest = sorted_desc[:, 0]
    cap = longest_arc_bound(n)
    lines.append(
        f"  longest arc: mean={longest.mean():.5f}  4 ln n / n={cap:.5f}  "
        f"exceedance={float((longest > cap).mean()):.4f}"
    )
    return lines


def run(
    *,
    n: int = 4096,
    c_sector: float = 2.5,
    c_tail: float = 12.0,
    trials: int = 20,
    ring_trials: int = 400,
    seed: int = 20030206,
) -> TextReport:
    """Validate the geometric lemmas on random instances.

    ``c_sector`` is small enough that regions of area >= c/n actually
    occur (so the six-sector test has subjects); ``c_tail`` sits in
    Lemma 9's stated window ``12 <= c <= ln n``.
    """
    n = check_positive_int(n, "n")
    trials = check_positive_int(trials, "trials")
    res = _validate_lemma8(
        n, c_sector, trials, stable_hash_seed("lemma8", seed, n, c_sector)
    )
    tail = _validate_lemma8(
        n, c_tail, trials, stable_hash_seed("lemma9", seed, n, c_tail)
    )
    lines = [
        f"Lemma 8 (six-sector) on {trials} random {n}-point torus "
        f"instances, c={c_sector}:",
        f"  large regions examined: {res['total_large_regions']}"
        f"  sector-test failures: {res['sector_test_failures']} (lemma predicts 0)",
        f"  mean Z (empty sectors): {res['mean_Z']:.2f}"
        f"  bound 6 n e^-c/6 = {res['EZ_bound']:.1f}",
        "",
        f"Lemma 9 tail at c={c_tail} (window 12 <= c <= ln n):",
        f"  mean #regions >= c/n: {tail['mean_large_count']:.2f}"
        + (
            f"  threshold 12 n e^-c/6 = {tail['lemma9_threshold']:.1f}"
            if tail["lemma9_threshold"] is not None
            else ""
        ),
        f"  mean Z: {tail['mean_Z']:.2f}  bound 6 n e^-c/6 = {tail['EZ_bound']:.1f}",
        "",
        f"Ring lemmas on {ring_trials} sampled spacing vectors (n={n}):",
        *_validate_ring_lemmas(n, ring_trials, stable_hash_seed("ring", seed, n)),
    ]
    data = {"sector": dict(res), "tail": dict(tail)}
    return TextReport(
        name="fig1_lemma8",
        title="Figure 1 / Lemmas 4-6, 8-9: geometric tail-bound validation",
        lines=lines,
        data=data,
        meta={
            "n": n,
            "c_sector": c_sector,
            "c_tail": c_tail,
            "trials": trials,
            "seed": seed,
        },
    )
