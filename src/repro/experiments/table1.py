"""Table 1: maximum load with random arcs on the ring (m = n).

The paper sweeps ``n in {2^8, 2^12, 2^16, 2^20, 2^24}`` and
``d in {1, 2, 3, 4}`` with 1000 trials per cell and random tie-breaking.
Full scale is ~2e10 sequential ball placements; the default here runs
every ``d`` at the three smaller ``n`` with 100 trials (a laptop-scale
faithful slice — the paper's qualitative claims are already decided at
these sizes), and the full sweep is ``run(full=True, trials=1000)``.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.stats.trials import CellSpec
from repro.sweeps.runner import resolve_cache, submit_cell
from repro.utils.rng import stable_hash_seed
from repro.utils.timing import Stopwatch

__all__ = ["run", "DEFAULT_N_VALUES", "FULL_N_VALUES", "D_VALUES"]

DEFAULT_N_VALUES = (2**8, 2**12, 2**16)
FULL_N_VALUES = (2**8, 2**12, 2**16, 2**20, 2**24)
D_VALUES = (1, 2, 3, 4)


def run(
    *,
    trials: int = 100,
    n_values=None,
    d_values=D_VALUES,
    seed: int = 20030206,  # the TR's publication date
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
    full: bool = False,
) -> ExperimentReport:
    """Regenerate Table 1 (scaled by default; ``full=True`` for paper scale).

    ``engine`` and kernel ``backend`` are forwarded to :func:`repro.stats.trials.run_cell`;
    the default auto-selects the trial-fused engine for serial runs.
    Cells run through the sweep layer's result cache (``cache`` as in
    :func:`repro.sweeps.runner.resolve_cache`), so an identical re-run
    is served from disk; pass ``cache="off"`` to force recomputation.
    """
    if n_values is None:
        n_values = FULL_N_VALUES if full else DEFAULT_N_VALUES
    store = resolve_cache(cache)
    sw = Stopwatch()
    cells = {}
    for n in n_values:
        for d in d_values:
            spec = CellSpec("ring", n, d)
            with sw.lap(f"n={n} d={d}"):
                cells[(n, d)] = submit_cell(
                    spec,
                    trials,
                    seed=stable_hash_seed("table1", seed, n, d),
                    n_jobs=n_jobs,
                    engine=engine,
                    backend=backend,
                    threads=threads,
                    cache=store,
                )
    return ExperimentReport(
        name="table1",
        title="Table 1: experimental maximum load with random arcs (m = n)",
        cells=cells,
        row_keys=list(n_values),
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        meta={
            "trials": trials,
            "seed": seed,
            "engine": engine,
            "seconds": round(sw.total, 2),
        },
    )
