"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver module exposes ``run(...) -> ExperimentReport`` with scaled
defaults that finish on a laptop; paper-scale parameters are plain
keyword arguments away.  ``python -m repro.experiments <name>`` runs a
driver from the command line; the registry maps experiment ids (see
DESIGN.md section 3) to drivers.

All drivers submit their simulation cells through the
:mod:`repro.sweeps` orchestration layer, so repeated runs with
identical parameters replay from the content-addressed result cache
instead of recomputing; ``python -m repro.experiments sweep ...``
exposes arbitrary sharded grids (see ``docs/sweeps.md``).
"""

from repro.experiments.report import ExperimentReport
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["ExperimentReport", "get_experiment", "list_experiments"]
