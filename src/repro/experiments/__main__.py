"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples
--------
Run the scaled Table 1 and print it in the paper's format (re-runs are
served from the sweep-layer result cache)::

    python -m repro.experiments table1

Paper-scale Table 3 over all cores, bypassing the cache::

    python -m repro.experiments table3 --full --trials 1000 --jobs 0 --no-cache

Peak max load along dynamic insert/delete/churn trajectories
(steady-state, Poisson, adversarial bursts, churn storms)::

    python -m repro.experiments dynamic_churn

Sharded, cached parameter sweeps (see ``docs/sweeps.md``)::

    python -m repro.experiments sweep run n=256,4096 d=1,2 --trials 50

Aggregate observability traces from a ``REPRO_OBS=1`` run into a
per-phase time breakdown (see ``docs/observability.md``)::

    python -m repro.experiments obs report

Replay a churn trace through the online placement service with
latency stats (see ``docs/serving.md``)::

    python -m repro.experiments serve replay --workload steady --quick

List everything::

    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (excluding the ``sweep`` subcommand).

    Returns
    -------
    argparse.ArgumentParser
        Parser for ``<name> [--trials N] [--full] [--jobs K] [--seed S]
        [--cache DIR | --no-cache] [--out DIR]``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the paper's tables and validations, plus the "
            "dynamic_churn trajectory experiment and cached parameter "
            "sweeps (see the 'sweep' subcommand)."
        ),
    )
    parser.add_argument("name", nargs="?", help="experiment id (see --list)")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument("--trials", type=int, default=None, help="trials per cell")
    parser.add_argument(
        "--full", action="store_true", help="paper-scale n sweep (slow!)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all cores, 1 = serial)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="kernel threads within one cell (default: REPRO_NUM_THREADS, "
        "else physical cores; results are thread-count-independent)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory (default: REPRO_SWEEP_CACHE or the "
        "XDG user cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (force recomputation)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="output directory for the 'all' pseudo-experiment",
    )
    return parser


def main(argv=None) -> int:
    """Run the CLI; returns a process exit code (0 ok, 2 usage error).

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).  A leading
        ``sweep`` token delegates everything after it to the sweep
        subcommand (:func:`repro.sweeps.cli.main`); a leading ``obs``
        token to the observability subcommand
        (:func:`repro.obs.cli.main`); a leading ``serve`` token to the
        placement-service subcommand (:func:`repro.serve.cli.main`);
        a leading ``net`` token to the overlay-simulator subcommand
        (:func:`repro.net.cli.main`).
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from repro.sweeps.cli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "net":
        from repro.net.cli import main as net_main

        return net_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.name:
        print("available experiments:")
        for name in list_experiments():
            print(f"  {name}")
        print("  all            (run everything, writing files to --out)")
        print("  sweep          (cached parameter sweeps; sweep --help)")
        print("  obs            (trace aggregation; obs --help)")
        print("  serve          (online placement service; serve --help)")
        print("  net            (message-level overlay simulator; net --help)")
        return 0
    cache = "off" if args.no_cache else (args.cache or "auto")
    if args.name == "all":
        from repro.experiments.run_all import run_all

        run_all(
            args.out,
            trials=args.trials,
            seed=args.seed,
            n_jobs=None if args.jobs == 0 else args.jobs,
            cache=cache,
        )
        return 0
    try:
        driver = get_experiment(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    kwargs: dict = {"cache": cache}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.full:
        kwargs["full"] = True
    if args.jobs != 1:
        kwargs["n_jobs"] = None if args.jobs == 0 else args.jobs
    if args.threads is not None:
        kwargs["threads"] = args.threads
    from repro.experiments.run_all import call_driver

    try:
        report = call_driver(driver, kwargs)
    except TypeError as exc:
        # driver without e.g. `full` support: report cleanly
        print(f"argument error for {args.name}: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
