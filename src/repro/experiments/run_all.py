"""Run every experiment and write one report file per driver.

This is the EXPERIMENTS.md regeneration path:

    python -m repro.experiments all --out results/

Scaled defaults mirror the recorded runs; pass ``--trials``/``--full``
to push toward paper scale.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from repro.experiments.registry import get_experiment

__all__ = ["DEFAULT_PLAN", "run_all"]

#: name -> (driver id, default kwargs).  Entries with a distinct name
#: reuse a driver at a second scale.
DEFAULT_PLAN: dict[str, tuple[str, dict]] = {
    "table1": ("table1", dict(trials=150, n_values=(2**8, 2**12, 2**16))),
    "table1_large": ("table1", dict(trials=20, n_values=(2**20,))),
    "table2": ("table2", dict(trials=150, n_values=(2**8, 2**12, 2**14))),
    "table2_large": ("table2", dict(trials=20, n_values=(2**16,))),
    "table3": ("table3", dict(trials=150, n_values=(2**8, 2**12, 2**16))),
    "fig1_lemma8": ("fig1_lemma8", dict(n=4096, trials=20, ring_trials=400)),
    "theory_vs_sim": ("theory_vs_sim", dict(trials=50)),
    "ablation_tiebreak": ("ablation_tiebreak", dict(trials=100)),
    "ablation_mn": ("ablation_mn", dict(trials=50)),
    "ablation_dim": ("ablation_dim", dict(trials=50)),
    "ablation_geometry": ("ablation_geometry", dict(trials=50)),
    "ablation_staleness": ("ablation_staleness", dict(trials=30)),
    "dynamic_churn": ("dynamic_churn", dict(trials=25)),
}


def run_all(
    out_dir: str,
    *,
    trials: int | None = None,
    n_jobs: int | None = 1,
    seed: int | None = None,
    plan: dict[str, tuple[str, dict]] | None = None,
    progress: Callable[[str], None] = print,
) -> dict[str, str]:
    """Execute the plan; returns ``{run name: output path}``.

    ``trials``/``seed``/``n_jobs`` override every plan entry when given.
    """
    os.makedirs(out_dir, exist_ok=True)
    plan = DEFAULT_PLAN if plan is None else plan
    written: dict[str, str] = {}
    for name, (driver_id, kwargs) in plan.items():
        driver = get_experiment(driver_id)
        call_kwargs = dict(kwargs)
        if trials is not None:
            call_kwargs["trials"] = trials
        if seed is not None:
            call_kwargs["seed"] = seed
        if n_jobs != 1:
            call_kwargs["n_jobs"] = n_jobs
        start = time.time()
        try:
            report = driver(**call_kwargs)
        except TypeError:
            # driver without n_jobs (text reports): retry without it
            call_kwargs.pop("n_jobs", None)
            report = driver(**call_kwargs)
        elapsed = time.time() - start
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(report.render())
            fh.write(f"\n[wall-clock: {elapsed:.1f}s]\n")
        written[name] = path
        progress(f"{name}: {elapsed:.1f}s -> {path}")
    return written
