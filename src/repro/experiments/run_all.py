"""Run every experiment and write one report file per driver.

This is the EXPERIMENTS.md regeneration path::

    python -m repro.experiments all --out results/

The plan (:data:`DEFAULT_PLAN`) maps run names to ``(driver id,
kwargs)`` pairs; some drivers appear twice at different scales
(``table1`` / ``table1_large``).  Scaled defaults mirror the recorded
runs; pass ``--trials``/``--full`` to push toward paper scale.

Since the sweep-layer rewiring (:mod:`repro.sweeps`), every driver
submits its cells through the content-addressed result cache, so
re-running the full plan after an interruption — or after editing one
driver — only recomputes the cells that changed.  Control the cache
with the ``cache`` argument here, the ``--cache``/``--no-cache`` CLI
flags, or the ``REPRO_SWEEP_CACHE`` environment variable.
"""

from __future__ import annotations

import inspect
import os
import time
from typing import Callable

from repro.experiments.registry import get_experiment

__all__ = ["DEFAULT_PLAN", "call_driver", "run_all"]

#: name -> (driver id, default kwargs).  Entries with a distinct name
#: reuse a driver at a second scale.
DEFAULT_PLAN: dict[str, tuple[str, dict]] = {
    "table1": ("table1", dict(trials=150, n_values=(2**8, 2**12, 2**16))),
    "table1_large": ("table1", dict(trials=20, n_values=(2**20,))),
    "table2": ("table2", dict(trials=150, n_values=(2**8, 2**12, 2**14))),
    "table2_large": ("table2", dict(trials=20, n_values=(2**16,))),
    "table3": ("table3", dict(trials=150, n_values=(2**8, 2**12, 2**16))),
    "fig1_lemma8": ("fig1_lemma8", dict(n=4096, trials=20, ring_trials=400)),
    "theory_vs_sim": ("theory_vs_sim", dict(trials=50)),
    "ablation_tiebreak": ("ablation_tiebreak", dict(trials=100)),
    "ablation_mn": ("ablation_mn", dict(trials=50)),
    "ablation_dim": ("ablation_dim", dict(trials=50)),
    "ablation_geometry": ("ablation_geometry", dict(trials=50)),
    "ablation_staleness": ("ablation_staleness", dict(trials=30)),
    "dynamic_churn": ("dynamic_churn", dict(trials=25)),
    "net_churn": ("net_churn", dict()),
}

#: kwargs silently dropped when a driver's signature does not accept
#: them — text-report drivers without ``n_jobs``/``cache``.
_OPTIONAL_KWARGS = ("cache", "n_jobs", "threads")


def call_driver(driver: Callable, kwargs: dict):
    """Invoke ``driver(**kwargs)``, dropping unsupported optional kwargs.

    Not every driver takes ``n_jobs`` or ``cache`` (the text-report
    drivers predate both); optional keys absent from the driver's
    signature are removed before the single call.  Signature
    inspection — rather than retry-on-``TypeError`` — means a
    ``TypeError`` raised *inside* the driver propagates instead of
    silently re-executing it with the caller's settings stripped.

    Parameters
    ----------
    driver:
        An experiment driver from the registry.
    kwargs:
        Keyword arguments to forward (not mutated).

    Returns
    -------
    The driver's report object.
    """
    call_kwargs = dict(kwargs)
    try:
        params = inspect.signature(driver).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        params = None
    if params is not None and not any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        for key in _OPTIONAL_KWARGS:
            if key in call_kwargs and key not in params:
                call_kwargs.pop(key)
    return driver(**call_kwargs)


def run_all(
    out_dir: str,
    *,
    trials: int | None = None,
    n_jobs: int | None = 1,
    seed: int | None = None,
    cache="auto",
    plan: dict[str, tuple[str, dict]] | None = None,
    progress: Callable[[str], None] = print,
) -> dict[str, str]:
    """Execute the plan and write one rendered report per entry.

    Parameters
    ----------
    out_dir:
        Directory for the ``<name>.txt`` report files (created if
        missing).
    trials, seed, n_jobs:
        When given, override every plan entry's own values.
    cache:
        Result-cache selector forwarded to every driver that accepts
        it (see :func:`repro.sweeps.runner.resolve_cache`); the
        default follows the environment, making re-runs incremental.
    plan:
        Alternative plan mapping (defaults to :data:`DEFAULT_PLAN`).
    progress:
        Callable receiving one status line per finished run.

    Returns
    -------
    dict
        ``{run name: written file path}`` in plan order.
    """
    os.makedirs(out_dir, exist_ok=True)
    plan = DEFAULT_PLAN if plan is None else plan
    written: dict[str, str] = {}
    for name, (driver_id, kwargs) in plan.items():
        driver = get_experiment(driver_id)
        call_kwargs = dict(kwargs, cache=cache)
        if trials is not None:
            call_kwargs["trials"] = trials
        if seed is not None:
            call_kwargs["seed"] = seed
        if n_jobs != 1:
            call_kwargs["n_jobs"] = n_jobs
        start = time.time()
        report = call_driver(driver, call_kwargs)
        elapsed = time.time() - start
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(report.render())
            fh.write(f"\n[wall-clock: {elapsed:.1f}s]\n")
        written[name] = path
        progress(f"{name}: {elapsed:.1f}s -> {path}")
    return written
