"""The paper's published Tables 1-3, transcribed verbatim.

Every entry is ``{max_load: percent}`` over the paper's 1000 trials.
These are the ground truth the reproduction is compared against in
EXPERIMENTS.md and in the integration tests (via Wilson-interval
compatibility, since our default trial counts differ).

Transcription notes: the d = 1 columns in the source are typeset as two
sub-columns; they are merged here.  Percentages are as printed and may
sum to 99.9/100.1 due to rounding.
"""

from __future__ import annotations

from repro.stats.distributions import MaxLoadDistribution

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "paper_distribution",
    "PAPER_TRIALS",
]

#: Trials behind every published percentage.
PAPER_TRIALS = 1000

# Table 1: random arcs on the ring, m = n, random tie-breaking.
# {n: {d: {max_load: percent}}}
PAPER_TABLE1: dict[int, dict[int, dict[int, float]]] = {
    2**8: {
        1: {5: 1.1, 6: 12.3, 7: 23.6, 8: 23.9, 9: 18.8, 10: 9.6, 11: 5.7,
            12: 2.1, 13: 1.7, 14: 0.4, 15: 0.2, 16: 0.4, 17: 0.1, 18: 0.1,
            19: 0.1},
        2: {3: 26.8, 4: 70.0, 5: 3.2},
        3: {2: 0.1, 3: 97.9, 4: 2.0},
        4: {2: 13.1, 3: 86.9},
    },
    2**12: {
        1: {9: 0.9, 10: 11.7, 11: 23.8, 12: 23.0, 13: 18.9, 14: 10.2,
            15: 5.3, 16: 3.0, 17: 1.3, 18: 0.6, 19: 0.7, 20: 0.4, 21: 0.1,
            22: 0.1, 24: 0.1},
        2: {4: 88.1, 5: 11.8, 6: 0.1},
        3: {3: 89.6, 4: 10.4},
        4: {3: 100.0},
    },
    2**16: {
        1: {13: 1.1, 14: 12.6, 15: 24.4, 16: 22.0, 17: 16.6, 18: 11.2,
            19: 6.2, 20: 2.5, 21: 1.8, 22: 0.6, 23: 0.4, 24: 0.1, 25: 0.3,
            26: 0.1, 32: 0.1},
        2: {4: 19.6, 5: 80.4},
        3: {3: 21.0, 4: 79.0},
        4: {3: 100.0},
    },
    2**20: {
        1: {17: 2.1, 18: 11.4, 19: 22.7, 20: 21.0, 21: 20.4, 22: 10.3,
            23: 6.3, 24: 2.3, 25: 1.5, 26: 1.0, 27: 0.8, 28: 0.1, 29: 0.1},
        2: {5: 99.9, 6: 0.1},
        3: {4: 100.0},
        4: {3: 99.1, 4: 0.9},
    },
    2**24: {
        1: {21: 2.1, 22: 9.7, 23: 23.8, 24: 23.8, 25: 17.0, 26: 10.9,
            27: 5.6, 28: 3.3, 29: 2.3, 30: 0.8, 31: 0.3, 32: 0.2, 34: 0.1,
            35: 0.1},
        2: {5: 99.4, 6: 0.6},
        3: {4: 100.0},
        4: {3: 86.5, 4: 13.5},
    },
}

# Table 2: random Voronoi cells on the unit torus, m = n, random ties.
PAPER_TABLE2: dict[int, dict[int, dict[int, float]]] = {
    2**8: {
        1: {4: 4.0, 5: 38.4, 6: 35.5, 7: 16.3, 8: 3.9, 9: 1.4, 10: 0.4,
            11: 0.1},
        2: {2: 0.2, 3: 95.6, 4: 4.2},
        3: {2: 45.0, 3: 55.0},
        4: {2: 92.2, 3: 7.8},
    },
    2**12: {
        1: {6: 2.0, 7: 29.7, 8: 40.5, 9: 20.2, 10: 5.8, 11: 1.5, 12: 0.2,
            13: 0.1},
        2: {3: 57.1, 4: 42.9},
        3: {3: 100.0},
        4: {2: 31.9, 3: 68.1},
    },
    2**16: {
        1: {8: 0.7, 9: 26.9, 10: 44.1, 11: 18.8, 12: 7.4, 13: 1.7, 14: 0.3,
            15: 0.1},
        2: {4: 100.0},
        3: {3: 99.9, 4: 0.1},
        4: {3: 100.0},
    },
    2**20: {
        1: {10: 0.9, 11: 22.0, 12: 45.7, 13: 22.8, 14: 6.5, 15: 1.8,
            16: 0.3},
        2: {4: 99.8, 5: 0.2},
        3: {3: 99.6, 4: 0.4},
        4: {3: 100.0},
    },
}

# Table 3: ring, d = 2, m = n, varying tie-breaking strategies.
# {n: {strategy: {max_load: percent}}}
PAPER_TABLE3: dict[int, dict[str, dict[int, float]]] = {
    2**8: {
        "arc-larger": {3: 8.5, 4: 82.8, 5: 8.6, 6: 0.1},
        "arc-random": {3: 26.8, 4: 70.0, 5: 3.2},
        "arc-left": {3: 57.3, 4: 42.5, 5: 0.2},
        "arc-smaller": {3: 72.4, 4: 27.6},
    },
    2**12: {
        "arc-larger": {4: 39.7, 5: 60.2, 6: 0.1},
        "arc-random": {4: 88.1, 5: 11.8, 6: 0.1},
        "arc-left": {4: 99.9, 5: 0.1},
        "arc-smaller": {3: 1.7, 4: 97.9, 5: 0.4},
    },
    2**16: {
        "arc-larger": {5: 99.6, 6: 0.4},
        "arc-random": {4: 19.6, 5: 80.4},
        "arc-left": {4: 96.7, 5: 3.3},
        "arc-smaller": {4: 99.0, 5: 1.0},
    },
    2**20: {
        "arc-larger": {5: 93.9, 6: 6.1},
        "arc-random": {5: 99.9, 6: 0.1},
        "arc-left": {4: 63.9, 5: 36.1},
        "arc-smaller": {4: 88.8, 5: 11.2},
    },
    2**24: {
        "arc-larger": {5: 37.4, 6: 62.6},
        "arc-random": {5: 99.4, 6: 0.6},
        "arc-left": {5: 100.0},
        "arc-smaller": {4: 10.5, 5: 89.5},
    },
}


def paper_distribution(percentages: dict[int, float]) -> MaxLoadDistribution:
    """Convert a published ``{load: percent}`` cell into a distribution.

    Percentages become integer counts out of :data:`PAPER_TRIALS`
    (each printed 0.1% is exactly one trial).
    """
    counts = {
        load: max(1, round(pct * PAPER_TRIALS / 100.0))
        for load, pct in percentages.items()
    }
    return MaxLoadDistribution.from_samples(
        [k for k, v in counts.items() for _ in range(v)]
    )
